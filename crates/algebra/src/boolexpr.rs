//! Boolean expressions with negation, `BoolExp(X)`.
//!
//! The paper's introduction discusses annotating tuples with boolean
//! expressions over the tokens (the c-tables approach of Imieliński &
//! Lipski), where the "complement" operation `p̂ = ¬p` supports deletion:
//! this is the tuple-level baseline whose aggregation requires enumerating
//! exponentially many subset results (Figure 2). We implement it as the
//! comparison point for experiment E1/Fig.2.
//!
//! `BoolExp` values are expression *trees* with constant folding; structural
//! equality is representational, not semantic (boolean equivalence is
//! co-NP-hard). [`BoolExp::equivalent`] decides semantic equality by truth
//! table for small variable sets, which the law tests use.

use crate::poly::Var;
use crate::semiring::CommutativeSemiring;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A boolean expression over provenance tokens.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BoolExp {
    /// A constant.
    Const(bool),
    /// A token.
    Var(Var),
    /// Negation (the `p̂` of the introduction).
    Not(Arc<BoolExp>),
    /// Conjunction.
    And(Arc<BoolExp>, Arc<BoolExp>),
    /// Disjunction.
    Or(Arc<BoolExp>, Arc<BoolExp>),
}

impl BoolExp {
    /// A token expression.
    pub fn var(name: &str) -> Self {
        BoolExp::Var(Var::new(name))
    }

    /// Negation with constant folding and double-negation elimination.
    pub fn not(&self) -> Self {
        match self {
            BoolExp::Const(b) => BoolExp::Const(!b),
            BoolExp::Not(e) => (**e).clone(),
            e => BoolExp::Not(Arc::new(e.clone())),
        }
    }

    /// Conjunction with constant folding.
    pub fn and(&self, other: &Self) -> Self {
        match (self, other) {
            (BoolExp::Const(false), _) | (_, BoolExp::Const(false)) => BoolExp::Const(false),
            (BoolExp::Const(true), e) | (e, BoolExp::Const(true)) => e.clone(),
            (a, b) => BoolExp::And(Arc::new(a.clone()), Arc::new(b.clone())),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(&self, other: &Self) -> Self {
        match (self, other) {
            (BoolExp::Const(true), _) | (_, BoolExp::Const(true)) => BoolExp::Const(true),
            (BoolExp::Const(false), e) | (e, BoolExp::Const(false)) => e.clone(),
            (a, b) => BoolExp::Or(Arc::new(a.clone()), Arc::new(b.clone())),
        }
    }

    /// Evaluates under a truth assignment.
    pub fn eval(&self, assignment: &mut impl FnMut(&Var) -> bool) -> bool {
        match self {
            BoolExp::Const(b) => *b,
            BoolExp::Var(v) => assignment(v),
            BoolExp::Not(e) => !e.eval(assignment),
            BoolExp::And(a, b) => a.eval(assignment) && b.eval(assignment),
            BoolExp::Or(a, b) => a.eval(assignment) || b.eval(assignment),
        }
    }

    /// The set of tokens occurring in the expression.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            BoolExp::Const(_) => {}
            BoolExp::Var(v) => {
                out.insert(v.clone());
            }
            BoolExp::Not(e) => e.collect_vars(out),
            BoolExp::And(a, b) | BoolExp::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Decides semantic equivalence by truth table. Panics above 20 shared
    /// variables (2²⁰ assignments); intended for tests and small baselines.
    pub fn equivalent(&self, other: &Self) -> bool {
        let vars: Vec<Var> = self.vars().union(&other.vars()).cloned().collect();
        assert!(
            vars.len() <= 20,
            "truth-table equivalence limited to 20 vars"
        );
        for bits in 0u32..(1 << vars.len()) {
            let mut assign = |v: &Var| {
                let idx = vars.iter().position(|w| w == v).expect("collected var");
                bits & (1 << idx) != 0
            };
            if self.eval(&mut assign) != other.eval(&mut assign) {
                return false;
            }
        }
        true
    }

    /// The number of nodes in the expression tree (a size measure for the
    /// overhead experiments).
    pub fn size(&self) -> usize {
        match self {
            BoolExp::Const(_) | BoolExp::Var(_) => 1,
            BoolExp::Not(e) => 1 + e.size(),
            BoolExp::And(a, b) | BoolExp::Or(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl CommutativeSemiring for BoolExp {
    fn zero() -> Self {
        BoolExp::Const(false)
    }
    fn one() -> Self {
        BoolExp::Const(true)
    }
    fn plus(&self, other: &Self) -> Self {
        self.or(other)
    }
    fn times(&self, other: &Self) -> Self {
        self.and(other)
    }
    // The flags describe the *semantic* quotient (boolean functions); the
    // law checkers use `equivalent` for this type.
    const PLUS_IDEMPOTENT: bool = true;
    const POSITIVE: bool = true;
    const HAS_HOM_TO_NAT: bool = false;
    fn as_nat(&self) -> Option<u64> {
        match self {
            BoolExp::Const(false) => Some(0),
            BoolExp::Const(true) => Some(1),
            _ => None,
        }
    }
    fn native_delta(&self) -> Option<Self> {
        // δ on boolean expressions is the identity (as for B).
        Some(self.clone())
    }
}

impl fmt::Display for BoolExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExp::Const(true) => write!(f, "⊤"),
            BoolExp::Const(false) => write!(f, "⊥"),
            BoolExp::Var(v) => write!(f, "{v}"),
            BoolExp::Not(e) => write!(f, "¬{e}"),
            BoolExp::And(a, b) => write!(f, "({a} ∧ {b})"),
            BoolExp::Or(a, b) => write!(f, "({a} ∨ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let x = BoolExp::var("x");
        assert_eq!(x.and(&BoolExp::Const(true)), x);
        assert_eq!(x.and(&BoolExp::Const(false)), BoolExp::Const(false));
        assert_eq!(x.or(&BoolExp::Const(false)), x);
        assert_eq!(x.or(&BoolExp::Const(true)), BoolExp::Const(true));
        assert_eq!(x.not().not(), x);
    }

    #[test]
    fn eval_and_vars() {
        // x ∧ ¬y
        let e = BoolExp::var("x").and(&BoolExp::var("y").not());
        assert_eq!(e.vars().len(), 2);
        assert!(e.eval(&mut |v| v.name() == "x"));
        assert!(!e.eval(&mut |_| true));
    }

    #[test]
    fn semantic_equivalence() {
        // De Morgan: ¬(x ∧ y) ≡ ¬x ∨ ¬y.
        let lhs = BoolExp::var("x").and(&BoolExp::var("y")).not();
        let rhs = BoolExp::var("x").not().or(&BoolExp::var("y").not());
        assert!(lhs.equivalent(&rhs));
        assert!(!lhs.equivalent(&BoolExp::var("x")));
    }

    #[test]
    fn semiring_laws_hold_semantically() {
        // Structural equality is representational; verify distributivity
        // semantically.
        let (x, y, z) = (BoolExp::var("x"), BoolExp::var("y"), BoolExp::var("z"));
        let lhs = x.times(&y.plus(&z));
        let rhs = x.times(&y).plus(&x.times(&z));
        assert!(lhs.equivalent(&rhs));
    }

    #[test]
    fn size_counts_nodes() {
        let e = BoolExp::var("x").and(&BoolExp::var("y").not());
        assert_eq!(e.size(), 4);
    }
}
