//! The database domain `D` of constants.
//!
//! The paper fixes a countably infinite domain `D` of values out of which
//! tuples are built, with the aggregation monoid's carrier `M ⊆ D`. Our
//! concrete domain has numbers (exact rationals with `±∞`, see
//! [`crate::num`]), strings, and booleans; booleans double as the carrier of
//! the monoid `B̂ = ({⊥,⊤}, ∨, ⊥)` used to encode relational difference
//! (paper §5).

use crate::num::Num;
use std::fmt;
use std::sync::Arc;

/// A first-order constant of the database domain `D`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Const {
    /// A boolean (also the carrier of the difference monoid `B̂`).
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(Arc<str>),
}

impl Const {
    /// Builds an integer constant.
    pub fn int(n: i64) -> Self {
        Const::Num(Num::int(n))
    }

    /// Builds a string constant.
    pub fn str(s: &str) -> Self {
        Const::Str(Arc::from(s))
    }

    /// Returns the number if this is a numeric constant.
    pub fn as_num(&self) -> Option<Num> {
        match self {
            Const::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean if this is a boolean constant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Const::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string if this is a string constant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Const::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the constant's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Const::Bool(_) => "bool",
            Const::Num(_) => "num",
            Const::Str(_) => "text",
        }
    }
}

impl From<Num> for Const {
    fn from(n: Num) -> Const {
        Const::Num(n)
    }
}

impl From<i64> for Const {
    fn from(n: i64) -> Const {
        Const::int(n)
    }
}

impl From<bool> for Const {
    fn from(b: bool) -> Const {
        Const::Bool(b)
    }
}

impl From<&str> for Const {
    fn from(s: &str) -> Const {
        Const::str(s)
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Bool(true) => write!(f, "true"),
            Const::Bool(false) => write!(f, "false"),
            Const::Num(n) => write!(f, "{n}"),
            Const::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Const::int(5).as_num(), Some(Num::int(5)));
        assert_eq!(Const::int(5).as_bool(), None);
        assert_eq!(Const::Bool(true).as_bool(), Some(true));
        assert_eq!(Const::str("d1").as_str(), Some("d1"));
    }

    #[test]
    fn ordering_is_total_across_types() {
        // A fixed arbitrary order across type tags keeps BTree-based
        // relations deterministic.
        let mut vals = [Const::str("a"), Const::int(1), Const::Bool(false)];
        vals.sort();
        assert_eq!(vals[0], Const::Bool(false));
    }

    #[test]
    fn display() {
        assert_eq!(Const::str("d1").to_string(), "'d1'");
        assert_eq!(Const::int(20).to_string(), "20");
        assert_eq!(Const::Bool(true).to_string(), "true");
    }
}
