//! The provenance semiring hierarchy.
//!
//! `ℕ[X]` is the most informative provenance semiring; coarser forms used in
//! earlier provenance systems arise as quotients (Green, ICDT 2009):
//!
//! ```text
//!        ℕ[X]  (provenance polynomials)
//!        /   \
//!    B[X]     Trio(X)        drop coefficients / drop exponents
//!        \   /
//!        Why(X)              sets of sets of tokens (witnesses)
//!          |
//!       PosBool(X)           absorption (minimal witnesses)
//!          |
//!        Lin(X)              lineage: one set of tokens
//! ```
//!
//! Each arrow is a surjective semiring homomorphism; composing with any of
//! them after query evaluation equals evaluating with the coarser semiring
//! directly (the factorization property). `B[X]` and `Trio(X)` are
//! [`crate::poly::Poly`] instances; this module adds `Why(X)`, `PosBool(X)`
//! and `Lin(X)` together with the downward maps.

use crate::poly::{BoolPoly, Monomial, NatPoly, Poly, Var};
use crate::semiring::{Bool, CommutativeSemiring, DeltaSemiring, Nat};
use std::collections::BTreeSet;
use std::fmt;

/// `Trio(X)`: polynomials with natural coefficients and squarefree
/// monomials (exponents dropped), as in the Trio system's lineage.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Trio(Poly<Var, Nat>);

impl Trio {
    /// The token `x` as a Trio element.
    pub fn token(name: &str) -> Self {
        Trio(NatPoly::token(name))
    }

    /// The underlying (squarefree) polynomial.
    pub fn as_poly(&self) -> &Poly<Var, Nat> {
        &self.0
    }

    fn normalize(p: Poly<Var, Nat>) -> Self {
        Trio(Poly::from_terms(
            p.terms().map(|(m, c)| (m.squarefree(), *c)),
        ))
    }
}

impl CommutativeSemiring for Trio {
    fn zero() -> Self {
        Trio(Poly::zero())
    }
    fn one() -> Self {
        Trio(Poly::one())
    }
    fn plus(&self, other: &Self) -> Self {
        Trio(self.0.plus(&other.0))
    }
    fn times(&self, other: &Self) -> Self {
        Self::normalize(self.0.times(&other.0))
    }
    const PLUS_IDEMPOTENT: bool = false;
    const POSITIVE: bool = true;
    const HAS_HOM_TO_NAT: bool = true;
    fn as_nat(&self) -> Option<u64> {
        self.0.as_nat()
    }
    fn from_nat(n: u64) -> Self {
        Trio(NatPoly::from_nat(n))
    }
    fn idem_normal(&self) -> Self {
        Trio(self.0.idem_normal())
    }
}

impl fmt::Display for Trio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// `Why(X)`: witness sets — sets of sets of tokens. Both `+` and `·` are
/// idempotent but absorption does not hold.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Why(BTreeSet<BTreeSet<Var>>);

impl Why {
    /// The token `x` as a singleton witness.
    pub fn token(name: &str) -> Self {
        Why(BTreeSet::from([BTreeSet::from([Var::new(name)])]))
    }

    /// The witness sets.
    pub fn witnesses(&self) -> &BTreeSet<BTreeSet<Var>> {
        &self.0
    }
}

impl CommutativeSemiring for Why {
    fn zero() -> Self {
        Why(BTreeSet::new())
    }
    fn one() -> Self {
        Why(BTreeSet::from([BTreeSet::new()]))
    }
    fn plus(&self, other: &Self) -> Self {
        Why(self.0.union(&other.0).cloned().collect())
    }
    fn times(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        Why(out)
    }
    const PLUS_IDEMPOTENT: bool = true;
    const POSITIVE: bool = true;
    const HAS_HOM_TO_NAT: bool = false;
    fn as_nat(&self) -> Option<u64> {
        if self.0.is_empty() {
            Some(0)
        } else if self.is_one() {
            Some(1)
        } else {
            None
        }
    }
    fn native_delta(&self) -> Option<Self> {
        Some(self.clone())
    }
}

impl DeltaSemiring for Why {
    /// Identity, as for the security semiring: lawful because `n·1 = 1` in
    /// any `+`-idempotent semiring, and it preserves the witness sets.
    fn delta(&self) -> Self {
        self.clone()
    }
}

impl fmt::Display for Why {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, v) in w.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

/// `PosBool(X)`: positive boolean expressions in irredundant DNF — an
/// antichain of witness sets (absorption applied). This is the free
/// distributive lattice on `X`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PosBool(BTreeSet<BTreeSet<Var>>);

impl PosBool {
    /// The token `x`.
    pub fn token(name: &str) -> Self {
        PosBool(BTreeSet::from([BTreeSet::from([Var::new(name)])]))
    }

    /// The minimal witness sets (the irredundant DNF).
    pub fn minimal_witnesses(&self) -> &BTreeSet<BTreeSet<Var>> {
        &self.0
    }

    fn absorb(sets: BTreeSet<BTreeSet<Var>>) -> Self {
        let minimal: BTreeSet<BTreeSet<Var>> = sets
            .iter()
            .filter(|s| !sets.iter().any(|other| other != *s && other.is_subset(s)))
            .cloned()
            .collect();
        PosBool(minimal)
    }
}

impl CommutativeSemiring for PosBool {
    fn zero() -> Self {
        PosBool(BTreeSet::new())
    }
    fn one() -> Self {
        PosBool(BTreeSet::from([BTreeSet::new()]))
    }
    fn plus(&self, other: &Self) -> Self {
        Self::absorb(self.0.union(&other.0).cloned().collect())
    }
    fn times(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        Self::absorb(out)
    }
    const PLUS_IDEMPOTENT: bool = true;
    const POSITIVE: bool = true;
    const HAS_HOM_TO_NAT: bool = false;
    fn as_nat(&self) -> Option<u64> {
        if self.0.is_empty() {
            Some(0)
        } else if self.is_one() {
            Some(1)
        } else {
            None
        }
    }
    fn native_delta(&self) -> Option<Self> {
        Some(self.clone())
    }
}

impl DeltaSemiring for PosBool {
    /// Identity (see [`Why`]'s δ).
    fn delta(&self) -> Self {
        self.clone()
    }
}

impl fmt::Display for PosBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "⊥");
        }
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if w.is_empty() {
                write!(f, "⊤")?;
            }
            for (j, v) in w.iter().enumerate() {
                if j > 0 {
                    write!(f, "∧")?;
                }
                write!(f, "{v}")?;
            }
        }
        Ok(())
    }
}

/// `Lin(X)`: lineage — a single set of contributing tokens, with a bottom
/// element for absent tuples.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Lineage {
    /// The zero (absent tuple).
    #[default]
    Bottom,
    /// The set of tokens the tuple depends on (`∅` is the semiring `1`).
    Set(BTreeSet<Var>),
}

impl Lineage {
    /// The token `x`.
    pub fn token(name: &str) -> Self {
        Lineage::Set(BTreeSet::from([Var::new(name)]))
    }

    /// The token set, if present.
    pub fn tokens(&self) -> Option<&BTreeSet<Var>> {
        match self {
            Lineage::Bottom => None,
            Lineage::Set(s) => Some(s),
        }
    }
}

impl CommutativeSemiring for Lineage {
    fn zero() -> Self {
        Lineage::Bottom
    }
    fn one() -> Self {
        Lineage::Set(BTreeSet::new())
    }
    fn plus(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Bottom, x) | (x, Lineage::Bottom) => x.clone(),
            (Lineage::Set(a), Lineage::Set(b)) => Lineage::Set(a.union(b).cloned().collect()),
        }
    }
    fn times(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Bottom, _) | (_, Lineage::Bottom) => Lineage::Bottom,
            (Lineage::Set(a), Lineage::Set(b)) => Lineage::Set(a.union(b).cloned().collect()),
        }
    }
    const PLUS_IDEMPOTENT: bool = true;
    const POSITIVE: bool = true;
    const HAS_HOM_TO_NAT: bool = false;
    fn as_nat(&self) -> Option<u64> {
        match self {
            Lineage::Bottom => Some(0),
            Lineage::Set(s) if s.is_empty() => Some(1),
            _ => None,
        }
    }
    fn native_delta(&self) -> Option<Self> {
        Some(self.clone())
    }
}

impl DeltaSemiring for Lineage {
    /// Identity (see [`Why`]'s δ).
    fn delta(&self) -> Self {
        self.clone()
    }
}

impl fmt::Display for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lineage::Bottom => write!(f, "⊥"),
            Lineage::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Downward homomorphisms
// ---------------------------------------------------------------------------

/// `ℕ[X] → B[X]`: drop coefficients.
pub fn to_bool_poly(p: &NatPoly) -> BoolPoly {
    p.map_coeffs(&mut |c| Bool(c.0 != 0))
}

/// `ℕ[X] → Trio(X)`: drop exponents.
pub fn to_trio(p: &NatPoly) -> Trio {
    Trio::normalize(p.clone())
}

/// `ℕ[X] → Why(X)`: drop coefficients and exponents.
pub fn to_why(p: &NatPoly) -> Why {
    Why(p.terms().map(|(m, _)| monomial_vars(m)).collect())
}

/// `ℕ[X] → PosBool(X)`: additionally apply absorption.
pub fn to_posbool(p: &NatPoly) -> PosBool {
    PosBool::absorb(p.terms().map(|(m, _)| monomial_vars(m)).collect())
}

/// `ℕ[X] → Lin(X)`: union all tokens (zero goes to ⊥).
pub fn to_lineage(p: &NatPoly) -> Lineage {
    if p.is_zero() {
        Lineage::Bottom
    } else {
        Lineage::Set(p.vars().cloned().collect())
    }
}

fn monomial_vars(m: &Monomial<Var>) -> BTreeSet<Var> {
    m.iter().map(|(v, _)| v.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::FnHom;
    use crate::laws::{check_hom, check_semiring};

    fn sample() -> NatPoly {
        // 2x²y + xy + 3z
        let x = NatPoly::token("x");
        let y = NatPoly::token("y");
        let z = NatPoly::token("z");
        NatPoly::from_nat(2)
            .times(&x)
            .times(&x)
            .times(&y)
            .plus(&x.times(&y))
            .plus(&NatPoly::from_nat(3).times(&z))
    }

    #[test]
    fn drops_match_expected_forms() {
        let p = sample();
        assert_eq!(to_bool_poly(&p).to_string(), "x*y + x^2*y + z");
        assert_eq!(to_trio(&p).to_string(), "3*x*y + 3*z");
        assert_eq!(to_why(&p).to_string(), "{{x,y}, {z}}");
        assert_eq!(to_posbool(&p).to_string(), "x∧y ∨ z");
        assert_eq!(to_lineage(&p).to_string(), "{x,y,z}");
    }

    #[test]
    fn absorption_only_in_posbool() {
        // x + xy: Why keeps both witnesses, PosBool absorbs {x,y} ⊇ {x}.
        let p = NatPoly::token("x").plus(&NatPoly::token("x").times(&NatPoly::token("y")));
        assert_eq!(to_why(&p).witnesses().len(), 2);
        assert_eq!(to_posbool(&p).minimal_witnesses().len(), 1);
    }

    #[test]
    fn hierarchy_semiring_laws() {
        let ts = [
            Trio::zero(),
            Trio::one(),
            Trio::token("x"),
            Trio::token("y"),
        ];
        for a in &ts {
            for b in &ts {
                for c in &ts {
                    check_semiring(a, b, c).unwrap();
                }
            }
        }
        let ws = [Why::zero(), Why::one(), Why::token("x"), Why::token("y")];
        for a in &ws {
            for b in &ws {
                for c in &ws {
                    check_semiring(a, b, c).unwrap();
                }
            }
        }
        let ps = [
            PosBool::zero(),
            PosBool::one(),
            PosBool::token("x"),
            PosBool::token("y"),
        ];
        for a in &ps {
            for b in &ps {
                for c in &ps {
                    check_semiring(a, b, c).unwrap();
                }
            }
        }
        let ls = [
            Lineage::Bottom,
            Lineage::one(),
            Lineage::token("x"),
            Lineage::token("y"),
        ];
        for a in &ls {
            for b in &ls {
                for c in &ls {
                    check_semiring(a, b, c).unwrap();
                }
            }
        }
    }

    #[test]
    fn trio_collapses_exponents() {
        let x = Trio::token("x");
        assert_eq!(x.times(&x).to_string(), "x");
        // but keeps multiplicities: x + x = 2x.
        assert_eq!(x.plus(&x).to_string(), "2*x");
    }

    #[test]
    fn downward_maps_are_homomorphisms() {
        let samples = [
            NatPoly::zero(),
            NatPoly::one(),
            NatPoly::token("x"),
            NatPoly::token("y"),
            sample(),
        ];
        for a in &samples {
            for b in &samples {
                check_hom(&FnHom(to_bool_poly), a, b).unwrap();
                check_hom(&FnHom(to_trio), a, b).unwrap();
                check_hom(&FnHom(to_why), a, b).unwrap();
                check_hom(&FnHom(to_posbool), a, b).unwrap();
                check_hom(&FnHom(to_lineage), a, b).unwrap();
            }
        }
    }

    #[test]
    fn trio_has_hom_to_nat() {
        // Tokens ↦ 1 yields the term-count-with-multiplicity homomorphism.
        let h = FnHom(|t: &Trio| t.as_poly().eval(&mut |_| Nat(1), &mut |c| *c));
        check_hom(&h, &Trio::token("x"), &Trio::token("y")).unwrap();
    }
}
