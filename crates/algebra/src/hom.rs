//! Semiring homomorphisms and valuations (paper §2.1).
//!
//! Commutation with homomorphisms is the paper's central desideratum: a
//! homomorphism `h : K → K'` extends to annotated relations (`h_Rel`) and to
//! tensor values (`h^M`), and query evaluation commutes with these
//! extensions. Because `ℕ[X]` is free, a *valuation* `X → K` of the tokens
//! extends uniquely to a homomorphism `ℕ[X] → K`; storing provenance
//! polynomials therefore suffices to later specialize query results to any
//! application semiring (deletion propagation, security, trust, …).

use crate::poly::{NatPoly, Var};
use crate::semiring::CommutativeSemiring;
use std::collections::BTreeMap;
use std::fmt;

/// A semiring homomorphism `A → B`.
///
/// Laws (checked by [`crate::laws::check_hom`]): `h(0)=0`, `h(1)=1`,
/// `h(a+b)=h(a)+h(b)`, `h(a·b)=h(a)·h(b)`.
pub trait SemiringHom<A: CommutativeSemiring, B: CommutativeSemiring> {
    /// Applies the homomorphism.
    fn apply(&self, a: &A) -> B;
}

/// Wraps a closure as a [`SemiringHom`]. The caller asserts the closure is a
/// homomorphism; the law checkers can verify on samples.
pub struct FnHom<F>(pub F);

impl<F> std::fmt::Debug for FnHom<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnHom").finish_non_exhaustive()
    }
}

impl<A, B, F> SemiringHom<A, B> for FnHom<F>
where
    A: CommutativeSemiring,
    B: CommutativeSemiring,
    F: Fn(&A) -> B,
{
    fn apply(&self, a: &A) -> B {
        self.0(a)
    }
}

/// A valuation `ν : X → K` of provenance tokens, freely extended to the
/// homomorphism `ℕ[X] → K` (the defining property of `ℕ[X]`).
///
/// Unmapped tokens go to a configurable default (itself `1_K` by default,
/// i.e. "present and unrestricted"), so deletion propagation is simply
/// `Valuation::deleting([...])`.
#[derive(Clone)]
pub struct Valuation<K> {
    map: BTreeMap<Var, K>,
    default: K,
}

impl<K: CommutativeSemiring> Valuation<K> {
    /// The valuation sending every token to `1_K`.
    pub fn ones() -> Self {
        Valuation {
            map: BTreeMap::new(),
            default: K::one(),
        }
    }

    /// A valuation with the given default for unmapped tokens.
    pub fn with_default(default: K) -> Self {
        Valuation {
            map: BTreeMap::new(),
            default,
        }
    }

    /// Binds one token.
    pub fn set(mut self, var: impl Into<Var>, k: K) -> Self {
        self.map.insert(var.into(), k);
        self
    }

    /// Binds many tokens.
    pub fn set_all(mut self, bindings: impl IntoIterator<Item = (Var, K)>) -> Self {
        self.map.extend(bindings);
        self
    }

    /// The deletion-propagation valuation: listed tokens go to `0_K`, all
    /// others to `1_K` (paper §1).
    pub fn deleting<I, V>(deleted: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Var>,
    {
        Valuation::ones().set_all(deleted.into_iter().map(|v| (v.into(), K::zero())))
    }

    /// Looks a token up.
    pub fn get(&self, var: &Var) -> K {
        self.map
            .get(var)
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }

    /// The free extension: evaluates a provenance polynomial in `K`.
    pub fn eval(&self, p: &NatPoly) -> K {
        p.eval(&mut |v| self.get(v), &mut |c| K::from_nat(c.0))
    }
}

impl<K: CommutativeSemiring> SemiringHom<NatPoly, K> for Valuation<K> {
    fn apply(&self, a: &NatPoly) -> K {
        self.eval(a)
    }
}

impl<K: CommutativeSemiring> fmt::Debug for Valuation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Valuation{{")?;
        for (v, k) in &self.map {
            write!(f, " {v}↦{k}")?;
        }
        write!(f, " _↦{} }}", self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{Bool, Nat, Security};

    #[test]
    fn valuation_free_extension() {
        // p = x·y + 2·z at x=2, y=3, z=5 in ℕ: 6 + 10 = 16.
        let p = NatPoly::token("x")
            .times(&NatPoly::token("y"))
            .plus(&NatPoly::from_nat(2).times(&NatPoly::token("z")));
        let v = Valuation::ones()
            .set("x", Nat(2))
            .set("y", Nat(3))
            .set("z", Nat(5));
        assert_eq!(v.eval(&p), Nat(16));
    }

    #[test]
    fn deletion_propagation_on_figure_1() {
        // Figure 1(b): dept d1 has annotation p1 + p2 + p3. Deleting the
        // tuple with EmpId 3 (token p3) leaves p1 + p2; deleting all of them
        // deletes the tuple (annotation 0).
        let ann = NatPoly::token("p1")
            .plus(&NatPoly::token("p2"))
            .plus(&NatPoly::token("p3"));
        let del: Valuation<NatPoly> = Valuation::with_default(NatPoly::zero())
            .set("p1", NatPoly::token("p1"))
            .set("p2", NatPoly::token("p2"))
            .set("p3", NatPoly::zero());
        assert_eq!(
            del.eval(&ann),
            NatPoly::token("p1").plus(&NatPoly::token("p2"))
        );

        let del_all: Valuation<Bool> = Valuation::deleting(["p1", "p2", "p3"]);
        assert!(del_all.eval(&ann).is_zero());
    }

    #[test]
    fn valuation_into_security() {
        // Assign clearances to tokens; alternative use takes the laxer one.
        let ann = NatPoly::token("a").plus(&NatPoly::token("b"));
        let v = Valuation::ones()
            .set("a", Security::Secret)
            .set("b", Security::Confidential);
        assert_eq!(v.eval(&ann), Security::Confidential);
    }

    #[test]
    fn unmapped_tokens_use_default() {
        let v: Valuation<Nat> = Valuation::with_default(Nat(7));
        assert_eq!(v.eval(&NatPoly::token("q")), Nat(7));
    }

    #[test]
    fn coefficients_map_through_from_nat() {
        // 3·x in B must become x (3·⊤ = ⊤), not disappear.
        let p = NatPoly::from_nat(3).times(&NatPoly::token("x"));
        let v: Valuation<Bool> = Valuation::ones();
        assert_eq!(v.eval(&p), Bool(true));
    }
}
