//! Executable algebraic laws.
//!
//! Every structure in this workspace states its laws in documentation; this
//! module makes them executable so that unit and property tests across
//! crates can share one implementation. Each checker returns `Err` with a
//! human-readable description of the first violated law.

use crate::monoid::CommutativeMonoid;
use crate::semimodule::Semimodule;
use crate::semiring::{CommutativeSemiring, DeltaSemiring};

macro_rules! law {
    ($cond:expr, $($msg:tt)*) => {
        if !$cond {
            return Err(format!($($msg)*));
        }
    };
}

/// Checks the commutative-monoid laws on a sample triple.
pub fn check_monoid<M: CommutativeMonoid>(
    m: &M,
    a: &M::Elem,
    b: &M::Elem,
    c: &M::Elem,
) -> Result<(), String> {
    law!(
        m.plus(a, b) == m.plus(b, a),
        "commutativity: {a:?}+{b:?} ≠ {b:?}+{a:?}"
    );
    law!(
        m.plus(a, &m.plus(b, c)) == m.plus(&m.plus(a, b), c),
        "associativity on {a:?},{b:?},{c:?}"
    );
    law!(m.plus(a, &m.zero()) == *a, "identity on {a:?}");
    if m.is_idempotent() {
        law!(m.plus(a, a) == *a, "claimed idempotence fails on {a:?}");
    }
    Ok(())
}

/// Checks the commutative-semiring laws on a sample triple.
pub fn check_semiring<K: CommutativeSemiring>(a: &K, b: &K, c: &K) -> Result<(), String> {
    let zero = K::zero();
    let one = K::one();
    law!(a.plus(b) == b.plus(a), "+ commutativity on {a}, {b}");
    law!(
        a.plus(&b.plus(c)) == a.plus(b).plus(c),
        "+ associativity on {a}, {b}, {c}"
    );
    law!(a.plus(&zero) == *a, "+ identity on {a}");
    law!(a.times(b) == b.times(a), "· commutativity on {a}, {b}");
    law!(
        a.times(&b.times(c)) == a.times(b).times(c),
        "· associativity on {a}, {b}, {c}"
    );
    law!(a.times(&one) == *a, "· identity on {a}");
    law!(
        a.times(&b.plus(c)) == a.times(b).plus(&a.times(c)),
        "distributivity on {a}, {b}, {c}"
    );
    law!(a.times(&zero) == zero, "annihilation on {a}");
    if K::PLUS_IDEMPOTENT {
        law!(a.plus(a) == *a, "claimed + idempotence fails on {a}");
    }
    if K::POSITIVE && a.plus(b).is_zero() {
        law!(
            a.is_zero() && b.is_zero(),
            "claimed positivity fails on {a}, {b}"
        );
    }
    Ok(())
}

/// Checks that the `as_nat`/`from_nat` pair is coherent on a sample.
pub fn check_nat_embedding<K: CommutativeSemiring>(a: &K, n: u64) -> Result<(), String> {
    if let Some(m) = a.as_nat() {
        law!(
            K::from_nat(m) == *a,
            "as_nat({a}) = {m} but from_nat({m}) differs"
        );
    }
    if K::HAS_HOM_TO_NAT {
        // On a semiring with a homomorphism to ℕ the canonical ℕ-image must
        // count faithfully, so round-tripping n must succeed.
        law!(
            K::from_nat(n).as_nat() == Some(n),
            "ℕ-image of {n} does not round-trip"
        );
    }
    Ok(())
}

/// Checks the δ-semiring laws (Definition 3.6) on a sample.
pub fn check_delta<K: DeltaSemiring>(a: &K, n: u64) -> Result<(), String> {
    law!(K::zero().delta().is_zero(), "δ(0) ≠ 0");
    if n >= 1 {
        law!(K::from_nat(n).delta().is_one(), "δ({n}·1) ≠ 1");
    }
    // Coherence with the optional native_delta hook.
    if let Some(d) = a.native_delta() {
        law!(d == a.delta(), "native_delta disagrees with delta on {a}");
    }
    Ok(())
}

/// Checks the six `K`-semimodule laws of Definition 2.1 on samples.
pub fn check_semimodule<K: CommutativeSemiring, W: Semimodule<K>>(
    w: &W,
    k1: &K,
    k2: &K,
    v1: &W::Vector,
    v2: &W::Vector,
) -> Result<(), String> {
    // (1) k ∗ (w1 + w2) = k ∗ w1 + k ∗ w2
    law!(
        w.scale(k1, &w.add(v1, v2)) == w.add(&w.scale(k1, v1), &w.scale(k1, v2)),
        "law (1) fails for {k1}, {v1:?}, {v2:?}"
    );
    // (2) k ∗ 0 = 0
    law!(w.scale(k1, &w.zero()) == w.zero(), "law (2) fails for {k1}");
    // (3) (k1 + k2) ∗ w = k1 ∗ w + k2 ∗ w
    law!(
        w.scale(&k1.plus(k2), v1) == w.add(&w.scale(k1, v1), &w.scale(k2, v1)),
        "law (3) fails for {k1}, {k2}, {v1:?}"
    );
    // (4) 0 ∗ w = 0
    law!(
        w.scale(&K::zero(), v1) == w.zero(),
        "law (4) fails for {v1:?}"
    );
    // (5) (k1 · k2) ∗ w = k1 ∗ (k2 ∗ w)
    law!(
        w.scale(&k1.times(k2), v1) == w.scale(k1, &w.scale(k2, v1)),
        "law (5) fails for {k1}, {k2}, {v1:?}"
    );
    // (6) 1 ∗ w = w
    law!(w.scale(&K::one(), v1) == *v1, "law (6) fails for {v1:?}");
    // The vectors also form a commutative monoid.
    law!(
        w.add(v1, v2) == w.add(v2, v1),
        "vector + commutativity fails"
    );
    law!(w.add(v1, &w.zero()) == *v1, "vector + identity fails");
    Ok(())
}

/// Checks the semiring-homomorphism laws on a sample pair.
pub fn check_hom<A, B>(h: &impl crate::hom::SemiringHom<A, B>, a: &A, b: &A) -> Result<(), String>
where
    A: CommutativeSemiring,
    B: CommutativeSemiring,
{
    law!(h.apply(&A::zero()).is_zero(), "h(0) ≠ 0");
    law!(h.apply(&A::one()).is_one(), "h(1) ≠ 1");
    law!(
        h.apply(&a.plus(b)) == h.apply(a).plus(&h.apply(b)),
        "h(a+b) ≠ h(a)+h(b) on {a}, {b}"
    );
    law!(
        h.apply(&a.times(b)) == h.apply(a).times(&h.apply(b)),
        "h(a·b) ≠ h(a)·h(b) on {a}, {b}"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Const;
    use crate::hom::FnHom;
    use crate::monoid::MonoidKind;
    use crate::semiring::{Bool, IntZ, Nat, Security, Tropical, Viterbi};

    #[test]
    fn builtin_monoids_satisfy_laws() {
        let samples = [Const::int(-3), Const::int(0), Const::int(7), Const::int(42)];
        for kind in [
            MonoidKind::Sum,
            MonoidKind::Min,
            MonoidKind::Max,
            MonoidKind::Prod,
        ] {
            for a in &samples {
                for b in &samples {
                    for c in &samples {
                        check_monoid(&kind, a, b, c).unwrap();
                    }
                }
            }
        }
        let bools = [Const::Bool(false), Const::Bool(true)];
        for a in &bools {
            for b in &bools {
                for c in &bools {
                    check_monoid(&MonoidKind::Or, a, b, c).unwrap();
                }
            }
        }
    }

    #[test]
    fn builtin_semirings_satisfy_laws() {
        fn exhaust<K: CommutativeSemiring>(samples: &[K]) {
            for a in samples {
                for b in samples {
                    for c in samples {
                        check_semiring(a, b, c).unwrap();
                    }
                    check_nat_embedding(a, 5).unwrap();
                }
            }
        }
        exhaust(&[Bool(false), Bool(true)]);
        exhaust(&[Nat(0), Nat(1), Nat(2), Nat(7)]);
        exhaust(&[IntZ(-2), IntZ(0), IntZ(1), IntZ(3)]);
        exhaust(&Security::ALL);
        exhaust(&[Tropical::Inf, Tropical::Fin(0), Tropical::Fin(4)]);
        exhaust(&[
            Viterbi::zero(),
            Viterbi::one(),
            Viterbi::ratio(1, 2),
            Viterbi::ratio(2, 3),
        ]);
    }

    #[test]
    fn builtin_deltas_satisfy_laws() {
        for n in 0..4 {
            check_delta(&Nat(3), n).unwrap();
            check_delta(&Bool(true), n).unwrap();
            check_delta(&Security::Secret, n).unwrap();
            check_delta(&Tropical::Fin(2), n).unwrap();
            check_delta(&IntZ(-5), n).unwrap();
        }
    }

    #[test]
    fn support_map_is_a_hom_nat_to_bool() {
        let h = FnHom(|n: &Nat| Bool(n.0 != 0));
        for a in [Nat(0), Nat(1), Nat(5)] {
            for b in [Nat(0), Nat(2)] {
                check_hom(&h, &a, &b).unwrap();
            }
        }
    }

    #[test]
    fn doubling_is_not_a_hom() {
        let h = FnHom(|n: &Nat| Nat(n.0 * 2));
        assert!(check_hom(&h, &Nat(1), &Nat(1)).is_err());
    }
}
