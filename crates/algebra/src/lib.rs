//! # aggprov-algebra
//!
//! Algebraic foundations for *Provenance for Aggregate Queries*
//! (Amsterdamer, Deutch & Tannen, PODS 2011):
//!
//! * [`monoid`] — commutative aggregation monoids (`SUM`, `MIN`, `MAX`,
//!   `PROD`, `B̂`), paper §2.2;
//! * [`semiring`] — commutative annotation semirings (`B`, `ℕ`, `ℤ`, `S`,
//!   tropical, Viterbi) with the structural flags (positivity, idempotent
//!   `+`, homomorphism to `ℕ`) that drive compatibility, paper §2.1 & §3.4;
//! * [`poly`] — polynomial semirings, in particular the free provenance
//!   semiring `ℕ[X]`;
//! * [`hom`] — semiring homomorphisms and token valuations;
//! * [`semimodule`] — `K`-semimodules and `SetAgg`, paper §2.2;
//! * [`tensor`] — the tensor product `K ⊗ M` with its normal form,
//!   lifted homomorphisms and compatibility-gated resolution, paper §2.3 &
//!   §3.4;
//! * [`sn`] — the security-bag semiring `SN`, paper §3.4;
//! * [`hierarchy`] — the classical provenance hierarchy under `ℕ[X]`;
//! * [`boolexpr`] — boolean expressions with negation (the c-table
//!   baseline of paper §1);
//! * [`laws`] — executable algebraic laws shared by all test suites;
//! * [`num`], [`domain`] — the exact numeric and constant domain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod boolexpr;
pub mod domain;
pub mod hierarchy;
pub mod hom;
pub mod laws;
pub mod monoid;
pub mod num;
pub mod poly;
pub mod semimodule;
pub mod semiring;
pub mod sn;
pub mod tensor;
