//! Commutative monoids for aggregation (paper §2.2).
//!
//! Aggregations are defined by commutative monoids `(M, +_M, 0_M)`:
//! `SUM = (ℚ, +, 0)`, `MIN = (ℚ±∞, min, +∞)`, `MAX = (ℚ±∞, max, −∞)`,
//! `PROD = (ℚ, ×, 1)`, and `B̂ = ({⊥,⊤}, ∨, ⊥)` which encodes difference
//! (paper §5). `COUNT` is summation of `1`s and `AVG` derives from `SUM` and
//! `COUNT` (paper footnote 6).
//!
//! Monoids are *instance-based* (a value of a type implementing
//! [`CommutativeMonoid`] is a monoid dictionary): the engine chooses the
//! aggregation operation at query-run time, and instances permit monoids
//! whose behaviour depends on runtime data (e.g. user-defined lattices).

use crate::domain::Const;
use crate::num::Num;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

/// A commutative monoid `(M, plus, zero)` over the element type `Elem`.
///
/// Laws (checked by property tests):
/// * `plus(a, b) == plus(b, a)` (commutativity)
/// * `plus(a, plus(b, c)) == plus(plus(a, b), c)` (associativity)
/// * `plus(a, zero()) == a` (identity)
pub trait CommutativeMonoid {
    /// The carrier of the monoid.
    type Elem: Clone + Eq + Ord + Hash + fmt::Debug;

    /// The identity element `0_M`.
    fn zero(&self) -> Self::Elem;

    /// The monoid operation `+_M`.
    fn plus(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// True iff `x +_M x = x` for all `x`. Idempotent monoids are exactly the
    /// `B`-semimodules (paper §2.2) and are compatible with every
    /// `+`-positive semiring (Theorem 3.12).
    fn is_idempotent(&self) -> bool;

    /// `n`-fold sum `n·x = x +_M … +_M x` (`0·x = 0_M`), the canonical
    /// `ℕ`-semimodule structure every commutative monoid carries.
    fn nfold(&self, n: u64, x: &Self::Elem) -> Self::Elem {
        if n == 0 {
            return self.zero();
        }
        if self.is_idempotent() {
            return x.clone();
        }
        // Exponentiation-by-squaring in additive notation.
        let mut acc: Option<Self::Elem> = None;
        let mut base = x.clone();
        let mut n = n;
        loop {
            if n & 1 == 1 {
                acc = Some(match acc {
                    None => base.clone(),
                    Some(a) => self.plus(&a, &base),
                });
            }
            n >>= 1;
            if n == 0 {
                break;
            }
            base = self.plus(&base, &base);
        }
        acc.expect("n > 0")
    }
}

/// Runtime tag selecting one of the built-in aggregation monoids over the
/// database domain [`Const`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MonoidKind {
    /// `SUM = (ℚ, +, 0)`.
    Sum,
    /// `MIN = (ℚ±∞, min, +∞)`.
    Min,
    /// `MAX = (ℚ±∞, max, −∞)`.
    Max,
    /// `PROD = (ℚ, ×, 1)`.
    Prod,
    /// `B̂ = ({⊥,⊤}, ∨, ⊥)`, the difference-encoding monoid of §5.
    Or,
}

impl MonoidKind {
    /// All built-in monoid kinds.
    pub const ALL: [MonoidKind; 5] = [
        MonoidKind::Sum,
        MonoidKind::Min,
        MonoidKind::Max,
        MonoidKind::Prod,
        MonoidKind::Or,
    ];

    /// The SQL-ish surface name of the aggregation.
    pub fn name(&self) -> &'static str {
        match self {
            MonoidKind::Sum => "SUM",
            MonoidKind::Min => "MIN",
            MonoidKind::Max => "MAX",
            MonoidKind::Prod => "PROD",
            MonoidKind::Or => "OR",
        }
    }
}

impl fmt::Display for MonoidKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl CommutativeMonoid for MonoidKind {
    type Elem = Const;

    fn zero(&self) -> Const {
        match self {
            MonoidKind::Sum => Const::Num(Num::ZERO),
            MonoidKind::Min => Const::Num(Num::PosInf),
            MonoidKind::Max => Const::Num(Num::NegInf),
            MonoidKind::Prod => Const::Num(Num::ONE),
            MonoidKind::Or => Const::Bool(false),
        }
    }

    /// Combines two domain values.
    ///
    /// # Panics
    ///
    /// Panics on elements outside the monoid's carrier (e.g. a string fed to
    /// `SUM`). The query planner type-checks aggregations before evaluation,
    /// so this is an internal invariant, not a user-facing error path.
    fn plus(&self, a: &Const, b: &Const) -> Const {
        match self {
            MonoidKind::Or => {
                let (x, y) = (expect_bool(a, *self), expect_bool(b, *self));
                Const::Bool(x || y)
            }
            _ => {
                let (x, y) = (expect_num(a, *self), expect_num(b, *self));
                Const::Num(match self {
                    MonoidKind::Sum => x + y,
                    MonoidKind::Min => x.min(y),
                    MonoidKind::Max => x.max(y),
                    MonoidKind::Prod => x * y,
                    MonoidKind::Or => unreachable!(),
                })
            }
        }
    }

    fn is_idempotent(&self) -> bool {
        matches!(self, MonoidKind::Min | MonoidKind::Max | MonoidKind::Or)
    }
}

fn expect_num(c: &Const, kind: MonoidKind) -> Num {
    c.as_num()
        .unwrap_or_else(|| panic!("{kind} aggregation over non-numeric value {c}"))
}

fn expect_bool(c: &Const, kind: MonoidKind) -> bool {
    c.as_bool()
        .unwrap_or_else(|| panic!("{kind} aggregation over non-boolean value {c}"))
}

/// The free commutative monoid over `u8` generators (finite multisets).
///
/// No equations hold beyond the monoid laws, which makes this the
/// distinguishing test instance: any identification the tensor-product
/// normal form performs over `Multiset` elements must already follow from
/// the congruence of paper §2.3.
#[derive(Clone, Copy, Debug, Default)]
pub struct MultisetMonoid;

impl CommutativeMonoid for MultisetMonoid {
    type Elem = BTreeMap<u8, u64>;

    fn zero(&self) -> Self::Elem {
        BTreeMap::new()
    }

    fn plus(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        let mut out = a.clone();
        for (k, v) in b {
            *out.entry(*k).or_insert(0) += v;
        }
        out
    }

    fn is_idempotent(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: i64) -> Const {
        Const::int(v)
    }

    #[test]
    fn sum_monoid() {
        let m = MonoidKind::Sum;
        assert_eq!(m.plus(&n(20), &n(10)), n(30));
        assert_eq!(m.plus(&n(20), &m.zero()), n(20));
        assert!(!m.is_idempotent());
    }

    #[test]
    fn min_max_identities_are_infinities() {
        assert_eq!(MonoidKind::Min.plus(&n(7), &MonoidKind::Min.zero()), n(7));
        assert_eq!(MonoidKind::Max.plus(&n(-7), &MonoidKind::Max.zero()), n(-7));
        assert!(MonoidKind::Min.is_idempotent());
    }

    #[test]
    fn prod_monoid() {
        let m = MonoidKind::Prod;
        assert_eq!(m.plus(&n(6), &n(7)), n(42));
        assert_eq!(m.plus(&n(6), &m.zero()), n(6));
    }

    #[test]
    fn or_monoid_is_bhat() {
        let m = MonoidKind::Or;
        let (t, f) = (Const::Bool(true), Const::Bool(false));
        assert_eq!(m.plus(&f, &f), f);
        assert_eq!(m.plus(&t, &f), t);
        assert_eq!(m.zero(), f);
        assert!(m.is_idempotent());
    }

    #[test]
    fn nfold_matches_iterated_plus() {
        let m = MonoidKind::Sum;
        assert_eq!(m.nfold(0, &n(5)), n(0));
        assert_eq!(m.nfold(1, &n(5)), n(5));
        assert_eq!(m.nfold(7, &n(5)), n(35));
        // Idempotent monoids collapse n-fold sums.
        assert_eq!(MonoidKind::Max.nfold(9, &n(5)), n(5));
    }

    #[test]
    fn nfold_prod_is_exponentiation() {
        assert_eq!(MonoidKind::Prod.nfold(10, &n(2)), n(1024));
    }

    #[test]
    fn multiset_monoid_is_free() {
        let m = MultisetMonoid;
        let a = BTreeMap::from([(1u8, 2u64)]);
        let b = BTreeMap::from([(1u8, 1u64), (2, 1)]);
        let ab = m.plus(&a, &b);
        assert_eq!(ab, BTreeMap::from([(1, 3), (2, 1)]));
        assert_eq!(m.plus(&a, &m.zero()), a);
        assert_ne!(m.plus(&a, &a), a, "free monoid is not idempotent");
    }

    #[test]
    #[should_panic(expected = "SUM aggregation over non-numeric")]
    fn type_confusion_panics() {
        MonoidKind::Sum.plus(&Const::str("x"), &n(1));
    }
}
