//! Exact numeric domain for aggregation.
//!
//! The paper aggregates over the reals (e.g. `SUM = (ℝ, +, 0)`,
//! `MIN = (ℝ∞, min, ∞)`). Floating point is unusable here: tensor values and
//! equality tokens require lawful `Eq`/`Ord`/`Hash` on monoid elements. We
//! therefore use **exact rationals extended with `±∞`** — dense, totally
//! ordered, exact, and sufficient for every example in the paper (all of
//! which are integers). The infinities exist only to serve as the identity
//! elements of `MIN` (`+∞`) and `MAX` (`−∞`).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A rational number `num/den` in lowest terms with `den > 0`.
///
/// Arithmetic is performed in `i128` and panics on overflow of the reduced
/// `i64`/`u64` representation; aggregate provenance workloads stay far from
/// these bounds, and a loud failure is preferable to silent wraparound in a
/// database kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: u64,
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Builds `n/1`.
    pub fn int(n: i64) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Builds `num/den` in lowest terms. Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let n = (num as i128).unsigned_abs();
        let d = (den as i128).unsigned_abs();
        Self::reduce(sign * n as i128, d)
    }

    fn reduce(num: i128, den: u128) -> Self {
        debug_assert!(den != 0);
        if num == 0 {
            return Rational::ZERO;
        }
        let g = gcd(num.unsigned_abs(), den);
        let num = num / g as i128;
        let den = den / g;
        Rational {
            num: i64::try_from(num).expect("rational numerator overflow"),
            den: u64::try_from(den).expect("rational denominator overflow"),
        }
    }

    /// The numerator of the reduced form.
    pub fn numer(&self) -> i64 {
        self.num
    }

    /// The (positive) denominator of the reduced form.
    pub fn denom(&self) -> u64 {
        self.den
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Lossy conversion for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Cross-multiply in i128: no overflow for i64/u64 operands.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        let num = self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128;
        Rational::reduce(num, self.den as u128 * rhs.den as u128)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: self.num.checked_neg().expect("rational negation overflow"),
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::reduce(
            self.num as i128 * rhs.num as i128,
            self.den as u128 * rhs.den as u128,
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "rational division by zero");
        let sign = if rhs.num < 0 { -1 } else { 1 };
        Rational::reduce(
            sign * self.num as i128 * rhs.den as i128,
            self.den as u128 * (rhs.num as i128).unsigned_abs(),
        )
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An element of the aggregation domain: a rational extended with `±∞`.
///
/// The derived ordering `NegInf < Rat(_) < PosInf` is the numeric one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Num {
    /// `−∞`, the identity of `MAX`.
    NegInf,
    /// A finite rational.
    Rat(Rational),
    /// `+∞`, the identity of `MIN`.
    PosInf,
}

impl Num {
    /// The number zero.
    pub const ZERO: Num = Num::Rat(Rational::ZERO);
    /// The number one.
    pub const ONE: Num = Num::Rat(Rational::ONE);

    /// Builds an integer.
    pub fn int(n: i64) -> Self {
        Num::Rat(Rational::int(n))
    }

    /// Builds a ratio `num/den`. Panics if `den == 0`.
    pub fn ratio(num: i64, den: i64) -> Self {
        Num::Rat(Rational::new(num, den))
    }

    /// Returns the finite rational, if any.
    pub fn as_rational(&self) -> Option<Rational> {
        match self {
            Num::Rat(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the value as an integer if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Num::Rat(r) if r.is_integer() => Some(r.numer()),
            _ => None,
        }
    }

    /// True iff the value is finite.
    pub fn is_finite(&self) -> bool {
        matches!(self, Num::Rat(_))
    }

    /// Lossy conversion for reporting only.
    pub fn to_f64(&self) -> f64 {
        match self {
            Num::NegInf => f64::NEG_INFINITY,
            Num::Rat(r) => r.to_f64(),
            Num::PosInf => f64::INFINITY,
        }
    }

    /// Checked addition: `None` for the undefined `+∞ + −∞`.
    pub fn checked_add(&self, rhs: &Num) -> Option<Num> {
        match (self, rhs) {
            (Num::Rat(a), Num::Rat(b)) => Some(Num::Rat(*a + *b)),
            (Num::PosInf, Num::NegInf) | (Num::NegInf, Num::PosInf) => None,
            (Num::PosInf, _) | (_, Num::PosInf) => Some(Num::PosInf),
            (Num::NegInf, _) | (_, Num::NegInf) => Some(Num::NegInf),
        }
    }

    /// Checked multiplication: `None` for the undefined `±∞ · 0`.
    pub fn checked_mul(&self, rhs: &Num) -> Option<Num> {
        match (self, rhs) {
            (Num::Rat(a), Num::Rat(b)) => Some(Num::Rat(*a * *b)),
            (inf, fin) | (fin, inf) if !inf.is_finite() => {
                let sign = match fin {
                    Num::Rat(r) => r.numer().signum(),
                    Num::PosInf => 1,
                    Num::NegInf => -1,
                };
                let pos = matches!(inf, Num::PosInf);
                match sign {
                    0 => None,
                    1 => Some(if pos { Num::PosInf } else { Num::NegInf }),
                    _ => Some(if pos { Num::NegInf } else { Num::PosInf }),
                }
            }
            _ => unreachable!(),
        }
    }

    /// Exact division; `None` for division by zero or non-finite operands.
    pub fn checked_div(&self, rhs: &Num) -> Option<Num> {
        match (self, rhs) {
            (Num::Rat(a), Num::Rat(b)) if b.numer() != 0 => Some(Num::Rat(*a / *b)),
            _ => None,
        }
    }

    /// Parses a decimal literal such as `"42"`, `"-3.25"` or `"1/3"`.
    pub fn parse(s: &str) -> Option<Num> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i64 = n.trim().parse().ok()?;
            let d: i64 = d.trim().parse().ok()?;
            if d == 0 {
                return None;
            }
            return Some(Num::ratio(n, d));
        }
        if let Some((int, frac)) = s.split_once('.') {
            let negative = int.trim_start().starts_with('-');
            let int: i64 = if int == "-" { 0 } else { int.parse().ok()? };
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let scale = 10i64.checked_pow(frac.len() as u32)?;
            let frac_val: i64 = frac.parse().ok()?;
            let signed_frac = if negative { -frac_val } else { frac_val };
            return Some(Num::Rat(
                Rational::int(int) + Rational::new(signed_frac, scale),
            ));
        }
        let n: i64 = s.parse().ok()?;
        Some(Num::int(n))
    }
}

impl Add for Num {
    type Output = Num;
    fn add(self, rhs: Num) -> Num {
        self.checked_add(&rhs).expect("undefined sum +∞ + −∞")
    }
}

impl Sub for Num {
    type Output = Num;
    fn sub(self, rhs: Num) -> Num {
        self + (-rhs)
    }
}

impl Neg for Num {
    type Output = Num;
    fn neg(self) -> Num {
        match self {
            Num::NegInf => Num::PosInf,
            Num::Rat(r) => Num::Rat(-r),
            Num::PosInf => Num::NegInf,
        }
    }
}

impl Mul for Num {
    type Output = Num;
    fn mul(self, rhs: Num) -> Num {
        self.checked_mul(&rhs).expect("undefined product ±∞ · 0")
    }
}

impl From<i64> for Num {
    fn from(n: i64) -> Num {
        Num::int(n)
    }
}

impl fmt::Display for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Num::NegInf => write!(f, "-inf"),
            Num::Rat(r) => write!(f, "{r}"),
            Num::PosInf => write!(f, "inf"),
        }
    }
}

impl fmt::Debug for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_reduction() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, 4), Rational::new(1, -2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
        assert_eq!(Rational::new(6, -3), Rational::int(-2));
    }

    #[test]
    fn rational_arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(-half, Rational::new(-1, 2));
    }

    #[test]
    fn rational_ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::int(-1) < Rational::ZERO);
        assert!(Rational::new(7, 2) > Rational::int(3));
    }

    #[test]
    fn num_ordering_with_infinities() {
        assert!(Num::NegInf < Num::int(i64::MIN));
        assert!(Num::int(i64::MAX) < Num::PosInf);
        assert!(Num::NegInf < Num::PosInf);
    }

    #[test]
    fn num_arithmetic() {
        assert_eq!(Num::int(2) + Num::int(3), Num::int(5));
        assert_eq!(Num::int(2) * Num::ratio(1, 2), Num::ONE);
        assert_eq!(Num::PosInf + Num::int(5), Num::PosInf);
        assert_eq!(Num::NegInf * Num::int(-2), Num::PosInf);
        assert_eq!(
            Num::int(7).checked_div(&Num::int(2)),
            Some(Num::ratio(7, 2))
        );
        assert_eq!(Num::int(7).checked_div(&Num::ZERO), None);
    }

    #[test]
    fn undefined_operations_are_none() {
        assert_eq!(Num::PosInf.checked_add(&Num::NegInf), None);
        assert_eq!(Num::PosInf.checked_mul(&Num::ZERO), None);
    }

    #[test]
    fn parse_literals() {
        assert_eq!(Num::parse("42"), Some(Num::int(42)));
        assert_eq!(Num::parse("-3"), Some(Num::int(-3)));
        assert_eq!(Num::parse("2.5"), Some(Num::ratio(5, 2)));
        assert_eq!(Num::parse("-0.25"), Some(Num::ratio(-1, 4)));
        assert_eq!(Num::parse("1/3"), Some(Num::ratio(1, 3)));
        assert_eq!(Num::parse("1/0"), None);
        assert_eq!(Num::parse("abc"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Num::int(3).to_string(), "3");
        assert_eq!(Num::ratio(1, 2).to_string(), "1/2");
        assert_eq!(Num::PosInf.to_string(), "inf");
    }
}
