//! Polynomial semirings, in particular the provenance polynomials `ℕ[X]`.
//!
//! `ℕ[X]` is the commutative semiring *freely generated* by the provenance
//! tokens `X` (paper §2.1): any valuation `X → K` extends uniquely to a
//! semiring homomorphism `ℕ[X] → K`, so every semiring-annotation semantics
//! factors through the provenance-polynomial semantics. This module
//! implements polynomials generically over the indeterminate type `A` and
//! the coefficient semiring `C`:
//!
//! * [`NatPoly`] `= Poly<Var, Nat>` is `ℕ[X]`;
//! * [`BoolPoly`] `= Poly<Var, Bool>` is `B[X]` of the provenance hierarchy;
//! * the extended semiring `K^M` of paper §4 is `Poly<Atom<K>, K>` — a
//!   polynomial whose indeterminates are symbolic equality tokens and
//!   δ-applications (see `aggprov-core`).

use crate::semiring::{Bool, CommutativeSemiring, Nat};
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// A provenance token ("indeterminate"), e.g. a tuple identifier.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a token with the given name.
    pub fn new(name: &str) -> Self {
        Var(Arc::from(name))
    }

    /// The token's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A monomial: a finite product of indeterminates with positive integer
/// exponents, kept sorted. The empty monomial is `1`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Monomial<A: Ord>(Vec<(A, u32)>);

impl<A: Ord + Clone> Monomial<A> {
    /// The unit monomial `1`.
    pub fn unit() -> Self {
        Monomial(Vec::new())
    }

    /// The monomial consisting of one indeterminate.
    pub fn var(a: A) -> Self {
        Monomial(vec![(a, 1)])
    }

    /// Builds a monomial from (indeterminate, exponent) pairs; zero
    /// exponents are dropped and repeats combined.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (A, u32)>) -> Self {
        let mut map: BTreeMap<A, u32> = BTreeMap::new();
        for (a, e) in pairs {
            if e > 0 {
                *map.entry(a).or_insert(0) += e;
            }
        }
        Monomial(map.into_iter().collect())
    }

    /// True iff this is the unit monomial.
    pub fn is_unit(&self) -> bool {
        self.0.is_empty()
    }

    /// The product of two monomials (exponents add).
    pub fn times(&self, other: &Self) -> Self {
        let mut out: Vec<(A, u32)> = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].0.cmp(&other.0[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let e = self.0[i]
                        .1
                        .checked_add(other.0[j].1)
                        .expect("monomial exponent overflow");
                    out.push((self.0[i].0.clone(), e));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Monomial(out)
    }

    /// The total degree (sum of exponents).
    pub fn degree(&self) -> u64 {
        self.0.iter().map(|(_, e)| *e as u64).sum()
    }

    /// The number of distinct indeterminates.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the monomial has no indeterminates (is the unit).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over (indeterminate, exponent) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&A, u32)> {
        self.0.iter().map(|(a, e)| (a, *e))
    }

    /// Drops all exponents to 1 (Trio's / Why's absorption of exponents).
    pub fn squarefree(&self) -> Self {
        Monomial(self.0.iter().map(|(a, _)| (a.clone(), 1)).collect())
    }

    /// Maps the indeterminates, renormalizing (images may collide).
    pub fn map_vars<B: Ord + Clone>(&self, f: &mut impl FnMut(&A) -> B) -> Monomial<B> {
        Monomial::from_pairs(self.0.iter().map(|(a, e)| (f(a), *e)))
    }
}

impl<A: Ord + fmt::Display> fmt::Display for Monomial<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        for (i, (a, e)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "*")?;
            }
            if *e == 1 {
                write!(f, "{a}")?;
            } else {
                write!(f, "{a}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A polynomial over indeterminates `A` with coefficients in the commutative
/// semiring `C`. The representation is canonical: monomials are unique keys
/// and zero coefficients are absent, so derived equality decides semiring
/// equality (for `C` with canonical representations).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Poly<A: Ord, C> {
    terms: BTreeMap<Monomial<A>, C>,
}

/// The provenance polynomial semiring `ℕ[X]` (paper §2.1).
pub type NatPoly = Poly<Var, Nat>;

/// The semiring `B[X]` of the provenance hierarchy: sets of monomials.
pub type BoolPoly = Poly<Var, Bool>;

impl<A, C> Poly<A, C>
where
    A: Ord + Clone + Hash + fmt::Debug,
    C: CommutativeSemiring,
{
    /// The constant polynomial `c`.
    pub fn constant(c: C) -> Self {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::unit(), c);
        }
        Poly { terms }
    }

    /// The polynomial consisting of a single indeterminate.
    pub fn var(a: A) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::var(a), C::one());
        Poly { terms }
    }

    /// Builds a polynomial from (monomial, coefficient) terms; repeated
    /// monomials are summed and zero coefficients dropped.
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial<A>, C)>) -> Self {
        let mut out: BTreeMap<Monomial<A>, C> = BTreeMap::new();
        for (m, c) in terms {
            match out.entry(m) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(c);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let sum = e.get().plus(&c);
                    *e.get_mut() = sum;
                }
            }
        }
        out.retain(|_, c| !c.is_zero());
        Poly { terms: out }
    }

    /// The number of terms (monomials with non-zero coefficient).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// A representation-size measure: one node per term plus one per
    /// indeterminate occurrence. Used by the overhead experiments.
    pub fn size(&self) -> usize {
        self.terms.keys().map(|m| 1 + m.len()).sum()
    }

    /// The maximal total degree of any term; `0` for the zero polynomial.
    pub fn degree(&self) -> u64 {
        self.terms.keys().map(|m| m.degree()).max().unwrap_or(0)
    }

    /// Iterates over (monomial, coefficient) terms.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial<A>, &C)> {
        self.terms.iter()
    }

    /// If this is a constant polynomial, returns its value (the zero
    /// polynomial is the constant `0`).
    pub fn as_constant(&self) -> Option<C> {
        match self.terms.len() {
            0 => Some(C::zero()),
            1 => {
                let (m, c) = self.terms.iter().next().expect("len 1");
                m.is_unit().then(|| c.clone())
            }
            _ => None,
        }
    }

    /// The set of indeterminates occurring in the polynomial.
    pub fn vars(&self) -> impl Iterator<Item = &A> {
        self.terms.keys().flat_map(|m| m.iter().map(|(a, _)| a))
    }

    /// Evaluates the polynomial in the semiring `K`, mapping indeterminates
    /// with `var` and coefficients with `coeff`. When `coeff` is a semiring
    /// homomorphism this is the free extension of the valuation (for
    /// `ℕ[X]`, the unique homomorphism determined by `var`).
    pub fn eval<K: CommutativeSemiring>(
        &self,
        var: &mut impl FnMut(&A) -> K,
        coeff: &mut impl FnMut(&C) -> K,
    ) -> K {
        let mut acc = K::zero();
        for (m, c) in &self.terms {
            let mut term = coeff(c);
            if term.is_zero() {
                continue;
            }
            for (a, e) in m.iter() {
                let base = var(a);
                term = term.times(&pow(&base, e));
            }
            acc = acc.plus(&term);
        }
        acc
    }

    /// Applies the valuation sending every indeterminate with
    /// `dropped(a) == true` to `0` and every other to itself: a monomial
    /// mentioning a dropped indeterminate vanishes, every other term is
    /// untouched. Agrees with the equivalent [`Poly::eval`] hom term for
    /// term, but runs in O(size) — removing keys from the canonical term
    /// map needs no re-summation — which is what makes deletion
    /// propagation over large membership sums O(n) instead of O(n²).
    pub fn drop_vars(&self, dropped: &mut impl FnMut(&A) -> bool) -> Self {
        Poly {
            terms: self
                .terms
                .iter()
                .filter(|(m, _)| !m.iter().any(|(a, _)| dropped(a)))
                .map(|(m, c)| (m.clone(), c.clone()))
                .collect(),
        }
    }

    /// Maps coefficients through `f` (a homomorphism `C → C2`),
    /// renormalizing.
    pub fn map_coeffs<C2: CommutativeSemiring>(&self, f: &mut impl FnMut(&C) -> C2) -> Poly<A, C2> {
        Poly::from_terms(self.terms.iter().map(|(m, c)| (m.clone(), f(c))))
    }

    /// Maps indeterminates through `f`, renormalizing (images may collide).
    pub fn map_vars<B: Ord + Clone + Hash + fmt::Debug>(
        &self,
        f: &mut impl FnMut(&A) -> B,
    ) -> Poly<B, C> {
        Poly::from_terms(self.terms.iter().map(|(m, c)| (m.map_vars(f), c.clone())))
    }
}

/// `base^exp` by repeated squaring in an arbitrary semiring.
pub fn pow<K: CommutativeSemiring>(base: &K, exp: u32) -> K {
    let mut acc = K::one();
    let mut base = base.clone();
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc.times(&base);
        }
        e >>= 1;
        if e > 0 {
            base = base.times(&base);
        }
    }
    acc
}

impl NatPoly {
    /// Convenience: the polynomial for a single named token.
    pub fn token(name: &str) -> NatPoly {
        NatPoly::var(Var::new(name))
    }
}

impl<A, C> CommutativeSemiring for Poly<A, C>
where
    A: Ord + Clone + Hash + fmt::Debug + fmt::Display + Send + Sync,
    C: CommutativeSemiring,
{
    fn zero() -> Self {
        Poly {
            terms: BTreeMap::new(),
        }
    }

    fn one() -> Self {
        Poly::constant(C::one())
    }

    fn plus(&self, other: &Self) -> Self {
        let mut out = self.terms.clone();
        for (m, c) in &other.terms {
            match out.entry(m.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(c.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let sum = e.get().plus(c);
                    if sum.is_zero() {
                        e.remove();
                    } else {
                        *e.get_mut() = sum;
                    }
                }
            }
        }
        Poly { terms: out }
    }

    fn times(&self, other: &Self) -> Self {
        let mut out: BTreeMap<Monomial<A>, C> = BTreeMap::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let m = m1.times(m2);
                let c = c1.times(c2);
                if c.is_zero() {
                    continue;
                }
                match out.entry(m) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(c);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let sum = e.get().plus(&c);
                        if sum.is_zero() {
                            e.remove();
                        } else {
                            *e.get_mut() = sum;
                        }
                    }
                }
            }
        }
        Poly { terms: out }
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    const PLUS_IDEMPOTENT: bool = C::PLUS_IDEMPOTENT;
    const POSITIVE: bool = C::POSITIVE;
    const HAS_HOM_TO_NAT: bool = C::HAS_HOM_TO_NAT;

    fn as_nat(&self) -> Option<u64> {
        self.as_constant().and_then(|c| c.as_nat())
    }

    fn from_nat(n: u64) -> Self {
        Poly::constant(C::from_nat(n))
    }

    fn idem_normal(&self) -> Self {
        // The quotient acts coefficient-wise (k ~ k+k propagates to each
        // monomial's coefficient through additivity of the congruence).
        self.map_coeffs(&mut |c| c.idem_normal())
    }
}

impl<A, C> fmt::Display for Poly<A, C>
where
    A: Ord + Clone + Hash + fmt::Debug + fmt::Display,
    C: CommutativeSemiring,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if m.is_unit() {
                write!(f, "{c}")?;
            } else if c.is_one() {
                write!(f, "{m}")?;
            } else {
                write!(f, "{c}*{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> NatPoly {
        NatPoly::token("x")
    }
    fn y() -> NatPoly {
        NatPoly::token("y")
    }

    /// `drop_vars` is the token→0 valuation, term for term: it must agree
    /// with the general `eval`-based hom on a polynomial mixing pure,
    /// mixed, and constant terms.
    #[test]
    fn drop_vars_agrees_with_the_eval_hom() {
        let z = NatPoly::token("z");
        let p = x()
            .times(&y())
            .plus(&x())
            .plus(&z.times(&z))
            .plus(&NatPoly::from_nat(3));
        let dropped = |name: &str| name == "x";
        let via_eval: NatPoly = p.eval(
            &mut |v| {
                if dropped(v.name()) {
                    NatPoly::zero()
                } else {
                    NatPoly::token(v.name())
                }
            },
            &mut |c| NatPoly::from_nat(c.0),
        );
        let via_drop = p.drop_vars(&mut |v| dropped(v.name()));
        assert_eq!(via_drop, via_eval);
        assert_eq!(via_drop.to_string(), "3 + z^2");
        // Dropping nothing is the identity; dropping everything leaves the
        // constant part.
        assert_eq!(p.drop_vars(&mut |_| false), p);
        assert_eq!(p.drop_vars(&mut |_| true), NatPoly::from_nat(3));
    }

    #[test]
    fn construction_and_display() {
        let p = x().plus(&y()).times(&x());
        assert_eq!(p.to_string(), "x*y + x^2");
        assert_eq!(p.num_terms(), 2);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn zero_and_one_behave() {
        let p = x();
        assert_eq!(p.plus(&NatPoly::zero()), p);
        assert_eq!(p.times(&NatPoly::one()), p);
        assert!(p.times(&NatPoly::zero()).is_zero());
    }

    #[test]
    fn coefficients_accumulate() {
        let p = x().plus(&x()).plus(&x());
        assert_eq!(p.to_string(), "3*x");
        assert_eq!(p.as_nat(), None);
        assert_eq!(NatPoly::from_nat(5).as_nat(), Some(5));
        assert_eq!(NatPoly::zero().as_nat(), Some(0));
    }

    #[test]
    fn distributivity_example() {
        // (x + y)·(x + y) = x² + 2xy + y²
        let p = x().plus(&y());
        let sq = p.times(&p);
        assert_eq!(sq.to_string(), "2*x*y + x^2 + y^2");
    }

    #[test]
    fn eval_is_free_extension() {
        // p = 2x²y + 3, evaluated at x=2, y=3 in ℕ: 2·4·3 + 3 = 27.
        let p = NatPoly::from_terms([
            (
                Monomial::from_pairs([(Var::new("x"), 2), (Var::new("y"), 1)]),
                Nat(2),
            ),
            (Monomial::unit(), Nat(3)),
        ]);
        let v = p.eval(
            &mut |v: &Var| if v.name() == "x" { Nat(2) } else { Nat(3) },
            &mut |c: &Nat| *c,
        );
        assert_eq!(v, Nat(27));
    }

    #[test]
    fn eval_to_bool_is_support() {
        // Deletion propagation: x + y with x ↦ ⊥, y ↦ ⊤ gives ⊤.
        let p = x().plus(&y());
        let v = p.eval(&mut |v: &Var| Bool(v.name() == "y"), &mut |c: &Nat| {
            Bool(c.0 != 0)
        });
        assert_eq!(v, Bool(true));
    }

    #[test]
    fn map_vars_can_merge_tokens() {
        let p = x().plus(&y()); // x + y
        let q = p.map_vars(&mut |_| Var::new("z"));
        assert_eq!(q.to_string(), "2*z");
    }

    #[test]
    fn squarefree_monomials() {
        let m = Monomial::from_pairs([(Var::new("x"), 3), (Var::new("y"), 1)]);
        assert_eq!(m.squarefree().to_string(), "x*y");
    }

    #[test]
    fn pow_by_squaring() {
        assert_eq!(pow(&Nat(3), 0), Nat(1));
        assert_eq!(pow(&Nat(3), 5), Nat(243));
        let p = pow(&x().plus(&NatPoly::one()), 2);
        assert_eq!(p.to_string(), "1 + 2*x + x^2");
    }

    #[test]
    fn bool_poly_is_set_of_monomials() {
        let p = BoolPoly::var(Var::new("x"));
        let q = p.plus(&p);
        assert_eq!(q, p, "B[X] has idempotent +");
        const { assert!(BoolPoly::PLUS_IDEMPOTENT) };
    }

    #[test]
    fn size_measure() {
        let p = x().times(&y()).plus(&NatPoly::from_nat(2));
        // terms: {x*y: 1, 1: 2} → (1+2) + (1+0) = 4
        assert_eq!(p.size(), 4);
    }
}
