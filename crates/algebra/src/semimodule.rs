//! `K`-semimodules and `SetAgg` (paper §2.2).
//!
//! A `K`-semimodule is a commutative monoid of "vectors" with a scalar
//! multiplication by elements of the semiring `K`, satisfying the six laws
//! of Definition 2.1 (checked executably by
//! [`crate::laws::check_semimodule`]). Aggregating a `K`-set of semimodule
//! elements is the semimodule homomorphism `SetAgg` — the semantic core of
//! annotated aggregation.

use crate::monoid::CommutativeMonoid;
use crate::semiring::CommutativeSemiring;
use std::fmt;

/// A `K`-semimodule `(W, add, zero, scale)` (Definition 2.1), instance-based
/// like [`CommutativeMonoid`].
pub trait Semimodule<K: CommutativeSemiring> {
    /// The vector carrier.
    type Vector: Clone + Eq + fmt::Debug;

    /// The additive identity `0_W`.
    fn zero(&self) -> Self::Vector;

    /// Vector addition `+_W`.
    fn add(&self, a: &Self::Vector, b: &Self::Vector) -> Self::Vector;

    /// Scalar multiplication `∗_W : K × W → W`.
    fn scale(&self, k: &K, v: &Self::Vector) -> Self::Vector;
}

/// `SetAgg_W(S)` for a `K`-set `S = {w_i ↦ k_i}`: the semimodule element
/// `k_1 ∗ w_1 +_W … +_W k_n ∗ w_n`, with `SetAgg(∅) = 0_W` (paper §2.2).
pub fn set_agg<'a, K, W>(
    module: &W,
    annotated: impl IntoIterator<Item = (&'a K, &'a W::Vector)>,
) -> W::Vector
where
    K: CommutativeSemiring + 'a,
    W: Semimodule<K>,
    W::Vector: 'a,
{
    let mut acc = module.zero();
    for (k, w) in annotated {
        acc = module.add(&acc, &module.scale(k, w));
    }
    acc
}

/// Every commutative monoid is an `ℕ`-semimodule via `n ∗ x = n·x`
/// (paper §2.2). This wrapper exposes that canonical structure.
#[derive(Clone, Copy, Debug)]
pub struct NatSemimodule<M>(pub M);

impl<M: CommutativeMonoid> Semimodule<crate::semiring::Nat> for NatSemimodule<M> {
    type Vector = M::Elem;

    fn zero(&self) -> M::Elem {
        self.0.zero()
    }

    fn add(&self, a: &M::Elem, b: &M::Elem) -> M::Elem {
        self.0.plus(a, b)
    }

    fn scale(&self, k: &crate::semiring::Nat, v: &M::Elem) -> M::Elem {
        self.0.nfold(k.0, v)
    }
}

/// An idempotent commutative monoid is a `B`-semimodule (`⊤ ∗ x = x`,
/// `⊥ ∗ x = 0`); paper §2.2. Construction panics on non-idempotent monoids,
/// for which the `B`-semimodule laws fail.
#[derive(Clone, Copy, Debug)]
pub struct BoolSemimodule<M>(M);

impl<M: CommutativeMonoid> BoolSemimodule<M> {
    /// Wraps an idempotent monoid; panics otherwise (law (3) of
    /// Definition 2.1 forces `x + x = x`).
    pub fn new(monoid: M) -> Self {
        assert!(
            monoid.is_idempotent(),
            "a commutative monoid is a B-semimodule iff it is idempotent"
        );
        BoolSemimodule(monoid)
    }
}

impl<M: CommutativeMonoid> Semimodule<crate::semiring::Bool> for BoolSemimodule<M> {
    type Vector = M::Elem;

    fn zero(&self) -> M::Elem {
        self.0.zero()
    }

    fn add(&self, a: &M::Elem, b: &M::Elem) -> M::Elem {
        self.0.plus(a, b)
    }

    fn scale(&self, k: &crate::semiring::Bool, v: &M::Elem) -> M::Elem {
        if k.0 {
            v.clone()
        } else {
            self.0.zero()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Const;
    use crate::laws::check_semimodule;
    use crate::monoid::MonoidKind;
    use crate::semiring::{Bool, Nat};

    #[test]
    fn monoids_are_nat_semimodules() {
        let w = NatSemimodule(MonoidKind::Sum);
        for k1 in [Nat(0), Nat(1), Nat(3)] {
            for k2 in [Nat(0), Nat(2)] {
                check_semimodule(&w, &k1, &k2, &Const::int(5), &Const::int(-2)).unwrap();
            }
        }
    }

    #[test]
    fn idempotent_monoids_are_bool_semimodules() {
        let w = BoolSemimodule::new(MonoidKind::Max);
        for k1 in [Bool(false), Bool(true)] {
            for k2 in [Bool(false), Bool(true)] {
                check_semimodule(&w, &k1, &k2, &Const::int(5), &Const::int(-2)).unwrap();
            }
        }
    }

    #[test]
    #[should_panic(expected = "idempotent")]
    fn sum_is_not_a_bool_semimodule() {
        BoolSemimodule::new(MonoidKind::Sum);
    }

    #[test]
    fn set_agg_on_bags_is_weighted_sum() {
        // Bag {20↦2, 10↦3}: SUM-aggregation is 2·20 + 3·10 = 70.
        let w = NatSemimodule(MonoidKind::Sum);
        let items = [(Nat(2), Const::int(20)), (Nat(3), Const::int(10))];
        let out = set_agg(&w, items.iter().map(|(k, v)| (k, v)));
        assert_eq!(out, Const::int(70));
    }

    #[test]
    fn set_agg_on_sets_is_plain_fold() {
        // Set {20, 10, 30} under MAX: 30. Annotation ⊥ removes an element.
        let w = BoolSemimodule::new(MonoidKind::Max);
        let items = [
            (Bool(true), Const::int(20)),
            (Bool(false), Const::int(99)),
            (Bool(true), Const::int(30)),
        ];
        let out = set_agg(&w, items.iter().map(|(k, v)| (k, v)));
        assert_eq!(out, Const::int(30));
    }

    #[test]
    fn set_agg_empty_is_zero() {
        let w = NatSemimodule(MonoidKind::Sum);
        let out = set_agg(&w, std::iter::empty::<(&Nat, &Const)>());
        assert_eq!(out, Const::int(0));
    }
}
