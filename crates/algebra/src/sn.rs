//! The security-bag semiring `SN` (paper §3.4, "Constructing a compatible
//! semiring").
//!
//! The security semiring `S` is `+`-idempotent, hence incompatible with
//! non-idempotent aggregations such as `SUM`. The paper repairs this by
//! moving to `ℕ[S]` — polynomials whose "indeterminates" are clearance
//! levels — and quotienting by the identities that hold in `S`:
//!
//! * `s₁ ≥ s₂  ⟹  s₁ · s₂ = s₁` (joint use needs the stricter clearance),
//! * `0 · s = c · 0_S = 0`,
//! * `c · 1_S = c` for `c ∈ ℕ`.
//!
//! The quotient admits the canonical form `n·1_S + c·C + s·S + t·T` with
//! natural counts, multiplication acting by max-level on basis elements.
//! `SN` retains a homomorphism onto `ℕ` (total count), so by Theorem 3.13 it
//! is compatible with **every** commutative monoid — security annotations
//! and `SUM` finally coexist (Example 3.16, Corollary 3.15).

use crate::semiring::{CommutativeSemiring, DeltaSemiring, Security};
use std::fmt;

/// An element of `SN` in canonical form: counts of each non-zero clearance
/// level (`1_S = Public`, `C`, `S`, `T`). The semiring zero has all counts
/// zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Sn {
    /// Coefficient of `1_S` (the embedded naturals).
    pub public: u64,
    /// Count of `C` (confidential) summands.
    pub confidential: u64,
    /// Count of `S` (secret) summands.
    pub secret: u64,
    /// Count of `T` (top secret) summands.
    pub top_secret: u64,
}

impl Sn {
    /// Embeds a clearance level (the faithful embedding `S ↪ SN`;
    /// `Never` maps to the semiring zero).
    pub fn level(level: Security) -> Self {
        let mut out = Sn::default();
        match level {
            Security::Public => out.public = 1,
            Security::Confidential => out.confidential = 1,
            Security::Secret => out.secret = 1,
            Security::TopSecret => out.top_secret = 1,
            Security::Never => {}
        }
        out
    }

    /// The count for a given level (`Never` has no count; returns 0).
    pub fn count(&self, level: Security) -> u64 {
        match level {
            Security::Public => self.public,
            Security::Confidential => self.confidential,
            Security::Secret => self.secret,
            Security::TopSecret => self.top_secret,
            Security::Never => 0,
        }
    }

    fn with_count(level: Security, n: u64) -> Self {
        let mut out = Sn::default();
        match level {
            Security::Public => out.public = n,
            Security::Confidential => out.confidential = n,
            Security::Secret => out.secret = n,
            Security::TopSecret => out.top_secret = n,
            Security::Never => {}
        }
        out
    }

    /// The homomorphism `SN → ℕ` (total count) that powers compatibility
    /// with all monoids (Theorem 3.13 / Corollary 3.15).
    pub fn total_count(&self) -> u64 {
        self.public + self.confidential + self.secret + self.top_secret
    }

    /// Specializes for a principal with clearance `cred`: levels visible to
    /// `cred` count as present (`1`), others vanish — the multiplicity the
    /// principal observes. This is the composition of the per-level
    /// visibility valuation with `total_count`.
    pub fn multiplicity_for(&self, cred: Security) -> u64 {
        let mut n = 0;
        for level in [
            Security::Public,
            Security::Confidential,
            Security::Secret,
            Security::TopSecret,
        ] {
            if level.visible_to(cred) {
                n += self.count(level);
            }
        }
        n
    }
}

impl CommutativeSemiring for Sn {
    fn zero() -> Self {
        Sn::default()
    }

    fn one() -> Self {
        Sn::level(Security::Public)
    }

    fn plus(&self, other: &Self) -> Self {
        Sn {
            public: self.public.checked_add(other.public).expect("SN overflow"),
            confidential: self
                .confidential
                .checked_add(other.confidential)
                .expect("SN overflow"),
            secret: self.secret.checked_add(other.secret).expect("SN overflow"),
            top_secret: self
                .top_secret
                .checked_add(other.top_secret)
                .expect("SN overflow"),
        }
    }

    fn times(&self, other: &Self) -> Self {
        // Distribute over the canonical sums; on basis levels the product is
        // the max level, with counts multiplying.
        let levels = [
            Security::Public,
            Security::Confidential,
            Security::Secret,
            Security::TopSecret,
        ];
        let mut out = Sn::default();
        for a in levels {
            let ca = self.count(a);
            if ca == 0 {
                continue;
            }
            for b in levels {
                let cb = other.count(b);
                if cb == 0 {
                    continue;
                }
                let n = ca.checked_mul(cb).expect("SN overflow");
                out = out.plus(&Sn::with_count(a.times(&b), n));
            }
        }
        out
    }

    const PLUS_IDEMPOTENT: bool = false;
    const POSITIVE: bool = true;
    const HAS_HOM_TO_NAT: bool = true;

    fn as_nat(&self) -> Option<u64> {
        (self.confidential == 0 && self.secret == 0 && self.top_secret == 0).then_some(self.public)
    }

    fn from_nat(n: u64) -> Self {
        Sn::with_count(Security::Public, n)
    }

    fn native_delta(&self) -> Option<Self> {
        Some(self.delta())
    }

    fn idem_normal(&self) -> Self {
        // Component-wise support, as for ℕ.
        Sn {
            public: self.public.min(1),
            confidential: self.confidential.min(1),
            secret: self.secret.min(1),
            top_secret: self.top_secret.min(1),
        }
    }
}

impl DeltaSemiring for Sn {
    /// `δ(x)`: the most public level present, with count 1 — "the group
    /// exists for whoever can see at least one member". Satisfies the
    /// δ-laws: `δ(0) = 0`, `δ(n·1_S) = 1_S`.
    fn delta(&self) -> Self {
        for level in [
            Security::Public,
            Security::Confidential,
            Security::Secret,
            Security::TopSecret,
        ] {
            if self.count(level) > 0 {
                return Sn::level(level);
            }
        }
        Sn::zero()
    }
}

impl fmt::Display for Sn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, n: u64, name: &str| -> fmt::Result {
            if n == 0 {
                return Ok(());
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if name == "1s" {
                write!(f, "{n}")
            } else if n == 1 {
                write!(f, "{name}")
            } else {
                write!(f, "{n}*{name}")
            }
        };
        item(f, self.public, "1s")?;
        item(f, self.confidential, "C")?;
        item(f, self.secret, "S")?;
        item(f, self.top_secret, "T")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::FnHom;
    use crate::laws::{check_delta, check_hom, check_semiring};
    use crate::semiring::Nat;

    fn samples() -> Vec<Sn> {
        vec![
            Sn::zero(),
            Sn::one(),
            Sn::level(Security::Secret),
            Sn::level(Security::TopSecret),
            Sn::from_nat(3),
            Sn::level(Security::Secret).plus(&Sn::from_nat(2)),
            Sn::level(Security::Confidential).times(&Sn::level(Security::Secret)),
        ]
    }

    #[test]
    fn semiring_laws() {
        let xs = samples();
        for a in &xs {
            for b in &xs {
                for c in &xs {
                    check_semiring(a, b, c).unwrap();
                }
            }
        }
    }

    #[test]
    fn quotient_identities() {
        // s1 ≥ s2 ⟹ s1 · s2 = s1 (on the embedded levels).
        let t = Sn::level(Security::TopSecret);
        let s = Sn::level(Security::Secret);
        assert_eq!(t.times(&s), t);
        // c · 1_S = c.
        assert_eq!(Sn::from_nat(4).times(&Sn::one()), Sn::from_nat(4));
        // 0 annihilates.
        assert_eq!(s.times(&Sn::zero()), Sn::zero());
    }

    #[test]
    fn embeddings_are_faithful() {
        // ℕ ↪ SN and S ↪ SN are injective on representatives.
        assert_ne!(Sn::from_nat(2), Sn::from_nat(3));
        assert_ne!(
            Sn::level(Security::Secret),
            Sn::level(Security::Confidential)
        );
        // …and SN does *not* collapse T + S the way S does (Example 3.16).
        let sum = Sn::level(Security::TopSecret).plus(&Sn::level(Security::Secret));
        assert_eq!(sum.total_count(), 2);
        assert_ne!(sum, Sn::level(Security::Secret));
    }

    #[test]
    fn total_count_is_a_hom_to_nat() {
        let h = FnHom(|x: &Sn| Nat(x.total_count()));
        let xs = samples();
        for a in &xs {
            for b in &xs {
                check_hom(&h, a, b).unwrap();
            }
        }
    }

    #[test]
    fn example_3_16_annotation() {
        // (T ·SN S) +SN S = T + S (since T·S = T), i.e. counts {t:1, s:1}.
        let ann = Sn::level(Security::TopSecret)
            .times(&Sn::level(Security::Secret))
            .plus(&Sn::level(Security::Secret));
        assert_eq!(ann.count(Security::TopSecret), 1);
        assert_eq!(ann.count(Security::Secret), 1);
        // Principal with T sees multiplicity 2; with S sees 1; with C sees 0.
        assert_eq!(ann.multiplicity_for(Security::TopSecret), 2);
        assert_eq!(ann.multiplicity_for(Security::Secret), 1);
        assert_eq!(ann.multiplicity_for(Security::Confidential), 0);
    }

    #[test]
    fn delta_laws_and_choice() {
        for n in 0..4 {
            check_delta(&Sn::from_nat(2), n).unwrap();
        }
        let x = Sn::level(Security::Secret).plus(&Sn::level(Security::Confidential));
        assert_eq!(x.delta(), Sn::level(Security::Confidential));
    }

    #[test]
    fn compatible_with_sum_via_nat_hom() {
        use crate::domain::Const;
        use crate::monoid::MonoidKind;
        use crate::tensor::Tensor;
        // Ground SN coefficients resolve through ι⁻¹.
        let m = MonoidKind::Sum;
        let t = Tensor::<Sn, Const>::from_terms(
            &m,
            [
                (Sn::from_nat(2), Const::int(30)),
                (Sn::from_nat(1), Const::int(10)),
            ],
        );
        assert_eq!(t.try_resolve(&m), Some(Const::int(70)));
        // Symbolic (level-annotated) coefficients do not resolve yet.
        let t =
            Tensor::<Sn, Const>::from_terms(&m, [(Sn::level(Security::TopSecret), Const::int(30))]);
        assert_eq!(t.try_resolve(&m), None);
    }
}
