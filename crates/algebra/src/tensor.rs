//! The tensor product `K ⊗ M` (paper §2.3).
//!
//! Aggregating a `K`-annotated relation over a monoid `M` cannot stay inside
//! `M`: the paper embeds `M` into the `K`-semimodule `K ⊗ M`, whose elements
//! are (congruence classes of) formal sums `k₁⊗m₁ + … + kₙ⊗mₙ`. The value
//! of `SUM(Sal)` over Example 3.4's relation is the *expression*
//! `r₁⊗20 + r₂⊗10 + r₃⊗30` — linear in the input, capturing every possible
//! aggregation result for every valuation of the tokens.
//!
//! ## Normal form
//!
//! A [`Tensor`] keeps terms sorted by monoid element with equal elements
//! merged by `+_K`, zero coefficients dropped, and `k⊗0_M` terms dropped —
//! all identifications licensed by the congruence of §2.3. Structural
//! equality is therefore *sound* for tensor equality (equal normal forms ⇒
//! congruent) but not complete in general: e.g. `x⊗50` and `x⊗20 + x⊗30`
//! are congruent yet distinct normal forms. Completeness is recovered
//! exactly where the paper needs it (axiom (*) of §4.2): when `(K, M)` are
//! *compatible* and all coefficients are ground, [`Tensor::try_resolve`]
//! canonicalizes to `ι(m)` and equality becomes decidable.

use crate::monoid::CommutativeMonoid;
use crate::semimodule::Semimodule;
use crate::semiring::{compatible, CommutativeSemiring};
use std::collections::BTreeMap;
use std::fmt;

/// An element of `K ⊗ M` in normal form. `E` is the monoid element type
/// (`M::Elem` for the monoid instance `M` supplied to the operations).
///
/// ```
/// use aggprov_algebra::domain::Const;
/// use aggprov_algebra::monoid::MonoidKind;
/// use aggprov_algebra::poly::NatPoly;
/// use aggprov_algebra::tensor::Tensor;
///
/// // Example 3.4: the SUM aggregate r1⊗20 + r2⊗10 + r3⊗30.
/// let sum = MonoidKind::Sum;
/// let t = Tensor::<NatPoly, Const>::from_terms(
///     &sum,
///     [
///         (NatPoly::token("r1"), Const::int(20)),
///         (NatPoly::token("r2"), Const::int(10)),
///         (NatPoly::token("r3"), Const::int(30)),
///     ],
/// );
/// assert_eq!(t.len(), 3);
/// // Valuate r1 ↦ 1, r2 ↦ 0, r3 ↦ 2 and read the result back off:
/// use aggprov_algebra::hom::Valuation;
/// use aggprov_algebra::semiring::Nat;
/// let v = Valuation::<Nat>::ones().set("r2", Nat(0)).set("r3", Nat(2));
/// let ground = t.map_coeffs(&sum, &mut |p| v.eval(p));
/// assert_eq!(ground.try_resolve(&sum), Some(Const::int(80)));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tensor<K, E: Ord> {
    /// `(coefficient, element)` pairs: sorted by element, elements unique,
    /// no zero coefficients, no `0_M` elements.
    terms: Vec<(K, E)>,
}

impl<K: CommutativeSemiring, E: Ord + Clone + std::hash::Hash + fmt::Debug> Tensor<K, E> {
    /// The zero tensor `0_{K⊗M}` (the empty sum).
    pub fn zero() -> Self {
        Tensor { terms: Vec::new() }
    }

    /// The simple tensor `k ⊗ m`, normalized.
    pub fn simple<M>(m: &M, k: K, elem: E) -> Self
    where
        M: CommutativeMonoid<Elem = E>,
    {
        Self::from_terms(m, [(k, elem)])
    }

    /// The embedding `ι(m) = 1_K ⊗ m` of the monoid into `K ⊗ M`.
    pub fn iota<M>(m: &M, elem: E) -> Self
    where
        M: CommutativeMonoid<Elem = E>,
    {
        Self::simple(m, K::one(), elem)
    }

    /// Builds a tensor from arbitrary `(k, m)` pairs, normalizing.
    ///
    /// This is exactly the content of `AGG_M(R)` in §3.2: for a relation
    /// with support `{m₁, …, mₙ}` and annotations `kᵢ = R(mᵢ)`, the
    /// aggregate value is `Σ kᵢ ⊗ mᵢ`.
    pub fn from_terms<M>(m: &M, terms: impl IntoIterator<Item = (K, E)>) -> Self
    where
        M: CommutativeMonoid<Elem = E>,
    {
        let zero_m = m.zero();
        let idem = m.is_idempotent();
        let mut map: BTreeMap<E, K> = BTreeMap::new();
        for (k, e) in terms {
            if k.is_zero() || e == zero_m {
                continue;
            }
            match map.entry(e) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(k);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let sum = slot.get().plus(&k);
                    if sum.is_zero() {
                        slot.remove();
                    } else {
                        *slot.get_mut() = sum;
                    }
                }
            }
        }
        let terms = map
            .into_iter()
            .filter_map(|(e, k)| {
                // Coefficients of idempotent elements are canonical only up
                // to k ~ k+k (see CommutativeSemiring::idem_normal).
                let k = if idem { k.idem_normal() } else { k };
                (!k.is_zero()).then_some((k, e))
            })
            .collect();
        Tensor { terms }
    }

    /// True iff this is the zero tensor.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The number of simple-tensor summands (the representation size that
    /// the poly-size-overhead experiments measure).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True iff the tensor has no terms (same as [`Tensor::is_zero`]).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(coefficient, element)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (&K, &E)> {
        self.terms.iter().map(|(k, e)| (k, e))
    }

    /// Tensor addition `+_{K⊗M}` (bag union of simple tensors, normalized).
    pub fn add<M>(&self, other: &Self, m: &M) -> Self
    where
        M: CommutativeMonoid<Elem = E>,
    {
        Self::from_terms(m, self.terms.iter().chain(other.terms.iter()).cloned())
    }

    /// Scalar multiplication `k ∗ Σ kᵢ⊗mᵢ = Σ (k·kᵢ)⊗mᵢ`, renormalized.
    pub fn scale<M>(&self, k: &K, m: &M) -> Self
    where
        M: CommutativeMonoid<Elem = E>,
    {
        if k.is_zero() {
            return Self::zero();
        }
        Self::from_terms(m, self.terms.iter().map(|(ki, e)| (k.times(ki), e.clone())))
    }

    /// The lifted homomorphism `h^M(Σ kᵢ⊗mᵢ) = Σ h(kᵢ)⊗mᵢ` (paper §2.3),
    /// renormalized in the target.
    pub fn map_coeffs<K2, M>(&self, m: &M, h: &mut impl FnMut(&K) -> K2) -> Tensor<K2, E>
    where
        K2: CommutativeSemiring,
        M: CommutativeMonoid<Elem = E>,
    {
        Tensor::from_terms(m, self.terms.iter().map(|(k, e)| (h(k), e.clone())))
    }

    /// Reads the tensor back as a monoid element through `ι⁻¹`, when sound:
    /// requires `(K, M)` compatible (Definition 3.10 via Theorems 3.12/3.13)
    /// and every coefficient ground (`kᵢ = nᵢ·1_K`). Returns
    /// `Σ_M nᵢ·mᵢ`; the empty tensor resolves to `0_M`.
    ///
    /// `None` means the tensor genuinely denotes multiple possible results
    /// (symbolic coefficients) or the pair is incompatible (`ι` not
    /// injective, e.g. `B ⊗ SUM` where `ι(2) = ι(4)`, §3.4).
    pub fn try_resolve<M>(&self, m: &M) -> Option<E>
    where
        M: CommutativeMonoid<Elem = E>,
    {
        if !compatible::<K, M>(m) {
            return None;
        }
        let mut acc = m.zero();
        for (k, e) in &self.terms {
            let n = k.as_nat()?;
            acc = m.plus(&acc, &m.nfold(n, e));
        }
        Some(acc)
    }

    /// Simplifies by merging terms with *equal coefficients*:
    /// `k⊗m₁ + k⊗m₂ ⇝ k⊗(m₁ +_M m₂)` — the identification used in
    /// Example 3.5 (`S⊗20 + S⊗30 = S⊗(20 max 30)`). Sound by the congruence;
    /// the result is re-normalized. This trades term count for possibly
    /// losing the per-element grouping, so it is exposed as an explicit
    /// operation (and benchmarked as an ablation) rather than folded into
    /// the normal form.
    pub fn merge_by_coeff<M>(&self, m: &M) -> Self
    where
        M: CommutativeMonoid<Elem = E>,
    {
        let mut by_coeff: BTreeMap<K, E> = BTreeMap::new();
        for (k, e) in &self.terms {
            match by_coeff.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(e.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let sum = m.plus(slot.get(), e);
                    *slot.get_mut() = sum;
                }
            }
        }
        Self::from_terms(m, by_coeff)
    }
}

impl<K, E> fmt::Display for Tensor<K, E>
where
    K: CommutativeSemiring,
    E: Ord + fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0⊗");
        }
        for (i, (k, e)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if k.is_one() {
                write!(f, "1⊗{e}")?;
            } else {
                write!(f, "({k})⊗{e}")?;
            }
        }
        Ok(())
    }
}

/// The `K`-semimodule structure of `K ⊗ M` for a monoid instance `M`
/// (Proposition B.1).
#[derive(Clone, Copy, Debug)]
pub struct TensorModule<M>(pub M);

impl<K, M> Semimodule<K> for TensorModule<M>
where
    K: CommutativeSemiring,
    M: CommutativeMonoid,
{
    type Vector = Tensor<K, M::Elem>;

    fn zero(&self) -> Self::Vector {
        Tensor::zero()
    }

    fn add(&self, a: &Self::Vector, b: &Self::Vector) -> Self::Vector {
        a.add(b, &self.0)
    }

    fn scale(&self, k: &K, v: &Self::Vector) -> Self::Vector {
        v.scale(k, &self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Const;
    use crate::laws::check_semimodule;
    use crate::monoid::{MonoidKind, MultisetMonoid};
    use crate::poly::NatPoly;
    use crate::semiring::{Bool, Nat, Security};

    fn n(v: i64) -> Const {
        Const::int(v)
    }

    type NT = Tensor<Nat, Const>;
    type PT = Tensor<NatPoly, Const>;

    #[test]
    fn example_3_4_sum_aggregation() {
        // AGG_SUM over {20↦r1, 10↦r2, 30↦r3}: r1⊗20 + r2⊗10 + r3⊗30.
        let m = MonoidKind::Sum;
        let t = PT::from_terms(
            &m,
            [
                (NatPoly::token("r1"), n(20)),
                (NatPoly::token("r2"), n(10)),
                (NatPoly::token("r3"), n(30)),
            ],
        );
        assert_eq!(t.len(), 3);
        // Valuate r1↦1, r2↦0, r3↦2 (paper: result 80).
        let v = t.map_coeffs(&m, &mut |p| {
            crate::hom::Valuation::<Nat>::ones()
                .set("r1", Nat(1))
                .set("r2", Nat(0))
                .set("r3", Nat(2))
                .eval(p)
        });
        assert_eq!(v.try_resolve(&m), Some(n(80)));
    }

    #[test]
    fn example_3_4_deletion_propagation() {
        // Delete the first tuple (r1 ↦ 0): remaining 2⊗30 resolves to 60.
        let m = MonoidKind::Sum;
        let t = NT::from_terms(&m, [(Nat(0), n(20)), (Nat(2), n(30))]);
        assert_eq!(t.len(), 1, "zero-annotated term dropped");
        assert_eq!(t.try_resolve(&m), Some(n(60)));
    }

    #[test]
    fn example_3_5_security_max() {
        // S⊗20 + 1s⊗10 + S⊗30 over MAX; merging by coefficient gives
        // S⊗30 + 1s⊗10 (paper: S⊗(20 max 30) + 1s⊗10).
        let m = MonoidKind::Max;
        let t = Tensor::<Security, Const>::from_terms(
            &m,
            [
                (Security::Secret, n(20)),
                (Security::Public, n(10)),
                (Security::Secret, n(30)),
            ],
        );
        let merged = t.merge_by_coeff(&m);
        assert_eq!(merged.len(), 2);
        // Unresolvable while the S coefficient is symbolic for ι.
        assert_eq!(merged.try_resolve(&m), None);

        // User with credentials C: S ↦ 0, 1s ↦ 1 — result 1⊗10.
        let for_c = merged.map_coeffs(&m, &mut |s| {
            if s.visible_to(Security::Confidential) {
                Security::Public
            } else {
                Security::Never
            }
        });
        assert_eq!(for_c.try_resolve(&m), Some(n(10)));

        // User with credentials S: both visible — result 1⊗30.
        let for_s = merged.map_coeffs(&m, &mut |s| {
            if s.visible_to(Security::Secret) {
                Security::Public
            } else {
                Security::Never
            }
        });
        assert_eq!(for_s.try_resolve(&m), Some(n(30)));
    }

    #[test]
    fn normal_form_merges_equal_elements() {
        let m = MonoidKind::Sum;
        let t = NT::from_terms(&m, [(Nat(1), n(30)), (Nat(1), n(30))]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.try_resolve(&m), Some(n(60))); // (1+1)⊗30 = 2⊗30 → 60
    }

    #[test]
    fn zero_monoid_elements_are_dropped() {
        let m = MonoidKind::Sum;
        let t = NT::from_terms(&m, [(Nat(5), n(0)), (Nat(2), n(7))]);
        assert_eq!(t.len(), 1, "k⊗0_M ~ 0");
        assert_eq!(t.try_resolve(&m), Some(n(14)));
    }

    #[test]
    fn empty_tensor_resolves_to_monoid_zero() {
        let m = MonoidKind::Sum;
        assert_eq!(NT::zero().try_resolve(&m), Some(n(0)));
        assert_eq!(
            NT::zero().try_resolve(&MonoidKind::Min),
            Some(Const::Num(crate::num::Num::PosInf))
        );
    }

    #[test]
    fn bool_sum_incompatibility() {
        // §3.4: ι : SUM → B⊗SUM is not injective (ι(4) "=" ι(2)); resolution
        // must refuse.
        let m = MonoidKind::Sum;
        let t = Tensor::<Bool, Const>::from_terms(&m, [(Bool(true), n(2))]);
        assert_eq!(t.try_resolve(&m), None);
        // But B ⊗ MAX is fine (sets + MAX).
        let t = Tensor::<Bool, Const>::from_terms(
            &MonoidKind::Max,
            [(Bool(true), n(2)), (Bool(true), n(9))],
        );
        assert_eq!(t.try_resolve(&MonoidKind::Max), Some(n(9)));
    }

    #[test]
    fn symbolic_coefficients_do_not_resolve() {
        let m = MonoidKind::Sum;
        let t = PT::from_terms(&m, [(NatPoly::token("x"), n(5))]);
        assert_eq!(t.try_resolve(&m), None);
        // Ground polynomial coefficients do resolve (ℕ[X] ⊆ compatible).
        let t = PT::from_terms(&m, [(NatPoly::from_nat(3), n(5))]);
        assert_eq!(t.try_resolve(&m), Some(n(15)));
    }

    #[test]
    fn prod_resolution_uses_exponentiation() {
        let m = MonoidKind::Prod;
        let t = NT::from_terms(&m, [(Nat(3), n(2)), (Nat(1), n(5))]);
        // 2³ · 5 = 40.
        assert_eq!(t.try_resolve(&m), Some(n(40)));
    }

    #[test]
    fn tensor_is_a_semimodule() {
        let module = TensorModule(MonoidKind::Sum);
        let m = MonoidKind::Sum;
        let v1 = PT::from_terms(
            &m,
            [(NatPoly::token("x"), n(5)), (NatPoly::token("y"), n(7))],
        );
        let v2 = PT::from_terms(
            &m,
            [(NatPoly::token("x"), n(5)), (NatPoly::from_nat(2), n(1))],
        );
        for k1 in [NatPoly::zero(), NatPoly::one(), NatPoly::token("z")] {
            for k2 in [NatPoly::one(), NatPoly::token("x")] {
                check_semimodule(&module, &k1, &k2, &v1, &v2).unwrap();
            }
        }
    }

    #[test]
    fn free_monoid_normal_form_is_exact() {
        // Over the free commutative monoid no cross-element identifications
        // exist, so distinct multisets stay distinct terms.
        let m = MultisetMonoid;
        let a = std::collections::BTreeMap::from([(1u8, 1u64)]);
        let b = std::collections::BTreeMap::from([(2u8, 1u64)]);
        let t = Tensor::<Nat, _>::from_terms(&m, [(Nat(1), a.clone()), (Nat(1), b.clone())]);
        assert_eq!(t.len(), 2);
        let merged = t.merge_by_coeff(&m);
        // Equal coefficients merge into the multiset union.
        assert_eq!(merged.len(), 1);
        assert_eq!(
            merged.terms().next().unwrap().1,
            &std::collections::BTreeMap::from([(1u8, 1u64), (2, 1)])
        );
    }

    #[test]
    fn display_matches_paper_style() {
        let m = MonoidKind::Sum;
        let t = PT::from_terms(
            &m,
            [(NatPoly::token("r2"), n(10)), (NatPoly::token("r1"), n(20))],
        );
        assert_eq!(t.to_string(), "(r2)⊗10 + (r1)⊗20");
    }
}
