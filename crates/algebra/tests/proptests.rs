//! Property-based law suites for the algebra crate.
//!
//! Randomized counterparts of the exhaustive unit tests: semiring, monoid,
//! semimodule, δ and homomorphism laws over randomly generated elements of
//! every structure, plus the tensor-specific congruence properties.

use aggprov_algebra::domain::Const;
use aggprov_algebra::hierarchy::{to_bool_poly, to_lineage, to_posbool, to_trio, to_why, PosBool};
use aggprov_algebra::hom::{FnHom, Valuation};
use aggprov_algebra::laws::{
    check_delta, check_hom, check_monoid, check_nat_embedding, check_semimodule, check_semiring,
};
use aggprov_algebra::monoid::{CommutativeMonoid, MonoidKind};
use aggprov_algebra::num::{Num, Rational};
use aggprov_algebra::poly::{Monomial, NatPoly, Poly, Var};
use aggprov_algebra::semiring::{
    Bool, CommutativeSemiring, IntZ, Nat, Security, Tropical, Viterbi,
};
use aggprov_algebra::sn::Sn;
use aggprov_algebra::tensor::{Tensor, TensorModule};
use proptest::prelude::*;

const VARS: [&str; 4] = ["x", "y", "z", "w"];

fn arb_var() -> impl Strategy<Value = Var> {
    prop::sample::select(VARS.to_vec()).prop_map(Var::new)
}

fn arb_monomial() -> impl Strategy<Value = Monomial<Var>> {
    prop::collection::vec((arb_var(), 1u32..3), 0..3).prop_map(Monomial::from_pairs)
}

fn arb_natpoly() -> impl Strategy<Value = NatPoly> {
    prop::collection::vec((arb_monomial(), 0u64..4), 0..4)
        .prop_map(|ts| Poly::from_terms(ts.into_iter().map(|(m, c)| (m, Nat(c)))))
}

fn arb_security() -> impl Strategy<Value = Security> {
    prop::sample::select(Security::ALL.to_vec())
}

fn arb_sn() -> impl Strategy<Value = Sn> {
    (0u64..4, 0u64..4, 0u64..4, 0u64..4).prop_map(|(p, c, s, t)| Sn {
        public: p,
        confidential: c,
        secret: s,
        top_secret: t,
    })
}

fn arb_tropical() -> impl Strategy<Value = Tropical> {
    prop_oneof![Just(Tropical::Inf), (0u64..50).prop_map(Tropical::Fin)]
}

fn arb_viterbi() -> impl Strategy<Value = Viterbi> {
    (0i64..=4, 1i64..=4).prop_map(|(n, d)| {
        if n > d {
            Viterbi::ratio(d, n)
        } else {
            Viterbi::ratio(n, d)
        }
    })
}

fn arb_rational() -> impl Strategy<Value = Rational> {
    (-50i64..50, 1i64..10).prop_map(|(n, d)| Rational::new(n, d))
}

fn arb_num() -> impl Strategy<Value = Num> {
    arb_rational().prop_map(Num::Rat)
}

fn arb_sum_tensor() -> impl Strategy<Value = Tensor<NatPoly, Const>> {
    prop::collection::vec((arb_natpoly(), -30i64..30), 0..4).prop_map(|ts| {
        Tensor::from_terms(
            &MonoidKind::Sum,
            ts.into_iter().map(|(k, v)| (k, Const::int(v))),
        )
    })
}

proptest! {
    // ---------------------------------------------------------------- laws

    #[test]
    fn natpoly_semiring_laws(a in arb_natpoly(), b in arb_natpoly(), c in arb_natpoly()) {
        check_semiring(&a, &b, &c).unwrap();
        check_nat_embedding(&a, 7).unwrap();
    }

    #[test]
    fn sn_semiring_laws(a in arb_sn(), b in arb_sn(), c in arb_sn()) {
        check_semiring(&a, &b, &c).unwrap();
        check_nat_embedding(&a, 7).unwrap();
        check_delta(&a, 3).unwrap();
    }

    #[test]
    fn hierarchy_semiring_laws(a in arb_natpoly(), b in arb_natpoly(), c in arb_natpoly()) {
        check_semiring(&to_trio(&a), &to_trio(&b), &to_trio(&c)).unwrap();
        check_semiring(&to_why(&a), &to_why(&b), &to_why(&c)).unwrap();
        check_semiring(&to_posbool(&a), &to_posbool(&b), &to_posbool(&c)).unwrap();
        check_semiring(&to_lineage(&a), &to_lineage(&b), &to_lineage(&c)).unwrap();
        check_semiring(&to_bool_poly(&a), &to_bool_poly(&b), &to_bool_poly(&c)).unwrap();
    }

    #[test]
    fn scalar_semiring_laws(
        a in arb_tropical(), b in arb_tropical(), c in arb_tropical(),
        va in arb_viterbi(), vb in arb_viterbi(), vc in arb_viterbi(),
        sa in arb_security(), sb in arb_security(), sc in arb_security(),
        za in -20i64..20, zb in -20i64..20, zc in -20i64..20,
    ) {
        check_semiring(&a, &b, &c).unwrap();
        check_semiring(&va, &vb, &vc).unwrap();
        check_semiring(&sa, &sb, &sc).unwrap();
        check_semiring(&IntZ(za), &IntZ(zb), &IntZ(zc)).unwrap();
    }

    #[test]
    fn numeric_monoid_laws(a in arb_num(), b in arb_num(), c in arb_num()) {
        for kind in [MonoidKind::Sum, MonoidKind::Min, MonoidKind::Max, MonoidKind::Prod] {
            check_monoid(&kind, &Const::Num(a), &Const::Num(b), &Const::Num(c)).unwrap();
        }
    }

    // ------------------------------------------------------ homomorphisms

    #[test]
    fn valuations_are_homomorphisms(
        a in arb_natpoly(),
        b in arb_natpoly(),
        vx in 0u64..4, vy in 0u64..4, vz in 0u64..4, vw in 0u64..4,
    ) {
        let val = Valuation::ones()
            .set("x", Nat(vx)).set("y", Nat(vy)).set("z", Nat(vz)).set("w", Nat(vw));
        check_hom(&val, &a, &b).unwrap();

        // The same valuation read in B (support).
        let bval = Valuation::ones()
            .set("x", Bool(vx > 0)).set("y", Bool(vy > 0))
            .set("z", Bool(vz > 0)).set("w", Bool(vw > 0));
        check_hom(&bval, &a, &b).unwrap();
    }

    #[test]
    fn factorization_through_nat_poly(
        a in arb_natpoly(),
        vx in 0u64..4, vy in 0u64..4, vz in 0u64..4, vw in 0u64..4,
    ) {
        // Evaluating in ℕ then dropping to B equals evaluating in B:
        // the factorization property of the free semiring.
        let nat_val = Valuation::ones()
            .set("x", Nat(vx)).set("y", Nat(vy)).set("z", Nat(vz)).set("w", Nat(vw));
        let bool_val = Valuation::ones()
            .set("x", Bool(vx > 0)).set("y", Bool(vy > 0))
            .set("z", Bool(vz > 0)).set("w", Bool(vw > 0));
        let via_nat = Bool(nat_val.eval(&a).0 > 0);
        prop_assert_eq!(via_nat, bool_val.eval(&a));
    }

    #[test]
    fn hierarchy_maps_are_homs(a in arb_natpoly(), b in arb_natpoly()) {
        check_hom(&FnHom(to_bool_poly), &a, &b).unwrap();
        check_hom(&FnHom(to_trio), &a, &b).unwrap();
        check_hom(&FnHom(to_why), &a, &b).unwrap();
        check_hom(&FnHom(to_posbool), &a, &b).unwrap();
        check_hom(&FnHom(to_lineage), &a, &b).unwrap();
    }

    #[test]
    fn sn_total_count_is_hom(a in arb_sn(), b in arb_sn()) {
        check_hom(&FnHom(|x: &Sn| Nat(x.total_count())), &a, &b).unwrap();
    }

    #[test]
    fn hierarchy_commutes_with_posbool_via_why(a in arb_natpoly()) {
        // ℕ[X] → Why(X) → PosBool(X) equals ℕ[X] → PosBool(X).
        let via_why = {
            let w = to_why(&a);
            w.witnesses().iter().fold(PosBool::zero(), |acc, ws| {
                let conj = ws.iter().fold(PosBool::one(), |c, v| {
                    c.times(&PosBool::token(v.name()))
                });
                acc.plus(&conj)
            })
        };
        prop_assert_eq!(via_why, to_posbool(&a));
    }

    // ------------------------------------------------------------- tensors

    #[test]
    fn tensor_semimodule_laws(
        v1 in arb_sum_tensor(), v2 in arb_sum_tensor(),
        k1 in arb_natpoly(), k2 in arb_natpoly(),
    ) {
        let module = TensorModule(MonoidKind::Sum);
        check_semimodule(&module, &k1, &k2, &v1, &v2).unwrap();
    }

    #[test]
    fn lifted_hom_is_linear(
        v1 in arb_sum_tensor(), v2 in arb_sum_tensor(), k in arb_natpoly(),
        vx in 0u64..3, vy in 0u64..3, vz in 0u64..3, vw in 0u64..3,
    ) {
        // h^M(a + b) = h^M(a) + h^M(b) and h^M(k ∗ a) = h(k) ∗ h^M(a):
        // the lifted map is a homomorphism of K-semimodules (Prop. B.2).
        let m = MonoidKind::Sum;
        let val = Valuation::ones()
            .set("x", Nat(vx)).set("y", Nat(vy)).set("z", Nat(vz)).set("w", Nat(vw));
        let mut h = |p: &NatPoly| val.eval(p);
        let lhs = v1.add(&v2, &m).map_coeffs(&m, &mut h);
        let rhs = v1.map_coeffs(&m, &mut h).add(&v2.map_coeffs(&m, &mut h), &m);
        prop_assert_eq!(lhs, rhs);

        let lhs = v1.scale(&k, &m).map_coeffs(&m, &mut h);
        let rhs = v1.map_coeffs(&m, &mut h).scale(&val.eval(&k), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn resolution_commutes_with_merge_by_coeff(v in arb_sum_tensor(),
        vx in 0u64..3, vy in 0u64..3, vz in 0u64..3, vw in 0u64..3,
    ) {
        // merge_by_coeff is congruence-sound: resolving before and after
        // merging gives the same ℕ⊗SUM read-off.
        let m = MonoidKind::Sum;
        let val = Valuation::ones()
            .set("x", Nat(vx)).set("y", Nat(vy)).set("z", Nat(vz)).set("w", Nat(vw));
        let ground = v.map_coeffs(&m, &mut |p| val.eval(p));
        let a = ground.try_resolve(&m);
        let b = ground.merge_by_coeff(&m).try_resolve(&m);
        prop_assert!(a.is_some(), "ground ℕ tensors always resolve");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn resolution_is_set_agg(entries in prop::collection::vec((0u64..5, -20i64..20), 0..5)) {
        // For ground ℕ coefficients, try_resolve equals the plain weighted
        // sum — the set/bag compatibility of §3.4 at the tensor level.
        let m = MonoidKind::Sum;
        let t = Tensor::<Nat, Const>::from_terms(
            &m,
            entries.iter().map(|(k, v)| (Nat(*k), Const::int(*v))),
        );
        let expected: i64 = entries.iter().map(|(k, v)| *k as i64 * *v).sum();
        prop_assert_eq!(t.try_resolve(&m), Some(Const::int(expected)));
    }

    #[test]
    fn idempotent_resolution_is_plain_fold(entries in prop::collection::vec((any::<bool>(), -20i64..20), 0..5)) {
        // B ⊗ MAX: resolution is max over present elements.
        let m = MonoidKind::Max;
        let t = Tensor::<Bool, Const>::from_terms(
            &m,
            entries.iter().map(|(k, v)| (Bool(*k), Const::int(*v))),
        );
        let expected = entries
            .iter()
            .filter(|(k, _)| *k)
            .map(|(_, v)| Const::int(*v))
            .fold(MonoidKind::Max.zero(), |a, b| MonoidKind::Max.plus(&a, &b));
        prop_assert_eq!(t.try_resolve(&m), Some(expected));
    }

    // ------------------------------------------------------------- numbers

    #[test]
    fn rational_field_laws(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Rational::ZERO, a);
        prop_assert_eq!(a * Rational::ONE, a);
        prop_assert_eq!(a - a, Rational::ZERO);
        if b != Rational::ZERO {
            prop_assert_eq!((a / b) * b, a);
        }
    }

    #[test]
    fn rational_order_respects_addition(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        if a < b {
            prop_assert!(a + c < b + c);
        }
    }

    #[test]
    fn num_parse_roundtrip(n in -1000i64..1000, d in 1i64..60) {
        let x = Num::ratio(n, d);
        let parsed = Num::parse(&x.to_string()).unwrap();
        prop_assert_eq!(parsed, x);
    }
}
