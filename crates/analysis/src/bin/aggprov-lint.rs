//! `aggprov-lint` — the workspace invariant linter.
//!
//! Usage: `cargo run -p analysis --bin aggprov-lint -- --workspace`
//! (run from anywhere inside the repository; `--root <dir>` overrides
//! discovery). Prints `path:line: [rule] message` per finding, sorted,
//! and exits nonzero if any remain after waivers. With `--json`, prints
//! one JSON object (`findings`, `waived`, `counts`) instead — same exit
//! code contract, nothing else on stdout.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::json::render;
use analysis::rules::run_report;
use analysis::walk::{find_root, load_workspace};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {}
            "--json" => json = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "aggprov-lint: project-invariant static analysis\n\n\
                     USAGE: aggprov-lint [--workspace] [--json] [--root <dir>]\n\n\
                     Rules: groundness, panic, index, lock, lock-order, dispatch,\n\
                     \x20       oracle, wire, env, waiver\n\
                     Waive a finding with: // lint:allow(<rule>, reason = \"...\")\n\
                     --json emits {{\"findings\": [...], \"waived\": [...], \"counts\": ...}}"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("aggprov-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("aggprov-lint: no workspace root found (pass --root <dir>)");
            return ExitCode::from(2);
        }
    };
    let ws = load_workspace(&root);
    let report = run_report(&ws);
    if json {
        println!("{}", render(&report));
    } else {
        for d in &report.findings {
            println!("{d}");
        }
    }
    if report.findings.is_empty() {
        eprintln!(
            "aggprov-lint: clean ({} files, 10 rule kinds, 0 findings, {} waived)",
            ws.files.len(),
            report.waived.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("aggprov-lint: {} finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}
