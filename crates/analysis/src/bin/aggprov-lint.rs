//! `aggprov-lint` — the workspace invariant linter.
//!
//! Usage: `cargo run -p analysis --bin aggprov-lint -- --workspace`
//! (run from anywhere inside the repository; `--root <dir>` overrides
//! discovery). Prints `path:line: [rule] message` per finding, sorted,
//! and exits nonzero if any remain after waivers.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::rules::run_all;
use analysis::walk::{find_root, load_workspace};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {}
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "aggprov-lint: project-invariant static analysis\n\n\
                     USAGE: aggprov-lint [--workspace] [--root <dir>]\n\n\
                     Rules: groundness, panic, index, lock, oracle, env, waiver\n\
                     Waive a finding with: // lint:allow(<rule>, reason = \"...\")"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("aggprov-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("aggprov-lint: no workspace root found (pass --root <dir>)");
            return ExitCode::from(2);
        }
    };
    let ws = load_workspace(&root);
    let diags = run_all(&ws);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "aggprov-lint: clean ({} files, 7 rule kinds, 0 findings)",
            ws.files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("aggprov-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
