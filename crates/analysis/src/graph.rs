//! Phase 1: the workspace **symbol graph**.
//!
//! One pass over every scanned file builds the whole-program facts the
//! graph-aware rules (phase 2) consume:
//!
//! - every function item with its body span and declaration line;
//! - an approximate **call graph** from name resolution: a `name(` or
//!   `.name(` call site resolves to a workspace function iff exactly one
//!   workspace function bears that name (ambiguous names and std-library
//!   methods resolve to nothing — the analysis under-approximates rather
//!   than guesses);
//! - per-function **guard events**: each `.lock()` / `.read()` /
//!   `.write()` acquisition (empty argument lists — the `Mutex`/`RwLock`
//!   methods take none), each stream-I/O call, and each resolvable call,
//!   all annotated with the set of guards live at that point, using the
//!   same guard lifetime model as the intra-procedural `lock` rule
//!   (`let`-bound vs. temporary, `drop(guard)`, scope close);
//! - every `match` statement's **arm patterns**, pre-split so the
//!   `dispatch` rule can ask "which `Enum::Variant` patterns appear in
//!   the arms of matches inside function F of file P?";
//! - `enum` definitions with their variant names and lines.
//!
//! Approximation limits, by design (documented in
//! `docs/ARCHITECTURE.md`): no trait-object or closure resolution, no
//! generic instantiation, field-name-based lock identity (`self.db` and
//! `other.db` are the same lock "db" — in this workspace each lock field
//! name is used for exactly one lock). A bare `self.read()` with no
//! named field is treated as a *call* (the `PlanCache::read` wrapper
//! idiom), not an acquisition, so wrapper methods resolve through the
//! call graph to the real acquisition inside them.

use crate::lexer::{Tok, Token};
use crate::{SourceFile, Workspace};
use std::collections::BTreeMap;

/// Method names that perform (possibly blocking) stream I/O. Kept in
/// sync with the intra-procedural `lock` rule.
pub const IO_METHODS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "read_until",
    "flush",
];

/// True iff a `.name(` call is stream I/O: a known I/O method, or
/// `read`/`write` with a non-empty argument list.
pub fn is_io(name: &str, after_open: Option<&Tok>) -> bool {
    if IO_METHODS.contains(&name) {
        return true;
    }
    (name == "read" || name == "write") && !after_open.is_some_and(|t| t.is(b')'))
}

/// What happened at one point inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A guard acquisition on the named lock (the receiver's last field
    /// name).
    Acquire(String),
    /// A call that resolved to the named workspace function (unique-name
    /// resolution).
    Call(String),
    /// Direct stream I/O via the named method.
    Io(String),
}

/// One event, with the guards live immediately **before** it (so an
/// acquisition that is also a wrapper call does not order against
/// itself).
#[derive(Clone, Debug)]
pub struct Event {
    /// 1-based line of the event.
    pub line: u32,
    /// Lock names of guards live when the event fires, outermost first.
    pub live: Vec<String>,
    /// What the event is.
    pub kind: EventKind,
}

/// One `match` statement: the `Enum::Variant` paths appearing in its
/// arm *patterns* (guards included, bodies excluded).
#[derive(Clone, Debug, Default)]
pub struct MatchSite {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// `(enum_name, variant_name)` pairs found in arm patterns.
    pub arm_paths: Vec<(String, String)>,
    /// String-literal arm patterns (quotes stripped) with their lines —
    /// the wire-dispatch shape `"ping" => ...`.
    pub arm_strings: Vec<(String, u32)>,
    /// True iff some arm pattern is the wildcard `_` or a bare binding.
    pub has_wildcard: bool,
}

/// One function item in the workspace.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item lies under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
    /// Guard/call/I-O events in body order.
    pub events: Vec<Event>,
    /// `match` statements in the body.
    pub matches: Vec<MatchSite>,
}

/// An `enum` definition.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names with their declaration lines, in order.
    pub variants: Vec<(String, u32)>,
}

/// The phase-1 result: every function, enum and resolvable call edge in
/// the workspace.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// All function items, in file/offset order.
    pub fns: Vec<FnInfo>,
    /// Enum name → definition. First definition wins on (unlikely) name
    /// collisions.
    pub enums: BTreeMap<String, EnumDef>,
    /// Function name → indices into `fns` bearing it (resolution is only
    /// trusted when the list has exactly one entry).
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolGraph {
    /// Builds the symbol graph for a loaded workspace.
    pub fn build(ws: &Workspace) -> SymbolGraph {
        let mut g = SymbolGraph::default();
        for f in &ws.files {
            collect_enums(f, &mut g.enums);
            collect_fns(f, &mut g.fns);
        }
        for (i, f) in g.fns.iter().enumerate() {
            g.by_name.entry(f.name.clone()).or_default().push(i);
        }
        g
    }

    /// The index of the unique workspace function named `name`, if the
    /// name resolves unambiguously.
    pub fn resolve(&self, name: &str) -> Option<usize> {
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// The non-test functions named `name` defined in `path`.
    pub fn fns_in<'g>(&'g self, path: &str, name: &str) -> Vec<&'g FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.path == path && f.name == name && !f.in_test)
            .collect()
    }
}

/// Collects `enum` definitions (any visibility) from one file.
fn collect_enums(f: &SourceFile, out: &mut BTreeMap<String, EnumDef>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !toks[i].tok.is_ident("enum") || f.in_test(i) {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) else {
            continue;
        };
        // Body `{` after the name (skipping generics).
        let mut j = i + 2;
        while j < toks.len() && !toks[j].tok.is(b'{') && !toks[j].tok.is(b';') {
            j += 1;
        }
        let Some(&close) = f.matches.get(j).filter(|&&c| c != usize::MAX) else {
            continue;
        };
        let variants = enum_variants(f, j + 1, close);
        out.entry(name.to_string()).or_insert(EnumDef {
            path: f.path.clone(),
            line: toks[i].line,
            variants,
        });
    }
}

/// Parses variant names out of an enum body token range: the first
/// identifier of each top-level comma-separated segment, skipping
/// `#[...]` attributes and each variant's payload.
fn enum_variants(f: &SourceFile, start: usize, end: usize) -> Vec<(String, u32)> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut j = start;
    let mut want_name = true;
    while j < end {
        match &toks[j].tok {
            Tok::Punct(b'#') if toks.get(j + 1).is_some_and(|t| t.tok.is(b'[')) => {
                let c = f.matches[j + 1];
                j = if c == usize::MAX { j + 2 } else { c + 1 };
            }
            Tok::Punct(b'(' | b'{' | b'[') => {
                let c = f.matches[j];
                j = if c == usize::MAX { j + 1 } else { c + 1 };
            }
            Tok::Punct(b',') => {
                want_name = true;
                j += 1;
            }
            Tok::Ident(name) if want_name => {
                out.push((name.clone(), toks[j].line));
                want_name = false;
                j += 1;
            }
            _ => j += 1,
        }
    }
    out
}

/// Collects function items and walks each body for events and matches.
fn collect_fns(f: &SourceFile, out: &mut Vec<FnInfo>) {
    let toks = &f.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].tok.is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) else {
            i += 1;
            continue;
        };
        // Find the body `{` (trait method declarations end in `;`).
        let Some(open) = body_open(f, i + 2) else {
            i += 2;
            continue;
        };
        let close = f.matches[open];
        if close == usize::MAX {
            i += 2;
            continue;
        }
        let mut info = FnInfo {
            path: f.path.clone(),
            name: name.to_string(),
            line: toks[i].line,
            in_test: f.in_test(i),
            events: Vec::new(),
            matches: Vec::new(),
        };
        walk_body(f, open, close, &mut info);
        out.push(info);
        // Nested fns are rare and benign to re-walk; skip the whole body
        // so inner closures' tokens aren't scanned twice at top level.
        i = close + 1;
    }
}

/// Skips a fn signature from just after the name to its body `{`.
/// `None` when the item has no body. Brackets inside the signature
/// (parameter lists, slices, parenthesized types) are jumped via the
/// match map so a `{` inside a default-expression cannot mislead.
fn body_open(f: &SourceFile, mut j: usize) -> Option<usize> {
    let toks = &f.tokens;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct(b'{') if angle == 0 => return Some(j),
            Tok::Punct(b';') if angle == 0 => return None,
            Tok::Punct(b'<') => angle += 1,
            Tok::Punct(b'>') if angle > 0 && !toks[j - 1].tok.is(b'-') => angle -= 1,
            Tok::Punct(b'(' | b'[') => {
                let c = f.matches[j];
                if c != usize::MAX {
                    j = c;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// A live guard inside `walk_body`: its binding (if `let`-bound), the
/// lock name it holds, the brace depth of the acquisition, and whether
/// it is a temporary dropped at statement end.
struct Guard {
    binding: Option<String>,
    lock: String,
    depth: i32,
    temporary: bool,
}

/// Walks one fn body, recording acquisition/call/I-O events with live
/// guard sets, and collecting `match` sites. The guard lifetime model is
/// the intra-procedural `lock` rule's: scope close kills deeper guards,
/// `;` kills temporaries, `drop(name)` kills a named guard.
fn walk_body(f: &SourceFile, open: usize, close: usize, info: &mut FnInfo) {
    let toks = &f.tokens;
    let mut depth: i32 = 0;
    let mut live: Vec<Guard> = Vec::new();
    let mut stmt_start = open + 1;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        match &t.tok {
            Tok::Punct(b'{') => {
                depth += 1;
                stmt_start = i + 1;
            }
            Tok::Punct(b'}') => {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
            }
            Tok::Punct(b';') => {
                live.retain(|g| !(g.temporary && g.depth == depth));
                stmt_start = i + 1;
            }
            Tok::Ident(name)
                if name == "drop" && toks.get(i + 1).is_some_and(|n| n.tok.is(b'(')) =>
            {
                if let Some(arg) = toks.get(i + 2).and_then(|a| a.tok.ident()) {
                    live.retain(|g| g.binding.as_deref() != Some(arg));
                }
            }
            Tok::Ident(name) if name == "match" => {
                if let Some((site, after)) = parse_match(f, i, close) {
                    info.matches.push(site);
                    // Keep walking *inside* the match for events; only
                    // the site itself is recorded here, so no skip.
                    let _ = after;
                }
            }
            Tok::Ident(name) if toks.get(i + 1).is_some_and(|n| n.tok.is(b'(')) => {
                let method = i > 0 && toks[i - 1].tok.is(b'.');
                let empty_args = toks.get(i + 2).is_some_and(|n| n.tok.is(b')'));
                let snapshot = || live.iter().map(|g| g.lock.clone()).collect::<Vec<_>>();
                if method
                    && empty_args
                    && matches!(name.as_str(), "lock" | "read" | "write")
                    && receiver_field(toks, i).is_some()
                {
                    // `.lock()` / `.read()` / `.write()` on a named
                    // field: an acquisition.
                    let lock = receiver_field(toks, i).unwrap_or_default();
                    info.events.push(Event {
                        line: t.line,
                        live: snapshot(),
                        kind: EventKind::Acquire(lock.clone()),
                    });
                    live.push(Guard {
                        binding: let_binding(toks, stmt_start, i),
                        lock,
                        depth,
                        temporary: let_binding(toks, stmt_start, i).is_none(),
                    });
                } else if method && is_io(name, toks.get(i + 2).map(|n| &n.tok)) {
                    info.events.push(Event {
                        line: t.line,
                        live: snapshot(),
                        kind: EventKind::Io(name.clone()),
                    });
                } else if !(KEYWORD_CALLS.contains(&name.as_str())
                    || method && STD_METHODS.contains(&name.as_str()))
                {
                    // A plain or method call — the callee is recorded by
                    // name; rules resolve it through the graph. Method
                    // calls bearing well-known std names are dropped:
                    // `conn.shutdown(..)` is `TcpStream::shutdown`, and
                    // resolving it to a same-named workspace fn would
                    // fabricate edges.
                    info.events.push(Event {
                        line: t.line,
                        live: snapshot(),
                        kind: EventKind::Call(name.clone()),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Keywords and macro-like identifiers a `name(` sequence must not treat
/// as calls.
const KEYWORD_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "impl", "loop", "move", "drop",
];

/// Std method names whose `.name(` call sites never resolve to workspace
/// functions, even when a workspace fn happens to share the name
/// (`TcpStream::shutdown` vs. `Client::shutdown`, `JoinHandle::join` vs.
/// a join operator). Unique-name resolution is the approximation; this
/// list plugs its known collisions with the standard library.
const STD_METHODS: &[&str] = &[
    "shutdown", "join", "push", "pop", "insert", "remove", "get", "len", "clone", "drain", "iter",
    "send", "recv", "wait", "spawn", "take", "parse", "finish", "next", "collect", "extend",
];

/// The receiver's last field name for a `.method(` at token `i`: the
/// identifier before the `.`, unless it is `self` (a bare `self.read()`
/// is a wrapper *call*, not an acquisition on a named lock).
fn receiver_field(toks: &[Token], i: usize) -> Option<String> {
    if i < 2 || !toks[i - 1].tok.is(b'.') {
        return None;
    }
    let name = toks[i - 2].tok.ident()?;
    if name == "self" {
        return None;
    }
    Some(name.to_string())
}

/// If the statement beginning at `stmt_start` is `let [mut] NAME = ...`,
/// returns NAME.
fn let_binding(toks: &[Token], stmt_start: usize, before: usize) -> Option<String> {
    let mut j = stmt_start;
    while j < before && !toks[j].tok.is_ident("let") {
        j += 1;
    }
    if j >= before {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k).is_some_and(|t| t.tok.is_ident("mut")) {
        k += 1;
    }
    toks.get(k).and_then(|t| t.tok.ident()).map(str::to_string)
}

/// Parses the `match` at token `at`: finds the body `{`, splits arms at
/// top-level `=>`, and collects `Enum::Variant` paths and string
/// literals from the pattern (and guard) segments only — constructions
/// in arm *bodies* never count as handled variants. Returns the site and
/// the token index just past the match body.
fn parse_match(f: &SourceFile, at: usize, limit: usize) -> Option<(MatchSite, usize)> {
    let toks = &f.tokens;
    // Scrutinee runs to the first `{` at relative depth 0 (struct
    // literals are illegal in match scrutinees, same as `if`).
    let mut j = at + 1;
    while j < limit && !toks[j].tok.is(b'{') {
        if (toks[j].tok.is(b'(') || toks[j].tok.is(b'[')) && f.matches[j] != usize::MAX {
            j = f.matches[j];
        }
        j += 1;
    }
    if j >= limit {
        return None;
    }
    let body_open = j;
    let body_close = f.matches[body_open];
    if body_close == usize::MAX || body_close > limit {
        return None;
    }
    let mut site = MatchSite {
        line: toks[at].line,
        ..MatchSite::default()
    };
    let mut k = body_open + 1;
    while k < body_close {
        // Pattern (+ optional guard): tokens up to the arm's `=>`.
        let pat_start = k;
        let mut arrow = None;
        let mut p = k;
        while p < body_close {
            match &toks[p].tok {
                Tok::Punct(b'=') if toks.get(p + 1).is_some_and(|n| n.tok.is(b'>')) => {
                    arrow = Some(p);
                    break;
                }
                Tok::Punct(b'(' | b'[' | b'{') => {
                    let c = f.matches[p];
                    if c != usize::MAX && c < body_close {
                        p = c;
                    }
                }
                _ => {}
            }
            p += 1;
        }
        let Some(arrow) = arrow else { break };
        collect_arm_pattern(f, pat_start, arrow, &mut site);
        // Body: a brace block, or an expression up to the top-level `,`.
        let mut b = arrow + 2;
        if toks.get(b).is_some_and(|t| t.tok.is(b'{')) && f.matches[b] != usize::MAX {
            b = f.matches[b] + 1;
            if toks.get(b).is_some_and(|t| t.tok.is(b',')) {
                b += 1;
            }
        } else {
            while b < body_close && !toks[b].tok.is(b',') {
                if let Tok::Punct(b'(' | b'[' | b'{') = toks[b].tok {
                    let c = f.matches[b];
                    if c != usize::MAX && c < body_close {
                        b = c;
                    }
                }
                b += 1;
            }
            b += 1; // past the `,` (or the body close)
        }
        k = b;
    }
    Some((site, body_close + 1))
}

/// Collects `Enum::Variant` paths, string-literal patterns, and the
/// wildcard flag from one arm's pattern segment.
fn collect_arm_pattern(f: &SourceFile, start: usize, end: usize, site: &mut MatchSite) {
    let toks = &f.tokens;
    let mut saw_anything = false;
    for k in start..end {
        match &toks[k].tok {
            Tok::Ident(head)
                if head.starts_with(|c: char| c.is_ascii_uppercase())
                    && toks.get(k + 1).is_some_and(|t| t.tok.is(b':'))
                    && toks.get(k + 2).is_some_and(|t| t.tok.is(b':')) =>
            {
                if let Some(variant) = toks.get(k + 3).and_then(|t| t.tok.ident()) {
                    let pair = (head.clone(), variant.to_string());
                    if !site.arm_paths.contains(&pair) {
                        site.arm_paths.push(pair);
                    }
                }
                saw_anything = true;
            }
            Tok::Str(text) => {
                let stripped = text
                    .trim_start_matches(['b', 'r', '#'])
                    .trim_matches(['"', '#'])
                    .to_string();
                site.arm_strings.push((stripped, toks[k].line));
                saw_anything = true;
            }
            Tok::Ident(name) if name == "_" => {
                site.has_wildcard = true;
                saw_anything = true;
            }
            _ => {
                saw_anything = true;
            }
        }
    }
    // A pattern that is a single lowercase identifier is a catch-all
    // binding (`other => ...`).
    if end == start + 1 {
        if let Some(name) = toks[start].tok.ident() {
            if name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
                site.has_wildcard = true;
            }
        }
    }
    let _ = saw_anything;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn graph(files: Vec<(&str, &str)>) -> SymbolGraph {
        let ws = Workspace {
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p, s))
                .collect(),
            ..Workspace::default()
        };
        SymbolGraph::build(&ws)
    }

    #[test]
    fn fns_and_unique_resolution() {
        let g = graph(vec![
            ("a.rs", "fn alpha() { beta(); }\nfn beta() {}\n"),
            ("b.rs", "fn beta() {}\n"),
        ]);
        assert_eq!(g.fns.len(), 3);
        assert!(g.resolve("alpha").is_some());
        assert!(
            g.resolve("beta").is_none(),
            "ambiguous names must not resolve"
        );
        let alpha = &g.fns[g.resolve("alpha").unwrap()];
        assert_eq!(alpha.events.len(), 1);
        assert_eq!(alpha.events[0].kind, EventKind::Call("beta".into()));
    }

    #[test]
    fn acquisitions_record_live_sets_and_wrappers_are_calls() {
        let src = "\
impl S {
    fn read(&self) -> G { self.inner.read() }
    fn f(&self) {
        let db = self.db.write();
        let c = self.cache.lock();
        drop(c);
        drop(db);
        self.other.read();
    }
}
";
        let g = graph(vec![("x.rs", src)]);
        let read = &g.fns[g.resolve("read").unwrap()];
        // Inside the wrapper, the acquisition is on `inner` with nothing
        // live — and `self.read()` elsewhere is a call, not an acquire.
        assert_eq!(read.events[0].kind, EventKind::Acquire("inner".into()));
        assert!(read.events[0].live.is_empty());
        let f = &g.fns[g.resolve("f").unwrap()];
        let kinds: Vec<&EventKind> = f.events.iter().map(|e| &e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &EventKind::Acquire("db".into()),
                &EventKind::Acquire("cache".into()),
                &EventKind::Acquire("other".into()),
            ]
        );
        assert_eq!(f.events[1].live, vec!["db".to_string()]);
        assert!(f.events[2].live.is_empty(), "drops must clear the live set");
    }

    #[test]
    fn enums_and_match_arm_patterns() {
        let src = "\
pub enum Color { Red, Green(u8), Blue { x: u8 } }
fn paint(c: &Color) -> u8 {
    match c {
        Color::Red => 0,
        Color::Green(g) => make(Color::Blue { x: 1 }),
        other => 9,
    }
}
";
        let g = graph(vec![("x.rs", src)]);
        let def = &g.enums["Color"];
        let names: Vec<&str> = def.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Red", "Green", "Blue"]);
        let paint = &g.fns[g.resolve("paint").unwrap()];
        assert_eq!(paint.matches.len(), 1);
        let site = &paint.matches[0];
        // `Color::Blue` appears only in an arm *body* — not collected.
        assert_eq!(
            site.arm_paths,
            vec![
                ("Color".to_string(), "Red".to_string()),
                ("Color".to_string(), "Green".to_string()),
            ]
        );
        assert!(site.has_wildcard, "the catch-all binding must register");
    }

    #[test]
    fn string_arm_patterns_for_wire_dispatch() {
        let src = "\
fn dispatch(op: &str) -> u8 {
    match op {
        \"ping\" => 1,
        \"sql\" | \"query\" => 2,
        other => 0,
    }
}
";
        let g = graph(vec![("x.rs", src)]);
        let d = &g.fns[g.resolve("dispatch").unwrap()];
        let ops: Vec<&str> = d.matches[0]
            .arm_strings
            .iter()
            .map(|(s, _)| s.as_str())
            .collect();
        assert_eq!(ops, vec!["ping", "sql", "query"]);
    }

    #[test]
    fn io_events_and_guarded_calls() {
        let src = "\
fn f(&self, s: &mut TcpStream) {
    let g = self.conns.lock();
    helper();
    s.write_all(b\"x\");
}
fn helper() {}
";
        let g = graph(vec![("x.rs", src)]);
        let f = &g.fns[g.resolve("f").unwrap()];
        let call = f
            .events
            .iter()
            .find(|e| e.kind == EventKind::Call("helper".into()))
            .unwrap();
        assert_eq!(call.live, vec!["conns".to_string()]);
        let io = f
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Io(_)))
            .unwrap();
        assert_eq!(io.live, vec!["conns".to_string()]);
    }
}
