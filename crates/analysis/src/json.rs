//! Machine-readable lint output (`aggprov-lint --json`).
//!
//! Renders a [`crate::rules::LintReport`] as one JSON object:
//!
//! ```json
//! {
//!   "findings": [ {"rule": "...", "path": "...", "line": N,
//!                  "message": "...", "waived": false}, ... ],
//!   "waived":   [ ...same shape with "waived": true... ],
//!   "counts":   {"findings": N, "waived": N}
//! }
//! ```
//!
//! The escaping follows the same conventions as the server's vendored
//! JSON module (`crates/server/src/json.rs`): `"` `\\` and the three
//! whitespace escapes by name, all other control characters as
//! `\u00XX`, everything else verbatim. The round-trip test in
//! `tests/json_roundtrip.rs` parses this output with that very parser,
//! so the two dialects can't drift.

use crate::rules::LintReport;
use crate::Diagnostic;
use std::fmt::Write;

/// Renders the report as a single-object JSON document (no trailing
/// newline).
pub fn render(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\"findings\":[");
    for (i, d) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_diag(&mut out, d, false);
    }
    out.push_str("],\"waived\":[");
    for (i, d) in report.waived.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_diag(&mut out, d, true);
    }
    let _ = write!(
        out,
        "],\"counts\":{{\"findings\":{},\"waived\":{}}}}}",
        report.findings.len(),
        report.waived.len()
    );
    out
}

fn push_diag(out: &mut String, d: &Diagnostic, waived: bool) {
    out.push_str("{\"rule\":");
    push_escaped(out, d.rule);
    out.push_str(",\"path\":");
    push_escaped(out, &d.path);
    let _ = write!(out, ",\"line\":{}", d.line);
    out.push_str(",\"message\":");
    push_escaped(out, &d.message);
    let _ = write!(out, ",\"waived\":{waived}}}");
}

/// Escapes a string the same way the server's JSON printer does.
fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, msg: &str) -> Diagnostic {
        Diagnostic {
            path: "crates/core/src/ops.rs".to_string(),
            line: 7,
            rule,
            message: msg.to_string(),
        }
    }

    #[test]
    fn renders_counts_and_escapes() {
        let report = LintReport {
            findings: vec![diag("panic", "don't \"unwrap\"\nhere")],
            waived: vec![diag("index", "tab\there")],
        };
        let s = render(&report);
        assert!(s.starts_with("{\"findings\":["), "{s}");
        assert!(s.contains("\\\"unwrap\\\"\\nhere"), "{s}");
        assert!(s.contains("tab\\there"), "{s}");
        assert!(s.contains("\"waived\":false"));
        assert!(s.contains("\"waived\":true"));
        assert!(
            s.ends_with("\"counts\":{\"findings\":1,\"waived\":1}}"),
            "{s}"
        );
    }

    #[test]
    fn empty_report_is_a_complete_object() {
        let s = render(&LintReport::default());
        assert_eq!(
            s,
            "{\"findings\":[],\"waived\":[],\"counts\":{\"findings\":0,\"waived\":0}}"
        );
    }
}
