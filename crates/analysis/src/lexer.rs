//! A hand-written Rust token scanner with byte/line spans.
//!
//! The same approach as the SQL lexer in `engine/src/lexer.rs`: a single
//! forward pass over the bytes, producing tokens tagged with the line
//! they start on. It understands exactly as much Rust as the lint rules
//! need — identifiers, punctuation, string/char/lifetime literals,
//! numbers, and (crucially) comments, which are captured separately so
//! waiver annotations (`// lint:allow(...)`) can be recovered. It does
//! **not** build a syntax tree; rules work over the token stream plus a
//! bracket match map.

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// An identifier or keyword, kept verbatim.
    Ident(String),
    /// A lifetime (`'a`) — kept distinct so it never confuses char
    /// literal or indexing detection.
    Lifetime,
    /// A string literal (normal, raw, or byte); the content is not
    /// unescaped — rules only substring-match inside it.
    Str(String),
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal, kept verbatim (suffixes included) so rules can
    /// read concrete values — e.g. the thread counts passed to
    /// `with_threads(4)`.
    Num(String),
    /// A single punctuation byte (`.`, `(`, `[`, `!`, …). Multi-byte
    /// operators arrive as their constituent bytes, which is all the
    /// rules need.
    Punct(u8),
}

/// A token with the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

/// A comment with the 1-based line it starts on (waiver parsing input).
#[derive(Clone, Debug)]
pub struct Comment {
    /// The comment text, including its `//` / `/*` delimiters.
    pub text: String,
    /// 1-based line number of the comment's first byte.
    pub line: u32,
}

/// The scan result: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Scan {
    /// All non-comment tokens in order.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True iff this token is the given punctuation byte.
    pub fn is(&self, b: u8) -> bool {
        matches!(self, Tok::Punct(p) if *p == b)
    }

    /// True iff this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }

    /// The integer value of a numeric literal, ignoring any type suffix
    /// and underscores (`1_000i64` → 1000). `None` for non-numbers and
    /// for floats.
    pub fn num_value(&self) -> Option<u64> {
        let Tok::Num(text) = self else { return None };
        let digits: String = text
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .filter(|c| *c != '_')
            .collect();
        if text.contains('.') || digits.is_empty() {
            return None;
        }
        digits.parse().ok()
    }
}

/// Scans Rust source into tokens + comments. Never fails: unexpected
/// bytes are skipped (the analyzer lints files that already compile, so
/// anything unrecognized is at worst inside an exotic literal).
pub fn scan(input: &str) -> Scan {
    let bytes = input.as_bytes();
    let mut out = Scan::default();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let b = bytes[i];
        let start_line = line;
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: input[start..i].to_string(),
                    line: start_line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: input[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let (text, nl) = read_string(input, &mut i, 0);
                line += nl;
                out.tokens.push(Token {
                    tok: Tok::Str(text),
                    line: start_line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (text, nl) = read_prefixed_string(input, &mut i);
                line += nl;
                out.tokens.push(Token {
                    tok: Tok::Str(text),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`): a
                // lifetime is a quote + ident run NOT followed by a
                // closing quote.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j > i + 1 && bytes.get(j) != Some(&b'\'') {
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line: start_line,
                    });
                    i = j;
                } else {
                    // Char literal: consume up to the closing quote,
                    // honoring one backslash escape.
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2;
                        // `\u{...}` escapes run to the closing brace.
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                    }
                    i += 1; // closing quote (or EOF)
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line: start_line,
                    });
                }
            }
            b'0'..=b'9' => {
                // Numbers: digits plus alphanumerics, `_` and `.` when
                // followed by a digit (so `x.0` field access still works
                // out — `0` after `.` lexes as a number, which rules
                // treat the same as a field name).
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || (bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Num(input[start..i].to_string()),
                    line: start_line,
                });
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(input[start..i].to_string()),
                    line: start_line,
                });
            }
            other => {
                out.tokens.push(Token {
                    tok: Tok::Punct(other),
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True iff position `i` starts a raw/byte string prefix: `r"`, `r#`,
/// `b"`, `br"`, `br#` (an identifier beginning with those letters is
/// caught by the alphabetic arm first only when this returns false).
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Reads a normal (escaped) string literal starting at the opening quote;
/// returns (content-with-quotes, newlines crossed).
fn read_string(input: &str, i: &mut usize, _hashes: usize) -> (String, u32) {
    let bytes = input.as_bytes();
    let start = *i;
    let mut nl = 0;
    *i += 1; // opening quote
    while *i < bytes.len() {
        match bytes[*i] {
            b'\\' => *i += 2,
            b'"' => {
                *i += 1;
                break;
            }
            b'\n' => {
                nl += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    (input[start..(*i).min(bytes.len())].to_string(), nl)
}

/// Reads a raw or byte string (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or a
/// byte char `b'…'`) starting at its prefix letter.
fn read_prefixed_string(input: &str, i: &mut usize) -> (String, u32) {
    let bytes = input.as_bytes();
    let start = *i;
    let mut nl = 0;
    // Skip the r/b/br prefix.
    while *i < bytes.len() && (bytes[*i] == b'r' || bytes[*i] == b'b') {
        *i += 1;
    }
    if bytes.get(*i) == Some(&b'\'') {
        // Byte char literal `b'x'`.
        *i += 1;
        if bytes.get(*i) == Some(&b'\\') {
            *i += 1;
        }
        while *i < bytes.len() && bytes[*i] != b'\'' {
            *i += 1;
        }
        *i += 1;
        return (input[start..(*i).min(bytes.len())].to_string(), 0);
    }
    let mut hashes = 0;
    while bytes.get(*i) == Some(&b'#') {
        hashes += 1;
        *i += 1;
    }
    if bytes.get(*i) != Some(&b'"') {
        // `r#ident` (raw identifier) — rewind to let the caller's ident
        // arm handle it: emit as-is up to here.
        return (input[start..*i].to_string(), 0);
    }
    if hashes == 0 && !input[start..*i].contains('r') {
        // Plain byte string `b"…"`: escapes apply.
        let (s, n) = read_string(input, i, 0);
        return (format!("b{s}"), n);
    }
    *i += 1; // opening quote
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while *i < bytes.len() {
        if bytes[*i] == b'\n' {
            nl += 1;
        }
        if bytes[*i] == b'"' && bytes[*i..].starts_with(&closer) {
            *i += closer.len();
            break;
        }
        *i += 1;
    }
    (input[start..(*i).min(bytes.len())].to_string(), nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let s = scan("fn f() {\n    x.unwrap()\n}\n");
        assert_eq!(s.tokens[0].tok, Tok::Ident("fn".into()));
        let unwrap = s.tokens.iter().find(|t| t.tok.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn comments_are_captured_separately() {
        let s = scan("a // lint:allow(panic, reason = \"x\")\n/* block\nspans */ b");
        assert_eq!(idents("a // c\nb"), vec!["a", "b"]);
        assert_eq!(s.comments.len(), 2);
        assert!(s.comments[0].text.contains("lint:allow"));
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[1].line, 2);
        assert_eq!(s.tokens[1].tok, Tok::Ident("b".into()));
        assert_eq!(s.tokens[1].line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        // Brackets and `//` inside strings must not produce tokens.
        let s = scan(r#"let x = "a[0] // not a comment"; y"#);
        assert!(s.comments.is_empty());
        assert!(!s.tokens.iter().any(|t| t.tok.is(b'[')));
        assert!(s.tokens.iter().any(|t| t.tok.is_ident("y")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let s = scan("r#\"has \"quotes\" inside\"# z");
        assert!(matches!(&s.tokens[0].tok, Tok::Str(t) if t.contains("quotes")));
        assert!(s.tokens[1].tok.is_ident("z"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = s
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime))
            .count();
        let chars = s
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_char_literals() {
        let s = scan(r"let a = '\n'; let b = '\''; let c = '\u{1F600}'; d");
        assert!(s.tokens.iter().any(|t| t.tok.is_ident("d")));
        assert_eq!(
            s.tokens
                .iter()
                .filter(|t| matches!(t.tok, Tok::Char))
                .count(),
            3
        );
    }

    #[test]
    fn numbers_do_not_split_on_type_suffixes() {
        assert_eq!(
            idents("let x = 0usize; let y = 1_000i64; z"),
            vec!["let", "x", "let", "y", "z"]
        );
    }

    #[test]
    fn numbers_carry_their_value() {
        let s = scan("with_threads(4); serial(); n(1_000i64); f(2.5)");
        let nums: Vec<Option<u64>> = s
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Num(_)))
            .map(|t| t.tok.num_value())
            .collect();
        assert_eq!(nums, vec![Some(4), Some(1000), None]);
    }
}
