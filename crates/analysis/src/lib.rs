//! `aggprov-lint` — project-invariant static analysis for the aggprov
//! workspace.
//!
//! The engine's correctness story rests on disciplines that used to live
//! only in reviewers' heads: every ground/symbolic fast path must gate on
//! *both* operands (the PR 4 `annotation_at` bug class), the execute path
//! must never panic, lock acquisitions must not nest or straddle socket
//! I/O, every physical operator must have a `specops::` oracle referenced
//! from a property test, and every `AGGPROV_*` environment variable must
//! be declared in one registry and documented in the README. This crate
//! re-checks those invariants mechanically on every commit.
//!
//! It is a **two-phase analyzer** built on a lightweight token scanner
//! ([`lexer`]) in the same hand-rolled, zero-dependency style as the SQL
//! lexer (`engine/src/lexer.rs`) and the server's JSON parser — no
//! `syn`, no network. Phase 1 ([`graph`]) walks the workspace once and
//! builds a symbol graph: functions with spans, an approximate call
//! graph from unique-name resolution, per-function lock-guard events,
//! `match` dispatch sites, and enum definitions. Phase 2 ([`rules`])
//! runs line-local rules over each file's token stream plus graph-aware
//! rules over the whole program. Everything is deliberately conservative
//! pattern matching for *this repository's* idioms, not a general Rust
//! analyzer, and every rule is pinned by fixture tests in
//! `tests/fixtures/`.
//!
//! # Rules
//!
//! | id | invariant |
//! |----|-----------|
//! | `groundness` | two-sided ground/symbolic gates in `core::ops` |
//! | `panic` | no `unwrap`/`expect`/`panic!`-family on the execute path |
//! | `index` | no bare slice indexing on the execute path |
//! | `lock` | no nested guards; no lock held across socket I/O (one file) |
//! | `lock-order` | no cycle in the global guard-acquisition order; no lock held across I/O *transitively through callees* |
//! | `dispatch` | every variant of a registered enum has an arm at its designated dispatch sites |
//! | `oracle` | every `core::ops` operator's `specops::` twin is *called* from a proptest that also runs the physical path (threads 1 and 4 for `_opts` operators) |
//! | `wire` | server dispatch arms, `Client` methods and the `WIRE_PROTOCOL.md` op table agree |
//! | `env` | every `AGGPROV_*` literal is registered and README-documented |
//!
//! # Waivers
//!
//! A finding is suppressed by a comment on the same line or the line
//! above: `// lint:allow(<rule>, reason = "...")`. The reason is
//! mandatory — a reason-less waiver is itself a diagnostic — and so is
//! being load-bearing: a waiver that suppresses nothing is reported as
//! unused.
//!
//! Run locally with `cargo run -p analysis --bin aggprov-lint` from the
//! workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod graph;
pub mod json;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod walk;

use lexer::{scan, Scan, Tok, Token};

/// One lint finding, anchored to a file and line.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`groundness`, `panic`, `index`, `lock`, `lock-order`,
    /// `dispatch`, `oracle`, `wire`, `env`, `waiver`).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed waiver annotation: `// lint:allow(<rule>, reason = "...")`.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The waived rule id.
    pub rule: String,
    /// The mandatory justification (`None` when the comment omitted it —
    /// reported by the driver).
    pub reason: Option<String>,
    /// 1-based line of the waiver comment. The waiver covers findings on
    /// this line and the next (for standalone comment lines).
    pub line: u32,
}

/// A scanned source file plus everything rules need: tokens, bracket
/// match map, `#[cfg(test)]` spans, and waivers.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The raw text (the env rule and README checks substring-match it).
    pub text: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Waivers parsed from comments.
    pub waivers: Vec<Waiver>,
    /// For each token index: the index of the matching close/open
    /// bracket, for `(` `)` `[` `]` `{` `}` tokens; `usize::MAX`
    /// elsewhere or when unbalanced.
    pub matches: Vec<usize>,
    /// Sorted token-index ranges lying under `#[cfg(test)]` / `#[test]`
    /// items (rules skip these).
    pub test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Scans `text` into a rule-ready source file.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let path = path.into();
        let text = text.into();
        let Scan { tokens, comments } = scan(&text);
        let waivers = comments.iter().filter_map(parse_waiver).collect();
        let matches = match_brackets(&tokens);
        let test_ranges = find_test_ranges(&tokens, &matches);
        SourceFile {
            path,
            text,
            tokens,
            waivers,
            matches,
            test_ranges,
        }
    }

    /// True iff token index `i` lies inside a `#[cfg(test)]`/`#[test]`
    /// item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// True iff a waiver for `rule` covers `line` (same line or the line
    /// directly above). Reason-less waivers still suppress — the missing
    /// reason is reported separately, so one sloppy comment yields one
    /// diagnostic, not two.
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
    }
}

/// Parses `lint:allow(<rule>, reason = "...")` out of a comment. Doc
/// comments don't count — they *describe* the waiver syntax (this crate
/// does, at length) rather than invoke it.
fn parse_waiver(c: &lexer::Comment) -> Option<Waiver> {
    if c.text.starts_with("///")
        || c.text.starts_with("//!")
        || c.text.starts_with("/**")
        || c.text.starts_with("/*!")
    {
        return None;
    }
    let at = c.text.find("lint:allow(")?;
    let rest = &c.text[at + "lint:allow(".len()..];
    // The closing paren is the first one *outside* the quoted reason —
    // reasons like `selected() rows are in bounds` contain their own.
    let mut end = None;
    let mut in_str = false;
    for (i, ch) in rest.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            ')' if !in_str => {
                end = Some(i);
                break;
            }
            _ => {}
        }
    }
    let inner = &rest[..end?];
    let (rule, reason) = match inner.find(',') {
        None => (inner.trim(), None),
        Some(comma) => {
            let rule = inner[..comma].trim();
            let tail = inner[comma + 1..].trim();
            let reason = tail
                .strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|t| t.strip_prefix('='))
                .map(str::trim)
                .and_then(|t| t.strip_prefix('"'))
                .and_then(|t| t.strip_suffix('"'))
                .filter(|t| !t.trim().is_empty())
                .map(str::to_string);
            (rule, reason)
        }
    };
    if rule.is_empty() {
        return None;
    }
    Some(Waiver {
        rule: rule.to_string(),
        reason,
        line: c.line,
    })
}

/// Builds the bracket match map over the token stream.
fn match_brackets(tokens: &[Token]) -> Vec<usize> {
    let mut out = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<(u8, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.tok {
            Tok::Punct(b @ (b'(' | b'[' | b'{')) => stack.push((b, i)),
            Tok::Punct(close @ (b')' | b']' | b'}')) => {
                let want = match close {
                    b')' => b'(',
                    b']' => b'[',
                    _ => b'{',
                };
                // Pop past any unbalanced entries (never happens on code
                // that compiles, but stay total).
                while let Some((open, at)) = stack.pop() {
                    if open == want {
                        out[at] = i;
                        out[i] = at;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Finds token ranges under `#[cfg(test)]` or `#[test]` attributes: from
/// the attribute to the end of the item's brace block (or its `;`).
fn find_test_ranges(tokens: &[Token], matches: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok.is(b'#') && i + 1 < tokens.len() && tokens[i + 1].tok.is(b'[') {
            let close = matches[i + 1];
            if close != usize::MAX && attr_is_test(&tokens[i + 2..close]) {
                // Skip any further attributes, then run to the item's
                // closing brace (derives etc. between attr and item).
                let mut j = close + 1;
                while j + 1 < tokens.len() && tokens[j].tok.is(b'#') && tokens[j + 1].tok.is(b'[') {
                    let c = matches[j + 1];
                    if c == usize::MAX {
                        break;
                    }
                    j = c + 1;
                }
                let mut end = j;
                while end < tokens.len() {
                    if tokens[end].tok.is(b';') {
                        break;
                    }
                    if tokens[end].tok.is(b'{') {
                        let c = matches[end];
                        end = if c == usize::MAX { tokens.len() - 1 } else { c };
                        break;
                    }
                    end += 1;
                }
                out.push((i, end.min(tokens.len().saturating_sub(1))));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// True iff the attribute token slice is `cfg(test)` or `test`.
fn attr_is_test(inner: &[Token]) -> bool {
    match inner {
        [t] => t.tok.is_ident("test"),
        [c, p, t, q] => {
            c.tok.is_ident("cfg") && p.tok.is(b'(') && t.tok.is_ident("test") && q.tok.is(b')')
        }
        _ => false,
    }
}

/// A loaded workspace: all scanned sources plus the README text (for the
/// env-registry documentation check) and the wire-protocol spec (for the
/// `wire` drift check).
#[derive(Debug, Default)]
pub struct Workspace {
    /// All scanned `.rs` files.
    pub files: Vec<SourceFile>,
    /// `README.md` contents (empty when absent).
    pub readme: String,
    /// `docs/WIRE_PROTOCOL.md` contents (empty when absent).
    pub wire_doc: String,
}

impl Workspace {
    /// The file at `path`, if loaded.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_parsing() {
        let f = SourceFile::new(
            "x.rs",
            "// lint:allow(index, reason = \"selection vector is in-bounds\")\n\
             let x = a[i];\n\
             // lint:allow(panic)\n\
             y.unwrap();\n",
        );
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].rule, "index");
        assert!(f.waivers[0].reason.is_some());
        assert!(f.waivers[1].reason.is_none());
        assert!(f.waived("index", 2));
        assert!(!f.waived("index", 4));
        assert!(f.waived("panic", 4));
    }

    #[test]
    fn reason_may_contain_parens() {
        let f = SourceFile::new(
            "x.rs",
            "// lint:allow(index, reason = \"selected() rows are < ground.len()\")\n",
        );
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(
            f.waivers[0].reason.as_deref(),
            Some("selected() rows are < ground.len()")
        );
    }

    #[test]
    fn empty_reason_counts_as_missing() {
        let f = SourceFile::new("x.rs", "// lint:allow(panic, reason = \"\")\n");
        assert!(f.waivers[0].reason.is_none());
    }

    #[test]
    fn cfg_test_ranges_cover_test_modules() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n";
        let f = SourceFile::new("x.rs", src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.tok.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test(unwraps[0]));
        assert!(f.in_test(unwraps[1]));
    }

    #[test]
    fn bracket_matching_round_trips() {
        let f = SourceFile::new("x.rs", "fn f(a: &[u8]) { g(a[0], (1, [2])); }");
        for (i, t) in f.tokens.iter().enumerate() {
            if let Tok::Punct(b'(' | b'[' | b'{') = t.tok {
                let j = f.matches[i];
                assert_ne!(j, usize::MAX);
                assert_eq!(f.matches[j], i);
            }
        }
    }
}
