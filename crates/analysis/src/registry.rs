//! The single declared registry of `AGGPROV_*` environment variables.
//!
//! The `env` rule cross-checks every `AGGPROV_*` string literal in the
//! workspace against this table, and every entry here against the
//! README. Adding a new knob means adding it in three places — the code
//! that reads it, this registry, and the README — and the lint fails
//! until all three agree. This extends the loud-env-validation work from
//! the parallel pipeline (PR 3): unknown knobs are rejected at runtime
//! there, and unregistered knobs are rejected at lint time here.

/// Every environment variable the workspace reads, with a one-line
/// purpose. Keep sorted.
pub const ENV_REGISTRY: &[(&str, &str)] = &[
    (
        "AGGPROV_BENCH_COMMIT",
        "commit id stamped into benchmark trajectory records",
    ),
    (
        "AGGPROV_BENCH_SAMPLES",
        "sample-count override for the benchmark harness",
    ),
    (
        "AGGPROV_THREADS",
        "worker-thread count for the parallel ground-partition pipeline",
    ),
    (
        "AGGPROV_TYPED",
        "typed columnar kernels toggle: 1 (default) typed, 0 boxed baseline",
    ),
];

/// Looks up a variable's description.
pub fn lookup(name: &str) -> Option<&'static str> {
    ENV_REGISTRY
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, d)| *d)
}

/// One load-bearing enum and its designated dispatch sites: functions
/// that must carry a `match` arm for **every** variant (no wildcard
/// credit). Adding a variant to a registered enum fails the `dispatch`
/// rule until each site makes an explicit decision — exactly the places
/// where a silently-unhandled plan node, physical node, column variant
/// or error would otherwise slip through.
#[derive(Clone, Copy, Debug)]
pub struct EnumSite {
    /// The enum's name as written in source.
    pub enum_name: &'static str,
    /// Workspace-relative path of the defining file (variant names are
    /// discovered from the definition, so they can't drift).
    pub def_path: &'static str,
    /// `(path, fn_name)` pairs of the designated dispatch functions.
    pub sites: &'static [(&'static str, &'static str)],
}

/// The registered enums. Each entry names the functions whose `match`
/// over the enum is the project's "every variant decided here" point.
pub const ENUM_REGISTRY: &[EnumSite] = &[
    EnumSite {
        enum_name: "Plan",
        def_path: "crates/engine/src/plan.rs",
        sites: &[
            // Static groundness: a new plan node must declare which
            // output columns can go symbolic, or every rewrite is vetoed.
            ("crates/engine/src/opt.rs", "symbolic_cols"),
            // Physical lowering: a new plan node needs a physical form.
            ("crates/engine/src/phys.rs", "lower_with"),
            // View classification: a new plan node must make a
            // delta-maintenance decision (linear or recompute).
            ("crates/engine/src/view.rs", "count_scans"),
            ("crates/engine/src/view.rs", "contains_agg_or_setop"),
        ],
    },
    EnumSite {
        enum_name: "PhysNode",
        def_path: "crates/engine/src/phys.rs",
        sites: &[("crates/engine/src/exec.rs", "run")],
    },
    EnumSite {
        enum_name: "TypedColumn",
        def_path: "crates/krel/src/typed.rs",
        sites: &[
            // A new column representation needs a typed-kernel decision
            // for predicate compilation (or an explicit boxed fallback).
            ("crates/core/src/ops/typed.rs", "compile_lit_test"),
        ],
    },
    EnumSite {
        enum_name: "Const",
        def_path: "crates/algebra/src/domain.rs",
        sites: &[
            // Every domain constant needs a type name for error
            // rendering — the cheapest total dispatch over `Const`.
            ("crates/algebra/src/domain.rs", "type_name"),
        ],
    },
    EnumSite {
        enum_name: "RelError",
        def_path: "crates/krel/src/error.rs",
        sites: &[("crates/krel/src/error.rs", "fmt")],
    },
    EnumSite {
        enum_name: "MaintenanceStrategy",
        def_path: "crates/engine/src/view.rs",
        sites: &[
            // The wire rendering in the serving layer: a new maintenance
            // strategy must pick its protocol name.
            ("crates/server/src/session.rs", "strategy_name"),
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in ENV_REGISTRY.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn lookup_finds_threads() {
        assert!(lookup("AGGPROV_THREADS").is_some());
        assert!(lookup("AGGPROV_NO_SUCH").is_none());
    }

    #[test]
    fn enum_registry_entries_are_well_formed() {
        for e in ENUM_REGISTRY {
            assert!(!e.sites.is_empty(), "{} has no dispatch sites", e.enum_name);
            assert!(
                e.def_path.starts_with("crates/") && e.def_path.ends_with(".rs"),
                "{} def path {:?}",
                e.enum_name,
                e.def_path
            );
        }
        let names: Vec<&str> = ENUM_REGISTRY.iter().map(|e| e.enum_name).collect();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate enum registration");
    }

    /// The README's environment-variable table must match this registry
    /// *exactly* — same variables, same one-line purposes. The `env`
    /// lint rule already checks mention; this pins the table itself so
    /// the two can't drift apart in wording either.
    #[test]
    fn readme_env_table_matches_registry() {
        let readme = include_str!("../../../README.md");
        for (name, desc) in ENV_REGISTRY {
            let row = format!("| `{name}` | {desc} |");
            assert!(
                readme.contains(&row),
                "README env table drifted from the registry: expected the row {row:?}"
            );
        }
        for line in readme.lines().filter(|l| l.starts_with("| `AGGPROV_")) {
            let name = line
                .trim_start_matches("| `")
                .split('`')
                .next()
                .unwrap_or_default();
            assert!(
                lookup(name).is_some(),
                "README env table documents `{name}`, which is not in ENV_REGISTRY"
            );
        }
    }
}
