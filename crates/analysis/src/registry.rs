//! The single declared registry of `AGGPROV_*` environment variables.
//!
//! The `env` rule cross-checks every `AGGPROV_*` string literal in the
//! workspace against this table, and every entry here against the
//! README. Adding a new knob means adding it in three places — the code
//! that reads it, this registry, and the README — and the lint fails
//! until all three agree. This extends the loud-env-validation work from
//! the parallel pipeline (PR 3): unknown knobs are rejected at runtime
//! there, and unregistered knobs are rejected at lint time here.

/// Every environment variable the workspace reads, with a one-line
/// purpose. Keep sorted.
pub const ENV_REGISTRY: &[(&str, &str)] = &[
    (
        "AGGPROV_BENCH_COMMIT",
        "commit id stamped into benchmark trajectory records",
    ),
    (
        "AGGPROV_BENCH_SAMPLES",
        "sample-count override for the benchmark harness",
    ),
    (
        "AGGPROV_THREADS",
        "worker-thread count for the parallel ground-partition pipeline",
    ),
    (
        "AGGPROV_TYPED",
        "typed columnar kernels toggle: 1 (default) typed, 0 boxed baseline",
    ),
];

/// Looks up a variable's description.
pub fn lookup(name: &str) -> Option<&'static str> {
    ENV_REGISTRY
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, d)| *d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in ENV_REGISTRY.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn lookup_finds_threads() {
        assert!(lookup("AGGPROV_THREADS").is_some());
        assert!(lookup("AGGPROV_NO_SUCH").is_none());
    }

    /// The README's environment-variable table must match this registry
    /// *exactly* — same variables, same one-line purposes. The `env`
    /// lint rule already checks mention; this pins the table itself so
    /// the two can't drift apart in wording either.
    #[test]
    fn readme_env_table_matches_registry() {
        let readme = include_str!("../../../README.md");
        for (name, desc) in ENV_REGISTRY {
            let row = format!("| `{name}` | {desc} |");
            assert!(
                readme.contains(&row),
                "README env table drifted from the registry: expected the row {row:?}"
            );
        }
        for line in readme.lines().filter(|l| l.starts_with("| `AGGPROV_")) {
            let name = line
                .trim_start_matches("| `")
                .split('`')
                .next()
                .unwrap_or_default();
            assert!(
                lookup(name).is_some(),
                "README env table documents `{name}`, which is not in ENV_REGISTRY"
            );
        }
    }
}
