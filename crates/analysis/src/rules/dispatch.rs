//! Rule `dispatch`: exhaustive dispatch over registered enums.
//!
//! The registry ([`crate::registry::ENUM_REGISTRY`]) names the
//! load-bearing enums (`Plan`, `PhysNode`, `TypedColumn`, `Const`,
//! `RelError`, `MaintenanceStrategy`) and, for each, the functions whose
//! `match` is the project's designated "every variant decided here"
//! point. A variant of a registered enum with no arm naming it at a
//! designated site is a finding — and a wildcard arm earns no credit,
//! because the whole point is that adding a plan node without a
//! groundness/lowering/delta-maintenance decision must fail CI, not fall
//! into a `_ => unreachable` arm.
//!
//! Variant names are discovered from the enum *definition* (phase 1), so
//! the registry can't drift from the source of truth. The registry is
//! kept honest both ways: when the defining file is loaded but the
//! designated site's file or function is missing, that is a finding too.
//! Sites whose file is absent from the workspace are skipped — fixture
//! tests lint partial workspaces, and a partial view proves nothing.

use crate::graph::SymbolGraph;
use crate::registry::ENUM_REGISTRY;
use crate::{Diagnostic, Workspace};

/// Checks every registered enum's designated dispatch sites.
pub fn check(ws: &Workspace, graph: &SymbolGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for entry in ENUM_REGISTRY {
        // The definition must come from the registered file; an
        // identically-named enum elsewhere must not stand in for it.
        if ws.file(entry.def_path).is_none() {
            continue;
        }
        let Some(def) = graph
            .enums
            .get(entry.enum_name)
            .filter(|d| d.path == entry.def_path)
        else {
            out.push(Diagnostic {
                path: entry.def_path.to_string(),
                line: 1,
                rule: "dispatch",
                message: format!(
                    "registered enum `{}` not found in {} — fix ENUM_REGISTRY \
                     (crates/analysis/src/registry.rs) or restore the definition",
                    entry.enum_name, entry.def_path
                ),
            });
            continue;
        };
        for (site_path, site_fn) in entry.sites {
            if ws.file(site_path).is_none() {
                continue;
            }
            let fns = graph.fns_in(site_path, site_fn);
            if fns.is_empty() {
                out.push(Diagnostic {
                    path: site_path.to_string(),
                    line: 1,
                    rule: "dispatch",
                    message: format!(
                        "designated dispatch fn `{site_fn}` for `{}` not found in \
                         {site_path} — fix ENUM_REGISTRY or restore the function",
                        entry.enum_name
                    ),
                });
                continue;
            }
            // Arms may be split across same-named fns (trait impls);
            // union their matched variants.
            let mut handled: Vec<&str> = Vec::new();
            let mut site_line = fns[0].line;
            for f in &fns {
                for m in &f.matches {
                    for (e, v) in &m.arm_paths {
                        if e == entry.enum_name && !handled.contains(&v.as_str()) {
                            handled.push(v);
                            site_line = m.line;
                        }
                    }
                }
            }
            if handled.is_empty() {
                out.push(Diagnostic {
                    path: site_path.to_string(),
                    line: fns[0].line,
                    rule: "dispatch",
                    message: format!(
                        "`{site_fn}` is the designated dispatch site for `{}` but \
                         contains no match arm over it",
                        entry.enum_name
                    ),
                });
                continue;
            }
            for (variant, vline) in &def.variants {
                if !handled.contains(&variant.as_str()) {
                    out.push(Diagnostic {
                        path: site_path.to_string(),
                        line: site_line,
                        rule: "dispatch",
                        message: format!(
                            "`{}::{variant}` ({}:{vline}) has no arm in dispatch \
                             site `{site_fn}` — every registered variant needs an \
                             explicit decision here (wildcards earn no credit)",
                            entry.enum_name, entry.def_path
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn run(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p, s))
                .collect(),
            ..Workspace::default()
        };
        let graph = SymbolGraph::build(&ws);
        check(&ws, &graph)
    }

    const DEF: &str = "pub enum MaintenanceStrategy { Incremental, Recompute }\n";

    #[test]
    fn complete_dispatch_is_clean() {
        let site = "fn strategy_name(s: MaintenanceStrategy) -> &'static str {\n\
                    match s {\n\
                    MaintenanceStrategy::Incremental => \"incremental\",\n\
                    MaintenanceStrategy::Recompute => \"recompute\",\n\
                    }\n\
                    }\n";
        let d = run(vec![
            ("crates/engine/src/view.rs", DEF),
            ("crates/server/src/session.rs", site),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_variant_fires_and_wildcard_earns_no_credit() {
        let site = "fn strategy_name(s: MaintenanceStrategy) -> &'static str {\n\
                    match s {\n\
                    MaintenanceStrategy::Incremental => \"incremental\",\n\
                    _ => \"other\",\n\
                    }\n\
                    }\n";
        let d = run(vec![
            ("crates/engine/src/view.rs", DEF),
            ("crates/server/src/session.rs", site),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "dispatch");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("Recompute"), "{}", d[0].message);
    }

    #[test]
    fn missing_site_fn_is_a_finding_but_absent_files_are_skipped() {
        // Definition present, site file present, fn gone: finding.
        let d = run(vec![
            ("crates/engine/src/view.rs", DEF),
            ("crates/server/src/session.rs", "fn other() {}\n"),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("strategy_name"));
        // Site file absent entirely (partial fixture workspace): silent.
        let d = run(vec![("crates/engine/src/view.rs", DEF)]);
        assert!(d.is_empty(), "{d:?}");
    }
}
