//! Rule `wire`: three-way agreement on the wire-protocol op set.
//!
//! The protocol's source of truth is the server's session dispatch —
//! the string arms of the `match op` in `Session::dispatch`
//! (`crates/server/src/session.rs`). Two mirrors must agree with it:
//!
//! - the **op table** in `docs/WIRE_PROTOCOL.md` (the rows under the
//!   `## Operation index` heading): an op the server speaks but the spec
//!   doesn't list is undocumented; a row for an op the server no longer
//!   speaks is stale;
//! - the blocking **`Client`** (`crates/server/src/client.rs`): every
//!   server op needs a typed client method (recognized by its
//!   `("op", Json::str("<name>"))` request literal), so integration
//!   tests and the smoke binary can exercise the whole surface without
//!   hand-built request objects.
//!
//! The checks only run when the dispatch function is in the workspace —
//! fixture tests lint partial trees, and without the source of truth
//! there is nothing to drift from.

use crate::graph::SymbolGraph;
use crate::lexer::Tok;
use crate::{Diagnostic, SourceFile, Workspace};

/// Path of the session dispatch (the op-set source of truth).
pub const SESSION_PATH: &str = "crates/server/src/session.rs";
/// Path of the blocking client.
pub const CLIENT_PATH: &str = "crates/server/src/client.rs";
/// The heading in `docs/WIRE_PROTOCOL.md` whose table rows list the ops.
pub const OP_INDEX_HEADING: &str = "## Operation index";

/// Cross-checks dispatch arms, client request literals, and the doc
/// table.
pub fn check(ws: &Workspace, graph: &SymbolGraph) -> Vec<Diagnostic> {
    let dispatch_fns = graph.fns_in(SESSION_PATH, "dispatch");
    let Some(dispatch) = dispatch_fns.first() else {
        return Vec::new();
    };
    let mut server_ops: Vec<(String, u32)> = Vec::new();
    for m in &dispatch.matches {
        for (op, line) in &m.arm_strings {
            if !server_ops.iter().any(|(o, _)| o == op) {
                server_ops.push((op.clone(), *line));
            }
        }
    }
    let mut out = Vec::new();
    if server_ops.is_empty() {
        out.push(Diagnostic {
            path: SESSION_PATH.to_string(),
            line: dispatch.line,
            rule: "wire",
            message: "`dispatch` has no string-literal op arms — the wire rule \
                      lost its source of truth"
                .to_string(),
        });
        return out;
    }

    // Doc table: ops named in the operation-index rows.
    let (doc_ops, doc_line) = doc_table_ops(&ws.wire_doc);
    for (op, line) in &server_ops {
        if !doc_ops.iter().any(|(o, _)| o == op) {
            out.push(Diagnostic {
                path: SESSION_PATH.to_string(),
                line: *line,
                rule: "wire",
                message: format!(
                    "op `{op}` is dispatched by the server but missing from the \
                     `{OP_INDEX_HEADING}` table in docs/WIRE_PROTOCOL.md"
                ),
            });
        }
    }
    for (op, row) in &doc_ops {
        if !server_ops.iter().any(|(o, _)| o == op) {
            out.push(Diagnostic {
                path: "docs/WIRE_PROTOCOL.md".to_string(),
                line: *row,
                rule: "wire",
                message: format!(
                    "stale row: op `{op}` is in the `{OP_INDEX_HEADING}` table but \
                     the server session no longer dispatches it"
                ),
            });
        }
    }
    if doc_ops.is_empty() {
        out.push(Diagnostic {
            path: "docs/WIRE_PROTOCOL.md".to_string(),
            line: doc_line,
            rule: "wire",
            message: format!(
                "no `{OP_INDEX_HEADING}` table found — the op index is the \
                 machine-checked half of the spec"
            ),
        });
    }

    // Client coverage: every server op needs a request literal.
    if let Some(client) = ws.file(CLIENT_PATH) {
        let client_ops = client_op_literals(client);
        for (op, line) in &server_ops {
            if !client_ops.contains(op) {
                out.push(Diagnostic {
                    path: SESSION_PATH.to_string(),
                    line: *line,
                    rule: "wire",
                    message: format!(
                        "op `{op}` has no `Client` method (no `(\"op\", \
                         Json::str(\"{op}\"))` request in {CLIENT_PATH})"
                    ),
                });
            }
        }
    }
    out.sort();
    out
}

/// Ops named by the operation-index table rows: for each markdown row
/// under [`OP_INDEX_HEADING`] (up to the next heading), the eligible
/// first backquoted cell. Returns the ops with their 1-based lines, and
/// the line of the heading (1 when absent).
fn doc_table_ops(doc: &str) -> (Vec<(String, u32)>, u32) {
    let mut ops = Vec::new();
    let mut in_table = false;
    let mut heading_line = 1;
    for (i, line) in doc.lines().enumerate() {
        let lineno = i as u32 + 1;
        if line.trim_end() == OP_INDEX_HEADING {
            in_table = true;
            heading_line = lineno;
            continue;
        }
        if in_table && line.starts_with('#') {
            break;
        }
        if !in_table || !line.starts_with('|') {
            continue;
        }
        // Skip the header and separator rows.
        let cell = line.trim_start_matches('|').trim();
        let Some(op) = cell
            .strip_prefix('`')
            .and_then(|c| c.split('`').next())
            .filter(|o| !o.is_empty())
        else {
            continue;
        };
        ops.push((op.to_string(), lineno));
    }
    (ops, heading_line)
}

/// Op names the client can speak: every `("op", Json::str("<name>"))`
/// token sequence in the client file.
fn client_op_literals(f: &SourceFile) -> Vec<String> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Tok::Str(s) = &toks[i].tok else { continue };
        if s.trim_matches('"') != "op" {
            continue;
        }
        // `"op" , Json :: str ( "<name>" )`
        let name = toks
            .get(i + 1)
            .filter(|t| t.tok.is(b','))
            .and_then(|_| toks.get(i + 2))
            .filter(|t| t.tok.is_ident("Json"))
            .and_then(|_| toks.get(i + 5))
            .filter(|t| t.tok.is_ident("str") || t.tok.is_ident("Str"))
            .and_then(|_| toks.get(i + 7))
            .and_then(|t| match &t.tok {
                Tok::Str(name) => Some(name.trim_matches('"').to_string()),
                _ => None,
            });
        if let Some(name) = name {
            if !out.contains(&name) {
                out.push(name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SESSION: &str = "\
impl Session {
    fn dispatch(&mut self, op: &str) -> Result<Json, String> {
        match op {
            \"ping\" => self.op_ping(),
            \"sql\" => self.op_sql(),
            \"bye\" => self.op_bye(),
            other => Err(format!(\"unknown op {other:?}\")),
        }
    }
}
";
    const CLIENT: &str = "\
impl Client {
    pub fn ping(&mut self) { self.request(Json::obj([(\"op\", Json::str(\"ping\"))])); }
    pub fn sql(&mut self) { self.request(Json::obj([(\"op\", Json::str(\"sql\"))])); }
    pub fn bye(&mut self) { self.request(Json::obj([(\"op\", Json::str(\"bye\"))])); }
}
";
    const DOC: &str = "\
# Protocol

## Operation index

| op | kind |
| --- | --- |
| `ping` | read |
| `sql` | write |
| `bye` | lifecycle |

## Next section
";

    fn run(session: &str, client: &str, doc: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![
                SourceFile::new(SESSION_PATH, session),
                SourceFile::new(CLIENT_PATH, client),
            ],
            wire_doc: doc.to_string(),
            ..Workspace::default()
        };
        let graph = SymbolGraph::build(&ws);
        check(&ws, &graph)
    }

    #[test]
    fn agreement_is_clean() {
        assert!(run(SESSION, CLIENT, DOC).is_empty());
    }

    #[test]
    fn undocumented_op_and_stale_row_fire() {
        let doc_missing_bye_extra_flush = "\
## Operation index

| op | kind |
| --- | --- |
| `ping` | read |
| `sql` | write |
| `flush` | write |
";
        let d = run(SESSION, CLIENT, doc_missing_bye_extra_flush);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d
            .iter()
            .any(|x| x.path == SESSION_PATH && x.message.contains("`bye`")));
        let stale = d
            .iter()
            .find(|x| x.path == "docs/WIRE_PROTOCOL.md")
            .unwrap();
        assert_eq!(stale.line, 7);
        assert!(stale.message.contains("`flush`"), "{}", stale.message);
    }

    #[test]
    fn missing_client_method_fires() {
        let client_no_bye = "\
impl Client {
    pub fn ping(&mut self) { self.request(Json::obj([(\"op\", Json::str(\"ping\"))])); }
    pub fn sql(&mut self) { self.request(Json::obj([(\"op\", Json::str(\"sql\"))])); }
}
";
        let d = run(SESSION, client_no_bye, DOC);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("no `Client` method"),
            "{}",
            d[0].message
        );
        assert!(d[0].message.contains("bye"));
    }

    #[test]
    fn absent_session_is_silent_for_partial_workspaces() {
        let ws = Workspace {
            files: vec![SourceFile::new("crates/core/src/ops.rs", "fn f() {}")],
            ..Workspace::default()
        };
        let graph = SymbolGraph::build(&ws);
        assert!(check(&ws, &graph).is_empty());
    }
}
