//! Rule `env`: every `AGGPROV_*` knob is registered and documented.
//!
//! PR 3 made the runtime loud about malformed env values; this rule
//! makes the *set* of knobs auditable. Any `AGGPROV_*` string literal in
//! workspace code must name a variable declared in
//! [`crate::registry::ENV_REGISTRY`], every registered variable must be
//! documented in the README, and a registered variable nothing reads is
//! flagged too — the registry describes reality, it doesn't collect
//! souvenirs.

use crate::lexer::Tok;
use crate::registry::ENV_REGISTRY;
use crate::{Diagnostic, Workspace};

/// Path of the registry declaration (exempt from the usage check).
pub const REGISTRY_PATH: &str = "crates/analysis/src/registry.rs";

/// Cross-checks `AGGPROV_*` literals against the registry and README.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut used: Vec<&str> = Vec::new();
    for f in &ws.files {
        if f.path == REGISTRY_PATH {
            continue;
        }
        for (i, t) in f.tokens.iter().enumerate() {
            let Tok::Str(text) = &t.tok else { continue };
            if f.in_test(i) {
                continue;
            }
            for var in extract_vars(text) {
                if let Some(entry) = ENV_REGISTRY.iter().find(|(n, _)| *n == var) {
                    if !used.contains(&entry.0) {
                        used.push(entry.0);
                    }
                } else {
                    out.push(Diagnostic {
                        path: f.path.clone(),
                        line: t.line,
                        rule: "env",
                        message: format!(
                            "`{var}` is not in ENV_REGISTRY \
                             (crates/analysis/src/registry.rs) — register and \
                             document every AGGPROV_* knob"
                        ),
                    });
                }
            }
        }
    }
    let registry_file = ws.file(REGISTRY_PATH);
    for (name, _) in ENV_REGISTRY {
        let line = registry_file
            .and_then(|f| {
                f.tokens
                    .iter()
                    .find(|t| matches!(&t.tok, Tok::Str(s) if s.contains(name)))
            })
            .map_or(1, |t| t.line);
        if !ws.readme.contains(name) {
            out.push(Diagnostic {
                path: REGISTRY_PATH.to_string(),
                line,
                rule: "env",
                message: format!("registered env var `{name}` is not documented in README.md"),
            });
        }
        if !used.contains(name) {
            out.push(Diagnostic {
                path: REGISTRY_PATH.to_string(),
                line,
                rule: "env",
                message: format!("registered env var `{name}` is never read by workspace code"),
            });
        }
    }
    out
}

/// Extracts `AGGPROV_<NAME>` variable names from a string literal's raw
/// text (which still carries its quotes/prefixes).
fn extract_vars(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(at) = text[i..].find("AGGPROV_") {
        let start = i + at;
        let mut end = start + "AGGPROV_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end] == b'_'
                || bytes[end].is_ascii_digit())
        {
            end += 1;
        }
        // A bare prefix (e.g. a format template) names nothing.
        if end > start + "AGGPROV_".len() {
            out.push(text[start..end].to_string());
        }
        i = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    #[test]
    fn extracts_vars_from_literals() {
        assert_eq!(
            extract_vars("\"AGGPROV_THREADS and AGGPROV_BENCH_COMMIT=x\""),
            vec!["AGGPROV_THREADS", "AGGPROV_BENCH_COMMIT"]
        );
        assert!(extract_vars("\"AGGPROV_ prefix only\"").is_empty());
    }

    fn ws_with(code_path: &str, code: &str, readme: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::new(code_path, code)],
            readme: readme.to_string(),
            ..Workspace::default()
        }
    }

    const ALL_DOCUMENTED: &str =
        "AGGPROV_THREADS AGGPROV_TYPED AGGPROV_BENCH_COMMIT AGGPROV_BENCH_SAMPLES";
    const READS_ALL: &str = "fn f() {\n\
        env(\"AGGPROV_THREADS\");\n\
        env(\"AGGPROV_TYPED\");\n\
        env(\"AGGPROV_BENCH_COMMIT\");\n\
        env(\"AGGPROV_BENCH_SAMPLES\");\n\
        }\n";

    #[test]
    fn registered_documented_and_read_is_clean() {
        let w = ws_with("crates/core/src/par.rs", READS_ALL, ALL_DOCUMENTED);
        assert!(check(&w).is_empty());
    }

    #[test]
    fn unregistered_var_is_flagged() {
        let code = "fn f() { env(\"AGGPROV_SECRET_KNOB\"); }";
        let w = ws_with("crates/core/src/par.rs", code, ALL_DOCUMENTED);
        let d = check(&w);
        assert!(d
            .iter()
            .any(|x| x.rule == "env" && x.line == 1 && x.message.contains("AGGPROV_SECRET_KNOB")));
    }

    #[test]
    fn undocumented_registry_entry_is_flagged() {
        let w = ws_with("crates/core/src/par.rs", READS_ALL, "no vars here");
        let d = check(&w);
        assert_eq!(
            d.iter()
                .filter(|x| x.message.contains("not documented"))
                .count(),
            ENV_REGISTRY.len()
        );
    }
}
