//! Rule `groundness`: two-sided gates on ground/symbolic fast paths.
//!
//! The §5 fast paths are only sound when *every* relational operand of a
//! binary operator is known ground: PR 4 shipped `annotation_at` gating
//! on `!has_symbolic(rel)` alone, silently dropping the `[S(t) ⊗ ⊤ = 0]`
//! guard when the *probe tuple* carried a symbolic aggregation value.
//! This rule detects that bug class statically: in any operator function
//! with two or more relational parameters, an `if` condition that
//! applies a groundness predicate to some relational parameter but not
//! all of them is flagged.
//!
//! The analysis is a token-level heuristic tuned to this repository's
//! idioms: predicates are `is_ground` / `is_ground_at` / `has_symbolic`
//! / `is_agg`, relational types are `MKRel` / `Relation` / `Tuple` /
//! `Chunk`, and predicate *subjects* are recovered by walking method
//! chains back to their root (so `t.values().iter().any(Value::is_agg)`
//! is understood to check `t`). Predicates applied to loop-local
//! variables don't count for or against — per-tuple checks inside the
//! general path are fine.

use crate::lexer::Tok;
use crate::{Diagnostic, SourceFile};

/// Predicates that witness groundness (or its negation) of a value.
/// `has_fringe`/`is_all_ground` are the chunk/batch forms: a typed
/// columnar fast path is sound only over the ground partition, so gating
/// one operand's fringe but not the other's is the same bug class.
const PREDICATES: &[&str] = &[
    "is_ground",
    "is_ground_at",
    "has_symbolic",
    "is_agg",
    "has_fringe",
    "is_all_ground",
];

/// Types whose parameters count as relational operands.
const REL_TYPES: &[&str] = &["MKRel", "Relation", "Tuple", "Chunk", "GroundBatch"];

/// Scans one operator module for one-sided groundness gates.
pub fn check(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &f.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].tok.is_ident("fn") || f.in_test(i) {
            i += 1;
            continue;
        }
        let Some(sig) = parse_signature(f, i) else {
            i += 1;
            continue;
        };
        if sig.rel_params.len() >= 2 {
            check_body(f, &sig, &mut out);
        }
        i = sig.body_end.max(i + 1);
    }
    out
}

/// A parsed `fn` header: its relational parameter names and body span.
struct Signature {
    name: String,
    rel_params: Vec<String>,
    body_start: usize,
    body_end: usize,
}

/// Parses the `fn` at token index `at` (pointing at the `fn` ident).
fn parse_signature(f: &SourceFile, at: usize) -> Option<Signature> {
    let toks = &f.tokens;
    let name = toks.get(at + 1)?.tok.ident()?.to_string();
    let mut j = at + 2;
    // Skip generics `<...>`, guarding against `->` inside bounds.
    if toks.get(j)?.tok.is(b'<') {
        let mut depth = 1i32;
        j += 1;
        while j < toks.len() && depth > 0 {
            if toks[j].tok.is(b'<') {
                depth += 1;
            } else if toks[j].tok.is(b'>') && !toks[j - 1].tok.is(b'-') {
                depth -= 1;
            }
            j += 1;
        }
    }
    if !toks.get(j)?.tok.is(b'(') {
        return None;
    }
    let params_close = *f.matches.get(j)?;
    if params_close == usize::MAX {
        return None;
    }
    let rel_params = parse_params(f, j + 1, params_close);
    // Find the body `{`; a trait method decl ends in `;` instead.
    let mut k = params_close + 1;
    while k < toks.len() && !toks[k].tok.is(b'{') {
        if toks[k].tok.is(b';') {
            return None;
        }
        k += 1;
    }
    let body_close = *f.matches.get(k)?;
    if body_close == usize::MAX {
        return None;
    }
    Some(Signature {
        name,
        rel_params,
        body_start: k,
        body_end: body_close,
    })
}

/// Extracts the names of relational parameters from a parameter list.
fn parse_params(f: &SourceFile, start: usize, end: usize) -> Vec<String> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut seg_start = start;
    let mut j = start;
    let mut angle = 0i32;
    while j <= end {
        let at_end = j == end;
        let top_comma = !at_end && angle == 0 && toks[j].tok.is(b',');
        if at_end || top_comma {
            if let Some(p) = parse_one_param(f, seg_start, j) {
                out.push(p);
            }
            seg_start = j + 1;
            j += 1;
            continue;
        }
        match &toks[j].tok {
            Tok::Punct(b'<') => angle += 1,
            Tok::Punct(b'>') if !toks[j - 1].tok.is(b'-') => angle -= 1,
            Tok::Punct(b'(' | b'[') => {
                let m = f.matches[j];
                if m != usize::MAX && m <= end {
                    j = m;
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// One parameter segment: returns its name iff its type is relational.
fn parse_one_param(f: &SourceFile, start: usize, end: usize) -> Option<String> {
    let toks = &f.tokens;
    let colon = (start..end).find(|&j| toks[j].tok.is(b':'))?;
    let name = (start..colon)
        .rev()
        .find_map(|j| toks[j].tok.ident())
        .filter(|n| *n != "mut")?
        .to_string();
    let relational =
        (colon + 1..end).any(|j| toks[j].tok.ident().is_some_and(|n| REL_TYPES.contains(&n)));
    relational.then_some(name)
}

/// Walks the `if` conditions in a binary operator's body.
fn check_body(f: &SourceFile, sig: &Signature, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    let mut i = sig.body_start + 1;
    while i < sig.body_end {
        if !toks[i].tok.is_ident("if") {
            i += 1;
            continue;
        }
        // The condition runs from after `if` to the block `{` at nesting
        // depth zero (struct literals are illegal in conditions, so the
        // first top-level `{` is the branch body).
        let mut j = i + 1;
        let cond_start = j;
        while j < sig.body_end && !toks[j].tok.is(b'{') {
            if (toks[j].tok.is(b'(') || toks[j].tok.is(b'[')) && f.matches[j] != usize::MAX {
                j = f.matches[j];
            }
            j += 1;
        }
        let cond_end = j;
        let mut subjects: Vec<String> = Vec::new();
        for (k, t) in toks.iter().enumerate().take(cond_end).skip(cond_start) {
            let is_pred = t.tok.ident().is_some_and(|n| PREDICATES.contains(&n));
            if is_pred {
                if let Some(s) = subject_of(f, cond_start, k) {
                    if !subjects.contains(&s) {
                        subjects.push(s);
                    }
                }
            }
        }
        let checked: Vec<&String> = sig
            .rel_params
            .iter()
            .filter(|p| subjects.contains(p))
            .collect();
        if !checked.is_empty() && checked.len() < sig.rel_params.len() {
            let missing: Vec<&str> = sig
                .rel_params
                .iter()
                .filter(|p| !subjects.contains(p))
                .map(String::as_str)
                .collect();
            out.push(Diagnostic {
                path: f.path.clone(),
                line: toks[i].line,
                rule: "groundness",
                message: format!(
                    "one-sided groundness gate in `{}`: condition checks {} but \
                     not {} — a fast path must gate on every relational operand",
                    sig.name,
                    join_names(&checked.iter().map(|s| s.as_str()).collect::<Vec<_>>()),
                    join_names(&missing),
                ),
            });
        }
        i = cond_end + 1;
    }
}

/// Recovers the root variable a predicate occurrence is applied to.
fn subject_of(f: &SourceFile, cond_start: usize, k: usize) -> Option<String> {
    let toks = &f.tokens;
    // Free-function form: `has_symbolic(rel)`, `is_ground_at(t, &pos)` —
    // the subject is the first identifier of the first argument.
    let free_call = toks.get(k + 1).is_some_and(|t| t.tok.is(b'('))
        && (k == 0 || !(toks[k - 1].tok.is(b'.') || toks[k - 1].tok.is(b':')));
    if free_call {
        let close = f.matches[k + 1];
        if close != usize::MAX {
            return first_ident(f, k + 2, close);
        }
        return None;
    }
    // Method/path form: walk the chain back to its root.
    let root = chain_root(f, cond_start, k)?;
    let name = toks[root].tok.ident()?.to_string();
    if name.starts_with(|c: char| c.is_ascii_uppercase()) {
        // A path like `Value::is_agg` passed as a closure to an adapter:
        // the real subject is the root of the enclosing call chain
        // (`t.values().iter().any(Value::is_agg)` → `t`).
        let open = (cond_start..k)
            .filter(|&o| toks[o].tok.is(b'(') && f.matches[o] != usize::MAX && f.matches[o] > k)
            .max()?;
        if open > cond_start && toks[open - 1].tok.ident().is_some() {
            let r = chain_root(f, cond_start, open - 1)?;
            return toks[r].tok.ident().map(str::to_string);
        }
        return None;
    }
    Some(name)
}

/// Walks a method chain backward from token `k` to its root identifier.
fn chain_root(f: &SourceFile, cond_start: usize, k: usize) -> Option<usize> {
    let toks = &f.tokens;
    let mut p = k;
    while p > cond_start {
        if toks[p - 1].tok.is(b'.') {
            if p < 2 {
                break;
            }
            let mut q = p - 2;
            if toks[q].tok.is(b')') || toks[q].tok.is(b']') {
                let o = f.matches[q];
                if o == usize::MAX {
                    return None;
                }
                q = o;
                // A call's opener is preceded by the method name; a bare
                // parenthesized expression is not — give up on those.
                if q == 0 || toks[q - 1].tok.ident().is_none() {
                    return None;
                }
                q -= 1;
            }
            match toks[q].tok {
                Tok::Ident(_) | Tok::Num(_) => p = q,
                _ => break,
            }
        } else if toks[p - 1].tok.is(b':') {
            if p >= 3 && toks[p - 2].tok.is(b':') && toks[p - 3].tok.ident().is_some() {
                p -= 3;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    Some(p)
}

/// First identifier in a token range, skipping `&`/`*`/`mut`.
fn first_ident(f: &SourceFile, start: usize, end: usize) -> Option<String> {
    (start..end).find_map(|j| {
        f.tokens[j]
            .tok
            .ident()
            .filter(|n| *n != "mut")
            .map(str::to_string)
    })
}

/// Renders `` `a` ``, `` `a`/`b` ``.
fn join_names(names: &[&str]) -> String {
    names
        .iter()
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::new("crates/core/src/ops.rs", src))
    }

    const ONE_SIDED: &str = "\
pub fn annotation_at<A: AggAnnotation>(rel: &MKRel<A>, t: &Tuple<Value<A>>) -> Result<A> {
    if !has_symbolic(rel) {
        return Ok(rel.get(t).cloned().unwrap_or_else(A::zero));
    }
    general_path(rel, t)
}
";

    #[test]
    fn flags_the_pr4_one_sided_gate() {
        let d = diags(ONE_SIDED);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "groundness");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("`t`"), "{}", d[0].message);
    }

    #[test]
    fn accepts_the_two_sided_gate() {
        let src = "\
pub fn annotation_at<A: AggAnnotation>(rel: &MKRel<A>, t: &Tuple<Value<A>>) -> Result<A> {
    if !has_symbolic(rel) && !t.values().iter().any(Value::is_agg) {
        return Ok(rel.get(t).cloned().unwrap_or_else(A::zero));
    }
    general_path(rel, t)
}
";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn loop_local_predicates_do_not_count() {
        let src = "\
pub fn union<A>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    for (t, k) in r1.iter() {
        if is_ground_at(t, &positions) {
            fast(t, k);
        }
    }
    slow(r1, r2)
}
";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn unary_operators_are_exempt() {
        let src = "\
pub fn project<A>(rel: &MKRel<A>, attrs: &[&str]) -> Result<MKRel<A>> {
    if rel.iter().all(|(t, _)| is_ground_at(t, &positions)) {
        return fast(rel);
    }
    slow(rel)
}
";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn both_sides_by_free_calls_accepted() {
        let src = "\
pub fn union<A>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    if !has_symbolic(r1) && !has_symbolic(r2) {
        return fast(r1, r2);
    }
    slow(r1, r2)
}
";
        assert!(diags(src).is_empty());
    }
}
