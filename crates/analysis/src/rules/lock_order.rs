//! Rule `lock-order`: global guard-acquisition order, interprocedurally.
//!
//! The intra-procedural `lock` rule enforces "one guard at a time"
//! within a single function. This rule closes the cross-function gap:
//!
//! 1. **Acquisition-order cycles.** Every acquisition event contributes
//!    edges `H → L` for each guard `H` live when lock `L` is taken —
//!    directly, or transitively when a call is made under `H` to a
//!    function that (transitively) acquires `L`. A cycle in the union of
//!    these edges across `engine`/`server` is a deadlock waiting for a
//!    scheduler: two sessions taking the same pair of locks in opposite
//!    orders. The canonical order (documented in
//!    `docs/ARCHITECTURE.md`) is *database lock before plan-cache
//!    lock*; this rule is what keeps that sentence true.
//! 2. **Transitive I/O under a guard.** The `lock` rule flags stream
//!    I/O while a guard is live in the same function; here the check
//!    follows the call graph, so holding a guard while calling a helper
//!    that blocks on a socket is flagged at the call site.
//!
//! Both checks run on the phase-1 symbol graph: per-function guard
//! events with live sets, and unique-name call resolution (see
//! `graph.rs` for the approximation limits). `does_io` and
//! `locks_acquired` are computed as fixpoints over the call graph, so
//! arbitrarily deep helper chains are seen through; recursion converges
//! because the sets only grow.

use crate::graph::{EventKind, SymbolGraph};
use crate::{Diagnostic, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Files whose functions participate in the global lock graph: crate
/// sources only (tests construct deadlocks on purpose).
pub fn lock_order_scope(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// Checks acquisition-order cycles and transitive I/O under guards.
pub fn check(ws: &Workspace, graph: &SymbolGraph) -> Vec<Diagnostic> {
    let _ = ws;
    let in_scope: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| lock_order_scope(&graph.fns[i].path) && !graph.fns[i].in_test)
        .collect();

    // Fixpoint: the set of locks each function (transitively) acquires,
    // and whether it (transitively) performs stream I/O.
    let mut acquired: Vec<BTreeSet<String>> = vec![BTreeSet::new(); graph.fns.len()];
    let mut does_io: Vec<bool> = vec![false; graph.fns.len()];
    for &i in &in_scope {
        for e in &graph.fns[i].events {
            match &e.kind {
                EventKind::Acquire(lock) => {
                    acquired[i].insert(lock.clone());
                }
                EventKind::Io(_) => does_io[i] = true,
                EventKind::Call(_) => {}
            }
        }
    }
    loop {
        let mut changed = false;
        for &i in &in_scope {
            for e in &graph.fns[i].events {
                let EventKind::Call(callee) = &e.kind else {
                    continue;
                };
                let Some(j) = graph.resolve(callee).filter(|j| in_scope.contains(j)) else {
                    continue;
                };
                if does_io[j] && !does_io[i] {
                    does_io[i] = true;
                    changed = true;
                }
                let extra: Vec<String> = acquired[j].difference(&acquired[i]).cloned().collect();
                if !extra.is_empty() {
                    acquired[i].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge collection: held-lock → acquired-lock, with one witness site
    // per edge (first in path/line order wins; fns are in file order).
    let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    let mut out = Vec::new();
    for &i in &in_scope {
        let f = &graph.fns[i];
        for e in &f.events {
            let targets: BTreeSet<String> = match &e.kind {
                EventKind::Acquire(lock) => std::iter::once(lock.clone()).collect(),
                EventKind::Call(callee) => {
                    let Some(j) = graph.resolve(callee).filter(|j| in_scope.contains(j)) else {
                        continue;
                    };
                    if !e.live.is_empty() && does_io[j] {
                        out.push(Diagnostic {
                            path: f.path.clone(),
                            line: e.line,
                            rule: "lock-order",
                            message: format!(
                                "call to `{callee}` performs stream I/O (transitively) \
                                 while the `{}` guard is live — a slow peer stalls \
                                 every session on that lock",
                                e.live.join("`/`")
                            ),
                        });
                    }
                    acquired[j].clone()
                }
                EventKind::Io(_) => continue,
            };
            for held in &e.live {
                for target in &targets {
                    if held == target {
                        continue;
                    }
                    edges
                        .entry((held.clone(), target.clone()))
                        .or_insert_with(|| (f.path.clone(), e.line, f.name.clone()));
                }
            }
        }
    }

    // Cycle detection over the edge graph (tiny: one node per lock
    // name). Report each 2+-lock cycle once, at the lexicographically
    // first witness edge on it.
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let succ = |n: &String| -> Vec<&String> {
        edges
            .keys()
            .filter(|(a, _)| a == n)
            .map(|(_, b)| b)
            .collect()
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in &nodes {
        // DFS from `start` looking for a path back to it.
        let mut stack: Vec<(&String, Vec<String>)> = vec![(start, vec![(*start).clone()])];
        while let Some((n, path)) = stack.pop() {
            for next in succ(n) {
                if next == *start && path.len() >= 2 {
                    let mut cycle = path.clone();
                    let mut canonical = cycle.clone();
                    canonical.sort();
                    if reported.insert(canonical) {
                        cycle.push((*start).clone());
                        let (wpath, wline, wfn) = &edges[&(path[0].clone(), path[1].clone())];
                        out.push(Diagnostic {
                            path: wpath.clone(),
                            line: *wline,
                            rule: "lock-order",
                            message: format!(
                                "lock acquisition cycle {} (witness: `{wfn}` takes \
                                 `{}` while holding `{}`) — pin one global order \
                                 (see docs/ARCHITECTURE.md)",
                                cycle.join(" → "),
                                path[1],
                                path[0],
                            ),
                        });
                    }
                } else if !path.contains(next) {
                    let mut p = path.clone();
                    p.push(next.clone());
                    stack.push((next, p));
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn run(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p, s))
                .collect(),
            ..Workspace::default()
        };
        let graph = SymbolGraph::build(&ws);
        check(&ws, &graph)
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let src = "\
impl S {
    fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
    }
    fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
    }
}
";
        let d = run(vec![("crates/server/src/x.rs", src)]);
        let cycles: Vec<&Diagnostic> = d.iter().filter(|x| x.message.contains("cycle")).collect();
        assert_eq!(cycles.len(), 1, "{d:?}");
        assert!(cycles[0].message.contains("alpha"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("beta"), "{}", cycles[0].message);
    }

    #[test]
    fn consistent_order_is_clean_and_interprocedural_cycle_fires() {
        let consistent = "\
impl S {
    fn one(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
    fn two(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
}
";
        assert!(run(vec![("crates/server/src/x.rs", consistent)]).is_empty());

        // The cycle only closes through the call graph: `backward` takes
        // beta then *calls* a helper that takes alpha.
        let a = "\
impl S {
    fn forward(&self) { let a = self.alpha.lock(); self.take_beta(); }
    fn take_beta(&self) { let b = self.beta.lock(); }
}
";
        let b = "\
impl T {
    fn backward(&self) { let b = self.beta.lock(); self.take_alpha(); }
    fn take_alpha(&self) { let a = self.alpha.lock(); }
}
";
        let d = run(vec![
            ("crates/engine/src/a.rs", a),
            ("crates/server/src/b.rs", b),
        ]);
        assert!(
            d.iter().any(|x| x.message.contains("cycle")),
            "interprocedural cycle not found: {d:?}"
        );
    }

    #[test]
    fn transitive_io_under_guard_fires_at_the_call_site() {
        let src = "\
impl S {
    fn handler(&self, s: &mut TcpStream) {
        let g = self.conns.lock();
        self.respond(s);
    }
    fn respond(&self, s: &mut TcpStream) {
        s.write_all(b\"ok\");
    }
}
";
        let d = run(vec![("crates/server/src/x.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("respond"), "{}", d[0].message);
        assert!(d[0].message.contains("conns"), "{}", d[0].message);
    }

    #[test]
    fn test_functions_do_not_participate() {
        let src = "\
#[cfg(test)]
mod tests {
    fn forward(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
    fn backward(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }
}
";
        assert!(run(vec![("crates/server/src/x.rs", src)]).is_empty());
    }
}
