//! Rule `lock`: guard discipline on the serving path.
//!
//! Two deadlock/stall classes for the epoch-publish vs. plan-cache
//! `RwLock` pair and the session table `Mutex`:
//!
//! 1. **Nested acquisition** — taking `.lock()` / `.read()` /
//!    `.write()` while another guard is live in the same scope. Lock
//!    ordering is nothing anyone audits; the project rule is simply
//!    "one guard at a time", with `drop(guard)` to end a guard's life
//!    early (the `op_sql` idiom in `session.rs`).
//! 2. **Lock held across socket I/O** — a blocking `TcpStream` read or
//!    write while a guard is live stalls every other session on that
//!    lock for as long as the peer cares to dawdle.
//!
//! Acquisition is recognized as `.lock()` / `.read()` / `.write()` with
//! *empty* argument lists (`RwLock`/`Mutex` methods take none), which
//! cleanly separates them from `io::Read::read(&mut buf)` /
//! `io::Write::write(&buf)` — those take buffers and count as I/O
//! instead.

use crate::lexer::Tok;
use crate::{Diagnostic, SourceFile};

/// Method names that perform (possibly blocking) stream I/O.
const IO_METHODS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "read_until",
    "flush",
];

/// A live guard: its binding (if `let`-bound), the brace depth of the
/// acquisition, and whether it is a temporary dropped at statement end.
#[derive(Debug)]
struct Guard {
    name: Option<String>,
    depth: i32,
    line: u32,
    temporary: bool,
}

/// Scans one file for nested guards and lock-across-I/O.
pub fn check(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &f.tokens;
    let mut depth: i32 = 0;
    let mut live: Vec<Guard> = Vec::new();
    let mut stmt_start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if f.in_test(i) {
            continue;
        }
        match &t.tok {
            Tok::Punct(b'{') => {
                depth += 1;
                stmt_start = i + 1;
            }
            Tok::Punct(b'}') => {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
            }
            Tok::Punct(b';') => {
                live.retain(|g| !(g.temporary && g.depth == depth));
                stmt_start = i + 1;
            }
            Tok::Ident(name)
                if name == "drop" && toks.get(i + 1).is_some_and(|n| n.tok.is(b'(')) =>
            {
                // `drop(guard)` ends the guard's life.
                if let Some(arg) = toks.get(i + 2).and_then(|a| a.tok.ident()) {
                    live.retain(|g| g.name.as_deref() != Some(arg));
                }
            }
            Tok::Ident(name)
                if (name == "lock" || name == "read" || name == "write")
                    && i > 0
                    && toks[i - 1].tok.is(b'.')
                    && toks.get(i + 1).is_some_and(|n| n.tok.is(b'('))
                    && toks.get(i + 2).is_some_and(|n| n.tok.is(b')')) =>
            {
                if let Some(g) = live.first() {
                    out.push(Diagnostic {
                        path: f.path.clone(),
                        line: t.line,
                        rule: "lock",
                        message: format!(
                            "`.{}()` while the guard acquired on line {} is still \
                             live — drop it first (one guard at a time)",
                            name, g.line
                        ),
                    });
                }
                let binding = let_binding(toks, stmt_start, i);
                live.push(Guard {
                    temporary: binding.is_none(),
                    name: binding,
                    depth,
                    line: t.line,
                });
            }
            Tok::Ident(name)
                if i > 0
                    && toks[i - 1].tok.is(b'.')
                    && toks.get(i + 1).is_some_and(|n| n.tok.is(b'('))
                    && is_io(name, toks.get(i + 2).map(|n| &n.tok)) =>
            {
                if let Some(g) = &live.first() {
                    out.push(Diagnostic {
                        path: f.path.clone(),
                        line: t.line,
                        rule: "lock",
                        message: format!(
                            "stream I/O (`.{}`) while the guard acquired on line {} \
                             is still live — a slow peer stalls every session on \
                             that lock",
                            name, g.line
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// True iff a `.name(` call is stream I/O: a known I/O method, or
/// `read`/`write` with a non-empty argument list (the `io` traits take
/// buffers; the lock methods take nothing).
fn is_io(name: &str, after_open: Option<&Tok>) -> bool {
    if IO_METHODS.contains(&name) {
        return true;
    }
    (name == "read" || name == "write") && !after_open.is_some_and(|t| t.is(b')'))
}

/// If the statement beginning at `stmt_start` is `let [mut] NAME = ...`,
/// returns NAME.
fn let_binding(toks: &[crate::lexer::Token], stmt_start: usize, before: usize) -> Option<String> {
    let mut j = stmt_start;
    while j < before && !toks[j].tok.is_ident("let") {
        j += 1;
    }
    if j >= before {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k).is_some_and(|t| t.tok.is_ident("mut")) {
        k += 1;
    }
    toks.get(k).and_then(|t| t.tok.ident()).map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::new("crates/server/src/server.rs", src))
    }

    #[test]
    fn nested_guards_are_flagged() {
        let src = "fn f(&self) {\n\
                   let db = self.db.read();\n\
                   let cache = self.cache.lock();\n\
                   }\n";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].rule, d[0].line), ("lock", 3));
    }

    #[test]
    fn drop_ends_the_guard() {
        let src = "fn f(&self) {\n\
                   let db = self.db.read();\n\
                   drop(db);\n\
                   let cache = self.cache.lock();\n\
                   }\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn scope_close_ends_the_guard() {
        let src = "fn f(&self) {\n\
                   { let db = self.db.read(); use_it(&db); }\n\
                   let cache = self.cache.lock();\n\
                   }\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn io_under_a_guard_is_flagged() {
        let src = "fn f(&self, w: &mut TcpStream) {\n\
                   let db = self.db.read();\n\
                   w.write_all(b\"x\");\n\
                   }\n";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("stream I/O"));
    }

    #[test]
    fn io_read_write_are_not_acquisitions() {
        let src = "fn f(r: &mut TcpStream) {\n\
                   let mut buf = [0u8; 4];\n\
                   r.read(&mut buf);\n\
                   r.write(&buf);\n\
                   r.flush();\n\
                   }\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn f(&self) {\n\
                   touch(self.a.lock());\n\
                   touch(self.b.lock());\n\
                   }\n";
        // Neither acquisition is let-bound, so each guard is a
        // temporary dead at its own `;`.
        assert!(diags(src).is_empty());
    }
}
