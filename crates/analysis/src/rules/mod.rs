//! The project-invariant rules and the waiver-aware driver logic.
//!
//! Each line-local rule module exposes a `check(&SourceFile)` and each
//! graph-aware rule a `check(&Workspace, &SymbolGraph)`, all producing
//! raw [`Diagnostic`]s; [`run_report`] builds the phase-1 symbol graph
//! once, applies the per-rule path scopes, then settles waivers: a
//! `// lint:allow(<rule>, reason = "...")` comment on the finding's line
//! (or the line above) suppresses it, a waiver with no reason is itself
//! reported, and a waiver that suppresses nothing is reported as unused.
//! Suppressed findings are kept (the `--json` output lists them under
//! `"waived"`), so an audit can see what the waivers are holding back.

pub mod dispatch;
pub mod drift;
pub mod envreg;
pub mod groundness;
pub mod lock_order;
pub mod locks;
pub mod oracle;
pub mod panic_free;

use crate::graph::SymbolGraph;
use crate::{Diagnostic, Workspace};

/// Files subject to the `groundness` rule: the operator modules where
/// ground/symbolic fast paths live — the row-at-a-time operators, the
/// vectorized batch/typed kernels under `ops/`, and the typed columnar
/// storage those kernels run on (whose fast paths are gated on the
/// ground partition, via `has_fringe`/`is_all_ground`).
pub fn groundness_scope(path: &str) -> bool {
    path == "crates/core/src/ops.rs"
        || path.starts_with("crates/core/src/ops/")
        || matches!(
            path,
            "crates/krel/src/batch.rs" | "crates/krel/src/typed.rs"
        )
}

/// Files subject to the `panic` and `index` rules: the designated
/// execute-path modules — the operator kernels, the engine's
/// plan/execute pipeline, and **all** of the server crate (a client
/// request must never be able to take down the process, and the serving
/// binaries sit directly on the request path).
pub fn execute_scope(path: &str) -> bool {
    groundness_scope(path)
        || path.starts_with("crates/server/src/")
        || matches!(
            path,
            "crates/core/src/par.rs"
                | "crates/engine/src/exec.rs"
                | "crates/engine/src/phys.rs"
                | "crates/engine/src/opt.rs"
                | "crates/engine/src/view.rs"
        )
}

/// Files subject to the `lock` rule: everywhere locks or sockets appear
/// on the serving path.
pub fn lock_scope(path: &str) -> bool {
    execute_scope(path)
}

/// A settled lint run: surviving findings plus the diagnostics that
/// waivers suppressed (reported by `--json`, hidden by default).
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survive waivers, sorted by path, line, rule.
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed by a waiver, same order.
    pub waived: Vec<Diagnostic>,
}

/// Runs the path-scoped and cross-file rules, before waivers.
fn collect_raw(ws: &Workspace) -> Vec<Diagnostic> {
    let graph = SymbolGraph::build(ws);
    let mut raw: Vec<Diagnostic> = Vec::new();
    for f in &ws.files {
        if groundness_scope(&f.path) {
            raw.extend(groundness::check(f));
        }
        if execute_scope(&f.path) {
            raw.extend(panic_free::check(f));
        }
        if lock_scope(&f.path) {
            raw.extend(locks::check(f));
        }
    }
    raw.extend(oracle::check(ws));
    raw.extend(envreg::check(ws));
    raw.extend(dispatch::check(ws, &graph));
    raw.extend(lock_order::check(ws, &graph));
    raw.extend(drift::check(ws, &graph));
    raw
}

/// Runs every rule over the workspace and settles waivers.
pub fn run_report(ws: &Workspace) -> LintReport {
    let raw = collect_raw(ws);
    let mut report = LintReport::default();

    // Split findings by waiver coverage (reason-less waivers still
    // suppress — the missing reason is its own diagnostic below, so one
    // sloppy comment yields one finding, not two).
    for d in raw.iter() {
        let waived = ws.file(&d.path).is_some_and(|f| f.waived(d.rule, d.line));
        if waived {
            report.waived.push(d.clone());
        } else {
            report.findings.push(d.clone());
        }
    }

    // Waiver hygiene: a reason is mandatory, and so is being
    // load-bearing — the rules are deterministic, so a waiver is used
    // iff some raw finding of its rule landed on a line it covers.
    for f in &ws.files {
        for w in &f.waivers {
            if w.reason.is_none() {
                report.findings.push(Diagnostic {
                    path: f.path.clone(),
                    line: w.line,
                    rule: "waiver",
                    message: format!(
                        "lint:allow({}) without a reason — write \
                         lint:allow({}, reason = \"...\")",
                        w.rule, w.rule
                    ),
                });
            }
            let used = raw.iter().any(|d| {
                d.path == f.path && d.rule == w.rule && (w.line == d.line || w.line + 1 == d.line)
            });
            if !used {
                report.findings.push(Diagnostic {
                    path: f.path.clone(),
                    line: w.line,
                    rule: "waiver",
                    message: format!(
                        "unused waiver: no `{}` finding on line {} or {}",
                        w.rule,
                        w.line,
                        w.line + 1
                    ),
                });
            }
        }
    }
    report.findings.sort();
    report.findings.dedup();
    report.waived.sort();
    report.waived.dedup();
    report
}

/// Runs every rule over the workspace and settles waivers. The result is
/// sorted by path, line, rule.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    run_report(ws).findings
}
