//! Rule `oracle`: every physical operator has a proptested spec oracle.
//!
//! The correctness contract of the whole engine is "bit-identical to the
//! literal §4.3 / §3.2 specification": every hash-partitioned fast path
//! in `core::ops` is only trusted because a naive `specops::` twin
//! exists and a property test compares the two. This rule closes the
//! gaps a new operator could slip through, in escalating order:
//!
//! 1. every public operator function in `core/src/ops.rs` (an
//!    `MKRel`-taking, `Result`-returning `pub fn`) must have a `specops`
//!    function of the same base name (`_opts` variants share their
//!    base's oracle);
//! 2. some proptest file must **call** `specops::<base>(...)` — an
//!    actual call expression, not a name in a comment or string;
//! 3. that same file must also call the physical path
//!    (`ops::<base>(...)` or `ops::<base>_opts(...)`), so the oracle and
//!    the fast path actually meet in one test;
//! 4. for operators with an `_opts` variant (the threaded fast paths),
//!    an oracle-calling file must pin **both** `threads = 1` and
//!    `threads = 4`: via `with_threads(1)` / `with_threads(4)` literals,
//!    `ExecOptions::serial()` (= 1), or a `for t in [1, 4]` loop whose
//!    variable feeds `with_threads(t)`.

use crate::lexer::Tok;
use crate::{Diagnostic, SourceFile, Workspace};
use std::collections::BTreeSet;

/// Path of the physical operator module.
pub const OPS_PATH: &str = "crates/core/src/ops.rs";
/// Path of the specification oracle module.
pub const SPECOPS_PATH: &str = "crates/core/src/specops.rs";

/// Cross-checks operator exports against oracles and proptest use.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(ops) = ws.file(OPS_PATH) else {
        return Vec::new();
    };
    let spec_fns: Vec<String> = ws.file(SPECOPS_PATH).map(fn_names).unwrap_or_default();
    let proptests: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| {
            f.path.contains("proptest")
                && (f.path.contains("/tests/") || f.path.ends_with("tests.rs"))
        })
        .collect();

    let exports = operator_exports(ops);
    let opts_bases: BTreeSet<&str> = exports
        .iter()
        .filter_map(|(n, _)| n.strip_suffix("_opts"))
        .collect();

    let mut out = Vec::new();
    for (name, line) in &exports {
        let base = name.strip_suffix("_opts").unwrap_or(name).to_string();
        if !spec_fns.contains(&base) {
            out.push(Diagnostic {
                path: ops.path.clone(),
                line: *line,
                rule: "oracle",
                message: format!(
                    "operator `{name}` has no `specops::{base}` oracle — add the \
                     literal-spec twin before trusting the fast path"
                ),
            });
            continue;
        }
        // The oracle must be *called*; a name inside a string or comment
        // earns nothing.
        let callers: Vec<&&SourceFile> = proptests
            .iter()
            .filter(|f| calls(f, "specops", &base))
            .collect();
        if callers.is_empty() {
            out.push(Diagnostic {
                path: ops.path.clone(),
                line: *line,
                rule: "oracle",
                message: format!(
                    "no proptest calls `specops::{base}(...)` — operator `{name}` \
                     is effectively unoracled (a textual mention is not a test)"
                ),
            });
            continue;
        }
        let paired: Vec<&&&SourceFile> = callers
            .iter()
            .filter(|f| calls(f, "ops", &base) || calls(f, "ops", &format!("{base}_opts")))
            .collect();
        if paired.is_empty() {
            out.push(Diagnostic {
                path: ops.path.clone(),
                line: *line,
                rule: "oracle",
                message: format!(
                    "`specops::{base}` is called, but no calling proptest file \
                     also runs the physical path (`ops::{base}`) — the oracle \
                     never meets the fast path"
                ),
            });
            continue;
        }
        if opts_bases.contains(base.as_str()) {
            let threads_ok = paired.iter().any(|f| {
                let ev = thread_evidence(f);
                ev.contains(&1) && ev.contains(&4)
            });
            if !threads_ok {
                out.push(Diagnostic {
                    path: ops.path.clone(),
                    line: *line,
                    rule: "oracle",
                    message: format!(
                        "operator `{name}` has a threaded fast path but no \
                         oracle proptest pins both threads=1 and threads=4 \
                         (use serial()/with_threads(1) and with_threads(4))"
                    ),
                });
            }
        }
    }
    out
}

/// Public operator exports of `ops.rs`: module-level `pub fn`s that take
/// a relational argument and return `Result`, with the line of the `fn`.
pub fn operator_exports(f: &SourceFile) -> Vec<(String, u32)> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => depth -= 1,
            Tok::Ident(kw)
                if kw == "pub"
                    && depth == 0
                    && !f.in_test(i)
                    && toks.get(i + 1).is_some_and(|t| t.tok.is_ident("fn")) =>
            {
                if let Some(name) = toks.get(i + 2).and_then(|t| t.tok.ident()) {
                    // The signature runs to the body `{`; relational +
                    // Result detection is a token scan over it.
                    let mut j = i + 3;
                    let mut relational = false;
                    let mut fallible = false;
                    while j < toks.len() && !toks[j].tok.is(b'{') && !toks[j].tok.is(b';') {
                        if let Some(id) = toks[j].tok.ident() {
                            relational |= id == "MKRel";
                            fallible |= id == "Result";
                        }
                        j += 1;
                    }
                    if relational && fallible {
                        out.push((name.to_string(), toks[i].line));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// All `fn` names declared in a file (any visibility, any depth).
fn fn_names(f: &SourceFile) -> Vec<String> {
    let toks = &f.tokens;
    (0..toks.len())
        .filter(|&i| toks[i].tok.is_ident("fn"))
        .filter_map(|i| {
            toks.get(i + 1)
                .and_then(|t| t.tok.ident())
                .map(str::to_string)
        })
        .collect()
}

/// True iff the file contains a call expression
/// `<module>::<name>(...)` — optionally with a turbofish between the
/// name and the argument list.
fn calls(f: &SourceFile, module: &str, name: &str) -> bool {
    let toks = &f.tokens;
    (0..toks.len().saturating_sub(4)).any(|i| {
        if !(toks[i].tok.is_ident(module)
            && toks[i + 1].tok.is(b':')
            && toks[i + 2].tok.is(b':')
            && toks[i + 3].tok.is_ident(name))
        {
            return false;
        }
        let mut j = i + 4;
        if toks.get(j).is_some_and(|t| t.tok.is(b':'))
            && toks.get(j + 1).is_some_and(|t| t.tok.is(b':'))
            && toks.get(j + 2).is_some_and(|t| t.tok.is(b'<'))
        {
            let mut depth = 1u32;
            j += 3;
            while j < toks.len() && depth > 0 {
                if toks[j].tok.is(b'<') {
                    depth += 1;
                } else if toks[j].tok.is(b'>') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        toks.get(j).is_some_and(|t| t.tok.is(b'('))
    })
}

/// Thread counts a test file demonstrably runs the physical path at:
/// `with_threads(<n>)` literals, `serial()` (= 1), and `with_threads(v)`
/// where `v` is a `for v in [<n>, ...]` loop variable over a literal
/// array.
fn thread_evidence(f: &SourceFile) -> BTreeSet<u64> {
    let toks = &f.tokens;
    let mut out = BTreeSet::new();

    // Loop variables drawn from literal arrays: `for t in [1, 4] { .. }`.
    let mut loop_vars: Vec<(&str, Vec<u64>)> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].tok.is_ident("for") {
            continue;
        }
        let Some(var) = toks.get(i + 1).and_then(|t| t.tok.ident()) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|t| t.tok.is_ident("in"))
            || !toks.get(i + 3).is_some_and(|t| t.tok.is(b'['))
        {
            continue;
        }
        let close = f.matches[i + 3];
        if close == usize::MAX {
            continue;
        }
        let nums: Vec<u64> = toks[i + 4..close]
            .iter()
            .filter_map(|t| t.tok.num_value())
            .collect();
        if !nums.is_empty() {
            loop_vars.push((var, nums));
        }
    }

    for i in 0..toks.len() {
        if toks[i].tok.is_ident("serial") && toks.get(i + 1).is_some_and(|t| t.tok.is(b'(')) {
            out.insert(1);
        }
        if toks[i].tok.is_ident("with_threads") && toks.get(i + 1).is_some_and(|t| t.tok.is(b'(')) {
            if let Some(t) = toks.get(i + 2) {
                if let Some(n) = t.tok.num_value() {
                    out.insert(n);
                } else if let Some(id) = t.tok.ident() {
                    for (v, nums) in &loop_vars {
                        if *v == id {
                            out.extend(nums.iter().copied());
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(ops: &str, spec: &str, prop: &str) -> Workspace {
        Workspace {
            files: vec![
                SourceFile::new(OPS_PATH, ops),
                SourceFile::new(SPECOPS_PATH, spec),
                SourceFile::new("crates/core/tests/hash_vs_spec_proptests.rs", prop),
            ],
            ..Workspace::default()
        }
    }

    const OPS: &str = "\
pub fn union<A>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> { todo() }
pub fn union_opts<A>(r1: &MKRel<A>, r2: &MKRel<A>, o: Opts) -> Result<MKRel<A>> { todo() }
pub fn has_symbolic<A>(rel: &MKRel<A>) -> bool { false }
";
    const SPEC: &str =
        "pub fn union<A>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> { todo() }";

    #[test]
    fn covered_operator_at_both_thread_counts_passes() {
        let prop = "\
fn t() {
    let spec = specops::union(&a, &b).unwrap();
    let one = ops::union_opts(&a, &b, ExecOptions::serial()).unwrap();
    let four = ops::union_opts(&a, &b, ExecOptions::default().with_threads(4)).unwrap();
}
";
        let w = ws(OPS, SPEC, prop);
        let d = check(&w);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn thread_loop_variable_counts_as_evidence() {
        let prop = "\
fn t() {
    let spec = specops::union(&a, &b).unwrap();
    for threads in [1, 4] {
        let got = ops::union_opts(&a, &b, ExecOptions::default().with_threads(threads)).unwrap();
    }
}
";
        assert!(check(&ws(OPS, SPEC, prop)).is_empty());
    }

    #[test]
    fn missing_oracle_is_flagged_once_per_export() {
        let w = ws(OPS, "", "");
        let d = check(&w);
        // `union` and `union_opts` both fail (same base); the bool-
        // returning predicate is not an operator export.
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.rule == "oracle"));
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
    }

    #[test]
    fn textual_mention_without_a_call_is_flagged() {
        // `specops::union` appears as a fn-pointer reference (no call
        // parens) and inside a string — neither is an oracle run.
        let prop = "\
fn t() {
    let f = specops::union;
    log(\"compared against specops::union\");
    let got = ops::union(&a, &b).unwrap();
}
";
        let d = check(&ws(OPS, SPEC, prop));
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(
            d[0].message.contains("no proptest calls"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn oracle_call_without_physical_path_is_flagged() {
        let prop = "fn t() { let spec = specops::union(&a, &b).unwrap(); }";
        let d = check(&ws(OPS, SPEC, prop));
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(
            d[0].message.contains("never meets the fast path"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn missing_thread_evidence_is_flagged_for_opts_operators() {
        let prop = "\
fn t() {
    let spec = specops::union(&a, &b).unwrap();
    let got = ops::union_opts(&a, &b, ExecOptions::default().with_threads(4)).unwrap();
}
";
        let d = check(&ws(OPS, SPEC, prop));
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("threads=1"), "{}", d[0].message);

        // An operator with no `_opts` variant needs no thread evidence.
        let ops_single = "pub fn union<A>(r: &MKRel<A>) -> Result<MKRel<A>> { todo() }\n";
        let prop_single = "fn t() { specops::union(&a); ops::union(&a); }";
        assert!(check(&ws(ops_single, SPEC, prop_single)).is_empty());
    }

    #[test]
    fn turbofish_calls_count() {
        let prop = "\
fn t() {
    let spec = specops::union::<Tropical>(&a, &b).unwrap();
    let one = ops::union_opts::<Tropical>(&a, &b, ExecOptions::serial()).unwrap();
    let four = ops::union_opts::<Tropical>(&a, &b, opts.with_threads(4)).unwrap();
}
";
        assert!(check(&ws(OPS, SPEC, prop)).is_empty());
    }
}
