//! Rule `oracle`: every physical operator has a proptested spec oracle.
//!
//! The correctness contract of the whole engine is "bit-identical to the
//! literal §4.3 / §3.2 specification": every hash-partitioned fast path
//! in `core::ops` is only trusted because a naive `specops::` twin
//! exists and a property test compares the two. This rule closes the
//! gap a new operator could slip through: every public operator
//! function in `core/src/ops.rs` (an `MKRel`-taking, `Result`-returning
//! `pub fn`) must have a `specops` function of the same base name
//! (`_opts` variants share their base's oracle), and that
//! `specops::<name>` must be referenced from at least one proptest
//! file.

use crate::lexer::Tok;
use crate::{Diagnostic, SourceFile, Workspace};

/// Path of the physical operator module.
pub const OPS_PATH: &str = "crates/core/src/ops.rs";
/// Path of the specification oracle module.
pub const SPECOPS_PATH: &str = "crates/core/src/specops.rs";

/// Cross-checks operator exports against oracles and proptest use.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(ops) = ws.file(OPS_PATH) else {
        return Vec::new();
    };
    let spec_fns: Vec<String> = ws.file(SPECOPS_PATH).map(fn_names).unwrap_or_default();
    let proptests: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| {
            f.path.contains("proptest")
                && (f.path.contains("/tests/") || f.path.ends_with("tests.rs"))
        })
        .collect();

    let mut out = Vec::new();
    for (name, line) in operator_exports(ops) {
        let base = name.strip_suffix("_opts").unwrap_or(&name).to_string();
        if !spec_fns.contains(&base) {
            out.push(Diagnostic {
                path: ops.path.clone(),
                line,
                rule: "oracle",
                message: format!(
                    "operator `{name}` has no `specops::{base}` oracle — add the \
                     literal-spec twin before trusting the fast path"
                ),
            });
            continue;
        }
        let referenced = proptests.iter().any(|f| references_specops(f, &base));
        if !referenced {
            out.push(Diagnostic {
                path: ops.path.clone(),
                line,
                rule: "oracle",
                message: format!(
                    "`specops::{base}` exists but no proptest references it — \
                     operator `{name}` is effectively unoracled"
                ),
            });
        }
    }
    out
}

/// Public operator exports of `ops.rs`: module-level `pub fn`s that take
/// a relational argument and return `Result`, with the line of the `fn`.
pub fn operator_exports(f: &SourceFile) -> Vec<(String, u32)> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => depth -= 1,
            Tok::Ident(kw)
                if kw == "pub"
                    && depth == 0
                    && !f.in_test(i)
                    && toks.get(i + 1).is_some_and(|t| t.tok.is_ident("fn")) =>
            {
                if let Some(name) = toks.get(i + 2).and_then(|t| t.tok.ident()) {
                    // The signature runs to the body `{`; relational +
                    // Result detection is a token scan over it.
                    let mut j = i + 3;
                    let mut relational = false;
                    let mut fallible = false;
                    while j < toks.len() && !toks[j].tok.is(b'{') && !toks[j].tok.is(b';') {
                        if let Some(id) = toks[j].tok.ident() {
                            relational |= id == "MKRel";
                            fallible |= id == "Result";
                        }
                        j += 1;
                    }
                    if relational && fallible {
                        out.push((name.to_string(), toks[i].line));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// All `fn` names declared in a file (any visibility, any depth).
fn fn_names(f: &SourceFile) -> Vec<String> {
    let toks = &f.tokens;
    (0..toks.len())
        .filter(|&i| toks[i].tok.is_ident("fn"))
        .filter_map(|i| {
            toks.get(i + 1)
                .and_then(|t| t.tok.ident())
                .map(str::to_string)
        })
        .collect()
}

/// True iff the file contains a `specops::<name>` token sequence.
fn references_specops(f: &SourceFile, name: &str) -> bool {
    let toks = &f.tokens;
    (0..toks.len().saturating_sub(3)).any(|i| {
        toks[i].tok.is_ident("specops")
            && toks[i + 1].tok.is(b':')
            && toks[i + 2].tok.is(b':')
            && toks[i + 3].tok.is_ident(name)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(ops: &str, spec: &str, prop: &str) -> Workspace {
        Workspace {
            files: vec![
                SourceFile::new(OPS_PATH, ops),
                SourceFile::new(SPECOPS_PATH, spec),
                SourceFile::new("crates/core/tests/hash_vs_spec_proptests.rs", prop),
            ],
            readme: String::new(),
        }
    }

    const OPS: &str = "\
pub fn union<A>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> { todo() }
pub fn union_opts<A>(r1: &MKRel<A>, r2: &MKRel<A>, o: Opts) -> Result<MKRel<A>> { todo() }
pub fn has_symbolic<A>(rel: &MKRel<A>) -> bool { false }
";

    #[test]
    fn covered_operator_passes() {
        let w = ws(
            OPS,
            "pub fn union<A>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> { todo() }",
            "fn t() { let _ = specops::union(&a, &b); }",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn missing_oracle_is_flagged_once_per_export() {
        let w = ws(OPS, "", "");
        let d = check(&w);
        // `union` and `union_opts` both fail (same base); the bool-
        // returning predicate is not an operator export.
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.rule == "oracle"));
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
    }

    #[test]
    fn unreferenced_oracle_is_flagged() {
        let w = ws(
            OPS,
            "pub fn union<A>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> { todo() }",
            "fn t() {}",
        );
        let d = check(&w);
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains("no proptest references"));
    }
}
