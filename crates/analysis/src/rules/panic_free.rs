//! Rules `panic` and `index`: panic-freedom on the execute path.
//!
//! In the designated execute-path modules a malformed query, frame, or
//! plan must surface as a `RelError`, never a panic: these threads serve
//! client sessions, and a panic tears the session down (PR 5 swept
//! `expect()` out of `phys::lower` for exactly this reason). The rule
//! denies `.unwrap()` / `.expect(...)`, the `panic!` / `unreachable!` /
//! `todo!` / `unimplemented!` macros, and bare slice indexing `x[i]`
//! (including range slicing, which panics just the same).
//!
//! Invariant-bound hot-loop indexing that would cost a branch per tuple
//! can be waived with `// lint:allow(index, reason = "...")`.

use crate::lexer::Tok;
use crate::{Diagnostic, SourceFile};

/// Macros that abort the thread.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords (and keyword-like idents) after which a `[` is a pattern,
/// array literal, or type — not an index expression.
const NON_INDEX_PREFIX: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Scans one execute-path file for panic sites and bare indexing.
pub fn check(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if f.in_test(i) {
            continue;
        }
        match &t.tok {
            Tok::Ident(name) if name == "unwrap" || name == "expect" => {
                let method = i > 0 && toks[i - 1].tok.is(b'.');
                let called = toks.get(i + 1).is_some_and(|n| n.tok.is(b'('));
                if method && called {
                    out.push(Diagnostic {
                        path: f.path.clone(),
                        line: t.line,
                        rule: "panic",
                        message: format!(
                            "`.{name}(...)` on the execute path — return a RelError \
                             (or waive with lint:allow(panic, reason = \"...\"))"
                        ),
                    });
                }
            }
            Tok::Ident(name)
                if PANIC_MACROS.contains(&name.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.tok.is(b'!')) =>
            {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: t.line,
                    rule: "panic",
                    message: format!(
                        "`{name}!` on the execute path — return a RelError \
                         (or waive with lint:allow(panic, reason = \"...\"))"
                    ),
                });
            }
            Tok::Punct(b'[') if i > 0 => {
                let indexes = match &toks[i - 1].tok {
                    Tok::Ident(prev) => !NON_INDEX_PREFIX.contains(&prev.as_str()),
                    Tok::Punct(b')' | b']') => true,
                    Tok::Num(_) => true,
                    _ => false,
                };
                if indexes {
                    out.push(Diagnostic {
                        path: f.path.clone(),
                        line: t.line,
                        rule: "index",
                        message: "bare slice indexing on the execute path — use .get() \
                                  (or waive with lint:allow(index, reason = \"...\"))"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(src: &str, rule: &str) -> Vec<u32> {
        let f = SourceFile::new("x.rs", src);
        check(&f)
            .into_iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.line)
            .collect()
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f() {\n\
                   x.unwrap();\n\
                   y.expect(\"msg\");\n\
                   unreachable!(\"no\");\n\
                   }\n";
        assert_eq!(lines_of(src, "panic"), vec![2, 3, 4]);
    }

    #[test]
    fn spares_unwrap_or_and_option_combinators() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(p); z.expect_err(\"e\"); }";
        assert!(lines_of(src, "panic").is_empty());
    }

    #[test]
    fn flags_bare_indexing_but_not_types_or_literals() {
        let src = "fn f(a: &[u8], m: [u8; 2]) {\n\
                   let v = vec![1, 2];\n\
                   let w = [3, 4];\n\
                   let x = a[0];\n\
                   let y = t.0[1];\n\
                   }\n";
        assert_eq!(lines_of(src, "index"), vec![4, 5]);
    }

    #[test]
    fn skips_cfg_test_blocks() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        assert!(lines_of(src, "panic").is_empty());
    }
}
