//! Workspace file discovery for the lint driver.

use crate::{SourceFile, Workspace};
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, VCS metadata, and
/// the analyzer's own fixtures (each seeded with an intentional
/// violation). The vendored stand-ins are included — they are
/// first-party code here and read registered env knobs.
fn skip_dir(rel: &str) -> bool {
    let last = rel.rsplit('/').next().unwrap_or(rel);
    last == "target" || last.starts_with('.') || rel == "crates/analysis/tests/fixtures"
}

/// Walks `root` and loads every workspace `.rs` file plus the README
/// into a [`Workspace`]. Paths are stored root-relative with forward
/// slashes. I/O errors on individual files are skipped (the driver lints
/// a tree that already builds).
pub fn load_workspace(root: &Path) -> Workspace {
    let mut ws = Workspace::default();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            let rel = relpath(root, &path);
            if path.is_dir() {
                if !skip_dir(&rel) {
                    stack.push(path);
                }
            } else if rel.ends_with(".rs") {
                if let Ok(text) = fs::read_to_string(&path) {
                    ws.files.push(SourceFile::new(rel, text));
                }
            }
        }
    }
    ws.files.sort_by(|a, b| a.path.cmp(&b.path));
    ws.readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    ws.wire_doc = fs::read_to_string(root.join("docs/WIRE_PROTOCOL.md")).unwrap_or_default();
    ws
}

/// Root-relative path with forward slashes.
fn relpath(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_fixtures_and_target() {
        assert!(skip_dir("crates/analysis/tests/fixtures"));
        assert!(skip_dir("target"));
        assert!(skip_dir("crates/core/target"));
        assert!(!skip_dir("vendor"));
        assert!(!skip_dir("crates/analysis/tests"));
        assert!(!skip_dir("crates/core/src"));
    }
}
