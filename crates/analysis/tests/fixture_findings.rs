//! End-to-end fixture tests: each rule fires at a pinned `file:line` on
//! its violation fixture, and a `lint:allow(<rule>, reason = "...")`
//! comment suppresses exactly the covered finding.
//!
//! Fixtures live in `tests/fixtures/` and are *excluded* from the real
//! workspace walk — they exist only to be loaded here under in-scope
//! pseudo-paths.

use analysis::rules::run_all;
use analysis::{Diagnostic, SourceFile, Workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ws(files: Vec<(&str, String)>) -> Workspace {
    Workspace {
        files: files
            .into_iter()
            .map(|(p, text)| SourceFile::new(p, text))
            .collect(),
        ..Workspace::default()
    }
}

fn of_rule<'a>(d: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    d.iter().filter(|x| x.rule == rule).collect()
}

#[test]
fn groundness_fires_on_the_pr4_one_sided_gate() {
    let w = ws(vec![(
        "crates/core/src/ops.rs",
        fixture("groundness_one_sided.rs"),
    )]);
    let d = run_all(&w);
    let g = of_rule(&d, "groundness");
    assert_eq!(g.len(), 1, "{d:?}");
    assert_eq!(
        (g[0].path.as_str(), g[0].line),
        ("crates/core/src/ops.rs", 8)
    );
    assert!(g[0].message.contains("annotation_at"), "{}", g[0].message);
    assert!(g[0].message.contains("`t`"), "{}", g[0].message);
}

#[test]
fn groundness_fires_on_an_unguarded_typed_fast_path() {
    // The typed-kernel modules in krel are in scope, and the chunk-level
    // predicates (`has_fringe`) count: a typed fast path gating only one
    // of two chunk operands is the PR 4 bug class in columnar clothing.
    let w = ws(vec![(
        "crates/krel/src/typed.rs",
        fixture("typed_one_sided.rs"),
    )]);
    let d = run_all(&w);
    let g = of_rule(&d, "groundness");
    assert_eq!(g.len(), 1, "{d:?}");
    assert_eq!(
        (g[0].path.as_str(), g[0].line),
        ("crates/krel/src/typed.rs", 6)
    );
    assert!(g[0].message.contains("join_typed"), "{}", g[0].message);
    assert!(g[0].message.contains("`right`"), "{}", g[0].message);
}

#[test]
fn panic_and_index_fire_at_pinned_lines() {
    let w = ws(vec![(
        "crates/engine/src/exec.rs",
        fixture("panic_index.rs"),
    )]);
    let d = run_all(&w);
    let panics: Vec<u32> = of_rule(&d, "panic").iter().map(|x| x.line).collect();
    assert_eq!(panics, vec![5, 6, 8], "{d:?}");
    let indexes: Vec<u32> = of_rule(&d, "index").iter().map(|x| x.line).collect();
    assert_eq!(indexes, vec![10], "{d:?}");
}

#[test]
fn panic_rule_covers_the_whole_server_crate() {
    // The execute scope is all of crates/server/src — including the
    // binaries, which sit directly on the serving path.
    let w = ws(vec![(
        "crates/server/src/bin/smoke.rs",
        fixture("panic_index.rs"),
    )]);
    let d = run_all(&w);
    assert_eq!(of_rule(&d, "panic").len(), 3, "{d:?}");
    assert_eq!(of_rule(&d, "index").len(), 1, "{d:?}");
}

#[test]
fn lint_allow_with_reason_suppresses_without_waiver_noise() {
    let w = ws(vec![(
        "crates/engine/src/exec.rs",
        fixture("panic_index.rs"),
    )]);
    let d = run_all(&w);
    // Line 12 is indexed but waived on line 11 — no finding, and the
    // waiver itself is silent (it has a reason and is load-bearing).
    assert!(
        !d.iter().any(|x| x.rule == "index" && x.line == 12),
        "{d:?}"
    );
    assert!(of_rule(&d, "waiver").is_empty(), "{d:?}");
}

#[test]
fn reasonless_and_unused_waivers_are_reported() {
    let src = "pub fn f(xs: &[u32]) -> u32 {\n\
               // lint:allow(index)\n\
               xs[0]\n\
               }\n\
               // lint:allow(panic, reason = \"nothing panics here\")\n";
    let w = ws(vec![("crates/engine/src/exec.rs", src.to_string())]);
    let d = run_all(&w);
    let waiver_lines: Vec<u32> = of_rule(&d, "waiver").iter().map(|x| x.line).collect();
    assert_eq!(waiver_lines, vec![2, 5], "{d:?}");
    // The reason-less waiver still suppresses the indexing on line 3.
    assert!(of_rule(&d, "index").is_empty(), "{d:?}");
}

#[test]
fn lock_rule_fires_on_nesting_and_io_at_pinned_lines() {
    let w = ws(vec![(
        "crates/server/src/stream.rs",
        fixture("lock_discipline.rs"),
    )]);
    let d = run_all(&w);
    let locks = of_rule(&d, "lock");
    assert_eq!(
        locks.iter().map(|x| x.line).collect::<Vec<_>>(),
        vec![6, 12],
        "{d:?}"
    );
    assert!(locks[0].message.contains("line 5"), "{}", locks[0].message);
    assert!(
        locks[1].message.contains("stream I/O"),
        "{}",
        locks[1].message
    );
    assert!(locks[1].message.contains("line 11"), "{}", locks[1].message);
}

#[test]
fn lock_order_cycle_fires_across_files_at_the_witness_call() {
    let w = ws(vec![
        ("crates/engine/src/fwd.rs", fixture("deadlock_forward.rs")),
        ("crates/server/src/bwd.rs", fixture("deadlock_backward.rs")),
    ]);
    let d = run_all(&w);
    let lo = of_rule(&d, "lock-order");
    assert_eq!(lo.len(), 1, "{d:?}");
    // The witness is the lexicographically-first edge on the cycle:
    // `backward` takes `db` (via `touch_db`) while holding `cache`.
    assert_eq!(
        (lo[0].path.as_str(), lo[0].line),
        ("crates/server/src/bwd.rs", 8)
    );
    assert!(lo[0].message.contains("cycle"), "{}", lo[0].message);
    assert!(lo[0].message.contains("cache"), "{}", lo[0].message);
    assert!(lo[0].message.contains("db"), "{}", lo[0].message);
}

#[test]
fn lock_order_finding_is_waivable_at_the_witness_line() {
    let waived = fixture("deadlock_backward.rs").replace(
        "        self.touch_db();",
        "        // lint:allow(lock-order, reason = \"fixture demo\")\n        self.touch_db();",
    );
    let w = ws(vec![
        ("crates/engine/src/fwd.rs", fixture("deadlock_forward.rs")),
        ("crates/server/src/bwd.rs", waived),
    ]);
    let d = run_all(&w);
    assert!(of_rule(&d, "lock-order").is_empty(), "{d:?}");
    assert!(of_rule(&d, "waiver").is_empty(), "{d:?}");
}

#[test]
fn dispatch_fires_on_a_missing_arm_at_the_match_line() {
    let w = ws(vec![
        ("crates/engine/src/view.rs", fixture("dispatch_enum.rs")),
        ("crates/server/src/session.rs", fixture("dispatch_site.rs")),
    ]);
    let d = run_all(&w);
    let disp = of_rule(&d, "dispatch");
    assert_eq!(disp.len(), 1, "{d:?}");
    assert_eq!(
        (disp[0].path.as_str(), disp[0].line),
        ("crates/server/src/session.rs", 5)
    );
    assert!(
        disp[0].message.contains("MaintenanceStrategy::Recompute"),
        "{}",
        disp[0].message
    );
    assert!(
        disp[0].message.contains("wildcards earn no credit"),
        "{}",
        disp[0].message
    );
}

#[test]
fn dispatch_finding_is_waivable_at_the_match_line() {
    let waived = fixture("dispatch_site.rs").replace(
        "    match s {",
        "    // lint:allow(dispatch, reason = \"fixture demo\")\n    match s {",
    );
    let w = ws(vec![
        ("crates/engine/src/view.rs", fixture("dispatch_enum.rs")),
        ("crates/server/src/session.rs", waived),
    ]);
    let d = run_all(&w);
    assert!(of_rule(&d, "dispatch").is_empty(), "{d:?}");
    assert!(of_rule(&d, "waiver").is_empty(), "{d:?}");
}

#[test]
fn wire_fires_on_undocumented_op_and_stale_doc_row() {
    let mut w = ws(vec![
        ("crates/server/src/session.rs", fixture("wire_session.rs")),
        ("crates/server/src/client.rs", fixture("wire_client.rs")),
    ]);
    w.wire_doc = fixture("wire_protocol_stale.md");
    let d = run_all(&w);
    let wire = of_rule(&d, "wire");
    assert_eq!(wire.len(), 2, "{d:?}");
    // `bye` is dispatched (session line 9) but not in the doc table.
    assert_eq!(
        (wire[0].path.as_str(), wire[0].line),
        ("crates/server/src/session.rs", 9)
    );
    assert!(wire[0].message.contains("`bye`"), "{}", wire[0].message);
    // `flush` is a stale row (doc line 9) the server never dispatches.
    assert_eq!(
        (wire[1].path.as_str(), wire[1].line),
        ("docs/WIRE_PROTOCOL.md", 9)
    );
    assert!(wire[1].message.contains("`flush`"), "{}", wire[1].message);
}

#[test]
fn wire_session_side_finding_is_waivable() {
    let waived = fixture("wire_session.rs").replace(
        "            \"bye\" => self.op_bye(),",
        "            // lint:allow(wire, reason = \"fixture demo\")\n            \
         \"bye\" => self.op_bye(),",
    );
    let mut w = ws(vec![
        ("crates/server/src/session.rs", waived),
        ("crates/server/src/client.rs", fixture("wire_client.rs")),
    ]);
    w.wire_doc = fixture("wire_protocol_stale.md");
    let d = run_all(&w);
    let wire = of_rule(&d, "wire");
    // Only the doc-side stale row remains (findings anchored in
    // markdown have no waiver syntax — fix the doc instead).
    assert_eq!(wire.len(), 1, "{d:?}");
    assert_eq!(wire[0].path, "docs/WIRE_PROTOCOL.md");
    assert!(of_rule(&d, "waiver").is_empty(), "{d:?}");
}

#[test]
fn env_rule_flags_unregistered_knob_at_pinned_line() {
    let w = ws(vec![(
        "crates/workloads/src/knob.rs",
        fixture("env_knob.rs"),
    )]);
    let d = run_all(&w);
    let hit = of_rule(&d, "env")
        .into_iter()
        .find(|x| x.message.contains("AGGPROV_FIXTURE_KNOB"))
        .unwrap_or_else(|| panic!("no env finding: {d:?}"));
    assert_eq!(
        (hit.path.as_str(), hit.line),
        ("crates/workloads/src/knob.rs", 4)
    );
}

#[test]
fn oracle_rule_flags_missing_and_uncalled_twins() {
    let w = ws(vec![
        ("crates/core/src/ops.rs", fixture("oracle_ops.rs")),
        ("crates/core/src/specops.rs", fixture("oracle_specops.rs")),
    ]);
    let d = run_all(&w);
    let o = of_rule(&d, "oracle");
    assert_eq!(o.len(), 2, "{d:?}");
    assert_eq!(o[0].line, 4);
    assert!(
        o[0].message.contains("no `specops::frobnicate` oracle"),
        "{}",
        o[0].message
    );
    assert_eq!(o[1].line, 8);
    assert!(
        o[1].message.contains("no proptest calls"),
        "{}",
        o[1].message
    );
}

#[test]
fn oracle_rule_rejects_textual_only_references() {
    // The proptest mentions `specops::orphaned` in a string and takes a
    // fn pointer to it, but never *calls* it — still unoracled, pinned
    // at the operator's export line.
    let w = ws(vec![
        ("crates/core/src/ops.rs", fixture("oracle_specops.rs")),
        ("crates/core/src/specops.rs", fixture("oracle_specops.rs")),
        (
            "crates/core/tests/textual_proptests.rs",
            fixture("oracle_textual_proptest.rs"),
        ),
    ]);
    let d = run_all(&w);
    let o = of_rule(&d, "oracle");
    assert_eq!(o.len(), 1, "{d:?}");
    assert_eq!(
        (o[0].path.as_str(), o[0].line),
        ("crates/core/src/ops.rs", 4)
    );
    assert!(
        o[0].message.contains("textual mention is not a test"),
        "{}",
        o[0].message
    );
}

#[test]
fn oracle_rule_is_satisfied_by_a_proptest_calling_both_paths() {
    let proptest = "#[test]\n\
                    fn orphaned_matches() {\n\
                    let s = specops::orphaned(&r).unwrap();\n\
                    let f = ops::orphaned(&r).unwrap();\n\
                    }\n";
    let w = ws(vec![
        ("crates/core/src/ops.rs", fixture("oracle_specops.rs")),
        ("crates/core/src/specops.rs", fixture("oracle_specops.rs")),
        ("crates/core/tests/x_proptests.rs", proptest.to_string()),
    ]);
    let d = run_all(&w);
    assert!(of_rule(&d, "oracle").is_empty(), "{d:?}");
}
