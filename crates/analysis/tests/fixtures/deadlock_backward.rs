//! Fixture: the other half — acquires `cache`, then calls a helper that
//! acquires `db`. Together with `deadlock_forward.rs` this closes an
//! interprocedural acquisition cycle that no single file exhibits.

impl Netloop {
    pub fn backward(&self) {
        let c = self.cache.lock();
        self.touch_db();
    }
    fn touch_db(&self) {
        let d = self.db.read();
    }
}
