//! Fixture: half of a lock-order cycle — acquires `db`, then calls a
//! helper that acquires `cache`.

impl Engine {
    pub fn forward(&self) {
        let db = self.db.write();
        self.touch_cache();
    }
    fn touch_cache(&self) {
        let c = self.cache.lock();
    }
}
