//! Fixture: a registered enum definition (the `MaintenanceStrategy`
//! shape) for the dispatch rule.

pub enum MaintenanceStrategy {
    Incremental,
    Recompute,
}
