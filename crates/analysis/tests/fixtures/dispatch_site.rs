//! Fixture: the designated dispatch site missing an arm — `Recompute`
//! falls into the wildcard, which earns no credit.

pub fn strategy_name(s: MaintenanceStrategy) -> &'static str {
    match s {
        MaintenanceStrategy::Incremental => "incremental",
        _ => "recompute-or-future",
    }
}
