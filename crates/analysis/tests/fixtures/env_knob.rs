//! Fixture: an environment knob read without being registered.

pub fn fixture_knob() -> Option<String> {
    std::env::var("AGGPROV_FIXTURE_KNOB").ok()
}
