//! Fixture: the PR 4 `annotation_at` bug class — a ground/symbolic fast
//! path gated on only one of the two relational operands.

/// The extended annotation lookup with the one-sided gate: a symbolic
/// probe tuple against a ground relation takes the structural fast path
/// and silently drops its equality tokens.
pub fn annotation_at<A: AggAnnotation>(rel: &MKRel<A>, t: &Tuple<Value<A>>) -> Result<A> {
    if !has_symbolic(rel) {
        return Ok(rel.annotation(t));
    }
    let positions: Vec<usize> = (0..rel.schema().arity()).collect();
    let mut parts = Vec::new();
    for (t2, k2) in rel.iter() {
        let tok = tuple_eq_token(t2, t, &positions)?;
        let part = k2.times(&tok);
        if !part.is_zero() {
            parts.push(part);
        }
    }
    Ok(sum_many(parts))
}
