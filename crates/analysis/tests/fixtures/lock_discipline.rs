//! Fixture: nested guard acquisition and a guard held across stream
//! I/O.

pub fn nested(s: &S) -> u32 {
    let x = s.a.lock().unwrap_or_else(recover);
    let y = s.b.lock().unwrap_or_else(recover);
    *x + *y
}

pub fn across_io(s: &S, sock: &mut TcpStream) {
    let g = s.a.lock().unwrap_or_else(recover);
    let _ = sock.write_all(b"hi");
    drop(g);
}
