//! Fixture: physical operators for the oracle rule — one with no spec
//! twin, one whose twin exists but is unreferenced by any proptest.

pub fn frobnicate<A: AggAnnotation>(rel: &MKRel<A>) -> Result<MKRel<A>> {
    twin_free(rel)
}

pub fn orphaned<A: AggAnnotation>(rel: &MKRel<A>) -> Result<MKRel<A>> {
    has_twin(rel)
}
