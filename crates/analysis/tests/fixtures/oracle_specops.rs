//! Fixture: the spec side — `orphaned` exists here, but no proptest
//! references `specops::orphaned`; `frobnicate` is missing entirely.

pub fn orphaned<A: AggAnnotation>(rel: &MKRel<A>) -> Result<MKRel<A>> {
    has_twin(rel)
}
