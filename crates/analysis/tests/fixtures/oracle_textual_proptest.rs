//! Fixture: a proptest that *mentions* the oracle but never calls it —
//! the string and the fn-pointer reference both earn nothing.

#[test]
fn orphaned_textual_only() {
    let f = specops::orphaned;
    log("we compared against specops::orphaned by hand");
    let got = ops::orphaned(&r);
}
