//! Fixture: panic-family calls and bare slice indexing on the execute
//! path, plus one properly waived line.

pub fn run(xs: &[u32], i: usize) -> u32 {
    let a = *xs.first().unwrap();
    let b = xs.get(i).copied().expect("in range");
    if i > xs.len() {
        panic!("out of range");
    }
    let c = xs[i];
    // lint:allow(index, reason = "i is validated by the caller above")
    let d = xs[i + 1];
    a + b + c + d
}
