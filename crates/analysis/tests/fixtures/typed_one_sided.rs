//! Fixture: a typed-kernel fast path gated on one chunk's fringe only.
//! The unboxed/dictionary kernels are sound over ground rows alone, so a
//! binary kernel must check *both* operands before taking the fast path
//! (here `right` could carry symbolic rows straight into the typed loop).
pub fn join_typed<A: AggAnnotation>(left: &Chunk<A>, right: &Chunk<A>) -> Result<MKRel<A>> {
    if !left.has_fringe() {
        return typed_fast_path(left, right);
    }
    token_path(left, right)
}
