//! Fixture: a client speaking all three fixture ops.

impl Client {
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.request(Json::obj([("op", Json::str("ping"))]))
    }
    pub fn sql(&mut self) -> Result<Json, ClientError> {
        self.request(Json::obj([("op", Json::str("sql"))]))
    }
    pub fn bye(&mut self) -> Result<Json, ClientError> {
        self.request(Json::obj([("op", Json::str("bye"))]))
    }
}
