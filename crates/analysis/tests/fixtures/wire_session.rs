//! Fixture: a serving-session dispatch with three ops, for the wire
//! rule's source-of-truth side.

impl Session {
    fn dispatch(&mut self, op: &str) -> Result<Json, String> {
        match op {
            "ping" => self.op_ping(),
            "sql" => self.op_sql(),
            "bye" => self.op_bye(),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}
