//! The `--json` output contract: whatever `analysis::json::render`
//! emits must parse with the server's vendored JSON module and carry
//! the findings losslessly — rule, path, line, message, waived flag,
//! and the counts object. The two printers share escaping conventions;
//! this test is what keeps that sentence true.

use aggprov_server::Json;
use analysis::json::render;
use analysis::rules::LintReport;
use analysis::Diagnostic;

fn diag(rule: &'static str, path: &str, line: u32, message: &str) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line,
        rule,
        message: message.to_string(),
    }
}

#[test]
fn rendered_report_round_trips_through_the_server_parser() {
    let report = LintReport {
        findings: vec![
            diag(
                "panic",
                "crates/engine/src/exec.rs",
                5,
                "don't \"unwrap\" on the execute path\n(second line)",
            ),
            diag("wire", "docs/WIRE_PROTOCOL.md", 9, "stale row: op `flush`"),
        ],
        waived: vec![diag(
            "index",
            "crates/core/src/ops.rs",
            12,
            "bare index xs[i]\twaived upstream",
        )],
    };
    let text = render(&report);
    let v = Json::parse(&text).expect("server parser accepts --json output");

    let findings = v.get("findings").and_then(Json::as_arr).unwrap();
    assert_eq!(findings.len(), 2);
    let f0 = &findings[0];
    assert_eq!(f0.get("rule").and_then(Json::as_str), Some("panic"));
    assert_eq!(
        f0.get("path").and_then(Json::as_str),
        Some("crates/engine/src/exec.rs")
    );
    assert_eq!(f0.get("line").and_then(Json::as_int), Some(5));
    assert_eq!(
        f0.get("message").and_then(Json::as_str),
        Some("don't \"unwrap\" on the execute path\n(second line)")
    );
    assert_eq!(f0.get("waived").and_then(Json::as_bool), Some(false));

    let waived = v.get("waived").and_then(Json::as_arr).unwrap();
    assert_eq!(waived.len(), 1);
    assert_eq!(waived[0].get("waived").and_then(Json::as_bool), Some(true));
    assert_eq!(
        waived[0].get("message").and_then(Json::as_str),
        Some("bare index xs[i]\twaived upstream")
    );

    let counts = v.get("counts").unwrap();
    assert_eq!(counts.get("findings").and_then(Json::as_int), Some(2));
    assert_eq!(counts.get("waived").and_then(Json::as_int), Some(1));
}

#[test]
fn empty_report_parses_to_empty_arrays() {
    let v = Json::parse(&render(&LintReport::default())).unwrap();
    assert_eq!(v.get("findings").and_then(Json::as_arr), Some(&[][..]));
    assert_eq!(v.get("waived").and_then(Json::as_arr), Some(&[][..]));
    assert_eq!(
        v.get("counts")
            .and_then(|c| c.get("findings"))
            .and_then(Json::as_int),
        Some(0)
    );
}
