//! Acceptance tests against the actual repository tree: the shipped
//! workspace lints clean under every rule, and the dispatch rule's
//! reason for existing holds — deleting a registered match arm makes
//! the lint fail.

use analysis::rules::run_all;
use analysis::walk::{find_root, load_workspace};
use analysis::{SourceFile, Workspace};
use std::path::Path;

fn load() -> Workspace {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    load_workspace(&root)
}

#[test]
fn the_real_tree_lints_clean() {
    let ws = load();
    assert!(
        ws.files.len() > 30,
        "workspace walk looks broken: only {} files",
        ws.files.len()
    );
    assert!(
        !ws.wire_doc.is_empty(),
        "docs/WIRE_PROTOCOL.md not loaded — the wire rule would run blind"
    );
    let d = run_all(&ws);
    assert!(
        d.is_empty(),
        "the real tree has lint findings:\n{}",
        d.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn deleting_a_registered_dispatch_arm_is_caught() {
    let mut ws = load();
    let path = "crates/core/src/ops/typed.rs";
    let f = ws
        .files
        .iter_mut()
        .find(|f| f.path == path)
        .expect("typed kernel module loaded");
    let gutted = f.text.replace("TypedColumn::Boxed(_) => None,", "");
    assert_ne!(gutted, f.text, "expected the Boxed arm in compile_lit_test");
    *f = SourceFile::new(path, gutted);
    let d = run_all(&ws);
    assert!(
        d.iter().any(|x| x.rule == "dispatch"
            && x.path == path
            && x.message.contains("TypedColumn::Boxed")),
        "no dispatch finding after deleting the Boxed arm: {d:?}"
    );
}
