//! The columnar batch pipeline vs the PR 3 tuple-at-a-time path — the
//! perf trajectory's PR 4 point.
//!
//! Times σ_{sal<100} → Π_{emp,dept} → ⋈_{dept=dept2} on the 10k-row
//! ground-heavy trajectory workload two ways: node-at-a-time over
//! `BTreeMap` relations (the pre-batch engine execution) and as one
//! chunked pipeline (selection vector → column gather → hash join, a
//! single materialization at the end), plus the standalone filter kernel.
//! Writes `BENCH_pr4.json`; sample count follows `AGGPROV_BENCH_SAMPLES`
//! (CI quick mode). Output goes to `target/bench/BENCH_pr4.json` — set
//! `AGGPROV_BENCH_COMMIT=1` to write the checked-in repo-root copy when
//! committing a new trajectory point.
//!
//! Both paths are single-threaded, so the recorded ratios are
//! algorithmic and comparable across hosts (no `threads` field, no gate
//! clamping).

use aggprov_bench::batchbench::{self, measure, render_json};
use aggprov_bench::parbench::host_cpus;
use aggprov_bench::trajectory::out_path;
use criterion::quick_mode_samples;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let samples = quick_mode_samples(5);
    println!(
        "== batch_pipeline ({samples} samples, host_cpus = {}) ==",
        host_cpus()
    );
    let points = measure(samples);
    for p in &points {
        println!(
            "{:<20} rows={:<6} tuple {:>12.2?}/iter   batched {:>12.2?}/iter   speedup {:>6.2}x",
            p.op,
            p.rows,
            p.tuple,
            p.batched,
            p.speedup()
        );
    }
    let json = render_json(&points, samples, host_cpus());
    let out = out_path(&format!("BENCH_pr{}.json", batchbench::PR));
    std::fs::write(&out, json).expect("write BENCH_pr4.json");
    println!("wrote {}", out.display());
}
