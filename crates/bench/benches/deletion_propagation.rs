//! Experiment E7: deletion propagation — specializing stored provenance
//! versus re-evaluating the query from scratch, over growing workloads.
//!
//! The paper's commutation theorem predicts the provenance route wins and
//! the gap widens with query cost; see `tables` (T7) for the size side.

use aggprov_algebra::hom::Valuation;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::Nat;
use aggprov_core::eval::{collapse, map_hom_mk};
use aggprov_workloads::org::{org_database, OrgParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const QUERY: &str = "SELECT dept, SUM(sal) AS mass FROM emp GROUP BY dept";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("deletion_propagation");
    group.sample_size(10);
    for (depts, per_dept) in [(5usize, 20usize), (10, 40), (20, 80)] {
        let n = depts * per_dept;
        let (db, workload) = org_database(OrgParams {
            departments: depts,
            employees_per_dept: per_dept,
            ..Default::default()
        });
        let symbolic = db.query(QUERY).expect("symbolic result");
        let fired: Vec<aggprov_algebra::poly::Var> = workload
            .emp_tokens
            .iter()
            .step_by(7)
            .map(|t| aggprov_algebra::poly::Var::new(t))
            .collect();
        let val: Valuation<Nat> = Valuation::deleting(fired.iter().cloned());

        group.bench_with_input(
            BenchmarkId::new("specialize_provenance", n),
            &symbolic,
            |b, symbolic| {
                b.iter(|| {
                    collapse(&map_hom_mk(symbolic, &|p: &NatPoly| val.eval(p))).expect("resolved")
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("re_evaluate", n), &db, |b, db| {
            b.iter(|| {
                // Rebuild without fired employees and evaluate afresh.
                let mut db2 = aggprov_engine::ProvDb::new();
                let mut rel =
                    aggprov_krel::relation::Relation::empty(workload.emp.schema().clone());
                for (t, k) in workload.emp.iter() {
                    let keep = k
                        .try_collapse()
                        .map(|p| val.eval(&p) != Nat(0))
                        .unwrap_or(true);
                    if keep {
                        rel.insert(t.values().to_vec(), k.clone()).expect("insert");
                    }
                }
                db2.register("emp", rel);
                let out = db2.query(QUERY).expect("re-evaluated");
                let _ = db;
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
