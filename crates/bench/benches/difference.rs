//! Experiment E6 runtime: the direct hybrid difference versus the paper's
//! full aggregation encoding, and the concrete baselines (bag monus,
//! ℤ-difference).

use aggprov_algebra::domain::Const;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{IntZ, Nat};
use aggprov_core::difference::{difference, difference_encoded};
use aggprov_core::km::Km;
use aggprov_core::ops::MKRel;
use aggprov_core::{Prov, Value};
use aggprov_krel::monus::{monus_difference, z_difference};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn prov_rel(prefix: &str, n: usize, offset: i64) -> MKRel<Prov> {
    let mut rel = Relation::empty(Schema::new(["x"]).expect("schema"));
    for i in 0..n {
        rel.insert(
            vec![Value::int(i as i64 + offset)],
            Km::embed(NatPoly::token(&format!("{prefix}{i}"))),
        )
        .expect("insert");
    }
    rel
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("difference");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let r = prov_rel("r", n, 0);
        let s = prov_rel("s", n, (n / 2) as i64);
        group.bench_with_input(BenchmarkId::new("hybrid_direct", n), &n, |b, _| {
            b.iter(|| difference(&r, &s).expect("difference"));
        });
        group.bench_with_input(BenchmarkId::new("paper_encoding", n), &n, |b, _| {
            b.iter(|| difference_encoded(&r, &s).expect("encoded"));
        });

        let nat = |_prefix: &str, offset: i64| -> Relation<Nat, Const> {
            Relation::from_rows(
                Schema::new(["x"]).expect("schema"),
                (0..n).map(|i| ([Const::int(i as i64 + offset)], Nat(1 + (i as u64 % 3)))),
            )
            .expect("rows")
        };
        let (rn, sn) = (nat("r", 0), nat("s", (n / 2) as i64));
        group.bench_with_input(BenchmarkId::new("bag_monus", n), &n, |b, _| {
            b.iter(|| monus_difference(&rn, &sn).expect("monus"));
        });

        let z = |offset: i64| -> Relation<IntZ, Const> {
            Relation::from_rows(
                Schema::new(["x"]).expect("schema"),
                (0..n).map(|i| ([Const::int(i as i64 + offset)], IntZ(1))),
            )
            .expect("rows")
        };
        let (rz, sz) = (z(0), z((n / 2) as i64));
        group.bench_with_input(BenchmarkId::new("z_difference", n), &n, |b, _| {
            b.iter(|| z_difference(&rz, &sz).expect("z"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
