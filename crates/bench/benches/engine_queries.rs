//! End-to-end SQL engine benchmarks: the same queries over bag annotations
//! (`ℕ`, everything resolves eagerly) and full provenance (`ℕ[X]^M`,
//! symbolic), plus the tensor `merge_by_coeff` ablation.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::semiring::{Nat, Security};
use aggprov_algebra::tensor::Tensor;
use aggprov_core::eval::map_mk;
use aggprov_engine::Database;
use aggprov_workloads::org::{org_database, OrgParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const QUERIES: [(&str, &str); 4] = [
    ("projection", "SELECT dept FROM emp"),
    (
        "group_sum",
        "SELECT dept, SUM(sal) AS mass FROM emp GROUP BY dept",
    ),
    (
        "join_group",
        "SELECT d.region, MAX(e.sal) AS top FROM emp e JOIN dept d ON e.dept = d.dept \
         GROUP BY d.region",
    ),
    (
        "having",
        "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING n = 40",
    ),
];

fn bench(c: &mut Criterion) {
    let (prov_db, workload) = org_database(OrgParams {
        departments: 10,
        employees_per_dept: 40,
        ..Default::default()
    });
    let mut bag_db: Database<Nat> = Database::new();
    bag_db.register("emp", map_mk(&workload.emp, &|_| Nat(1)));
    bag_db.register("dept", map_mk(&workload.dept, &|_| Nat(1)));

    let mut group = c.benchmark_group("sql_engine");
    group.sample_size(10);
    for (name, sql) in QUERIES {
        group.bench_with_input(BenchmarkId::new("bag", name), sql, |b, sql| {
            b.iter(|| bag_db.query(sql).expect("bag query"));
        });
        group.bench_with_input(BenchmarkId::new("provenance", name), sql, |b, sql| {
            b.iter(|| prov_db.query(sql).expect("provenance query"));
        });
    }
    group.finish();

    // Ablation: merge_by_coeff on a security tensor with few distinct
    // coefficients and many elements.
    let mut group = c.benchmark_group("tensor_merge_by_coeff");
    let mut rng = StdRng::seed_from_u64(9);
    for n in [100usize, 1000] {
        let levels = [
            Security::Public,
            Security::Confidential,
            Security::Secret,
            Security::TopSecret,
        ];
        let tensor = Tensor::<Security, Const>::from_terms(
            &MonoidKind::Max,
            (0..n).map(|i| {
                (
                    levels[rng.random_range(0..levels.len())],
                    Const::int(i as i64),
                )
            }),
        );
        group.bench_with_input(BenchmarkId::new("merge", n), &tensor, |b, tensor| {
            b.iter(|| tensor.merge_by_coeff(&MonoidKind::Max));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
