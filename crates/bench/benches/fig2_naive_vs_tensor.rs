//! Experiment E2 (Figure 2): the naive tuple-level representation of a SUM
//! aggregate (one row per surviving subset, `p̂` complements) versus the
//! paper's tensor representation.
//!
//! The naive table is `Θ(2ⁿ)`; the tensor is `Θ(n)`. Criterion measures
//! construction time; the companion `tables` binary reports representation
//! sizes.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::tensor::Tensor;
use aggprov_bench::fig2_input;
use aggprov_core::naive::naive_table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_sum_representation");
    group.sample_size(10);
    for n in [4usize, 8, 12, 16] {
        let input = fig2_input(n);
        group.bench_with_input(BenchmarkId::new("naive_2^n", n), &input, |b, input| {
            b.iter(|| naive_table(MonoidKind::Sum, input));
        });
        group.bench_with_input(BenchmarkId::new("tensor_linear", n), &input, |b, input| {
            b.iter(|| {
                Tensor::<NatPoly, Const>::from_terms(
                    &MonoidKind::Sum,
                    input
                        .iter()
                        .map(|(v, num)| (NatPoly::var(v.clone()), Const::Num(*num))),
                )
            });
        });
    }
    group.finish();

    // Deletion propagation on both representations (n fixed).
    let mut group = c.benchmark_group("fig2_deletion");
    group.sample_size(10);
    let n = 14;
    let input = fig2_input(n);
    let rows = naive_table(MonoidKind::Sum, &input);
    let tensor = Tensor::<NatPoly, Const>::from_terms(
        &MonoidKind::Sum,
        input
            .iter()
            .map(|(v, num)| (NatPoly::var(v.clone()), Const::Num(*num))),
    );
    group.bench_function("naive_propagate", |b| {
        b.iter(|| aggprov_core::naive::naive_propagate(&rows, &|v| !v.name().ends_with('3')));
    });
    group.bench_function("tensor_specialize", |b| {
        b.iter(|| {
            tensor
                .map_coeffs(&MonoidKind::Sum, &mut |p| {
                    aggprov_algebra::hom::Valuation::<aggprov_algebra::semiring::Nat>::ones()
                        .eval(p)
                })
                .try_resolve(&MonoidKind::Sum)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
