//! Hash-partitioned physical operators vs the literal §4.3 reference path
//! (`aggprov_core::specops`) on ground-tuple workloads — the perf
//! trajectory's first tracked point.
//!
//! Besides printing criterion-style timings, this bench emits
//! `BENCH_pr2.json` at the repository root (override with
//! `BENCH_PR2_OUT=/path.json`): per operator, the mean wall-clock time of
//! the naive and hash paths and the resulting speedup. CI runs it in quick
//! mode (`AGGPROV_BENCH_SAMPLES=2`) and the checked-in JSON is the first
//! point of the perf trajectory.
//!
//! Workloads are fully ground (the common case the ground/symbolic split
//! optimizes for): a 10k-row employee table joined with / grouped over a
//! 500-key dimension, and 2k-row union/project inputs (the reference
//! union/project are quadratic in the *output key* count, so 10k rows
//! there would dominate the run without adding information).

use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_core::km::Km;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::{specops, Prov, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use criterion::quick_mode_samples;
use std::time::{Duration, Instant};

const EMP_ROWS: usize = 10_000;
const DEPTS: i64 = 500;
const SMALL_ROWS: usize = 2_000;

fn tok(name: &str) -> Prov {
    Km::embed(NatPoly::token(name))
}

fn schema(names: &[&str]) -> Schema {
    Schema::new(names.iter().copied()).expect("schema")
}

/// `emp(emp, dept, sal)`: `n` ground rows with distinct tokens, `DEPTS`
/// distinct departments (deterministic LCG so runs are comparable).
fn emp_table(n: usize) -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["emp", "dept", "sal"]));
    let mut state: u64 = 0x9E37_79B9;
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let dept = (state >> 33) as i64 % DEPTS;
        let sal = 10 + (state >> 17) as i64 % 190;
        rel.insert(
            vec![Value::int(i as i64), Value::int(dept), Value::int(sal)],
            tok(&format!("p{i}")),
        )
        .expect("insert");
    }
    rel
}

/// `dim(dept2, region)`: one row per department key.
fn dept_table() -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["dept2", "region"]));
    for d in 0..DEPTS {
        rel.insert(
            vec![Value::int(d), Value::int(d % 7)],
            tok(&format!("d{d}")),
        )
        .expect("insert");
    }
    rel
}

/// Times `f` (one warm-up, then `samples` runs) and returns the mean.
fn time(samples: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        total += start.elapsed();
    }
    total / samples as u32
}

struct Measurement {
    op: &'static str,
    rows: usize,
    naive: Duration,
    hash: Duration,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.naive.as_secs_f64() / self.hash.as_secs_f64().max(1e-12)
    }
}

fn main() {
    let samples = quick_mode_samples(5);
    let emp = emp_table(EMP_ROWS);
    let dim = dept_table();
    let small_a = emp_table(SMALL_ROWS);
    let small_b = {
        // A disjoint token space and shifted values for the union's right side.
        let mut rel = Relation::empty(schema(&["emp", "dept", "sal"]));
        for (i, (t, _)) in emp_table(SMALL_ROWS).iter().enumerate() {
            rel.insert(t.values().to_vec(), tok(&format!("q{i}")))
                .expect("insert");
        }
        rel
    };
    let gb_specs = [AggSpec::new(MonoidKind::Sum, "sal")];

    println!("== hash_vs_naive ({samples} samples, emp = {EMP_ROWS} rows) ==");
    let mut results = Vec::new();
    let mut push = |m: Measurement| {
        println!(
            "{:<10} rows={:<6} naive {:>12.2?}/iter   hash {:>12.2?}/iter   speedup {:>8.1}x",
            m.op,
            m.rows,
            m.naive,
            m.hash,
            m.speedup()
        );
        results.push(m);
    };

    push(Measurement {
        op: "join_on",
        rows: EMP_ROWS,
        naive: time(samples, || {
            std::hint::black_box(specops::join_on(&emp, &dim, &[("dept", "dept2")]).unwrap());
        }),
        hash: time(samples, || {
            std::hint::black_box(ops::join_on(&emp, &dim, &[("dept", "dept2")]).unwrap());
        }),
    });
    push(Measurement {
        op: "group_by",
        rows: EMP_ROWS,
        naive: time(samples, || {
            std::hint::black_box(specops::group_by(&emp, &["dept"], &gb_specs).unwrap());
        }),
        hash: time(samples, || {
            std::hint::black_box(ops::group_by(&emp, &["dept"], &gb_specs).unwrap());
        }),
    });
    push(Measurement {
        op: "union",
        rows: SMALL_ROWS,
        naive: time(samples, || {
            std::hint::black_box(specops::union(&small_a, &small_b).unwrap());
        }),
        hash: time(samples, || {
            std::hint::black_box(ops::union(&small_a, &small_b).unwrap());
        }),
    });
    push(Measurement {
        op: "project",
        rows: SMALL_ROWS,
        naive: time(samples, || {
            std::hint::black_box(specops::project(&small_a, &["dept"]).unwrap());
        }),
        hash: time(samples, || {
            std::hint::black_box(ops::project(&small_a, &["dept"]).unwrap());
        }),
    });

    // Sanity: the two paths agree on every workload (cheap versions).
    let tiny = emp_table(200);
    assert_eq!(
        ops::join_on(&tiny, &dim, &[("dept", "dept2")]).unwrap(),
        specops::join_on(&tiny, &dim, &[("dept", "dept2")]).unwrap()
    );
    assert_eq!(
        ops::group_by(&tiny, &["dept"], &gb_specs).unwrap(),
        specops::group_by(&tiny, &["dept"], &gb_specs).unwrap()
    );

    let json = render_json(&results, samples);
    let out = std::env::var("BENCH_PR2_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr2.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write BENCH_pr2.json");
    println!("wrote {out}");
}

fn render_json(results: &[Measurement], samples: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"hash_vs_naive\",\n");
    s.push_str("  \"pr\": 2,\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"rows\": {}, \"naive_ns\": {}, \"hash_ns\": {}, \
             \"speedup\": {:.1}}}{}\n",
            m.op,
            m.rows,
            m.naive.as_nanos(),
            m.hash.as_nanos(),
            m.speedup(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
