//! Hash-partitioned physical operators vs the literal §4.3 reference path
//! (`aggprov_core::specops`) on ground-tuple workloads — the perf
//! trajectory's first tracked point.
//!
//! Besides printing criterion-style timings, this bench emits
//! `BENCH_pr2.json`: per operator, the mean wall-clock time of the naive
//! and hash paths and the resulting speedup. By default the file goes to
//! `target/bench/` so a plain `cargo bench` never dirties the working
//! tree; set `AGGPROV_BENCH_COMMIT=1` to overwrite the checked-in
//! repo-root copy when committing a new trajectory point (or point
//! `BENCH_PR2_OUT` at an explicit path). CI runs this in quick mode
//! (`AGGPROV_BENCH_SAMPLES=2`) and the `check_trajectory` gate compares
//! the fresh ratios against the checked-in point.
//!
//! Workloads are fully ground (the common case the ground/symbolic split
//! optimizes for): a 10k-row employee table joined with / grouped over a
//! 500-key dimension, and 2k-row union/project inputs (the reference
//! union/project are quadratic in the *output key* count, so 10k rows
//! there would dominate the run without adding information).

use aggprov_algebra::monoid::MonoidKind;
use aggprov_bench::fixtures::{dept_table, emp_table, union_pair, EMP_ROWS, SMALL_ROWS};
use aggprov_bench::parbench::time;
use aggprov_bench::trajectory::out_path;
use aggprov_core::ops::{self, AggSpec};
use aggprov_core::specops;
use criterion::quick_mode_samples;
use std::time::Duration;

struct Measurement {
    op: &'static str,
    rows: usize,
    naive: Duration,
    hash: Duration,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.naive.as_secs_f64() / self.hash.as_secs_f64().max(1e-12)
    }
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let samples = quick_mode_samples(5);
    let emp = emp_table(EMP_ROWS);
    let dim = dept_table();
    let (small_a, small_b) = union_pair(SMALL_ROWS);
    let gb_specs = [AggSpec::new(MonoidKind::Sum, "sal")];

    println!("== hash_vs_naive ({samples} samples, emp = {EMP_ROWS} rows) ==");
    let mut results = Vec::new();
    let mut push = |m: Measurement| {
        println!(
            "{:<10} rows={:<6} naive {:>12.2?}/iter   hash {:>12.2?}/iter   speedup {:>8.1}x",
            m.op,
            m.rows,
            m.naive,
            m.hash,
            m.speedup()
        );
        results.push(m);
    };

    push(Measurement {
        op: "join_on",
        rows: EMP_ROWS,
        naive: time(samples, || {
            std::hint::black_box(specops::join_on(&emp, &dim, &[("dept", "dept2")]).unwrap());
        }),
        hash: time(samples, || {
            std::hint::black_box(ops::join_on(&emp, &dim, &[("dept", "dept2")]).unwrap());
        }),
    });
    push(Measurement {
        op: "group_by",
        rows: EMP_ROWS,
        naive: time(samples, || {
            std::hint::black_box(specops::group_by(&emp, &["dept"], &gb_specs).unwrap());
        }),
        hash: time(samples, || {
            std::hint::black_box(ops::group_by(&emp, &["dept"], &gb_specs).unwrap());
        }),
    });
    push(Measurement {
        op: "union",
        rows: SMALL_ROWS,
        naive: time(samples, || {
            std::hint::black_box(specops::union(&small_a, &small_b).unwrap());
        }),
        hash: time(samples, || {
            std::hint::black_box(ops::union(&small_a, &small_b).unwrap());
        }),
    });
    push(Measurement {
        op: "project",
        rows: SMALL_ROWS,
        naive: time(samples, || {
            std::hint::black_box(specops::project(&small_a, &["dept"]).unwrap());
        }),
        hash: time(samples, || {
            std::hint::black_box(ops::project(&small_a, &["dept"]).unwrap());
        }),
    });

    // Sanity: the two paths agree on every workload (cheap versions).
    let tiny = emp_table(200);
    assert_eq!(
        ops::join_on(&tiny, &dim, &[("dept", "dept2")]).unwrap(),
        specops::join_on(&tiny, &dim, &[("dept", "dept2")]).unwrap()
    );
    assert_eq!(
        ops::group_by(&tiny, &["dept"], &gb_specs).unwrap(),
        specops::group_by(&tiny, &["dept"], &gb_specs).unwrap()
    );

    let json = render_json(&results, samples);
    let out = match std::env::var("BENCH_PR2_OUT") {
        Ok(explicit) => std::path::PathBuf::from(explicit),
        Err(_) => out_path("BENCH_pr2.json"),
    };
    std::fs::write(&out, json).expect("write BENCH_pr2.json");
    println!("wrote {}", out.display());
}

fn render_json(results: &[Measurement], samples: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"hash_vs_naive\",\n");
    s.push_str("  \"pr\": 2,\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"rows\": {}, \"naive_ns\": {}, \"hash_ns\": {}, \
             \"speedup\": {:.1}}}{}\n",
            m.op,
            m.rows,
            m.naive.as_nanos(),
            m.hash.as_nanos(),
            m.speedup(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
