//! The plan-optimizer bench: σ-above-⋈ pushdown (and the filtered join
//! chain) through the optimizer vs the literal lowered plan, on the
//! standard 10k-row ground trajectory workload. Writes the
//! `BENCH_pr5.json` trajectory point (to `target/bench/` unless
//! `AGGPROV_BENCH_COMMIT=1`).

use aggprov_bench::trajectory::out_path;
use aggprov_bench::{optbench, parbench};
use criterion::quick_mode_samples;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let samples = quick_mode_samples(5);
    let points = optbench::measure(samples);
    for p in &points {
        println!(
            "{} ({} rows): unoptimized {:?}, optimized {:?} — {:.2}x",
            p.op,
            p.rows,
            p.unopt,
            p.opt,
            p.speedup()
        );
    }
    let json = optbench::render_json(&points, samples, parbench::host_cpus());
    let path = out_path("BENCH_pr5.json");
    std::fs::write(&path, json).expect("write BENCH_pr5.json");
    println!("wrote {}", path.display());
}
