//! Experiment E8: the poly-size-overhead desideratum at runtime — time (and
//! size, in `tables` T7) of symbolic evaluation for simple and nested
//! aggregation queries as the input grows.

use aggprov_algebra::monoid::MonoidKind;
use aggprov_core::ops::{group_by, select_eq, AggSpec};
use aggprov_core::Value;
use aggprov_workloads::org::{org, OrgParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_overhead");
    group.sample_size(10);
    for per_dept in [20usize, 40, 80, 160] {
        let workload = org(OrgParams {
            departments: 10,
            employees_per_dept: per_dept,
            ..Default::default()
        });
        let n = 10 * per_dept;
        group.bench_with_input(
            BenchmarkId::new("group_by_sum", n),
            &workload.emp,
            |b, emp| {
                b.iter(|| {
                    group_by(emp, &["dept"], &[AggSpec::new(MonoidKind::Sum, "sal")])
                        .expect("group by")
                });
            },
        );
        let grouped = group_by(
            &workload.emp,
            &["dept"],
            &[AggSpec::new(MonoidKind::Sum, "sal")],
        )
        .expect("group by");
        group.bench_with_input(
            BenchmarkId::new("nested_having", n),
            &grouped,
            |b, grouped| {
                b.iter(|| select_eq(grouped, "sal", &Value::int(1000)).expect("having"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
