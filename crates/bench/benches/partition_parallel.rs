//! Partition-parallel operators at `threads = 1` vs `threads = N` — the
//! perf trajectory's PR 3 point.
//!
//! Times the four sharded physical operators (`join_on`, `group_by`,
//! `union`, `project`) on the standard trajectory workloads (10k-row join
//! and group-by, 2k-row union/project) single-threaded and with `N` worker
//! threads, and writes `BENCH_pr3.json`. `N` defaults to 4 (the trajectory
//! comparison point) and follows `AGGPROV_THREADS` when set; sample count
//! follows `AGGPROV_BENCH_SAMPLES` (CI quick mode). Output goes to
//! `target/bench/BENCH_pr3.json` — set `AGGPROV_BENCH_COMMIT=1` to write
//! the checked-in repo-root copy instead when committing a new trajectory
//! point.
//!
//! Note: the recorded `speedup` is wall-clock, so it only exceeds 1 on a
//! host with more than one CPU; `host_cpus` is recorded alongside so the
//! trajectory stays interpretable.

use aggprov_bench::parbench::{self, host_cpus, measure, render_json};
use aggprov_bench::trajectory::out_path;
use aggprov_core::par::{ExecOptions, THREADS_ENV};
use criterion::quick_mode_samples;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let samples = quick_mode_samples(5);
    let threads = match std::env::var(THREADS_ENV) {
        Err(std::env::VarError::NotPresent) => 4,
        _ => ExecOptions::from_env().expect("AGGPROV_THREADS").threads(),
    };
    println!(
        "== partition_parallel ({samples} samples, threads = {threads}, host_cpus = {}) ==",
        host_cpus()
    );
    let points = measure(samples, threads);
    for p in &points {
        println!(
            "{:<10} rows={:<6} t1 {:>12.2?}/iter   t{threads} {:>12.2?}/iter   speedup {:>6.2}x",
            p.op,
            p.rows,
            p.t1,
            p.tn,
            p.speedup()
        );
    }
    let json = render_json(&points, samples, threads, host_cpus());
    let out = out_path(&format!("BENCH_pr{}.json", parbench::PR));
    std::fs::write(&out, json).expect("write BENCH_pr3.json");
    println!("wrote {}", out.display());
}
