//! Serving-layer saturation at 1, 4 and 16 concurrent wire clients —
//! the perf trajectory's PR 6 point.
//!
//! Spawns the in-process TCP server over the 2k-row trajectory `emp`
//! table and drives each client count through prepared parameterized
//! executes plus a grouped aggregate, asserting every response
//! bit-identical to the single-caller `specops` oracle and error-free.
//! Writes `BENCH_pr6.json`; sample count follows `AGGPROV_BENCH_SAMPLES`
//! (CI quick mode). Output goes to `target/bench/BENCH_pr6.json` — set
//! `AGGPROV_BENCH_COMMIT=1` to write the checked-in repo-root copy when
//! committing a new trajectory point.
//!
//! Note: the recorded `speedup` is a wall-clock throughput ratio against
//! one client, so it only exceeds 1 on a host with more than one CPU;
//! `host_cpus` is recorded alongside so the trajectory stays
//! interpretable.

use aggprov_bench::parbench::host_cpus;
use aggprov_bench::serverbench::{self, measure, render_json};
use aggprov_bench::trajectory::out_path;
use criterion::quick_mode_samples;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let samples = quick_mode_samples(5);
    println!(
        "== server_saturation ({samples} samples, clients = {:?}, host_cpus = {}) ==",
        serverbench::CLIENT_COUNTS,
        host_cpus()
    );
    let points = measure(samples);
    let base_qps = points.first().map(|p| p.qps()).unwrap_or(1.0);
    for p in &points {
        println!(
            "clients={:<3} queries={:<5} wall {:>10.2?}   {:>9.1} q/s   x{:.2} vs 1 client",
            p.clients,
            p.queries,
            p.elapsed,
            p.qps(),
            p.qps() / base_qps.max(1e-12)
        );
    }
    let json = render_json(&points, samples, host_cpus());
    let out = out_path(&format!("BENCH_pr{}.json", serverbench::PR));
    std::fs::write(&out, json).expect("write BENCH_pr6.json");
    println!("wrote {}", out.display());
}
