//! Typed columnar kernels vs the boxed `Const`-per-row baseline — the
//! perf trajectory's PR 9 point.
//!
//! Times the batch pipeline's filter and hash-join kernels twice through
//! the *same* `Chunk` entry points, varying only the column layout:
//! unboxed `Vec<i64>` runs and dictionary-encoded strings with compiled
//! literal tests and branchless selection compaction, against the boxed
//! layout the engine runs under `AGGPROV_TYPED=0`. Plus one sharding
//! point (the same typed filter, serial vs a host-clamped worker count),
//! recorded with a per-point `"threads"` field so the gate clamps it to
//! the judging host's CPUs. Writes `BENCH_pr9.json`; sample count follows
//! `AGGPROV_BENCH_SAMPLES` (CI quick mode). Output goes to
//! `target/bench/BENCH_pr9.json` — set `AGGPROV_BENCH_COMMIT=1` to write
//! the checked-in repo-root copy when committing a new trajectory point.

use aggprov_bench::parbench::host_cpus;
use aggprov_bench::trajectory::out_path;
use aggprov_bench::typedbench::{self, measure, render_json};
use criterion::quick_mode_samples;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let samples = quick_mode_samples(5);
    println!(
        "== typed_kernels ({samples} samples, host_cpus = {}) ==",
        host_cpus()
    );
    let points = measure(samples);
    for p in &points {
        println!(
            "{:<18} rows={:<7} {} baseline {:>12.2?}/iter   typed {:>12.2?}/iter   speedup {:>6.2}x",
            p.op,
            p.rows,
            p.threads
                .map_or_else(|| "         ".to_string(), |t| format!("threads={t}")),
            p.baseline,
            p.typed,
            p.speedup()
        );
    }
    let json = render_json(&points, samples, host_cpus());
    let out = out_path(&format!("BENCH_pr{}.json", typedbench::PR));
    std::fs::write(&out, json).expect("write BENCH_pr9.json");
    println!("wrote {}", out.display());
}
