//! The materialized-view bench: incremental semiring-delta maintenance
//! vs per-mutation re-execution on the 100k-row org workload under a 1%
//! churn stream (single-row inserts, 50-token deletion batches). Writes
//! the `BENCH_pr8.json` trajectory point (to `target/bench/` unless
//! `AGGPROV_BENCH_COMMIT=1`).

use aggprov_bench::trajectory::out_path;
use aggprov_bench::{parbench, viewbench};
use criterion::quick_mode_samples;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let samples = quick_mode_samples(5);
    let points = viewbench::measure(samples);
    for p in &points {
        println!(
            "{} ({} rows): re-execution {:?}/event, maintained {:?}/event — {:.2}x",
            p.op,
            p.rows,
            p.reexec,
            p.maint,
            p.speedup()
        );
    }
    let json = viewbench::render_json(&points, samples, parbench::host_cpus());
    let path = out_path("BENCH_pr8.json");
    std::fs::write(&path, json).expect("write BENCH_pr8.json");
    println!("wrote {}", path.display());
}
