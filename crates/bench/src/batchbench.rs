//! The batch-pipeline measurement behind the `batch_pipeline` bench and
//! the `check_trajectory` gate: times the columnar filter→project→join
//! pipeline (`aggprov_core::ops::batch`, one materialization at the end)
//! against the PR 3 tuple-at-a-time path (the `ops::*` operators with a
//! `BTreeMap` relation materialized between every node) on the standard
//! 10k-row ground-heavy trajectory workload, and renders the
//! `BENCH_pr4.json` trajectory point.
//!
//! The measured chain is the engine's lowering of
//! `… WHERE sal < 100 AND dept < 400` joined against the department
//! dimension: two stacked filters (one per WHERE conjunct, exactly as
//! the planner emits them), a projection, a hash join. On the
//! tuple-at-a-time path every one of those nodes rebuilds a `BTreeMap`
//! relation; on the batch path the filters narrow one selection vector
//! and the projection is a column-view update.
//!
//! The recorded ratios are algorithmic (same host, same thread count —
//! both paths single-threaded), so the JSON deliberately records no
//! `threads` field and the gate never clamps them; `host_cpus` is still
//! recorded for provenance of the measurement.

use crate::fixtures::{dept_table, emp_table, EMP_ROWS};
use aggprov_algebra::domain::Const;
use aggprov_core::km::CmpPred;
use aggprov_core::ops::batch::{hash_join, BatchCmp, BatchOperand, Chunk};
use aggprov_core::ops::{self, MKRel};
use aggprov_core::par::ExecOptions;
use aggprov_core::{AggAnnotation, Prov, Value};
use aggprov_krel::schema::Schema;
use std::time::Duration;

/// The PR number of the trajectory point this module measures.
pub const PR: u32 = 4;

/// The first WHERE conjunct: `sal < 100` keeps roughly half the
/// employee rows, so downstream nodes still see real volume.
const SAL_CUT: i64 = 100;

/// The second WHERE conjunct: `dept < 400` keeps 80% of departments.
const DEPT_CUT: i64 = 400;

/// One measured pipeline shape: mean wall-clock on the tuple-at-a-time
/// path and on the batched path.
#[derive(Debug)]
pub struct BatchPoint {
    /// Pipeline name (stable across trajectory points).
    pub op: &'static str,
    /// Input row count.
    pub rows: usize,
    /// Mean time of the tuple-at-a-time (PR 3) path.
    pub tuple: Duration,
    /// Mean time of the batched pipeline.
    pub batched: Duration,
}

impl BatchPoint {
    /// `tuple / batched`: > 1 means the batch pipeline is faster.
    pub fn speedup(&self) -> f64 {
        self.tuple.as_secs_f64() / self.batched.as_secs_f64().max(1e-12)
    }
}

/// One WHERE conjunct exactly as the PR 3 engine ran it
/// (`exec::apply_predicate`): a tokened selection whose closure
/// re-fetches — and clones — both operands per tuple, bound constant
/// included.
fn tuple_filter(rel: &MKRel<Prov>, col: usize, cut: i64) -> MKRel<Prov> {
    let bound = Value::int(cut);
    ops::select_with_token(rel, |_, t| {
        let (lv, rv) = (t.get(col).clone(), bound.clone());
        Prov::value_cmp(CmpPred::Lt, &lv, &rv)
    })
    .expect("filter")
}

/// σ_{sal<100} → σ_{dept<400} → Π_{emp,dept} → ⋈_{dept=dept2}, node at
/// a time: a `BTreeMap` relation is materialized after every operator —
/// exactly what the engine executed before the batch pipeline.
fn tuple_pipeline(emp: &MKRel<Prov>, dim: &MKRel<Prov>) -> MKRel<Prov> {
    let serial = ExecOptions::serial();
    let f = tuple_filter(emp, 2, SAL_CUT);
    let f = tuple_filter(&f, 1, DEPT_CUT);
    let p = ops::project_opts(&f, &["emp", "dept"], &serial).expect("project");
    ops::join_on_opts(&p, dim, &[("dept", "dept2")], &serial).expect("join")
}

/// The same pipeline in chunk form: selection vector → column gather →
/// hash join, one materialization at the very end.
fn batch_pipeline(emp: &MKRel<Prov>, dim: &MKRel<Prov>) -> MKRel<Prov> {
    let mut chunk = Chunk::from_relation(emp);
    chunk
        .filter(
            &BatchOperand::Col(2),
            BatchCmp::Pred(CmpPred::Lt),
            &BatchOperand::Lit(Const::int(SAL_CUT)),
            &ExecOptions::serial(),
        )
        .expect("filter");
    chunk
        .filter(
            &BatchOperand::Col(1),
            BatchCmp::Pred(CmpPred::Lt),
            &BatchOperand::Lit(Const::int(DEPT_CUT)),
            &ExecOptions::serial(),
        )
        .expect("filter");
    let projected = chunk
        .project(&[0, 1], Schema::new(["emp", "dept"]).expect("schema"))
        .expect("project");
    hash_join(
        projected,
        Chunk::from_relation(dim),
        &[(1, 0)],
        Schema::new(["emp", "dept", "dept2", "region"]).expect("schema"),
        &ExecOptions::serial(),
    )
    .expect("join")
    .into_relation()
    .expect("materialize")
}

/// The two-node σ → Π chain, node at a time (the shortest pipeline —
/// conversion overhead is just about paid back here; the win grows with
/// every further node that skips its `BTreeMap`).
fn tuple_filter_project(emp: &MKRel<Prov>) -> MKRel<Prov> {
    let serial = ExecOptions::serial();
    let f = tuple_filter(emp, 2, SAL_CUT);
    ops::project_opts(&f, &["emp", "dept"], &serial).expect("project")
}

fn batch_filter_project(emp: &MKRel<Prov>) -> MKRel<Prov> {
    let mut chunk = Chunk::from_relation(emp);
    chunk
        .filter(
            &BatchOperand::Col(2),
            BatchCmp::Pred(CmpPred::Lt),
            &BatchOperand::Lit(Const::int(SAL_CUT)),
            &ExecOptions::serial(),
        )
        .expect("filter");
    chunk
        .project(&[0, 1], Schema::new(["emp", "dept"]).expect("schema"))
        .expect("project")
        .into_relation()
        .expect("materialize")
}

/// Measures both pipeline shapes at `samples` runs each, asserting on a
/// small input that the two paths agree bit for bit before timing.
pub fn measure(samples: usize) -> Vec<BatchPoint> {
    let emp = emp_table(EMP_ROWS);
    let dim = dept_table();

    let tiny = emp_table(200);
    assert_eq!(
        tuple_pipeline(&tiny, &dim),
        batch_pipeline(&tiny, &dim),
        "batched pipeline diverged from the tuple-at-a-time path"
    );
    assert_eq!(tuple_filter_project(&tiny), batch_filter_project(&tiny));

    vec![
        BatchPoint {
            op: "filter_project_join",
            rows: EMP_ROWS,
            tuple: crate::parbench::time(samples, || {
                std::hint::black_box(tuple_pipeline(&emp, &dim));
            }),
            batched: crate::parbench::time(samples, || {
                std::hint::black_box(batch_pipeline(&emp, &dim));
            }),
        },
        BatchPoint {
            op: "filter_project",
            rows: EMP_ROWS,
            tuple: crate::parbench::time(samples, || {
                std::hint::black_box(tuple_filter_project(&emp));
            }),
            batched: crate::parbench::time(samples, || {
                std::hint::black_box(batch_filter_project(&emp));
            }),
        },
    ]
}

/// Renders the `BENCH_pr4.json` trajectory point. No `threads` field —
/// these ratios are algorithmic and must never be clamped by the gate —
/// but `host_cpus` records where the measurement came from.
pub fn render_json(points: &[BatchPoint], samples: usize, host_cpus: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"batch_pipeline\",\n");
    s.push_str(&format!("  \"pr\": {PR},\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"rows\": {}, \"tuple_ns\": {}, \"batched_ns\": {}, \
             \"speedup\": {:.2}}}{}\n",
            p.op,
            p.rows,
            p.tuple.as_nanos(),
            p.batched.as_nanos(),
            p.speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
