//! The enforcing perf-trajectory gate:
//! `cargo run -p aggprov-bench --bin check_trajectory`.
//!
//! Compares fresh quick-mode bench results against the checked-in
//! `BENCH_pr<N>.json` trajectory points and **fails** (exit code 1) when
//! any recorded speedup ratio regressed by more than
//! [`MAX_REGRESSION`]× —
//! replacing the old `git diff --stat … || true` no-op.
//!
//! Protocol:
//!
//! * the **newest** checked-in point is always enforced. Its fresh
//!   counterpart is read from `target/bench/` (written by a preceding
//!   `cargo bench`); for the partition-parallel and batch-pipeline points
//!   the gate can also measure inline, so it works as a single
//!   standalone command;
//! * **older** checked-in points are enforced whenever a fresh counterpart
//!   exists in `target/bench/` (CI runs their benches first), so the PR 2
//!   hash-vs-naive ratios stay guarded too;
//! * ratios are scale-free and compared with a 2× tolerance, which rides
//!   out quick-mode sampling noise but not an order-of-magnitude loss.

use aggprov_bench::trajectory::{
    checked_in_points, clamp_to_host, compare, fresh_path, host_note, parse, BenchFile,
    MAX_REGRESSION,
};
use aggprov_bench::{batchbench, optbench, parbench, serverbench, typedbench, viewbench};
use criterion::quick_mode_samples;

fn read_bench_file(path: &std::path::Path) -> Option<BenchFile> {
    let text = std::fs::read_to_string(path).ok()?;
    parse(&text)
}

/// Runs one self-measuring point inline (quick mode) — the gate owns
/// these measurements, so a bare `cargo run --bin check_trajectory`
/// always enforces them with no preceding bench step. `detail` goes into
/// the progress line (e.g. a thread count); `render` measures at the
/// given sample count and returns the rendered trajectory JSON.
fn inline_measure(name: &str, detail: &str, render: impl FnOnce(usize) -> String) -> BenchFile {
    let samples = quick_mode_samples(5);
    println!("check_trajectory: measuring {name} inline ({samples} samples{detail})");
    parse(&render(samples)).expect("self-rendered JSON parses")
}

fn main() {
    let checked = checked_in_points();
    let Some((newest_pr, _)) = checked.last() else {
        eprintln!("check_trajectory: no checked-in BENCH_pr<N>.json found at the repo root");
        std::process::exit(1);
    };
    let newest_pr = *newest_pr;
    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;

    for (pr, path) in &checked {
        let Some(mut recorded) = read_bench_file(path) else {
            failures.push(format!("{}: unreadable trajectory point", path.display()));
            continue;
        };
        // A point measured on a different core count is still judged
        // (algorithmic ratios are scale-free), but say so: a reader
        // comparing absolute numbers should know the hosts differ.
        if let Some(note) = host_note(&recorded, parbench::host_cpus()) {
            println!("{note}");
        }
        // Thread-scaling ratios do not transfer across core counts: judge
        // them against what this host can physically deliver.
        if clamp_to_host(&mut recorded, parbench::host_cpus()) {
            println!(
                "BENCH_pr{pr}: thread-scaling expectations clamped to this host's \
                 {} CPU(s) (recorded on host_cpus = {})",
                parbench::host_cpus(),
                recorded
                    .host_cpus
                    .map_or_else(|| "?".to_string(), |n| n.to_string())
            );
        }
        let fresh_file = fresh_path(&format!("BENCH_pr{pr}.json"));
        // A fresh thread-scaling run is only comparable if it used the
        // recorded thread count (a threads=1 run of the bench, e.g. under
        // the CI test matrix env, would read as a spurious regression).
        let fresh = match read_bench_file(&fresh_file) {
            Some(f) if f.threads == recorded.threads => Some(f),
            Some(f) => {
                println!(
                    "BENCH_pr{pr}: fresh run used threads = {:?}, recorded point used {:?} \
                     — not comparable, re-measuring",
                    f.threads, recorded.threads
                );
                None
            }
            None => None,
        };
        let fresh = match fresh {
            Some(f) => f,
            None if *pr == optbench::PR => inline_measure("opt_pipeline", "", |samples| {
                optbench::render_json(&optbench::measure(samples), samples, parbench::host_cpus())
            }),
            None if *pr == viewbench::PR => inline_measure("view_maintenance", "", |samples| {
                viewbench::render_json(&viewbench::measure(samples), samples, parbench::host_cpus())
            }),
            None if *pr == typedbench::PR => inline_measure(
                "typed_kernels",
                &format!(", shard threads = {}", typedbench::shard_threads()),
                |samples| {
                    typedbench::render_json(
                        &typedbench::measure(samples),
                        samples,
                        parbench::host_cpus(),
                    )
                },
            ),
            None if *pr == batchbench::PR => inline_measure("batch_pipeline", "", |samples| {
                batchbench::render_json(
                    &batchbench::measure(samples),
                    samples,
                    parbench::host_cpus(),
                )
            }),
            None if *pr == serverbench::PR => inline_measure(
                "server_saturation",
                &format!(", clients = {:?}", serverbench::CLIENT_COUNTS),
                |samples| {
                    serverbench::render_json(
                        &serverbench::measure(samples),
                        samples,
                        parbench::host_cpus(),
                    )
                },
            ),
            None if *pr == parbench::PR => {
                let threads = recorded.threads.unwrap_or(4);
                inline_measure(
                    "partition_parallel",
                    &format!(", threads = {threads}"),
                    |samples| {
                        parbench::render_json(
                            &parbench::measure(samples, threads),
                            samples,
                            threads,
                            parbench::host_cpus(),
                        )
                    },
                )
            }
            None if *pr == newest_pr => {
                failures.push(format!(
                    "BENCH_pr{pr}: newest trajectory point has no comparable fresh run; \
                     run `cargo bench -p aggprov-bench` first"
                ));
                continue;
            }
            None => {
                println!(
                    "BENCH_pr{pr}: no comparable fresh run in target/bench/, \
                     skipped (not newest)"
                );
                continue;
            }
        };
        compared += 1;
        let found = compare(&recorded, &fresh, MAX_REGRESSION);
        if found.is_empty() {
            println!(
                "BENCH_pr{pr}: OK ({} ratio{} within {MAX_REGRESSION}x of the recorded point)",
                recorded.points.len(),
                if recorded.points.len() == 1 { "" } else { "s" }
            );
        }
        failures.extend(found);
    }

    if compared == 0 {
        failures.push("check_trajectory: no trajectory point could be compared".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
    println!(
        "perf trajectory OK ({compared} point{} enforced)",
        if compared == 1 { "" } else { "s" }
    );
}
