//! Regenerates every figure and worked example of the paper, plus the
//! desiderata measurement tables (T1–T8 of DESIGN.md / EXPERIMENTS.md).
//!
//! Run with: `cargo run --release -p aggprov-bench --bin tables`

use aggprov_algebra::domain::Const;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{CommutativeSemiring, IntZ, Nat, Security};
use aggprov_algebra::sn::Sn;
use aggprov_algebra::tensor::Tensor;
use aggprov_bench::fig2_input;
use aggprov_core::difference::laws::{check_bag_monus, check_ours, check_z, DiffLaw};
use aggprov_core::eval::{collapse, map_hom_mk};
use aggprov_core::km::Km;
use aggprov_core::naive::{naive_size, naive_table};
use aggprov_core::ops::{group_by, select_eq, AggSpec, MKRel};
use aggprov_core::{Prov, Value};
use aggprov_engine::{Database, ProvDb};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use aggprov_workloads::org::{org, OrgParams};

fn heading(id: &str, title: &str) {
    println!();
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

fn figure_1_db() -> ProvDb {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
         INSERT INTO r VALUES (1, 'd1', 20) PROVENANCE p1;
         INSERT INTO r VALUES (2, 'd1', 10) PROVENANCE p2;
         INSERT INTO r VALUES (3, 'd1', 15) PROVENANCE p3;
         INSERT INTO r VALUES (4, 'd2', 10) PROVENANCE r1;
         INSERT INTO r VALUES (5, 'd2', 15) PROVENANCE r2;",
    )
    .expect("figure 1");
    db
}

fn t1_figure_1() {
    heading("T1 (Figure 1)", "projection on annotated relations");
    let db = figure_1_db();
    println!("Figure 1(a): R");
    println!("{}", db.table("r").expect("table"));
    println!("Figure 1(b): Π_Dept R");
    println!("{}", db.query("SELECT dept FROM r").expect("projection"));
}

fn t2_figure_2() {
    heading(
        "T2 (Figure 2)",
        "naive tuple-level aggregation vs tensor values",
    );
    // Figure 2(a): dept d1 with salaries 20, 10, 15.
    let input = [
        (
            aggprov_algebra::poly::Var::new("p1"),
            aggprov_algebra::num::Num::int(20),
        ),
        (
            aggprov_algebra::poly::Var::new("p2"),
            aggprov_algebra::num::Num::int(10),
        ),
        (
            aggprov_algebra::poly::Var::new("p3"),
            aggprov_algebra::num::Num::int(15),
        ),
    ];
    println!("Figure 2(a): every subset of d1's tuples becomes a row");
    for row in naive_table(MonoidKind::Sum, &input) {
        println!("  d1  {:>3}   {}", row.value.to_string(), row.condition);
    }
    println!();
    println!("Figure 2(b): after deleting the tuple with token p3 (p3 = 0):");
    for row in naive_table(MonoidKind::Sum, &input[..2]) {
        println!("  d1  {:>3}   {}", row.value.to_string(), row.condition);
    }
    println!();
    println!("The paper's point — representation sizes as n grows:");
    println!(
        "{:>4} {:>16} {:>16}",
        "n", "naive (nodes)", "tensor (terms)"
    );
    for n in [2usize, 4, 6, 8, 10, 12, 14] {
        let input = fig2_input(n);
        let naive = naive_size(&naive_table(MonoidKind::Sum, &input));
        let tensor = Tensor::<NatPoly, Const>::from_terms(
            &MonoidKind::Sum,
            input
                .iter()
                .map(|(v, num)| (NatPoly::var(v.clone()), Const::Num(*num))),
        );
        println!("{n:>4} {naive:>16} {:>16}", tensor.len());
    }
    println!("(naive is Θ(2^n); the tensor representation is linear)");
}

fn t3_examples_34_35() {
    heading(
        "T3 (Examples 3.4, 3.5)",
        "AGG values and their specializations",
    );
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (sal NUM);
         INSERT INTO r VALUES (20) PROVENANCE r1;
         INSERT INTO r VALUES (10) PROVENANCE r2;
         INSERT INTO r VALUES (30) PROVENANCE r3;",
    )
    .expect("example 3.4");
    let total = db.query("SELECT SUM(sal) AS total FROM r").expect("sum");
    println!("Example 3.4: AGG_SUM(R) =");
    println!("{total}");
    let val = Valuation::<Nat>::ones()
        .set("r1", Nat(1))
        .set("r2", Nat(0))
        .set("r3", Nat(2));
    let resolved = collapse(&map_hom_mk(&total, &|p: &NatPoly| val.eval(p))).expect("resolve");
    println!("  r1↦1, r2↦0, r3↦2 resolves to:");
    println!("{resolved}");

    let mut sdb: Database<Km<Security>> = Database::new();
    sdb.exec(
        "CREATE TABLE r (sal NUM);
         INSERT INTO r VALUES (20) PROVENANCE S;
         INSERT INTO r VALUES (10) PROVENANCE PUBLIC;
         INSERT INTO r VALUES (30) PROVENANCE S;",
    )
    .expect("example 3.5");
    let top = sdb.query("SELECT MAX(sal) AS top FROM r").expect("max");
    println!("Example 3.5: AGG_MAX(R) over the security semiring =");
    println!("{top}");
    for cred in [Security::Confidential, Security::Secret] {
        let view = map_hom_mk(&top, &|s: &Security| {
            if s.visible_to(cred) {
                Security::Public
            } else {
                Security::Never
            }
        });
        let shown = view
            .iter()
            .next()
            .map(|(t, _)| t.get(0).to_string())
            .unwrap_or_default();
        println!("  credentials {cred}: MAX = {shown}");
    }
}

fn t4_example_38() {
    heading("T4 (Example 3.8)", "GROUP BY with δ-annotations");
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (dept TEXT, sal NUM);
         INSERT INTO r VALUES ('d1', 20) PROVENANCE r1;
         INSERT INTO r VALUES ('d1', 10) PROVENANCE r2;
         INSERT INTO r VALUES ('d2', 10) PROVENANCE r3;",
    )
    .expect("example 3.8");
    println!(
        "{}",
        db.query("SELECT dept, SUM(sal) AS sal FROM r GROUP BY dept")
            .expect("group by")
    );
}

fn t5_examples_43_45() {
    heading(
        "T5 (Examples 4.3, 4.5)",
        "nested aggregation: symbolic equality tokens",
    );
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (dept TEXT, sal NUM);
         INSERT INTO r VALUES ('d1', 20) PROVENANCE r1;
         INSERT INTO r VALUES ('d1', 10) PROVENANCE r2;
         INSERT INTO r VALUES ('d2', 10) PROVENANCE r3;",
    )
    .expect("load");
    let selected = db
        .query("SELECT dept, SUM(sal) AS sal FROM r GROUP BY dept HAVING sal = 20")
        .expect("example 4.3");
    println!("Example 4.3: σ_{{sal = 20}}(GB(R)) =");
    println!("{selected}");

    let total = aggprov_core::ops::agg(&selected, AggSpec::new(MonoidKind::Sum, "sal"))
        .expect("example 4.5");
    println!("Example 4.5: summing again over the selection =");
    println!("{total}");
    for (r1, r2, r3) in [(1u64, 0u64, 2u64), (1, 1, 2)] {
        let val = Valuation::<Nat>::ones()
            .set("r1", Nat(r1))
            .set("r2", Nat(r2))
            .set("r3", Nat(r3));
        let resolved = collapse(&map_hom_mk(&total, &|p: &NatPoly| val.eval(p))).expect("resolve");
        let shown = resolved
            .iter()
            .next()
            .map(|(t, _)| t.get(0).to_string())
            .unwrap_or_default();
        println!("  r1↦{r1}, r2↦{r2}, r3↦{r3}: total = {shown}");
    }
}

fn t6_examples_53_56() {
    heading("T6 (Examples 5.3, 5.6)", "difference via aggregation");
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE emp (id NUM, dep TEXT);
         INSERT INTO emp VALUES (1, 'd1') PROVENANCE t1;
         INSERT INTO emp VALUES (2, 'd1') PROVENANCE t2;
         INSERT INTO emp VALUES (2, 'd2') PROVENANCE t3;
         CREATE TABLE closing (dep TEXT);
         INSERT INTO closing VALUES ('d1') PROVENANCE t4;",
    )
    .expect("example 5.3");
    let open = db
        .query("SELECT dep FROM emp EXCEPT SELECT dep FROM closing")
        .expect("difference");
    println!("(Π_dep emp) − closing =");
    println!("{open}");
    let revoked = map_hom_mk(&open, &|p: &NatPoly| {
        Valuation::<NatPoly>::ones()
            .set_all(
                ["t1", "t2", "t3"].map(|t| (aggprov_algebra::poly::Var::new(t), NatPoly::token(t))),
            )
            .set("t4", NatPoly::zero())
            .eval(p)
    });
    println!("after revoking the closure (t4 ↦ 0):");
    println!("{revoked}");
    let ours = collapse(&map_hom_mk(&open, &|p: &NatPoly| {
        Valuation::<Nat>::ones().eval(p)
    }))
    .expect("resolve");
    println!(
        "Example 5.6 (all tokens ↦ 1): hybrid keeps {} row(s);",
        ours.len()
    );
    println!("bag monus would keep d1 with multiplicity 1.");
}

fn t7_overhead() {
    heading(
        "T7 (desideratum D3)",
        "poly-size overhead of symbolic annotations",
    );
    println!(
        "{:>8} {:>14} {:>18} {:>20}",
        "tuples", "result rows", "size (group-by)", "size (having query)"
    );
    for per_dept in [10usize, 20, 40, 80, 160] {
        let workload = org(OrgParams {
            departments: 10,
            employees_per_dept: per_dept,
            ..Default::default()
        });
        let grouped = group_by(
            &workload.emp,
            &["dept"],
            &[AggSpec::new(MonoidKind::Sum, "sal")],
        )
        .expect("group by");
        let having = select_eq(&grouped, "sal", &Value::int(1000)).expect("having");
        let gsize: usize = grouped
            .iter()
            .map(|(t, k)| k.size() + t.values().iter().map(|v| v.size()).sum::<usize>())
            .sum();
        let hsize: usize = having
            .iter()
            .map(|(t, k)| k.size() + t.values().iter().map(|v| v.size()).sum::<usize>())
            .sum();
        println!(
            "{:>8} {:>14} {:>18} {:>20}",
            10 * per_dept,
            grouped.len(),
            gsize,
            hsize
        );
    }
    println!("(sizes grow linearly in the input — the D3 desideratum; the naive");
    println!(" baseline of T2 is exponential)");
}

fn t8_law_matrix() {
    heading(
        "T8 (Props 5.4–5.7)",
        "difference-law matrix across semantics",
    );
    let mk = |rows: &[(i64, u64)]| -> MKRel<Nat> {
        Relation::from_rows(
            Schema::new(["x"]).expect("schema"),
            rows.iter().map(|(v, n)| (vec![Value::int(*v)], Nat(*n))),
        )
        .expect("rows")
    };
    let (a, b, c) = (
        mk(&[(1, 2), (2, 1)]),
        mk(&[(1, 1), (3, 2)]),
        mk(&[(3, 1), (4, 1)]),
    );
    let nb = |rel: &MKRel<Nat>| {
        let mut out = Relation::empty(rel.schema().clone());
        for (t, k) in rel.iter() {
            let row: Vec<Const> = t
                .values()
                .iter()
                .map(|v| v.as_const().expect("const").clone())
                .collect();
            out.insert(row, *k).expect("insert");
        }
        out
    };
    let (ba, bb, bc) = (nb(&a), nb(&b), nb(&c));
    let zr = |rows: &[(i64, i64)]| {
        Relation::from_rows(
            Schema::new(["x"]).expect("schema"),
            rows.iter().map(|(v, n)| ([Const::int(*v)], IntZ(*n))),
        )
        .expect("rows")
    };
    let (za, zb, zc) = (
        zr(&[(1, 2), (2, 1)]),
        zr(&[(1, 1), (3, 2)]),
        zr(&[(3, 1), (4, 1)]),
    );
    println!(
        "{:<34} {:>8} {:>10} {:>4}",
        "law", "hybrid", "bag-monus", "ℤ"
    );
    let mark = |b: bool| if b { "✓" } else { "✗" };
    for law in DiffLaw::ALL {
        println!(
            "{:<34} {:>8} {:>10} {:>4}",
            law.name(),
            mark(check_ours(law, &a, &b, &c).expect("ours")),
            mark(check_bag_monus(law, &ba, &bb, &bc).expect("monus")),
            mark(check_z(law, &za, &zb, &zc).expect("z")),
        );
    }
}

fn t9_example_316() {
    heading("T9 (Example 3.16)", "the security-bag semiring SN with SUM");
    let mut db: Database<Km<Sn>> = Database::new();
    db.exec(
        "CREATE TABLE r (a NUM);
         INSERT INTO r VALUES (30) PROVENANCE S;
         CREATE TABLE s (a NUM);
         INSERT INTO s VALUES (30) PROVENANCE T;
         INSERT INTO s VALUES (10) PROVENANCE PUBLIC;",
    )
    .expect("example 3.16");
    use aggprov_core::ops::{agg, product, project, union};
    let r = db.table("r").expect("r").clone();
    let s = db.table("s").expect("s").clone();
    let joined = {
        let s2 = s.rename("a", "b").expect("rename");
        let j = product(&s2, &r).expect("product");
        project(&j, &["b"])
            .expect("project")
            .rename("b", "a")
            .expect("rename")
    };
    let unioned = union(&r, &joined).expect("union");
    let total = agg(&unioned, AggSpec::new(MonoidKind::Sum, "a")).expect("agg");
    println!("AGG(R ∪ Π_S.A(S ⋈ R)) over SN =");
    println!("{total}");
    for cred in [
        Security::TopSecret,
        Security::Secret,
        Security::Confidential,
    ] {
        let view = map_hom_mk(&total, &|x: &Sn| Nat(x.multiplicity_for(cred)));
        let shown = collapse(&view)
            .expect("resolve")
            .iter()
            .next()
            .map(|(t, _)| t.get(0).to_string())
            .unwrap_or_default();
        println!("  credentials {cred}: SUM = {shown}");
    }
}

fn t10_eager_resolution_ablation() {
    heading(
        "T10 (ablation)",
        "eager token resolution vs fully symbolic tokens",
    );
    // Over a bag database every HAVING token resolves eagerly; construct
    // the same annotations with resolution suppressed to see the cost.
    let workload = org(OrgParams {
        departments: 10,
        employees_per_dept: 40,
        ..Default::default()
    });
    let bag_emp = aggprov_core::eval::map_mk(&workload.emp, &|_| Nat(1));
    let grouped =
        group_by(&bag_emp, &["dept"], &[AggSpec::new(MonoidKind::Sum, "sal")]).expect("group by");
    let eager = select_eq(&grouped, "sal", &Value::int(1000)).expect("having");
    let eager_size: usize = eager.iter().map(|(_, k)| 1 + format!("{k}").len()).sum();

    // Suppressed resolution: raw Km atoms comparing the same tensors.
    let mut raw_size = 0usize;
    for (t, _) in grouped.iter() {
        let tensor = t.get(1).to_tensor(MonoidKind::Sum).expect("tensor");
        let raw = Km::<Nat>::atom(aggprov_core::Atom::Eq(
            (
                MonoidKind::Sum,
                tensor.map_coeffs(&MonoidKind::Sum, &mut |k| Km::embed(*k)),
            ),
            (
                MonoidKind::Sum,
                Tensor::iota(&MonoidKind::Sum, Const::int(1000)),
            ),
        ));
        raw_size += 1 + format!("{raw}").len();
    }
    println!("HAVING over a bag database (ℕ annotations):");
    println!("  with eager resolution (axiom *): total annotation text {eager_size} chars");
    println!("  fully symbolic tokens:           total annotation text {raw_size} chars");
    println!("(resolution collapses decidable tokens to 0/1 — Prop 4.4 in action)");
}

fn main() {
    println!("aggprov — experiment tables (see EXPERIMENTS.md for discussion)");
    t1_figure_1();
    t2_figure_2();
    t3_examples_34_35();
    t4_example_38();
    t5_examples_43_45();
    t6_examples_53_56();
    t7_overhead();
    t8_law_matrix();
    t9_example_316();
    t10_eager_resolution_ablation();
    // Exercise Prov for the type alias re-export.
    let _: Option<Prov> = None;
}
