//! Shared relational workloads for the physical-operator benchmarks
//! (`hash_vs_naive`, `partition_parallel`) and the `check_trajectory`
//! gate: fully ground tables with distinct provenance tokens, generated
//! with a deterministic LCG so runs are comparable across machines and
//! PRs.

use aggprov_algebra::poly::NatPoly;
use aggprov_core::km::Km;
use aggprov_core::ops::MKRel;
use aggprov_core::{Prov, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;

/// The employee-table row count the perf trajectory tracks.
pub const EMP_ROWS: usize = 10_000;
/// The department-dimension key count.
pub const DEPTS: i64 = 500;
/// The union/project input size (the reference paths are quadratic in the
/// output key count, so these stay smaller).
pub const SMALL_ROWS: usize = 2_000;

/// A provenance token.
pub fn tok(name: &str) -> Prov {
    Km::embed(NatPoly::token(name))
}

/// A schema from names.
pub fn schema(names: &[&str]) -> Schema {
    Schema::new(names.iter().copied()).expect("schema")
}

/// `emp(emp, dept, sal)`: `n` ground rows with distinct tokens, [`DEPTS`]
/// distinct departments (deterministic LCG so runs are comparable).
pub fn emp_table(n: usize) -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["emp", "dept", "sal"]));
    let mut state: u64 = 0x9E37_79B9;
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let dept = (state >> 33) as i64 % DEPTS;
        let sal = 10 + (state >> 17) as i64 % 190;
        rel.insert(
            vec![Value::int(i as i64), Value::int(dept), Value::int(sal)],
            tok(&format!("p{i}")),
        )
        .expect("insert");
    }
    rel
}

/// `dim(dept2, region)`: one row per department key.
pub fn dept_table() -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["dept2", "region"]));
    for d in 0..DEPTS {
        rel.insert(
            vec![Value::int(d), Value::int(d % 7)],
            tok(&format!("d{d}")),
        )
        .expect("insert");
    }
    rel
}

/// The distinct region-string count in [`emp_str_table`] — small enough
/// that the dictionary-encoded column pays off, large enough that a
/// filter or join still discriminates.
pub const REGIONS: i64 = 24;

/// `emp_str(emp, region, sal)`: like [`emp_table`] but the middle column
/// is a string key drawn from [`REGIONS`] distinct region names, so a
/// typed batch dictionary-encodes it (deterministic LCG, comparable
/// across runs).
pub fn emp_str_table(n: usize) -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["emp", "region", "sal"]));
    let mut state: u64 = 0x9E37_79B9;
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let region = (state >> 33) as i64 % REGIONS;
        let sal = 10 + (state >> 17) as i64 % 190;
        rel.insert(
            vec![
                Value::int(i as i64),
                Value::str(&format!("r{region}")),
                Value::int(sal),
            ],
            tok(&format!("p{i}")),
        )
        .expect("insert");
    }
    rel
}

/// `reg(region2, zone)`: one row per region string key — the dimension
/// side of the dictionary-encoded join.
pub fn region_table() -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["region2", "zone"]));
    for r in 0..REGIONS {
        rel.insert(
            vec![Value::str(&format!("r{r}")), Value::int(r % 5)],
            tok(&format!("g{r}")),
        )
        .expect("insert");
    }
    rel
}

/// The union workload: the same `n` tuples on both sides but with a
/// disjoint token space on the right, so every key collides and the merge
/// pays a polynomial `plus` per tuple.
pub fn union_pair(n: usize) -> (MKRel<Prov>, MKRel<Prov>) {
    let left = emp_table(n);
    let mut right = Relation::empty(schema(&["emp", "dept", "sal"]));
    for (i, (t, _)) in left.iter().enumerate() {
        right
            .insert(t.values().to_vec(), tok(&format!("q{i}")))
            .expect("insert");
    }
    (left, right)
}
