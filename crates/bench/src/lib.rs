//! Shared fixtures for the benchmark harness, the partition-parallel
//! measurement ([`parbench`]), the batch-pipeline measurement
//! ([`batchbench`]), the plan-optimizer measurement ([`optbench`]), the
//! typed-kernel measurement ([`typedbench`]) and the perf-trajectory
//! tooling behind the enforcing `check_trajectory` CI gate
//! ([`trajectory`]).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod batchbench;
pub mod fixtures;
pub mod optbench;
pub mod parbench;
pub mod serverbench;
pub mod trajectory;
pub mod typedbench;
pub mod viewbench;

use aggprov_algebra::num::Num;
use aggprov_algebra::poly::Var;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single-attribute annotated input of `n` tuples with distinct tokens —
/// the Figure 2 scenario at scale: values chosen so subset sums are mostly
/// distinct (worst case for the naive table).
pub fn fig2_input(n: usize) -> Vec<(Var, Num)> {
    (0..n)
        .map(|i| (Var::new(&format!("p{i}")), Num::int(1 << i.min(40))))
        .collect()
}

/// Random salaries for `n` tuples with distinct tokens (benign value
/// distribution).
pub fn salary_input(n: usize, seed: u64) -> Vec<(Var, Num)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Var::new(&format!("p{i}")),
                Num::int(rng.random_range(10..200)),
            )
        })
        .collect()
}
