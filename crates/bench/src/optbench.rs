//! The plan-optimizer measurement behind the `opt_pipeline` bench and
//! the `check_trajectory` gate: times the σ-above-⋈ pushdown workload
//! (`aggprov_workloads::pushdown`) through the optimizer against the
//! literal lowered plan shape, and renders the `BENCH_pr5.json`
//! trajectory point.
//!
//! Both sides run the *same* executor over the *same* ground 10k-row
//! tables at the same (single) thread count; the only difference is the
//! plan shape — filter above the join (as lowered) versus filter pushed
//! onto the base table plus greedy join reordering. The recorded ratios
//! are therefore algorithmic: the JSON deliberately records no `threads`
//! field (the gate never clamps them), and `host_cpus` is recorded for
//! provenance of the measurement only.
//!
//! Statements are prepared once, outside the timed loop — what is
//! measured is execution, exactly what the plan cache makes the steady
//! state of a prepared workload.

use aggprov_core::ops::MKRel;
use aggprov_core::par::ExecOptions;
use aggprov_core::Prov;
use aggprov_workloads::pushdown::{pushdown_db, REORDER_SQL, SIGMA_JOIN_SQL};
use std::time::Duration;

/// The PR number of the trajectory point this module measures.
pub const PR: u32 = 5;

/// The employee-table row count the perf trajectory tracks.
pub const EMP_ROWS: usize = 10_000;

/// One measured query: mean wall-clock on the literal lowered plan and
/// on the optimized plan.
#[derive(Debug)]
pub struct OptPoint {
    /// Query name (stable across trajectory points).
    pub op: &'static str,
    /// Employee-table row count.
    pub rows: usize,
    /// Mean time of the unoptimized (literal lowered) plan.
    pub unopt: Duration,
    /// Mean time of the optimized plan.
    pub opt: Duration,
}

impl OptPoint {
    /// `unopt / opt`: > 1 means the optimizer made the query faster.
    pub fn speedup(&self) -> f64 {
        self.unopt.as_secs_f64() / self.opt.as_secs_f64().max(1e-12)
    }
}

/// Measures both tracked queries at `samples` runs each, asserting on a
/// small input that optimized and literal plans agree bit for bit before
/// timing anything.
pub fn measure(samples: usize) -> Vec<OptPoint> {
    let tiny = pushdown_db(200);
    for sql in [SIGMA_JOIN_SQL, REORDER_SQL] {
        let opt: MKRel<Prov> = tiny.prepare(sql).expect("prepare").query_rel();
        let lit: MKRel<Prov> = tiny.prepare_unoptimized(sql).expect("prepare").query_rel();
        assert_eq!(opt, lit, "optimized plan diverged for {sql}");
    }

    let db = pushdown_db(EMP_ROWS);
    let serial = ExecOptions::serial();
    let mut points = Vec::new();
    for (name, sql) in [
        ("sigma_above_join", SIGMA_JOIN_SQL),
        ("filtered_join_chain", REORDER_SQL),
    ] {
        let optimized = db.prepare(sql).expect("prepare");
        let literal = db.prepare_unoptimized(sql).expect("prepare");
        points.push(OptPoint {
            op: name,
            rows: EMP_ROWS,
            unopt: crate::parbench::time(samples, || {
                std::hint::black_box(
                    literal
                        .execute_with_opts(&[], &serial)
                        .expect("execute")
                        .into_relation(),
                );
            }),
            opt: crate::parbench::time(samples, || {
                std::hint::black_box(
                    optimized
                        .execute_with_opts(&[], &serial)
                        .expect("execute")
                        .into_relation(),
                );
            }),
        });
    }
    points
}

/// Convenience: execute a prepared statement serially to a relation.
trait QueryRel {
    fn query_rel(&self) -> MKRel<Prov>;
}

impl QueryRel for aggprov_engine::Prepared<'_, Prov> {
    fn query_rel(&self) -> MKRel<Prov> {
        self.execute_with_opts(&[], &ExecOptions::serial())
            .expect("execute")
            .into_relation()
    }
}

/// Renders the `BENCH_pr5.json` trajectory point. No `threads` field —
/// these ratios are algorithmic and must never be clamped by the gate —
/// but `host_cpus` records where the measurement came from.
pub fn render_json(points: &[OptPoint], samples: usize, host_cpus: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"opt_pipeline\",\n");
    s.push_str(&format!("  \"pr\": {PR},\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"rows\": {}, \"unopt_ns\": {}, \"opt_ns\": {}, \
             \"speedup\": {:.2}}}{}\n",
            p.op,
            p.rows,
            p.unopt.as_nanos(),
            p.opt.as_nanos(),
            p.speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
