//! The partition-parallel measurement behind the `partition_parallel`
//! bench and the `check_trajectory` gate: times the four sharded physical
//! operators at `threads = 1` vs `threads = N` on the standard trajectory
//! workloads and renders the `BENCH_pr3.json` trajectory point.
//!
//! Shared between the bench binary (which prints and writes the JSON) and
//! the gate binary (which needs a fresh measurement to compare against the
//! checked-in point) so both always measure exactly the same thing.

use crate::fixtures::{dept_table, emp_table, union_pair, EMP_ROWS, SMALL_ROWS};
use aggprov_algebra::monoid::MonoidKind;
use aggprov_core::ops::{self, AggSpec};
use aggprov_core::par::ExecOptions;
use std::time::{Duration, Instant};

/// The PR number of the trajectory point this module measures.
pub const PR: u32 = 3;

/// One measured operator: mean wall-clock at `threads = 1` and at the
/// configured thread count.
#[derive(Debug)]
pub struct ParPoint {
    /// Operator name (stable across trajectory points).
    pub op: &'static str,
    /// Input row count.
    pub rows: usize,
    /// Mean time at `threads = 1`.
    pub t1: Duration,
    /// Mean time at the configured thread count.
    pub tn: Duration,
}

impl ParPoint {
    /// `t1 / tn`: > 1 means the threads helped.
    pub fn speedup(&self) -> f64 {
        self.t1.as_secs_f64() / self.tn.as_secs_f64().max(1e-12)
    }
}

/// Times `f` (one warm-up, then `samples` runs) and returns the mean —
/// the one sampling policy every trajectory point is measured with
/// (`hash_vs_naive` uses it too; changing warm-up or averaging here
/// changes all points together, keeping them comparable).
pub fn time(samples: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        total += start.elapsed();
    }
    total / samples.max(1) as u32
}

/// Measures all four sharded operators at `threads = 1` vs `threads`.
/// Asserts (on small inputs) that both paths agree before timing.
pub fn measure(samples: usize, threads: usize) -> Vec<ParPoint> {
    let serial = ExecOptions::serial();
    let par = ExecOptions::with_threads(threads);
    let emp = emp_table(EMP_ROWS);
    let dim = dept_table();
    let (small_a, small_b) = union_pair(SMALL_ROWS);
    let gb_specs = [AggSpec::new(MonoidKind::Sum, "sal")];

    // Sanity: the two paths agree (cheap versions) before we time them.
    let tiny = emp_table(200);
    assert_eq!(
        ops::join_on_opts(&tiny, &dim, &[("dept", "dept2")], &par).unwrap(),
        ops::join_on_opts(&tiny, &dim, &[("dept", "dept2")], &serial).unwrap()
    );
    assert_eq!(
        ops::group_by_opts(&tiny, &["dept"], &gb_specs, &par).unwrap(),
        ops::group_by_opts(&tiny, &["dept"], &gb_specs, &serial).unwrap()
    );

    vec![
        ParPoint {
            op: "join_on",
            rows: EMP_ROWS,
            t1: time(samples, || {
                std::hint::black_box(
                    ops::join_on_opts(&emp, &dim, &[("dept", "dept2")], &serial).unwrap(),
                );
            }),
            tn: time(samples, || {
                std::hint::black_box(
                    ops::join_on_opts(&emp, &dim, &[("dept", "dept2")], &par).unwrap(),
                );
            }),
        },
        ParPoint {
            op: "group_by",
            rows: EMP_ROWS,
            t1: time(samples, || {
                std::hint::black_box(
                    ops::group_by_opts(&emp, &["dept"], &gb_specs, &serial).unwrap(),
                );
            }),
            tn: time(samples, || {
                std::hint::black_box(ops::group_by_opts(&emp, &["dept"], &gb_specs, &par).unwrap());
            }),
        },
        ParPoint {
            op: "union",
            rows: SMALL_ROWS,
            t1: time(samples, || {
                std::hint::black_box(ops::union_opts(&small_a, &small_b, &serial).unwrap());
            }),
            tn: time(samples, || {
                std::hint::black_box(ops::union_opts(&small_a, &small_b, &par).unwrap());
            }),
        },
        ParPoint {
            op: "project",
            rows: SMALL_ROWS,
            t1: time(samples, || {
                std::hint::black_box(ops::project_opts(&small_a, &["dept"], &serial).unwrap());
            }),
            tn: time(samples, || {
                std::hint::black_box(ops::project_opts(&small_a, &["dept"], &par).unwrap());
            }),
        },
    ]
}

/// Renders the `BENCH_pr3.json` trajectory point. `host_cpus` records the
/// parallelism the measuring machine actually had — a single-core host
/// cannot show wall-clock speedup from threads, and the trajectory reader
/// needs to know that to judge the recorded ratios.
pub fn render_json(
    points: &[ParPoint],
    samples: usize,
    threads: usize,
    host_cpus: usize,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"partition_parallel\",\n");
    s.push_str(&format!("  \"pr\": {PR},\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"rows\": {}, \"t1_ns\": {}, \"tn_ns\": {}, \
             \"speedup\": {:.2}}}{}\n",
            p.op,
            p.rows,
            p.t1.as_nanos(),
            p.tn.as_nanos(),
            p.speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The measuring machine's available parallelism (the thread count
/// [`ExecOptions::available`] resolves to).
pub fn host_cpus() -> usize {
    ExecOptions::available().threads()
}
