//! The serving-layer saturation measurement behind the
//! `server_saturation` bench and the `check_trajectory` gate: drives
//! `N ∈ {1, 4, 16}` concurrent wire-protocol clients against an
//! in-process TCP server and renders the `BENCH_pr6.json` trajectory
//! point (queries/sec per client count, `host_cpus` recorded).
//!
//! Every client independently prepares statements against its own pinned
//! epoch snapshot and executes them over the socket; before any timing,
//! each response is checked **bit-identical** (rendered cells and
//! annotations) to a single-caller `specops` §4.3 oracle composition, and
//! any error response fails the measurement — so the recorded numbers are
//! by construction numbers for *correct* concurrent executions.

use crate::fixtures::{dept_table, emp_table, DEPTS};
use aggprov_algebra::monoid::MonoidKind;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::{specops, Prov, Value};
use aggprov_engine::ProvDb;
use aggprov_server::{Client, Json, Server};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The PR number of the trajectory point this module measures.
pub const PR: u32 = 6;

/// The client counts the saturation sweep drives.
pub const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];

/// Rows in the benched `emp` table (smaller than the engine trajectory
/// workloads: every row crosses the wire rendered).
pub const ROWS: usize = 2_000;

/// One client-count measurement.
#[derive(Debug)]
pub struct SaturationPoint {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total queries executed across all clients.
    pub queries: usize,
    /// Wall-clock for the whole run (connect excluded, barrier to join).
    pub elapsed: Duration,
}

impl SaturationPoint {
    /// Aggregate throughput in queries per second.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// The wire rendering of a relation's rows, built exactly as the server
/// renders them — the oracle side of the bit-identical check.
fn rendered_rows(rel: &MKRel<Prov>) -> Json {
    let rows = rel
        .iter()
        .map(|(tuple, annotation)| {
            let values: Vec<Json> = tuple
                .values()
                .iter()
                .map(|v| Json::str(v.to_string()))
                .collect();
            let mut obj = std::collections::BTreeMap::new();
            obj.insert("values".to_string(), Json::Arr(values));
            obj.insert("annotation".to_string(), Json::str(annotation.to_string()));
            Json::Obj(obj)
        })
        .collect();
    Json::Arr(rows)
}

/// The per-department oracle for `SELECT sal FROM emp WHERE dept = $1`,
/// composed from the literal §4.3 operators.
fn dept_oracle(emp: &MKRel<Prov>, dept: i64) -> Json {
    let selected = ops::select_eq(emp, "dept", &Value::int(dept)).expect("oracle select");
    rendered_rows(&specops::project(&selected, &["sal"]).expect("oracle project"))
}

/// The oracle for `SELECT dept, SUM(sal) AS mass FROM emp GROUP BY dept`.
fn grouped_oracle(emp: &MKRel<Prov>) -> Json {
    let grouped = specops::group_by(
        emp,
        &["dept"],
        &[AggSpec {
            kind: MonoidKind::Sum,
            attr: "sal",
            out: "mass",
        }],
    )
    .expect("oracle group");
    rendered_rows(&specops::project(&grouped, &["dept", "mass"]).expect("oracle project"))
}

/// Runs the saturation sweep: for each client count, `queries_per_client`
/// parameterized executes (plus one grouped aggregate) per client, all
/// started on a barrier. Panics on any error response or any response
/// that differs from the specops oracle.
pub fn measure(samples: usize) -> Vec<SaturationPoint> {
    let emp = emp_table(ROWS);
    let queries_per_client = samples.max(1) * 4;

    // Oracles for the parameter rotation, computed once, single-caller.
    let param_depts: Vec<i64> = (0..8).map(|d| d % DEPTS).collect();
    let dept_oracles: Arc<Vec<Json>> =
        Arc::new(param_depts.iter().map(|d| dept_oracle(&emp, *d)).collect());
    let grouped = Arc::new(grouped_oracle(&emp));

    let mut db = ProvDb::new();
    db.register("emp", emp);
    db.register("dim", dept_table());
    let server = Server::bind_with("127.0.0.1:0", db).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let serve = std::thread::spawn(move || server.serve().expect("serve"));

    let mut points = Vec::new();
    for &clients in &CLIENT_COUNTS {
        // Connect and prepare outside the timed window: saturation
        // measures steady-state execute throughput.
        let barrier = Arc::new(Barrier::new(clients + 1));
        let workers: Vec<_> = (0..clients)
            .map(|worker| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                let dept_oracles = Arc::clone(&dept_oracles);
                let grouped = Arc::clone(&grouped);
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr.as_str()).expect("connect");
                    let by_dept = c
                        .prepare("SELECT sal FROM emp WHERE dept = $1")
                        .expect("prepare");
                    let mass = c
                        .prepare("SELECT dept, SUM(sal) AS mass FROM emp GROUP BY dept")
                        .expect("prepare grouped");
                    barrier.wait();
                    for i in 0..queries_per_client {
                        let which = (worker + i) % dept_oracles.len();
                        let d = (which as i64) % DEPTS;
                        let out = c
                            .execute(by_dept, vec![Json::Int(d)])
                            .expect("execute must not error under saturation");
                        assert_eq!(
                            out.get("rows"),
                            Some(&dept_oracles[which]),
                            "client {worker} diverged from the specops oracle"
                        );
                    }
                    let out = c.execute(mass, vec![]).expect("grouped execute");
                    assert_eq!(
                        out.get("rows"),
                        Some(grouped.as_ref()),
                        "client {worker} grouped result diverged from the specops oracle"
                    );
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for w in workers {
            w.join().expect("client thread");
        }
        let elapsed = start.elapsed();
        points.push(SaturationPoint {
            clients,
            queries: clients * (queries_per_client + 1),
            elapsed,
        });
    }

    Client::connect(addr.as_str())
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    serve.join().expect("serve thread");
    points
}

/// Renders the `BENCH_pr6.json` trajectory point. The recorded `speedup`
/// per client count is the throughput ratio against the single-client
/// run; the top-level `threads` field marks this as a scaling point so
/// the gate clamps expectations to the judging host's parallelism, and
/// `host_cpus` records what the measuring machine had.
pub fn render_json(points: &[SaturationPoint], samples: usize, host_cpus: usize) -> String {
    let base_qps = points
        .first()
        .map(SaturationPoint::qps)
        .unwrap_or(1.0)
        .max(1e-12);
    let max_clients = points.iter().map(|p| p.clients).max().unwrap_or(1);
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"server_saturation\",\n");
    s.push_str(&format!("  \"pr\": {PR},\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"threads\": {max_clients},\n"));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!("  \"rows\": {ROWS},\n"));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"clients_{}\", \"queries\": {}, \"elapsed_ns\": {}, \
             \"qps\": {:.1}, \"speedup\": {:.2}}}{}\n",
            p.clients,
            p.queries,
            p.elapsed.as_nanos(),
            p.qps(),
            p.qps() / base_qps,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
