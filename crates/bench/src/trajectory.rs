//! The perf trajectory: reading/locating the checked-in `BENCH_pr<N>.json`
//! points, routing fresh bench output away from the working tree, and the
//! ratio comparison behind the enforcing `check_trajectory` CI gate.
//!
//! Every trajectory file records, per operator, a `speedup` ratio (hash vs
//! naive for PR 2, `threads = N` vs `threads = 1` for PR 3). Algorithmic
//! ratios (hash vs naive) are scale-free and comparable across machines;
//! *thread-scaling* ratios are not — a point recorded on an 8-core box
//! cannot be reproduced by a 2-core runner — so points that record a
//! `threads` count have their expectations clamped to the judging host's
//! parallelism first ([`clamp_to_host`]). The gate fails when a fresh
//! quick-mode measurement shows any (clamped) recorded ratio regressed by
//! more than [`MAX_REGRESSION`]×.
//!
//! The JSON subset used by the trajectory files is fixed and written by
//! this workspace, so the parser here is a small hand-rolled scanner — no
//! serde in the offline build environment.

use std::path::{Path, PathBuf};

/// The regression multiplier the gate tolerates: a fresh ratio may be up
/// to this many times *smaller* than the recorded one before the job
/// fails (quick-mode sampling is noisy; an order-of-magnitude loss is
/// not).
pub const MAX_REGRESSION: f64 = 2.0;

/// Opt-in for writing bench output over the checked-in trajectory files.
pub const COMMIT_ENV: &str = "AGGPROV_BENCH_COMMIT";

/// One recorded operator ratio.
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Operator name.
    pub op: String,
    /// The recorded speedup ratio.
    pub speedup: f64,
    /// The thread count this ratio was measured at — a per-point
    /// `"threads"` field, or the file-level one when the point records
    /// none. `None` marks an algorithmic ratio (hash vs naive, typed vs
    /// boxed), which is scale-free and never clamped; `Some` marks a
    /// thread-scaling ratio, clamped to the judging host's CPUs by
    /// [`clamp_to_host`]. A file may mix both kinds (PR 9 does).
    pub threads: Option<usize>,
}

/// A parsed trajectory file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    /// The PR number of the point (`"pr"`).
    pub pr: u32,
    /// The thread count of a parallel point (`"threads"`), if recorded.
    pub threads: Option<usize>,
    /// The host parallelism at measuring time (`"host_cpus"`), if
    /// recorded.
    pub host_cpus: Option<usize>,
    /// The per-operator ratios.
    pub points: Vec<Point>,
}

/// Extracts the number following `"key":` at top level or anywhere after
/// `from`, returning the value and the position after it.
fn scan_number(s: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = s[from..].find(&needle)? + from + needle.len();
    let rest = s[at..].trim_start();
    let offset = at + (s[at..].len() - rest.len());
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok().map(|v| (v, offset + end))
}

/// Extracts the string following `"key":` after `from`.
fn scan_string(s: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let needle = format!("\"{key}\":");
    let at = s[from..].find(&needle)? + from + needle.len();
    let open = s[at..].find('"')? + at + 1;
    let close = s[open..].find('"')? + open;
    Some((s[open..close].to_string(), close + 1))
}

/// Parses a trajectory file. Unknown fields are ignored; `op`/`speedup`
/// pairs are read in document order. File-level metadata (`threads`,
/// `host_cpus`) is read from the prefix before the `results` array; a
/// per-point `"threads"` (written after the point's `"op"`, inside the
/// same object) overrides — or, for a file with no file-level count,
/// introduces — the thread count of that one point.
pub fn parse(json: &str) -> Option<BenchFile> {
    let pr = scan_number(json, "pr", 0)?.0 as u32;
    let head = &json[..json.find("\"results\"").unwrap_or(json.len())];
    let threads = scan_number(head, "threads", 0).map(|(v, _)| v as usize);
    let host_cpus = scan_number(head, "host_cpus", 0).map(|(v, _)| v as usize);
    let mut points = Vec::new();
    let mut pos = 0;
    while let Some((op, after_op)) = scan_string(json, "op", pos) {
        // Per-point fields live between this `"op"` and the object's
        // closing brace; scanning past it would steal the next point's.
        let obj_end = json[after_op..]
            .find('}')
            .map_or(json.len(), |i| after_op + i);
        let obj = &json[..obj_end];
        let point_threads = scan_number(obj, "threads", after_op).map(|(v, _)| v as usize);
        let (speedup, after) = scan_number(obj, "speedup", after_op)?;
        points.push(Point {
            op,
            speedup,
            threads: point_threads.or(threads),
        });
        pos = after.max(obj_end);
    }
    Some(BenchFile {
        pr,
        threads,
        host_cpus,
        points,
    })
}

/// The repository root (two levels above the bench crate).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Where a bench should write `file_name`: the checked-in repo root only
/// when `AGGPROV_BENCH_COMMIT=1` (committing a new trajectory point),
/// otherwise `target/bench/` — a plain `cargo bench` must not dirty the
/// working tree.
pub fn out_path(file_name: &str) -> PathBuf {
    let root = repo_root();
    if std::env::var(COMMIT_ENV).as_deref() == Ok("1") {
        return root.join(file_name);
    }
    let dir = root.join("target").join("bench");
    std::fs::create_dir_all(&dir).expect("create target/bench");
    dir.join(file_name)
}

/// The fresh (non-committed) location of `file_name`.
pub fn fresh_path(file_name: &str) -> PathBuf {
    repo_root().join("target").join("bench").join(file_name)
}

/// All checked-in `BENCH_pr<N>.json` files at the repo root, sorted by PR
/// number.
pub fn checked_in_points() -> Vec<(u32, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(repo_root()) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(n) = name
            .strip_prefix("BENCH_pr")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            found.push((n, entry.path()));
        }
    }
    found.sort_by_key(|(n, _)| *n);
    found
}

/// Clamps a *thread-scaling* point's expectations to what `host_cpus`
/// CPUs can physically deliver: a ratio recorded as 3.1× on an 8-core
/// machine is judged as "≥ `host_cpus`×" on a smaller host (ideal linear
/// scaling is the hard ceiling), so an honestly recorded multi-core point
/// does not permanently fail CI on a smaller runner — and a single-core
/// recording (ratio ≈ 1) still guards against catastrophic parallel
/// slowdowns everywhere. The decision is per point: only points carrying
/// a thread count (their own `"threads"` field, or the file-level one)
/// clamp; algorithmic ratios in the same file (e.g. hash vs naive, typed
/// vs boxed) are left untouched.
pub fn clamp_to_host(checked: &mut BenchFile, host_cpus: usize) -> bool {
    let ceiling = host_cpus.max(1) as f64;
    let mut clamped = false;
    for p in &mut checked.points {
        if p.threads.is_some() && p.speedup > ceiling {
            p.speedup = ceiling;
            clamped = true;
        }
    }
    clamped
}

/// The one-line informational note printed when a checked-in point was
/// recorded on a host with a different CPU count than the judging host.
/// Informational only — algorithmic ratios are scale-free and are still
/// enforced; the note exists so a reader comparing absolute times knows
/// the hosts differ. `None` when the counts match or were not recorded.
pub fn host_note(checked: &BenchFile, judging_cpus: usize) -> Option<String> {
    let recorded = checked.host_cpus?;
    if recorded == judging_cpus {
        return None;
    }
    Some(format!(
        "BENCH_pr{}: note: recorded on a host with {recorded} CPU(s), judging host has \
         {judging_cpus} — absolute times are not comparable",
        checked.pr
    ))
}

/// Compares a fresh measurement against a recorded point: one failure
/// line per operator whose ratio regressed more than `max_regression`×,
/// or which the fresh run did not measure at all.
pub fn compare(checked: &BenchFile, fresh: &BenchFile, max_regression: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for point in &checked.points {
        match fresh.points.iter().find(|p| p.op == point.op) {
            None => failures.push(format!(
                "BENCH_pr{}: op `{}` missing from the fresh run",
                checked.pr, point.op
            )),
            Some(f) if f.speedup * max_regression < point.speedup => failures.push(format!(
                "BENCH_pr{}: op `{}` regressed: recorded speedup {:.2}x, fresh {:.2}x \
                 (> {:.1}x regression)",
                checked.pr, point.op, point.speedup, f.speedup, max_regression
            )),
            Some(_) => {}
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "partition_parallel",
  "pr": 3,
  "samples": 5,
  "threads": 4,
  "host_cpus": 8,
  "results": [
    {"op": "join_on", "rows": 10000, "t1_ns": 100, "tn_ns": 40, "speedup": 2.50},
    {"op": "group_by", "rows": 10000, "t1_ns": 90, "tn_ns": 30, "speedup": 3.00}
  ]
}"#;

    #[test]
    fn parses_points_and_metadata() {
        let f = parse(SAMPLE).unwrap();
        assert_eq!(f.pr, 3);
        assert_eq!(f.threads, Some(4));
        assert_eq!(f.host_cpus, Some(8));
        assert_eq!(f.points.len(), 2);
        assert_eq!(f.points[0].op, "join_on");
        assert!((f.points[0].speedup - 2.5).abs() < 1e-9);
        assert!((f.points[1].speedup - 3.0).abs() < 1e-9);
        // The file-level thread count flows into every point.
        assert_eq!(f.points[0].threads, Some(4));
        assert_eq!(f.points[1].threads, Some(4));
    }

    #[test]
    fn per_point_threads_mark_only_their_own_point() {
        // The PR 9 shape: algorithmic typed-vs-boxed ratios (no file-level
        // `threads`) alongside one sharding point with a per-point count.
        let pr9 = r#"{"bench": "typed_kernels", "pr": 9, "host_cpus": 1,
  "results": [
    {"op": "filter_num", "rows": 10000, "baseline_ns": 90, "typed_ns": 10, "speedup": 9.00},
    {"op": "shard_filter_num", "rows": 200000, "threads": 4, "baseline_ns": 50, "typed_ns": 40, "speedup": 1.25},
    {"op": "join_num", "rows": 10000, "baseline_ns": 80, "typed_ns": 20, "speedup": 4.00}
  ]}"#;
        let mut f = parse(pr9).unwrap();
        assert_eq!(f.pr, 9);
        assert_eq!(f.threads, None, "no file-level thread count");
        assert_eq!(f.points[0].threads, None);
        assert_eq!(f.points[1].threads, Some(4));
        assert_eq!(f.points[2].threads, None, "per-point count must not leak");
        // Clamping on a single-core host touches only the sharding point;
        // the algorithmic 9x / 4x expectations survive untouched.
        assert!(clamp_to_host(&mut f, 1));
        assert!((f.points[0].speedup - 9.0).abs() < 1e-9);
        assert!((f.points[1].speedup - 1.0).abs() < 1e-9);
        assert!((f.points[2].speedup - 4.0).abs() < 1e-9);
    }

    #[test]
    fn parses_the_pr2_format_without_threads() {
        let pr2 = r#"{"bench": "hash_vs_naive", "pr": 2, "samples": 5,
            "results": [{"op": "union", "rows": 2000, "naive_ns": 9, "hash_ns": 3, "speedup": 350.5}]}"#;
        let f = parse(pr2).unwrap();
        assert_eq!(f.pr, 2);
        assert_eq!(f.threads, None);
        assert_eq!(f.points.len(), 1);
        assert!((f.points[0].speedup - 350.5).abs() < 1e-9);
    }

    #[test]
    fn compare_flags_regressions_and_missing_ops() {
        let checked = parse(SAMPLE).unwrap();
        let mut fresh = checked.clone();
        assert!(compare(&checked, &fresh, MAX_REGRESSION).is_empty());
        // Half the recorded ratio is exactly at the 2x boundary: allowed.
        fresh.points[0].speedup = 1.25;
        assert!(compare(&checked, &fresh, 2.0).is_empty());
        // Below the boundary: flagged, naming the op and both ratios.
        fresh.points[0].speedup = 1.24;
        let failures = compare(&checked, &fresh, 2.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("join_on"), "{}", failures[0]);
        assert!(failures[0].contains("2.50"), "{}", failures[0]);
        // A missing op is a failure too — renaming an operator must not
        // silently drop it from the gate.
        fresh.points.remove(0);
        let failures = compare(&checked, &fresh, 2.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"), "{}", failures[0]);
    }

    #[test]
    fn clamping_bounds_thread_points_by_host_parallelism() {
        // An 8-core recording (2.5x / 3.0x) judged on a 2-core host: both
        // expectations clamp to 2.0, so an honest fresh ~1.4x passes the
        // 2x gate instead of failing CI forever.
        let mut checked = parse(SAMPLE).unwrap();
        assert!(clamp_to_host(&mut checked, 2));
        assert!(checked.points.iter().all(|p| p.speedup <= 2.0));
        let mut fresh = parse(SAMPLE).unwrap();
        for p in &mut fresh.points {
            p.speedup = 1.4;
        }
        assert!(compare(&checked, &fresh, MAX_REGRESSION).is_empty());
        // A catastrophic parallel slowdown still fails on any host.
        for p in &mut fresh.points {
            p.speedup = 0.3;
        }
        let mut single = parse(SAMPLE).unwrap();
        clamp_to_host(&mut single, 1);
        assert_eq!(compare(&single, &fresh, MAX_REGRESSION).len(), 2);
        // Algorithmic points (no `threads` field) are never clamped.
        let pr2 = r#"{"pr": 2, "results": [{"op": "union", "speedup": 350.5}]}"#;
        let mut pr2 = parse(pr2).unwrap();
        assert!(!clamp_to_host(&mut pr2, 1));
        assert!((pr2.points[0].speedup - 350.5).abs() < 1e-9);
    }

    #[test]
    fn host_note_fires_only_across_differing_hosts() {
        let checked = parse(SAMPLE).unwrap();
        // Recorded on 8 CPUs, judged on 8: silent.
        assert_eq!(host_note(&checked, 8), None);
        // Judged on 1: a one-line note naming both counts, not a failure.
        let note = host_note(&checked, 1).unwrap();
        assert!(note.contains("BENCH_pr3"), "{note}");
        assert!(note.contains("8 CPU(s)"), "{note}");
        assert!(note.contains('1'), "{note}");
        assert!(!note.contains('\n'), "one line: {note}");
        // A point with no host_cpus field stays silent.
        let bare = parse(r#"{"pr": 2, "results": []}"#).unwrap();
        assert_eq!(host_note(&bare, 4), None);
    }

    #[test]
    fn render_and_parse_round_trip() {
        use crate::parbench::{render_json, ParPoint};
        use std::time::Duration;
        let points = vec![ParPoint {
            op: "join_on",
            rows: 10_000,
            t1: Duration::from_nanos(1000),
            tn: Duration::from_nanos(400),
        }];
        let json = render_json(&points, 5, 4, 8);
        let parsed = parse(&json).unwrap();
        assert_eq!(parsed.pr, crate::parbench::PR);
        assert_eq!(parsed.threads, Some(4));
        assert_eq!(parsed.host_cpus, Some(8));
        assert_eq!(parsed.points.len(), 1);
        assert!((parsed.points[0].speedup - 2.5).abs() < 1e-9);
    }

    #[test]
    fn typed_render_and_parse_round_trip() {
        use crate::typedbench::{render_json, TypedPoint};
        use std::time::Duration;
        let points = vec![
            TypedPoint {
                op: "filter_num",
                rows: 10_000,
                baseline: Duration::from_nanos(900),
                typed: Duration::from_nanos(100),
                threads: None,
            },
            TypedPoint {
                op: "shard_filter_num",
                rows: 200_000,
                baseline: Duration::from_nanos(500),
                typed: Duration::from_nanos(400),
                threads: Some(4),
            },
        ];
        let json = render_json(&points, 5, 1);
        let parsed = parse(&json).unwrap();
        assert_eq!(parsed.pr, crate::typedbench::PR);
        assert_eq!(parsed.threads, None, "mixed file: no file-level count");
        assert_eq!(parsed.host_cpus, Some(1));
        assert_eq!(parsed.points.len(), 2);
        assert_eq!(parsed.points[0].threads, None);
        assert_eq!(parsed.points[1].threads, Some(4));
        assert!((parsed.points[0].speedup - 9.0).abs() < 1e-9);
        assert!((parsed.points[1].speedup - 1.25).abs() < 1e-9);
    }
}
