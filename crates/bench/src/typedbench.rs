//! The typed-kernel measurement behind the `typed_kernels` bench and the
//! `check_trajectory` gate: times the PR 9 monomorphic columnar kernels
//! (unboxed `Vec<i64>` runs, dictionary-encoded strings, branchless
//! selection compaction, integer-hashed join probing) against the boxed
//! `Const`-per-row kernels of the same batch pipeline — the exact code
//! the engine runs under `AGGPROV_TYPED=0` — and renders the
//! `BENCH_pr9.json` trajectory point.
//!
//! Both layouts execute the *same* `Chunk` entry points
//! ([`aggprov_core::ops::batch`]); the only variable is the
//! [`ColumnLayout`] the chunk was built with, so the ratios isolate the
//! storage + kernel change. Filter points time a repeated `≠ literal`
//! narrowing on a pre-built chunk (the selection stabilizes after the
//! warm-up call, so every timed iteration scans the same rows); join
//! points time the full build/probe/gather on per-iteration clones of
//! pre-built chunks (the clone is the reset and is included on both
//! sides — it favors neither, and the probe/gather dominates). Join
//! inputs carry **bag (`Nat`) annotations**: with provenance polynomials
//! the output-side `times` (polynomial multiplication) dwarfs the probe
//! and is byte-for-byte identical under either layout, so it would only
//! dilute the kernel ratio being tracked.
//!
//! The typed-vs-boxed ratios are **algorithmic** — both sides
//! single-threaded, same host — so those results record no `threads`
//! field and the gate never clamps them. The one *sharding* point
//! (`shard_filter_num`, serial vs [`shard_threads`] workers over the
//! same typed kernel) is thread-scaling: it measures at the requested
//! count clamped to the host's CPUs, records that count in a per-point
//! `"threads"` field, and the gate clamps its expectation to the judging
//! host's parallelism — a single-core recording honestly shows
//! `threads = 1` and ≈ 1×, never a fabricated speedup.

use crate::fixtures::{dept_table, emp_str_table, emp_table, region_table, EMP_ROWS};
use aggprov_algebra::domain::Const;
use aggprov_algebra::semiring::Nat;
use aggprov_core::km::CmpPred;
use aggprov_core::ops::batch::{hash_join, BatchCmp, BatchOperand, Chunk};
use aggprov_core::ops::MKRel;
use aggprov_core::par::ExecOptions;
use aggprov_core::{Prov, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use aggprov_krel::typed::ColumnLayout;
use std::time::Duration;

/// The PR number of the trajectory point this module measures.
pub const PR: u32 = 9;

/// The large row count: the 10k trajectory workload scaled 10×, so the
/// per-row kernel cost dominates any fixed overhead.
pub const BIG_ROWS: usize = 100_000;

/// Row count of the sharding point — far above the kernels' 8192-row
/// shard threshold, so a multi-thread measurement genuinely fans out.
pub const SHARD_ROWS: usize = 200_000;

/// The *requested* thread count of the sharding point; the measurement
/// runs at [`shard_threads`] — this clamped to the host's CPUs.
pub const SHARD_THREADS: usize = 4;

/// The thread count the sharding point actually measures (and records in
/// its per-point `"threads"` field): [`SHARD_THREADS`] clamped to the
/// host's parallelism. Fanning a ~1 ms kernel across more workers than
/// there are CPUs measures scheduler noise, not sharding — on a
/// single-core host this point honestly records `threads = 1` and a
/// ratio of ≈ 1×.
pub fn shard_threads() -> usize {
    SHARD_THREADS.min(crate::parbench::host_cpus()).max(1)
}

/// One measured kernel: mean wall-clock on the baseline (boxed layout —
/// or the serial typed kernel, for the sharding point) and on the typed
/// (or sharded) side.
#[derive(Debug)]
pub struct TypedPoint {
    /// Kernel name (stable across trajectory points).
    pub op: &'static str,
    /// Input row count.
    pub rows: usize,
    /// Mean time of the baseline side.
    pub baseline: Duration,
    /// Mean time of the typed (or sharded) side.
    pub typed: Duration,
    /// `Some(n)` marks a thread-scaling point measured at `n` workers
    /// (clamped by the gate to the judging host's CPUs); `None` marks an
    /// algorithmic typed-vs-boxed ratio (never clamped).
    pub threads: Option<usize>,
}

impl TypedPoint {
    /// `baseline / typed`: > 1 means the typed (or sharded) side is
    /// faster.
    pub fn speedup(&self) -> f64 {
        self.baseline.as_secs_f64() / self.typed.as_secs_f64().max(1e-12)
    }
}

/// Times the repeated `col ≠ lit` filter on a chunk built with `layout`.
/// The first (warm-up) call drops the literal's matches; every timed
/// iteration then re-scans the stabilized selection through the same
/// kernel — compiled test + branchless compaction on the typed layout,
/// `const_cmp` per row on the boxed one.
fn filter_time(
    rel: &MKRel<Prov>,
    layout: &ColumnLayout,
    col: usize,
    lit: Const,
    opts: &ExecOptions,
    samples: usize,
) -> Duration {
    let mut chunk = Chunk::from_relation_with(rel, layout);
    crate::parbench::time(samples, || {
        chunk
            .filter(
                &BatchOperand::Col(col),
                BatchCmp::Pred(CmpPred::Ne),
                &BatchOperand::Lit(lit.clone()),
                opts,
            )
            .expect("filter");
    })
}

/// Re-annotates a ground fixture table with unit bag multiplicities: the
/// join points carry `Nat` so the timed loop is the key kernel plus the
/// column gather, not `NatPoly` multiplication (identical under either
/// layout).
fn bag(rel: &MKRel<Prov>) -> MKRel<Nat> {
    let mut out = Relation::empty(rel.schema().clone());
    for (t, _) in rel.iter() {
        let row: Vec<Value<Nat>> = t
            .values()
            .iter()
            .map(|v| Value::Const(v.as_const().expect("ground fixture").clone()))
            .collect();
        out.insert(row, Nat(1)).expect("insert");
    }
    out
}

/// Times the single-key hash join of two pre-built chunks: per-iteration
/// clones (the reset), then build + probe + gather. No final
/// `into_relation` — the `BTreeMap` materialization is layout-independent
/// and would only dilute the kernel ratio.
fn join_time(left: &Chunk<Nat>, right: &Chunk<Nat>, schema: &Schema, samples: usize) -> Duration {
    crate::parbench::time(samples, || {
        std::hint::black_box(
            hash_join(
                left.clone(),
                right.clone(),
                &[(1, 0)],
                schema.clone(),
                &ExecOptions::serial(),
            )
            .expect("join"),
        );
    })
}

/// One typed-vs-boxed filter point.
fn filter_point(
    op: &'static str,
    rel: &MKRel<Prov>,
    col: usize,
    lit: Const,
    samples: usize,
) -> TypedPoint {
    let serial = ExecOptions::serial();
    TypedPoint {
        op,
        rows: rel.len(),
        baseline: filter_time(
            rel,
            &ColumnLayout::boxed(),
            col,
            lit.clone(),
            &serial,
            samples,
        ),
        typed: filter_time(rel, &ColumnLayout::typed(), col, lit, &serial, samples),
        threads: None,
    }
}

/// One typed-vs-boxed join point (join key is column 1 of `fact` against
/// column 0 of `dim`).
fn join_point(
    op: &'static str,
    fact: &MKRel<Nat>,
    dim: &MKRel<Nat>,
    schema: &Schema,
    samples: usize,
) -> TypedPoint {
    let boxed = ColumnLayout::boxed();
    let typed = ColumnLayout::typed();
    TypedPoint {
        op,
        rows: fact.len(),
        baseline: join_time(
            &Chunk::from_relation_with(fact, &boxed),
            &Chunk::from_relation_with(dim, &boxed),
            schema,
            samples,
        ),
        typed: join_time(
            &Chunk::from_relation_with(fact, &typed),
            &Chunk::from_relation_with(dim, &typed),
            schema,
            samples,
        ),
        threads: None,
    }
}

/// Measures every trajectory kernel, asserting on a small input that the
/// typed and boxed layouts produce bit-identical relations before timing
/// anything.
pub fn measure(samples: usize) -> Vec<TypedPoint> {
    let join_schema = Schema::new(["emp", "dept", "sal", "dept2", "region"]).expect("schema");
    let str_join_schema = Schema::new(["emp", "region", "sal", "region2", "zone"]).expect("schema");

    // Sanity: same filter + join, both layouts, bit for bit.
    {
        let tiny = emp_table(512);
        let tiny_dim = dept_table();
        let serial = ExecOptions::serial();
        let run = |layout: &ColumnLayout| {
            let mut chunk = Chunk::from_relation_with(&tiny, layout);
            chunk
                .filter(
                    &BatchOperand::Col(2),
                    BatchCmp::Pred(CmpPred::Ne),
                    &BatchOperand::Lit(Const::int(50)),
                    &serial,
                )
                .expect("filter");
            hash_join(
                chunk,
                Chunk::from_relation_with(&tiny_dim, layout),
                &[(1, 0)],
                join_schema.clone(),
                &serial,
            )
            .expect("join")
            .into_relation()
            .expect("materialize")
        };
        assert_eq!(
            run(&ColumnLayout::typed()),
            run(&ColumnLayout::boxed()),
            "typed kernels diverged from the boxed baseline"
        );
        // The same join under bag annotations, as the join points time it.
        let bag_join = |layout: &ColumnLayout| {
            hash_join(
                Chunk::from_relation_with(&bag(&tiny), layout),
                Chunk::from_relation_with(&bag(&tiny_dim), layout),
                &[(1, 0)],
                join_schema.clone(),
                &serial,
            )
            .expect("join")
            .into_relation()
            .expect("materialize")
        };
        assert_eq!(
            bag_join(&ColumnLayout::typed()),
            bag_join(&ColumnLayout::boxed()),
            "typed bag join diverged from the boxed baseline"
        );
    }

    let emp = emp_table(EMP_ROWS);
    let emp_big = emp_table(BIG_ROWS);
    let emp_str = emp_str_table(EMP_ROWS);
    let bag_emp = bag(&emp);
    let bag_emp_big = bag(&emp_big);
    let bag_emp_str = bag(&emp_str);
    let bag_dim = bag(&dept_table());
    let bag_reg = bag(&region_table());

    let mut points = vec![
        filter_point("filter_num", &emp, 2, Const::int(50), samples),
        filter_point("filter_num_big", &emp_big, 2, Const::int(50), samples),
        filter_point("filter_str", &emp_str, 1, Const::str("r3"), samples),
        join_point("join_num", &bag_emp, &bag_dim, &join_schema, samples),
        join_point(
            "join_num_big",
            &bag_emp_big,
            &bag_dim,
            &join_schema,
            samples,
        ),
        join_point(
            "join_str",
            &bag_emp_str,
            &bag_reg,
            &str_join_schema,
            samples,
        ),
    ];

    // The sharding point: the same typed kernel, serial vs fanned out
    // across contiguous ranges — at the host-clamped worker count.
    let threads = shard_threads();
    let shard_rel = emp_table(SHARD_ROWS);
    let typed = ColumnLayout::typed();
    let serial_time = filter_time(
        &shard_rel,
        &typed,
        2,
        Const::int(50),
        &ExecOptions::serial(),
        samples,
    );
    let sharded_time = if threads == 1 {
        // `threads = 1` plans a single shard: provably the serial code
        // path, so the ratio is 1 by construction. Re-timing the
        // identical loop would record CPU-quota throttling noise as a
        // fake (anti-)speedup.
        serial_time
    } else {
        filter_time(
            &shard_rel,
            &typed,
            2,
            Const::int(50),
            &ExecOptions::with_threads(threads),
            samples,
        )
    };
    points.push(TypedPoint {
        op: "shard_filter_num",
        rows: SHARD_ROWS,
        baseline: serial_time,
        typed: sharded_time,
        threads: Some(threads),
    });
    points
}

/// Renders the `BENCH_pr9.json` trajectory point. No file-level
/// `threads`: the typed-vs-boxed ratios are algorithmic and must never
/// be clamped. The sharding point alone carries a per-point `"threads"`
/// field, which the gate clamps to the judging host's parallelism;
/// `host_cpus` records where the measurement came from.
pub fn render_json(points: &[TypedPoint], samples: usize, host_cpus: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"typed_kernels\",\n");
    s.push_str(&format!("  \"pr\": {PR},\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let threads = p
            .threads
            .map_or_else(String::new, |t| format!("\"threads\": {t}, "));
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"rows\": {}, {}\"baseline_ns\": {}, \"typed_ns\": {}, \
             \"speedup\": {:.2}}}{}\n",
            p.op,
            p.rows,
            threads,
            p.baseline.as_nanos(),
            p.typed.as_nanos(),
            p.speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
