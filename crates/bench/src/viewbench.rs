//! The materialized-view measurement behind the `view_maintenance` bench
//! and the `check_trajectory` gate: incremental semiring-delta
//! maintenance versus per-mutation re-execution on the 100k-row org
//! workload under a 1% churn stream, rendering the `BENCH_pr8.json`
//! trajectory point.
//!
//! The churn stream has the two mutation kinds a maintained view must
//! absorb, measured per event:
//!
//! - **`insert_churn`** — single-row `INSERT`s. The maintenance route
//!   pushes a one-row delta through the view's stored plan and re-renders
//!   only the touched group (O(delta · group), see
//!   `aggprov_engine::view`); the re-execution route runs the full query
//!   after the insert, the only way a view-less consumer stays current.
//! - **`delete_churn`** — 50-token `delete_tokens` batches (the paper's
//!   deletion propagation applied to the database). *Both* routes pay the
//!   base-table hom that fires the tokens; the re-execution route then
//!   runs the full query while the maintenance route maps the retained
//!   group state and patches the touched rows. The recorded ratio is
//!   accordingly modest — the honest number: deletion cost is dominated
//!   by the shared base-table rewrite, not by the view.
//!
//! Both routes run the same serial executor over the same ground tables;
//! the ratios are algorithmic, so the JSON deliberately records no
//! `threads` field (the gate never clamps them) and `host_cpus` is
//! provenance of the measurement only. Before timing anything, a small
//! churn stream is asserted bit-identical between the maintained view and
//! a from-scratch re-execution.

use aggprov_core::par::ExecOptions;
use aggprov_engine::{MaintenanceStrategy, ProvDb};
use aggprov_workloads::org::{org_database, Org, OrgParams};
use std::time::{Duration, Instant};

/// The PR number of the trajectory point this module measures.
pub const PR: u32 = 8;

/// The employee-table row count the perf trajectory tracks.
pub const EMP_ROWS: usize = 100_000;

/// The churn budget: 1% of the base table.
pub const CHURN_OPS: usize = EMP_ROWS / 100;

/// Tokens fired per `delete_tokens` batch in the churn stream.
pub const DELETE_BATCH: usize = 50;

/// The maintained query (the deletion-propagation contract's query).
pub const VIEW_SQL: &str = "SELECT dept, SUM(sal) AS mass FROM emp GROUP BY dept";

/// One measured churn-event kind: mean wall-clock per event on the
/// re-execution route and on the maintenance route.
#[derive(Debug)]
pub struct ViewPoint {
    /// Event kind (stable across trajectory points).
    pub op: &'static str,
    /// Employee-table row count.
    pub rows: usize,
    /// Mean per-event time of the re-execution route.
    pub reexec: Duration,
    /// Mean per-event time of the maintenance route.
    pub maint: Duration,
}

impl ViewPoint {
    /// `reexec / maint`: > 1 means maintenance beats re-execution.
    pub fn speedup(&self) -> f64 {
        self.reexec.as_secs_f64() / self.maint.as_secs_f64().max(1e-12)
    }
}

/// The trajectory workload: 100 departments × 1000 employees.
fn churn_db() -> (ProvDb, Org) {
    org_database(OrgParams {
        departments: 100,
        employees_per_dept: EMP_ROWS / 100,
        ..Default::default()
    })
}

fn insert_sql(i: usize) -> String {
    format!(
        "INSERT INTO emp VALUES ('c{i}', 'd{}', 57) PROVENANCE c{i}",
        i % 100
    )
}

/// Executes the view query from scratch — what a view-less consumer must
/// do after every mutation to stay current.
fn reexecute(db: &ProvDb, opts: &ExecOptions) {
    let out = db
        .prepare(VIEW_SQL)
        .expect("prepare")
        .execute_with_opts(&[], opts)
        .expect("execute")
        .into_relation();
    std::hint::black_box(out);
}

/// Asserts, on a small input, that a maintained view tracks a mixed churn
/// stream bit-identically to re-execution before anything is timed.
fn equivalence_canary(opts: &ExecOptions) {
    let (mut db, workload) = org_database(OrgParams {
        departments: 5,
        employees_per_dept: 40,
        ..Default::default()
    });
    db.materialize("mass", VIEW_SQL).expect("materialize");
    assert_eq!(
        db.view_strategy("mass").expect("strategy"),
        MaintenanceStrategy::Incremental,
        "the trajectory query must classify as incrementally maintainable"
    );
    for i in 0..20 {
        db.exec(&insert_sql(i)).expect("insert");
    }
    db.delete_tokens(workload.emp_tokens.iter().step_by(3))
        .expect("delete_tokens");
    let expect = db
        .prepare(VIEW_SQL)
        .expect("prepare")
        .execute_with_opts(&[], opts)
        .expect("execute")
        .into_relation();
    assert_eq!(
        db.view("mass").expect("view"),
        &expect,
        "maintained view diverged from re-execution"
    );
}

/// Measures both churn-event kinds, `samples` scaling the event counts.
pub fn measure(samples: usize) -> Vec<ViewPoint> {
    let opts = ExecOptions::serial();
    equivalence_canary(&opts);

    // Two identical databases: one maintains a view, one re-executes.
    let (mut mdb, m_org) = churn_db();
    mdb.materialize("mass", VIEW_SQL).expect("materialize");
    assert_eq!(
        mdb.view_strategy("mass").expect("strategy"),
        MaintenanceStrategy::Incremental
    );
    let (mut rdb, r_org) = churn_db();

    // Insert churn. The maintenance route is cheap enough to run the
    // whole 1% budget; the re-execution route's per-event cost is one
    // full query execution, so a handful of events gives the same mean.
    let maint_reps = (samples * CHURN_OPS / 10).max(CHURN_OPS / 10);
    let start = Instant::now();
    for i in 0..maint_reps {
        mdb.exec(&insert_sql(i)).expect("insert");
    }
    let maint_insert = start.elapsed() / maint_reps as u32;

    let reexec_reps = (2 * samples).max(2);
    let start = Instant::now();
    for i in 0..reexec_reps {
        rdb.exec(&insert_sql(i)).expect("insert");
        reexecute(&rdb, &opts);
    }
    let reexec_insert = start.elapsed() / reexec_reps as u32;

    // Delete churn: each route fires `samples` disjoint 50-token batches
    // (a token deletes only once, so batches are never reused).
    let batches = samples.max(1);
    let start = Instant::now();
    for b in 0..batches {
        let batch = &m_org.emp_tokens[b * DELETE_BATCH..(b + 1) * DELETE_BATCH];
        mdb.delete_tokens(batch.iter().map(|s| s.as_str()))
            .expect("delete_tokens");
    }
    let maint_delete = start.elapsed() / batches as u32;

    let start = Instant::now();
    for b in 0..batches {
        let batch = &r_org.emp_tokens[b * DELETE_BATCH..(b + 1) * DELETE_BATCH];
        rdb.delete_tokens(batch.iter().map(|s| s.as_str()))
            .expect("delete_tokens");
        reexecute(&rdb, &opts);
    }
    let reexec_delete = start.elapsed() / batches as u32;

    vec![
        ViewPoint {
            op: "insert_churn",
            rows: EMP_ROWS,
            reexec: reexec_insert,
            maint: maint_insert,
        },
        ViewPoint {
            op: "delete_churn",
            rows: EMP_ROWS,
            reexec: reexec_delete,
            maint: maint_delete,
        },
    ]
}

/// Renders the `BENCH_pr8.json` trajectory point. No `threads` field —
/// these ratios are algorithmic and must never be clamped by the gate —
/// but `host_cpus` records where the measurement came from.
pub fn render_json(points: &[ViewPoint], samples: usize, host_cpus: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"view_maintenance\",\n");
    s.push_str(&format!("  \"pr\": {PR},\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"rows\": {}, \"reexec_ns\": {}, \"maint_ns\": {}, \
             \"speedup\": {:.2}}}{}\n",
            p.op,
            p.rows,
            p.reexec.as_nanos(),
            p.maint.as_nanos(),
            p.speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
