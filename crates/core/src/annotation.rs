//! The annotation interface required by aggregate-aware relational
//! operators.
//!
//! The §4.3 semantics multiplies tuple annotations by equality tokens
//! between (possibly symbolic) aggregate values. An [`AggAnnotation`] is a
//! δ-semiring that can produce such tokens:
//!
//! * [`Km<K>`](crate::km::Km) produces genuine symbolic tokens — the
//!   paper's `K^M`;
//! * concrete semirings where `ι` is injective for the relevant monoid
//!   (`ℕ` with everything; `B`, `S`, tropical, Viterbi with idempotent
//!   monoids; `SN` with everything) resolve the comparison on the spot —
//!   axiom (*) collapses `K^M` to `K` (Proposition 4.4), so the same
//!   operator code runs set/bag/security queries directly;
//! * asking an incompatible pair (e.g. `B` with `SUM`) is an error — the
//!   formal content of Propositions 3.2/4.2.

use crate::km::CmpPred;
use crate::value::Value;
use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::semiring::{DeltaSemiring, Security, Tropical, Viterbi};
use aggprov_algebra::sn::Sn;
use aggprov_algebra::tensor::Tensor;
use aggprov_krel::error::{RelError, Result};

/// A δ-semiring that can compare tensor values, either symbolically or by
/// resolution.
pub trait AggAnnotation: DeltaSemiring {
    /// The annotation factor for the comparison `[lhs = rhs]` under `kind`.
    fn eq_token(
        kind: MonoidKind,
        lhs: &Tensor<Self, Const>,
        rhs: &Tensor<Self, Const>,
    ) -> Result<Self>;

    /// The comparison between aggregates of *different* monoid kinds (an
    /// engineering generalization beyond the paper's single-`M` setting).
    /// The default resolves both sides or reports the comparison as
    /// inexpressible; `Km` represents it symbolically.
    fn eq_token_mixed(
        lk: MonoidKind,
        lhs: &Tensor<Self, Const>,
        rk: MonoidKind,
        rhs: &Tensor<Self, Const>,
    ) -> Result<Self> {
        match (lhs.try_resolve(&lk), rhs.try_resolve(&rk)) {
            (Some(a), Some(b)) => Ok(if a == b { Self::one() } else { Self::zero() }),
            _ => Err(RelError::Unsupported(
                "comparison between symbolic aggregates of different monoid kinds".into(),
            )),
        }
    }

    /// The token for an order/inequality comparison `[lhs ⋈ rhs]` (the
    /// paper's comparison-predicate extension). The default resolves both
    /// sides or reports the comparison as inexpressible; `Km` represents it
    /// symbolically.
    fn cmp_token(
        pred: CmpPred,
        lk: MonoidKind,
        lhs: &Tensor<Self, Const>,
        rk: MonoidKind,
        rhs: &Tensor<Self, Const>,
    ) -> Result<Self> {
        match (lhs.try_resolve(&lk), rhs.try_resolve(&rk)) {
            (Some(a), Some(b)) => Ok(if pred.decide(&a, &b) {
                Self::one()
            } else {
                Self::zero()
            }),
            _ => Err(RelError::Unsupported(format!(
                "order comparison {pred} over a symbolic aggregate; only `=` \
                 and Km-annotated comparisons are supported here"
            ))),
        }
    }

    /// The token for `[a ⋈ b]` on attribute values, for `pred` one of the
    /// canonical predicates (`>`/`≥` callers swap the operands). Constants
    /// decide directly; order comparisons across value types are type
    /// errors, while `≠` across types is simply true.
    fn value_cmp(pred: CmpPred, a: &Value<Self>, b: &Value<Self>) -> Result<Self> {
        match (a, b) {
            (Value::Const(x), Value::Const(y)) => {
                let same_type = std::mem::discriminant(x) == std::mem::discriminant(y);
                if !same_type && pred != CmpPred::Ne {
                    return Err(RelError::TypeError(format!(
                        "cannot order {} against {}",
                        x.type_name(),
                        y.type_name()
                    )));
                }
                Ok(if pred.decide(x, y) {
                    Self::one()
                } else {
                    Self::zero()
                })
            }
            (Value::Agg(k1, t1), Value::Agg(k2, t2)) => Self::cmp_token(pred, *k1, t1, *k2, t2),
            (Value::Const(c), Value::Agg(k, t)) => {
                if Value::<Self>::carrier_check(*k, c).is_err() {
                    return if pred == CmpPred::Ne {
                        Ok(Self::one())
                    } else {
                        Err(RelError::TypeError(format!(
                            "cannot order a {} value against a {k} aggregate",
                            c.type_name()
                        )))
                    };
                }
                Self::cmp_token(pred, *k, &Tensor::iota(k, c.clone()), *k, t)
            }
            (Value::Agg(k, t), Value::Const(c)) => {
                if Value::<Self>::carrier_check(*k, c).is_err() {
                    return if pred == CmpPred::Ne {
                        Ok(Self::one())
                    } else {
                        Err(RelError::TypeError(format!(
                            "cannot order a {k} aggregate against a {} value",
                            c.type_name()
                        )))
                    };
                }
                Self::cmp_token(pred, *k, t, *k, &Tensor::iota(k, c.clone()))
            }
        }
    }

    /// The annotation factor for comparing two attribute values
    /// (`[t'(u) = t(u)]` in §4.3): constants compare directly, aggregates
    /// via [`AggAnnotation::eq_token`], and constants meet aggregates
    /// through `ι`. Values outside the monoid's carrier (or of different
    /// monoid kinds that both resolve to distinct constants) can never be
    /// equal and yield `0`.
    fn value_eq(a: &Value<Self>, b: &Value<Self>) -> Result<Self> {
        match (a, b) {
            (Value::Const(x), Value::Const(y)) => {
                Ok(if x == y { Self::one() } else { Self::zero() })
            }
            (Value::Agg(k1, t1), Value::Agg(k2, t2)) => {
                if k1 == k2 {
                    Self::eq_token(*k1, t1, t2)
                } else {
                    Self::eq_token_mixed(*k1, t1, *k2, t2)
                }
            }
            (Value::Const(c), Value::Agg(k, t)) | (Value::Agg(k, t), Value::Const(c)) => {
                if Value::<Self>::carrier_check(*k, c).is_err() {
                    // A value outside the carrier never equals an aggregate.
                    return Ok(Self::zero());
                }
                Self::eq_token(*k, &Tensor::iota(k, c.clone()), t)
            }
        }
    }
}

impl<K: aggprov_algebra::semiring::CommutativeSemiring> AggAnnotation for crate::km::Km<K> {
    fn eq_token(
        kind: MonoidKind,
        lhs: &Tensor<Self, Const>,
        rhs: &Tensor<Self, Const>,
    ) -> Result<Self> {
        Ok(crate::km::Km::eq_token(kind, lhs, rhs))
    }

    fn eq_token_mixed(
        lk: MonoidKind,
        lhs: &Tensor<Self, Const>,
        rk: MonoidKind,
        rhs: &Tensor<Self, Const>,
    ) -> Result<Self> {
        Ok(crate::km::Km::eq_token_mixed(lk, lhs, rk, rhs))
    }

    fn cmp_token(
        pred: CmpPred,
        lk: MonoidKind,
        lhs: &Tensor<Self, Const>,
        rk: MonoidKind,
        rhs: &Tensor<Self, Const>,
    ) -> Result<Self> {
        Ok(crate::km::Km::cmp_token(pred, lk, lhs, rk, rhs))
    }
}

/// Implements [`AggAnnotation`] for concrete semirings by resolution: both
/// sides must read back through `ι⁻¹`, otherwise the comparison is
/// inexpressible in `K` and the caller should move to `Km<K>`.
macro_rules! concrete_agg_annotation {
    ($($t:ty),*) => {$(
        impl AggAnnotation for $t {
            fn eq_token(
                kind: MonoidKind,
                lhs: &Tensor<Self, Const>,
                rhs: &Tensor<Self, Const>,
            ) -> Result<Self> {
                use aggprov_algebra::semiring::CommutativeSemiring;
                if lhs == rhs {
                    return Ok(Self::one());
                }
                match (lhs.try_resolve(&kind), rhs.try_resolve(&kind)) {
                    (Some(a), Some(b)) => {
                        Ok(if a == b { Self::one() } else { Self::zero() })
                    }
                    _ => Err(RelError::Unsupported(format!(
                        "{} cannot express a symbolic {kind} comparison; \
                         annotate with Km<{}> instead",
                        stringify!($t),
                        stringify!($t),
                    ))),
                }
            }
        }
    )*};
}

concrete_agg_annotation!(
    aggprov_algebra::semiring::Nat,
    aggprov_algebra::semiring::Bool,
    aggprov_algebra::semiring::IntZ,
    Security,
    Tropical,
    Viterbi,
    Sn
);

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::semiring::{Bool, CommutativeSemiring, Nat};

    #[test]
    fn nat_resolves_everything_ground() {
        let m = MonoidKind::Sum;
        let a = Tensor::<Nat, Const>::simple(&m, Nat(2), Const::int(10));
        let b = Tensor::<Nat, Const>::simple(&m, Nat(1), Const::int(20));
        assert!(Nat::eq_token(m, &a, &b).unwrap().is_one());
        let c = Tensor::<Nat, Const>::simple(&m, Nat(1), Const::int(10));
        assert!(Nat::eq_token(m, &a, &c).unwrap().is_zero());
    }

    #[test]
    fn bool_with_sum_is_an_error() {
        let m = MonoidKind::Sum;
        let a = Tensor::<Bool, Const>::simple(&m, Bool(true), Const::int(10));
        let b = Tensor::<Bool, Const>::simple(&m, Bool(true), Const::int(20));
        assert!(Bool::eq_token(m, &a, &b).is_err());
        // …except for syntactically equal sides, which are equal under any
        // semantics.
        assert!(Bool::eq_token(m, &a, &a).unwrap().is_one());
    }

    #[test]
    fn bool_with_max_is_fine() {
        let m = MonoidKind::Max;
        let a = Tensor::<Bool, Const>::simple(&m, Bool(true), Const::int(10));
        let b = Tensor::<Bool, Const>::simple(&m, Bool(true), Const::int(20));
        assert!(Bool::eq_token(m, &a, &b).unwrap().is_zero());
    }

    #[test]
    fn value_eq_const_vs_agg() {
        let m = MonoidKind::Sum;
        let v1: Value<Nat> = Value::int(20);
        let v2 = Value::Agg(m, Tensor::<Nat, Const>::simple(&m, Nat(2), Const::int(10)));
        assert!(Nat::value_eq(&v1, &v2).unwrap().is_one());
        let v3: Value<Nat> = Value::str("x");
        assert!(Nat::value_eq(&v3, &v2).unwrap().is_zero());
    }

    #[test]
    fn mixed_kinds_resolve_or_error() {
        // SUM-tensor resolving to 20 vs MAX-tensor resolving to 20: equal.
        let sum = Value::Agg(
            MonoidKind::Sum,
            Tensor::<Nat, Const>::simple(&MonoidKind::Sum, Nat(2), Const::int(10)),
        );
        let max = Value::Agg(
            MonoidKind::Max,
            Tensor::<Nat, Const>::simple(&MonoidKind::Max, Nat(3), Const::int(20)),
        );
        assert!(Nat::value_eq(&sum, &max).unwrap().is_one());
    }
}
