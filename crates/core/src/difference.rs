//! Relational difference via aggregation (paper §5).
//!
//! Difference is encoded with the monoid `B̂ = ({⊥,⊤}, ∨, ⊥)`:
//!
//! ```text
//! R − S = Π_{a1…an}( GB_{a1…an, b}(R × ⊥_b ∪ S × ⊤_b) ⋈ (R × ⊥_b) )
//! ```
//!
//! Running the §4.3 semantics over this query yields, up to equivalence
//! (Proposition 5.1), the *hybrid* semantics
//!
//! ```text
//! (R − S)(t) = [S(t) ⊗ ⊤ = 0] · R(t)
//! ```
//!
//! — the existence of `t` in `S` acts as a boolean condition, while
//! surviving tuples keep their full `R`-annotation (multiplicity). This is
//! deliberately different from bag monus and from ℤ-difference; the law
//! matrix of [`laws`] makes the §5.2 comparisons executable.

use crate::annotation::AggAnnotation;
use crate::ops::{self, AggSpec, MKRel};
use crate::value::Value;
use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::tensor::Tensor;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;

/// The direct hybrid difference `(R − S)(t) = [S(t) ⊗ ⊤ = 0] · R(t)`.
pub fn difference<A: AggAnnotation>(r: &MKRel<A>, s: &MKRel<A>) -> Result<MKRel<A>> {
    if r.schema() != s.schema() {
        return Err(RelError::SchemaMismatch {
            left: r.schema().to_string(),
            right: s.schema().to_string(),
            op: "difference",
        });
    }
    let or = MonoidKind::Or;
    let mut out: MKRel<A> = Relation::empty(r.schema().clone());
    for (t, _) in r.iter() {
        // Both lookups use the §4.3 extended reading of `R(t)`/`S(t)`: with
        // symbolic values, structurally distinct tuples may become equal
        // under a homomorphism, so membership is token-weighted across the
        // whole support (coincides with the plain lookup on constants).
        let r_ann = ops::annotation_at(r, t)?;
        let s_ann = ops::annotation_at(s, t)?;
        let lhs = Tensor::simple(&or, s_ann, Const::Bool(true));
        let token = A::eq_token(or, &lhs, &Tensor::zero())?;
        let ann = token.times(&r_ann);
        if !ann.is_zero() && out.annotation(t).is_zero() {
            out.insert(t.values().to_vec(), ann)?;
        }
    }
    Ok(out)
}

/// The attribute name used internally by the aggregation encoding.
const B_ATTR: &str = "__diff_b";

/// The paper's §5.1 encoding of difference through `B̂`-aggregation,
/// evaluated with the extended semantics. Equivalent to [`difference`]
/// under every homomorphism into a semiring where `ι : B̂ → K⊗B̂` is an
/// isomorphism (Proposition 5.1) — the encoded form carries an extra
/// `δ(R(t) + S(t))` factor that such homomorphisms erase.
pub fn difference_encoded<A: AggAnnotation>(r: &MKRel<A>, s: &MKRel<A>) -> Result<MKRel<A>> {
    if r.schema() != s.schema() {
        return Err(RelError::SchemaMismatch {
            left: r.schema().to_string(),
            right: s.schema().to_string(),
            op: "difference",
        });
    }
    let attrs: Vec<String> = r
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();

    // ⊥_b and ⊤_b: single-attribute, single-tuple relations annotated 1.
    let bot: MKRel<A> = Relation::from_rows(
        Schema::new([B_ATTR])?,
        [(vec![Value::Const(Const::Bool(false))], A::one())],
    )?;
    let top: MKRel<A> = Relation::from_rows(
        Schema::new([B_ATTR])?,
        [(vec![Value::Const(Const::Bool(true))], A::one())],
    )?;

    let r_bot = ops::product(r, &bot)?;
    let s_top = ops::product(s, &top)?;
    let u = ops::union(&r_bot, &s_top)?;
    let g = ops::group_by(&u, &attr_refs, &[AggSpec::new(MonoidKind::Or, B_ATTR)])?;

    // Rename the aggregation result's attributes so the schemas are
    // disjoint, then join comparing every original attribute and the
    // b-attribute (tensor vs ⊥ — this comparison produces the
    // [S(t)⊗⊤ = 0] token).
    let mut g2 = g;
    let mut primed: Vec<String> = Vec::new();
    for a in attrs.iter().chain([&B_ATTR.to_string()]) {
        let p = format!("__g_{a}");
        g2 = g2.rename(a, &p)?;
        primed.push(p);
    }
    let on: Vec<(&str, &str)> = primed
        .iter()
        .map(|p| p.as_str())
        .zip(attr_refs.iter().copied().chain([B_ATTR]))
        .collect();
    let j = ops::join_on(&g2, &r_bot, &on)?;
    ops::project(&j, &attr_refs)
}

/// Executable difference laws for the §5.2 comparison matrix
/// (Propositions 5.4–5.7).
pub mod laws {
    use super::*;

    /// An equivalence law between two difference queries.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum DiffLaw {
        /// `A − (B ∪ B) ≡ A − B` (holds for ours; fails for bag monus).
        MinusUnionSelf,
        /// `(A ∪ B) − B ≡ A` (holds for bag monus; fails for ours and set).
        UnionMinus,
        /// `A − (B − C) ≡ (A ∪ C) − B` (holds for ℤ-semantics; fails for
        /// ours).
        MinusMinus,
        /// `(A − B) − C ≡ A − (B ∪ C)` (a classical set-difference law).
        MinusMinusUnion,
    }

    impl DiffLaw {
        /// All laws in the matrix.
        pub const ALL: [DiffLaw; 4] = [
            DiffLaw::MinusUnionSelf,
            DiffLaw::UnionMinus,
            DiffLaw::MinusMinus,
            DiffLaw::MinusMinusUnion,
        ];

        /// A human-readable rendering.
        pub fn name(&self) -> &'static str {
            match self {
                DiffLaw::MinusUnionSelf => "A − (B ∪ B) ≡ A − B",
                DiffLaw::UnionMinus => "(A ∪ B) − B ≡ A",
                DiffLaw::MinusMinus => "A − (B − C) ≡ (A ∪ C) − B",
                DiffLaw::MinusMinusUnion => "(A − B) − C ≡ A − (B ∪ C)",
            }
        }
    }

    /// Evaluates both sides of a law under the hybrid semantics for the
    /// annotation `A` and reports whether they agree on the given input.
    pub fn check_ours<A: AggAnnotation>(
        law: DiffLaw,
        a: &MKRel<A>,
        b: &MKRel<A>,
        c: &MKRel<A>,
    ) -> Result<bool> {
        let (lhs, rhs) = match law {
            DiffLaw::MinusUnionSelf => (difference(a, &ops::union(b, b)?)?, difference(a, b)?),
            DiffLaw::UnionMinus => (difference(&ops::union(a, b)?, b)?, a.clone()),
            DiffLaw::MinusMinus => (
                difference(a, &difference(b, c)?)?,
                difference(&ops::union(a, c)?, b)?,
            ),
            DiffLaw::MinusMinusUnion => (
                difference(&difference(a, b)?, c)?,
                difference(a, &ops::union(b, c)?)?,
            ),
        };
        Ok(lhs == rhs)
    }

    /// The same laws under bag monus (ℕ-relations).
    pub fn check_bag_monus(
        law: DiffLaw,
        a: &Relation<aggprov_algebra::semiring::Nat, Const>,
        b: &Relation<aggprov_algebra::semiring::Nat, Const>,
        c: &Relation<aggprov_algebra::semiring::Nat, Const>,
    ) -> Result<bool> {
        use aggprov_krel::monus::monus_difference as diff;
        let (lhs, rhs) = match law {
            DiffLaw::MinusUnionSelf => (diff(a, &b.union(b)?)?, diff(a, b)?),
            DiffLaw::UnionMinus => (diff(&a.union(b)?, b)?, a.clone()),
            DiffLaw::MinusMinus => (diff(a, &diff(b, c)?)?, diff(&a.union(c)?, b)?),
            DiffLaw::MinusMinusUnion => (diff(&diff(a, b)?, c)?, diff(a, &b.union(c)?)?),
        };
        Ok(lhs == rhs)
    }

    /// The same laws under ℤ-semantics.
    pub fn check_z(
        law: DiffLaw,
        a: &Relation<aggprov_algebra::semiring::IntZ, Const>,
        b: &Relation<aggprov_algebra::semiring::IntZ, Const>,
        c: &Relation<aggprov_algebra::semiring::IntZ, Const>,
    ) -> Result<bool> {
        use aggprov_krel::monus::z_difference as diff;
        let (lhs, rhs) = match law {
            DiffLaw::MinusUnionSelf => (diff(a, &b.union(b)?)?, diff(a, b)?),
            DiffLaw::UnionMinus => (diff(&a.union(b)?, b)?, a.clone()),
            DiffLaw::MinusMinus => (diff(a, &diff(b, c)?)?, diff(&a.union(c)?, b)?),
            DiffLaw::MinusMinusUnion => (diff(&diff(a, b)?, c)?, diff(a, &b.union(c)?)?),
        };
        Ok(lhs == rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{collapse, map_hom_mk};
    use crate::km::Km;
    use aggprov_algebra::hom::Valuation;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_algebra::semiring::{CommutativeSemiring, Nat};
    use aggprov_krel::relation::Tuple;

    type P = Km<NatPoly>;

    fn tok(name: &str) -> P {
        Km::embed(NatPoly::token(name))
    }

    fn sch(names: &[&str]) -> Schema {
        Schema::new(names.iter().copied()).unwrap()
    }

    /// Example 5.3's relations: R(id, dep) and S(dep).
    fn example_5_3() -> (MKRel<P>, MKRel<P>) {
        let r = Relation::from_rows(
            sch(&["dep"]),
            [
                // Π_Dep R of the example, with t1 + t2 for d1 and t3 for d2.
                (vec![Value::str("d1")], tok("t1").plus(&tok("t2"))),
                (vec![Value::str("d2")], tok("t3")),
            ],
        )
        .unwrap();
        let s = Relation::from_rows(sch(&["dep"]), [(vec![Value::str("d1")], tok("t4"))]).unwrap();
        (r, s)
    }

    #[test]
    fn example_5_3_annotations() {
        let (r, s) = example_5_3();
        let d = difference(&r, &s).unwrap();
        let d1 = d.annotation(&Tuple::from([Value::str("d1")]));
        let d2 = d.annotation(&Tuple::from([Value::str("d2")]));
        // d1: [t4⊗⊤ = 0]·(t1 + t2), kept symbolic.
        assert!(d1.try_collapse().is_none());
        assert!(d1.to_string().contains("[0⊗ =OR= (t4)⊗true]"), "{d1}");
        // d2: [0 = 0]·t3 = t3.
        assert_eq!(d2.try_collapse(), Some(NatPoly::token("t3")));
    }

    #[test]
    fn example_5_3_revoking_the_closure() {
        // Mapping t4 ↦ 0 revives d1 with its original annotation.
        let (r, s) = example_5_3();
        let d = difference(&r, &s).unwrap();
        let revived = map_hom_mk(&d, &|p: &NatPoly| {
            Valuation::<NatPoly>::with_default(NatPoly::zero())
                .set("t1", NatPoly::token("t1"))
                .set("t2", NatPoly::token("t2"))
                .set("t3", NatPoly::token("t3"))
                .set("t4", NatPoly::zero())
                .eval(p)
        });
        assert_eq!(
            revived
                .annotation(&Tuple::from([Value::str("d1")]))
                .try_collapse(),
            Some(NatPoly::token("t1").plus(&NatPoly::token("t2")))
        );
        // Mapping t4 ↦ 1 removes d1 entirely.
        let closed = map_hom_mk(&d, &|p: &NatPoly| {
            Valuation::<Nat>::ones().set("t4", Nat(1)).eval(p)
        });
        assert_eq!(closed.len(), 1);
    }

    #[test]
    fn hybrid_vs_bag_semantics_example_5_6() {
        // t1 = t2 = t3 = t4 = 1: bag difference leaves d1 with multiplicity
        // 1, ours deletes d1 (the boolean condition fires).
        let (r, s) = example_5_3();
        let ours = collapse(&map_hom_mk(&difference(&r, &s).unwrap(), &|p: &NatPoly| {
            Valuation::<Nat>::ones().eval(p)
        }))
        .unwrap();
        assert_eq!(ours.len(), 1, "d1 gone under the hybrid semantics");
        assert_eq!(ours.annotation(&Tuple::from([Value::str("d2")])), Nat(1));

        let r_bag: Relation<Nat, Const> = Relation::from_rows(
            sch(&["dep"]),
            [([Const::str("d1")], Nat(2)), ([Const::str("d2")], Nat(1))],
        )
        .unwrap();
        let s_bag = Relation::from_rows(sch(&["dep"]), [([Const::str("d1")], Nat(1))]).unwrap();
        let bag = aggprov_krel::monus::monus_difference(&r_bag, &s_bag).unwrap();
        assert_eq!(
            bag.annotation(&Tuple::from([Const::str("d1")])),
            Nat(1),
            "bag monus keeps d1 with multiplicity 1"
        );
    }

    #[test]
    fn encoded_difference_matches_direct_under_valuations() {
        // Proposition 5.1 on Example 5.3, for several valuations into ℕ.
        let (r, s) = example_5_3();
        let direct = difference(&r, &s).unwrap();
        let encoded = difference_encoded(&r, &s).unwrap();
        for (v1, v2, v3, v4) in [(1, 1, 1, 1), (1, 0, 2, 0), (0, 0, 1, 3), (2, 1, 0, 0)] {
            let val = Valuation::<Nat>::ones()
                .set("t1", Nat(v1))
                .set("t2", Nat(v2))
                .set("t3", Nat(v3))
                .set("t4", Nat(v4));
            let d = collapse(&map_hom_mk(&direct, &|p: &NatPoly| val.eval(p))).unwrap();
            let e = collapse(&map_hom_mk(&encoded, &|p: &NatPoly| val.eval(p))).unwrap();
            assert_eq!(d, e, "valuation ({v1},{v2},{v3},{v4})");
        }
    }

    #[test]
    fn law_matrix_matches_paper() {
        use laws::*;
        // Concrete ℕ-annotated inputs (constants resolve all tokens).
        let mk = |rows: &[(i64, u64)]| -> MKRel<Nat> {
            Relation::from_rows(
                sch(&["x"]),
                rows.iter().map(|(v, n)| (vec![Value::int(*v)], Nat(*n))),
            )
            .unwrap()
        };
        let a = mk(&[(1, 2), (2, 1)]);
        let b = mk(&[(1, 1), (3, 2)]);
        let c = mk(&[(3, 1), (4, 1)]);

        // Ours: A−(B∪B) ≡ A−B holds; (A∪B)−B ≡ A fails (Prop 5.5).
        assert!(check_ours(DiffLaw::MinusUnionSelf, &a, &b, &c).unwrap());
        assert!(!check_ours(DiffLaw::UnionMinus, &a, &b, &c).unwrap());
        // Ours: A−(B−C) ≢ (A∪C)−B (Prop 5.7).
        assert!(!check_ours(DiffLaw::MinusMinus, &a, &b, &c).unwrap());

        // Bag monus: (A∪B)−B ≡ A holds; A−(B∪B) ≡ A−B fails.
        let ab = |r: &MKRel<Nat>| -> Relation<Nat, Const> {
            let mut out = Relation::empty(r.schema().clone());
            for (t, k) in r.iter() {
                let row: Vec<Const> = t
                    .values()
                    .iter()
                    .map(|v| v.as_const().unwrap().clone())
                    .collect();
                out.insert(row, *k).unwrap();
            }
            out
        };
        let (ba, bb, bc) = (ab(&a), ab(&b), ab(&c));
        assert!(check_bag_monus(DiffLaw::UnionMinus, &ba, &bb, &bc).unwrap());
        assert!(!check_bag_monus(DiffLaw::MinusUnionSelf, &ba, &bb, &bc).unwrap());

        // ℤ: A−(B−C) ≡ (A∪C)−B holds; (A∪B)−B ≡ A holds too.
        let zr = |rows: &[(i64, i64)]| -> Relation<aggprov_algebra::semiring::IntZ, Const> {
            Relation::from_rows(
                sch(&["x"]),
                rows.iter()
                    .map(|(v, n)| ([Const::int(*v)], aggprov_algebra::semiring::IntZ(*n))),
            )
            .unwrap()
        };
        let (za, zb, zc) = (
            zr(&[(1, 2), (2, 1)]),
            zr(&[(1, 1), (3, 2)]),
            zr(&[(3, 1), (4, 1)]),
        );
        assert!(check_z(DiffLaw::MinusMinus, &za, &zb, &zc).unwrap());
        assert!(check_z(DiffLaw::UnionMinus, &za, &zb, &zc).unwrap());
    }

    #[test]
    fn difference_requires_same_schema() {
        let r: MKRel<Nat> = Relation::empty(sch(&["a"]));
        let s: MKRel<Nat> = Relation::empty(sch(&["b"]));
        assert!(difference(&r, &s).is_err());
    }
}
