//! Homomorphism application and read-off for `(M, K)`-relations.
//!
//! `h_Rel` (paper §3.2/§4.2) maps both the tuple annotations and the tensor
//! coefficients inside values. Colliding tuples keep one copy — see the
//! module documentation of [`crate::ops`] for why the §4.3 semantics makes
//! this the right merge.
//!
//! The read-off functions convert fully-ground annotated relations into the
//! plain bags/sets a database user expects, closing the loop for the
//! set/bag-compatibility experiments.

use crate::annotation::AggAnnotation;
use crate::km::Km;
use crate::ops::MKRel;
use crate::value::Value;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::semiring::{Bool, CommutativeSemiring, Nat};
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::reference::BagRel;
use aggprov_krel::relation::Relation;
use std::collections::BTreeMap;

/// Applies an annotation map to annotations *and* value coefficients
/// (`h_Rel`). Colliding tuples keep the first annotation (they are equal by
/// the §4.3 construction).
pub fn map_mk<A: AggAnnotation, B: AggAnnotation>(
    rel: &MKRel<A>,
    h: &impl Fn(&A) -> B,
) -> MKRel<B> {
    let mut map: BTreeMap<aggprov_krel::relation::Tuple<Value<B>>, B> = BTreeMap::new();
    for (t, k) in rel.iter() {
        let values: Vec<Value<B>> = t
            .values()
            .iter()
            .map(|v| v.map_hom(&mut |a| h(a)))
            .collect();
        let ann = h(k);
        if ann.is_zero() {
            continue;
        }
        map.entry(aggprov_krel::relation::Tuple::new(values))
            .or_insert(ann);
    }
    let mut out = Relation::empty(rel.schema().clone());
    for (t, k) in map {
        out.insert(t.values().to_vec(), k).expect("arity preserved");
    }
    out
}

/// Applies a base-semiring homomorphism under `Km` (the lifting
/// `h^M : K^M → K'^M`), resolving newly-decidable tokens.
pub fn map_hom_mk<K1, K2>(rel: &MKRel<Km<K1>>, h: &impl Fn(&K1) -> K2) -> MKRel<Km<K2>>
where
    K1: CommutativeSemiring,
    K2: CommutativeSemiring,
{
    map_mk(rel, &|km: &Km<K1>| km.map_hom(h))
}

/// Specializes a provenance-annotated relation under a token valuation —
/// the workhorse for deletion propagation, security views, etc.
pub fn specialize<K2: CommutativeSemiring>(
    rel: &MKRel<Km<aggprov_algebra::poly::NatPoly>>,
    val: &Valuation<K2>,
) -> MKRel<Km<K2>> {
    map_hom_mk(rel, &|p| val.eval(p))
}

/// Collapses a `Km`-annotated relation whose tokens have all resolved into
/// its base-semiring annotated form. Fails if symbolic atoms survive.
pub fn collapse<K: CommutativeSemiring>(rel: &MKRel<Km<K>>) -> Result<MKRel<K>> {
    let mut out = Relation::empty(rel.schema().clone());
    for (t, k) in rel.iter() {
        let base = k.try_collapse().ok_or_else(|| {
            RelError::Unsupported(format!("annotation `{k}` still contains symbolic atoms"))
        })?;
        let values: Vec<Value<K>> = t
            .values()
            .iter()
            .map(|v| -> Result<Value<K>> {
                match v {
                    Value::Const(c) => Ok(Value::Const(c.clone())),
                    Value::Agg(kind, tensor) => {
                        let mut err = None;
                        let mapped = tensor.map_coeffs(kind, &mut |km: &Km<K>| {
                            km.try_collapse().unwrap_or_else(|| {
                                err = Some(km.clone());
                                K::zero()
                            })
                        });
                        if let Some(bad) = err {
                            return Err(RelError::Unsupported(format!(
                                "value coefficient `{bad}` still contains symbolic atoms"
                            )));
                        }
                        Ok(Value::agg_normalized(*kind, mapped))
                    }
                }
            })
            .collect::<Result<_>>()?;
        out.insert(values, base)?;
    }
    Ok(out)
}

/// Reads a fully-ground `ℕ`-annotated relation as a plain bag: every tuple
/// repeated by its multiplicity. Fails on unresolved aggregate values
/// (which cannot occur for relations produced by the operators, since
/// ground tensors normalize to constants).
pub fn read_off_bag(rel: &MKRel<Nat>) -> Result<BagRel> {
    let attrs: Vec<String> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut rows = Vec::new();
    for (t, k) in rel.iter() {
        let row: Vec<aggprov_algebra::domain::Const> = t
            .values()
            .iter()
            .map(|v| {
                v.as_const().cloned().ok_or_else(|| {
                    RelError::Unsupported(format!("unresolved aggregate value `{v}`"))
                })
            })
            .collect::<Result<_>>()?;
        for _ in 0..k.0 {
            rows.push(row.clone());
        }
    }
    let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
    Ok(BagRel::new(&attr_refs, rows))
}

/// Reads a fully-ground `B`-annotated relation as a plain set.
pub fn read_off_set(rel: &MKRel<Bool>) -> Result<BagRel> {
    let attrs: Vec<String> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut rows = Vec::new();
    for (t, k) in rel.iter() {
        debug_assert!(k.0, "support contains only non-zero annotations");
        let row: Vec<aggprov_algebra::domain::Const> = t
            .values()
            .iter()
            .map(|v| {
                v.as_const().cloned().ok_or_else(|| {
                    RelError::Unsupported(format!("unresolved aggregate value `{v}`"))
                })
            })
            .collect::<Result<_>>()?;
        rows.push(row);
    }
    let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
    Ok(BagRel::new(&attr_refs, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{group_by, AggSpec};
    use aggprov_algebra::monoid::MonoidKind;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_krel::schema::Schema;

    type P = Km<NatPoly>;

    fn tok(name: &str) -> P {
        Km::embed(NatPoly::token(name))
    }

    fn grouped() -> MKRel<P> {
        let rel: MKRel<P> = Relation::from_rows(
            Schema::new(["dept", "sal"]).unwrap(),
            [
                (vec![Value::str("d1"), Value::int(20)], tok("r1")),
                (vec![Value::str("d1"), Value::int(10)], tok("r2")),
                (vec![Value::str("d2"), Value::int(10)], tok("r3")),
            ],
        )
        .unwrap();
        group_by(&rel, &["dept"], &[AggSpec::new(MonoidKind::Sum, "sal")]).unwrap()
    }

    #[test]
    fn specialize_resolves_groups() {
        // Example 3.8 continued: r1 ↦ 2, r2 ↦ 1, r3 ↦ 0 gives d1 with
        // 2·20 + 1·10 = 50 and deletes d2's group.
        let out = specialize(
            &grouped(),
            &Valuation::<Nat>::ones()
                .set("r1", Nat(2))
                .set("r2", Nat(1))
                .set("r3", Nat(0)),
        );
        let plain = collapse(&out).unwrap();
        assert_eq!(plain.len(), 1);
        let (t, k) = plain.iter().next().unwrap();
        assert_eq!(t.get(1), &Value::int(50));
        assert_eq!(k, &Nat(1), "δ(2 + 1) = 1");
    }

    #[test]
    fn read_off_bag_expands_multiplicities() {
        let rel: MKRel<Nat> =
            Relation::from_rows(Schema::new(["a"]).unwrap(), [(vec![Value::int(7)], Nat(3))])
                .unwrap();
        let bag = read_off_bag(&rel).unwrap();
        assert_eq!(bag.rows.len(), 3);
    }

    #[test]
    fn collapse_rejects_symbolic_leftovers() {
        assert!(collapse(&grouped()).is_err());
    }
}
