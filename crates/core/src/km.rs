//! The extended semiring `K^M` for nested aggregation (paper §4.2).
//!
//! Comparing aggregation results (selections or joins over aggregate
//! values) cannot be decided while annotations are symbolic, and no
//! `(M,K)`-relation semantics that decides them eagerly can satisfy the
//! desiderata (Proposition 4.2). The paper's solution: enlarge the
//! annotation semiring with **symbolic equality tokens** `[a = b]` over
//! tensor values, solving the domain equation
//! `K̂ = ℕ[K ∪ {[c₁ = c₂] | c₁, c₂ ∈ K̂ ⊗ M}]` and quotienting so that `K`
//! embeds with its own operations and decidable equalities collapse to
//! `0`/`1` (axiom (*)).
//!
//! Our representation uses the isomorphism
//! `ℕ[K ∪ T]/(K-embedding) ≅ K[T]`: an element of [`Km<K>`] is a polynomial
//! with coefficients in `K` whose indeterminates are symbolic [`Atom`]s —
//! equality tokens and δ-applications (the paper's group-by construct,
//! Definition 3.6, provided freely so any `K` gains a δ-structure).
//!
//! Two engineering generalizations, both conservative:
//! * tokens carry the [`MonoidKind`] they compare under, so one annotation
//!   semiring serves queries mixing SUM/MIN/MAX/PROD/OR aggregates
//!   (restricting to a single kind recovers the paper's `K^M` exactly);
//! * token resolution (axiom (*)) fires eagerly whenever both sides resolve
//!   through `ι⁻¹` — which requires `(K, M)` compatibility and ground
//!   coefficients — and is therefore stable under homomorphisms.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::Poly;
use aggprov_algebra::semiring::{CommutativeSemiring, DeltaSemiring};
use aggprov_algebra::tensor::Tensor;
use std::fmt;

/// A comparison predicate on monoid elements, for the paper's noted
/// extension beyond `=`: "the results can easily be extended to arbitrary
/// comparison predicates, that can be decided for elements of M" (§4,
/// Note). Only the canonical predicates are stored in atoms (`>`/`≥`
/// normalize by swapping sides).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpPred {
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Not equal (symmetric; sides stored in canonical order).
    Ne,
}

impl CmpPred {
    /// Decides the predicate on resolved monoid elements (the total order
    /// on the constant domain).
    pub fn decide(&self, a: &Const, b: &Const) -> bool {
        match self {
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Ne => a != b,
        }
    }
}

impl std::fmt::Display for CmpPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}",
            match self {
                CmpPred::Lt => "<",
                CmpPred::Le => "≤",
                CmpPred::Ne => "≠",
            }
        )
    }
}

/// A symbolic indeterminate of the extended semiring.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom<K: CommutativeSemiring> {
    /// An equality token `[a = b]` between tensor values, each tagged with
    /// its monoid (mixed kinds arise from the multi-monoid generalization;
    /// the paper's `K^M` always has both sides under the same `M`). The
    /// pair is stored in canonical order.
    Eq(
        (MonoidKind, Tensor<Km<K>, Const>),
        (MonoidKind, Tensor<Km<K>, Const>),
    ),
    /// An order/inequality token `[a ⋈ b]` (paper's comparison-predicate
    /// extension). Unlike `Eq`, the sides are ordered (except `≠`, which is
    /// canonicalized).
    Cmp(
        CmpPred,
        (MonoidKind, Tensor<Km<K>, Const>),
        (MonoidKind, Tensor<Km<K>, Const>),
    ),
    /// A δ-application `δ(e)` (Definition 3.6) kept symbolic.
    Delta(Km<K>),
}

/// An element of the extended semiring `K^M`: a polynomial over symbolic
/// [`Atom`]s with coefficients in `K`.
///
/// ```
/// use aggprov_algebra::domain::Const;
/// use aggprov_algebra::hom::Valuation;
/// use aggprov_algebra::monoid::MonoidKind;
/// use aggprov_algebra::poly::NatPoly;
/// use aggprov_algebra::semiring::{CommutativeSemiring, Nat};
/// use aggprov_algebra::tensor::Tensor;
/// use aggprov_core::km::Km;
///
/// // Example 4.3's token: [r1⊗20 + r2⊗10 =SUM= 1⊗20], symbolic until the
/// // tokens are valuated, then resolved non-monotonically.
/// type P = Km<NatPoly>;
/// let sum = MonoidKind::Sum;
/// let lhs = Tensor::<P, Const>::from_terms(
///     &sum,
///     [
///         (Km::embed(NatPoly::token("r1")), Const::int(20)),
///         (Km::embed(NatPoly::token("r2")), Const::int(10)),
///     ],
/// );
/// let token = P::eq_token(sum, &lhs, &Tensor::iota(&sum, Const::int(20)));
/// assert!(token.try_collapse().is_none());
/// let at = |r1, r2| {
///     let v = Valuation::<Nat>::ones().set("r1", Nat(r1)).set("r2", Nat(r2));
///     token.map_hom(&|p| v.eval(p)).try_collapse().unwrap()
/// };
/// assert_eq!(at(1, 0), Nat(1)); // 20 = 20
/// assert_eq!(at(1, 1), Nat(0)); // 30 ≠ 20 — adding data removed the tuple
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Km<K: CommutativeSemiring>(Poly<Atom<K>, K>);

impl<K: CommutativeSemiring> Km<K> {
    /// Embeds a base annotation `k ∈ K`.
    pub fn embed(k: K) -> Self {
        Km(Poly::constant(k))
    }

    /// The embedded value, if this element lies in the image of `K`
    /// (no symbolic atoms) — Proposition 4.4's collapse.
    pub fn try_collapse(&self) -> Option<K> {
        self.0.as_constant()
    }

    /// `δ(e)`, normalized by the δ-laws: `δ(0) = 0`; constants with a native
    /// δ use it; ground naturals use `δ(n·1) = 1` (`n ≥ 1`); anything else
    /// stays a symbolic atom.
    pub fn delta(&self) -> Self {
        if self.0.is_zero() {
            return Self::zero();
        }
        if let Some(c) = self.0.as_constant() {
            if let Some(d) = c.native_delta() {
                return Km::embed(d);
            }
            if let Some(n) = c.as_nat() {
                return if n == 0 { Self::zero() } else { Self::one() };
            }
        }
        Km(Poly::var(Atom::Delta(self.clone())))
    }

    /// The equality token `[lhs = rhs]` under `kind`, normalized by
    /// axiom (*): structurally equal sides give `1`; sides that both
    /// resolve through `ι⁻¹` (compatible pair, ground coefficients) compare
    /// in `M`; otherwise the token stays symbolic.
    pub fn eq_token(
        kind: MonoidKind,
        lhs: &Tensor<Km<K>, Const>,
        rhs: &Tensor<Km<K>, Const>,
    ) -> Self {
        Self::eq_token_mixed(kind, lhs, kind, rhs)
    }

    /// The general form of [`Km::eq_token`] comparing tensors of possibly
    /// different monoid kinds (each side resolves under its own monoid).
    pub fn eq_token_mixed(
        lk: MonoidKind,
        lhs: &Tensor<Km<K>, Const>,
        rk: MonoidKind,
        rhs: &Tensor<Km<K>, Const>,
    ) -> Self {
        if lk == rk && lhs == rhs {
            return Self::one();
        }
        if let (Some(a), Some(b)) = (lhs.try_resolve(&lk), rhs.try_resolve(&rk)) {
            return if a == b { Self::one() } else { Self::zero() };
        }
        let left = (lk, lhs.clone());
        let right = (rk, rhs.clone());
        let (a, b) = if left <= right {
            (left, right)
        } else {
            (right, left)
        };
        Km(Poly::var(Atom::Eq(a, b)))
    }

    /// The comparison token `[lhs ⋈ rhs]` for an arbitrary decidable
    /// predicate on `M` (the paper's §4 extension note): resolvable sides
    /// decide eagerly; otherwise the token stays symbolic. `pred` is one of
    /// the canonical predicates; `>`/`≥` callers swap sides first.
    pub fn cmp_token(
        pred: CmpPred,
        lk: MonoidKind,
        lhs: &Tensor<Km<K>, Const>,
        rk: MonoidKind,
        rhs: &Tensor<Km<K>, Const>,
    ) -> Self {
        if lk == rk && lhs == rhs {
            // Reflexivity decides two of the predicates outright.
            return match pred {
                CmpPred::Le => Self::one(),
                CmpPred::Lt | CmpPred::Ne => Self::zero(),
            };
        }
        if let (Some(a), Some(b)) = (lhs.try_resolve(&lk), rhs.try_resolve(&rk)) {
            return if pred.decide(&a, &b) {
                Self::one()
            } else {
                Self::zero()
            };
        }
        let left = (lk, lhs.clone());
        let right = (rk, rhs.clone());
        let (a, b) = if pred == CmpPred::Ne && right < left {
            (right, left) // ≠ is symmetric: canonical order.
        } else {
            (left, right)
        };
        Km(Poly::var(Atom::Cmp(pred, a, b)))
    }

    /// Applies a homomorphism `h : K → K'` recursively (the lifting
    /// `h^M : K^M → K'^M` of paper §4.2), re-normalizing so that
    /// newly-decidable tokens and δ-applications resolve.
    pub fn map_hom<K2: CommutativeSemiring>(&self, h: &impl Fn(&K) -> K2) -> Km<K2> {
        self.0.eval(
            &mut |atom| match atom {
                Atom::Delta(e) => e.map_hom(h).delta(),
                Atom::Cmp(pred, (lk, a), (rk, b)) => {
                    let a2 = a.map_coeffs(lk, &mut |km| km.map_hom(h));
                    let b2 = b.map_coeffs(rk, &mut |km| km.map_hom(h));
                    Km::cmp_token(*pred, *lk, &a2, *rk, &b2)
                }
                Atom::Eq((lk, a), (rk, b)) => {
                    let a2 = a.map_coeffs(lk, &mut |km| km.map_hom(h));
                    let b2 = b.map_coeffs(rk, &mut |km| km.map_hom(h));
                    Km::eq_token_mixed(*lk, &a2, *rk, &b2)
                }
            },
            &mut |c| Km::embed(h(c)),
        )
    }

    /// The number of symbolic atoms (recursively) plus polynomial size — a
    /// representation-size measure for the overhead experiments.
    pub fn size(&self) -> usize {
        let mut n = self.0.size().max(1);
        for (m, _) in self.0.terms() {
            for (atom, _) in m.iter() {
                n += match atom {
                    Atom::Delta(e) => e.size(),
                    Atom::Eq((_, a), (_, b)) | Atom::Cmp(_, (_, a), (_, b)) => {
                        let t = |t: &Tensor<Km<K>, Const>| -> usize {
                            t.terms().map(|(k, _)| 1 + k.size()).sum::<usize>()
                        };
                        t(a) + t(b)
                    }
                };
            }
        }
        n
    }

    /// Access to the underlying polynomial (read-only).
    pub fn as_poly(&self) -> &Poly<Atom<K>, K> {
        &self.0
    }

    /// Builds from a raw polynomial (used by tests and generators).
    pub fn from_poly(p: Poly<Atom<K>, K>) -> Self {
        Km(p)
    }

    /// Convenience: a single symbolic atom.
    pub fn atom(a: Atom<K>) -> Self {
        Km(Poly::var(a))
    }
}

impl<K: CommutativeSemiring> CommutativeSemiring for Km<K> {
    fn zero() -> Self {
        Km(Poly::zero())
    }
    fn one() -> Self {
        Km(Poly::one())
    }
    fn plus(&self, other: &Self) -> Self {
        Km(self.0.plus(&other.0))
    }
    fn times(&self, other: &Self) -> Self {
        Km(self.0.times(&other.0))
    }
    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
    const PLUS_IDEMPOTENT: bool = K::PLUS_IDEMPOTENT;
    const POSITIVE: bool = K::POSITIVE;
    // Atoms can always be mapped to 1 and coefficients through K's
    // homomorphism, so existence transfers from K.
    const HAS_HOM_TO_NAT: bool = K::HAS_HOM_TO_NAT;
    fn as_nat(&self) -> Option<u64> {
        self.0.as_nat()
    }
    fn from_nat(n: u64) -> Self {
        Km::embed(K::from_nat(n))
    }
    fn native_delta(&self) -> Option<Self> {
        Some(self.delta())
    }
    fn idem_normal(&self) -> Self {
        Km(self.0.idem_normal())
    }
}

impl<K: CommutativeSemiring> DeltaSemiring for Km<K> {
    fn delta(&self) -> Self {
        Km::delta(self)
    }
}

impl<K: CommutativeSemiring> fmt::Display for Km<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<K: CommutativeSemiring> fmt::Display for Atom<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Delta(e) => write!(f, "δ({e})"),
            Atom::Eq((lk, a), (rk, b)) => {
                if lk == rk {
                    write!(f, "[{a} ={lk}= {b}]")
                } else {
                    write!(f, "[{lk}⟨{a}⟩ = {rk}⟨{b}⟩]")
                }
            }
            Atom::Cmp(pred, (lk, a), (rk, b)) => {
                if lk == rk {
                    write!(f, "[{a} {pred}{lk}{pred} {b}]")
                } else {
                    write!(f, "[{lk}⟨{a}⟩ {pred} {rk}⟨{b}⟩]")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::hom::Valuation;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_algebra::semiring::{Bool, Nat, Security};

    type P = Km<NatPoly>;

    fn tok(name: &str) -> P {
        Km::embed(NatPoly::token(name))
    }

    fn t(pairs: &[(P, i64)]) -> Tensor<P, Const> {
        Tensor::from_terms(
            &MonoidKind::Sum,
            pairs.iter().map(|(k, v)| (k.clone(), Const::int(*v))),
        )
    }

    #[test]
    fn k_embeds_with_its_operations() {
        // k1 + k2 and k1 · k2 computed in K^M agree with K (§4.2 axioms).
        let (a, b) = (tok("x"), tok("y"));
        assert_eq!(
            a.plus(&b).try_collapse().unwrap(),
            NatPoly::token("x").plus(&NatPoly::token("y"))
        );
        assert_eq!(
            a.times(&b).try_collapse().unwrap(),
            NatPoly::token("x").times(&NatPoly::token("y"))
        );
        assert!(P::zero().try_collapse().unwrap().is_zero());
        assert!(P::one().try_collapse().unwrap().is_one());
    }

    #[test]
    fn delta_laws_normalize() {
        assert!(P::zero().delta().is_zero());
        assert!(P::from_nat(3).delta().is_one());
        // δ(x) stays symbolic over ℕ[X]…
        let d = tok("x").delta();
        assert!(d.try_collapse().is_none());
        assert_eq!(d.to_string(), "δ(x)");
        // …but resolves once x is valuated.
        let resolved = d.map_hom(&|p| Valuation::<Nat>::ones().set("x", Nat(2)).eval(p));
        assert!(resolved.try_collapse().unwrap().is_one());
        let gone = d.map_hom(&|p| Valuation::<Nat>::ones().set("x", Nat(0)).eval(p));
        assert!(gone.try_collapse().unwrap().is_zero());
    }

    #[test]
    fn delta_uses_native_delta_of_concrete_semirings() {
        // In Km<Security>, δ collapses through the identity δ_S.
        let s = Km::<Security>::embed(Security::Secret);
        assert_eq!(s.delta().try_collapse(), Some(Security::Secret));
    }

    #[test]
    fn eq_token_resolves_ground_sides() {
        // [1⊗20 = 1⊗20] = 1; [1⊗20 = 1⊗10] = 0.
        let a = t(&[(P::one(), 20)]);
        let b = t(&[(P::one(), 10)]);
        assert!(P::eq_token(MonoidKind::Sum, &a, &a).is_one());
        assert!(P::eq_token(MonoidKind::Sum, &a, &b).is_zero());
        // Congruent-but-distinct ground forms also resolve: 2⊗10 = 1⊗20.
        let two_tens = t(&[(P::from_nat(2), 10)]);
        assert!(P::eq_token(MonoidKind::Sum, &a, &two_tens).is_one());
    }

    #[test]
    fn eq_token_stays_symbolic_then_resolves_under_hom() {
        // Example 4.3's token: [r1⊗20 + r2⊗10 = 1⊗20].
        let lhs = t(&[(tok("r1"), 20), (tok("r2"), 10)]);
        let rhs = t(&[(P::one(), 20)]);
        let token = P::eq_token(MonoidKind::Sum, &lhs, &rhs);
        assert!(token.try_collapse().is_none());

        // r1 ↦ 1, r2 ↦ 0: 20 = 20, token becomes 1 (tuple survives).
        let yes = token.map_hom(&|p| {
            Valuation::<Nat>::ones()
                .set("r1", Nat(1))
                .set("r2", Nat(0))
                .eval(p)
        });
        assert!(yes.try_collapse().unwrap().is_one());

        // r1 ↦ 1, r2 ↦ 1: 30 ≠ 20, token becomes 0 — the non-monotone
        // behaviour of Example 4.1.
        let no = token.map_hom(&|p| {
            Valuation::<Nat>::ones()
                .set("r1", Nat(1))
                .set("r2", Nat(1))
                .eval(p)
        });
        assert!(no.try_collapse().unwrap().is_zero());
    }

    #[test]
    fn token_ordering_is_canonical() {
        let a = t(&[(tok("r1"), 20)]);
        let b = t(&[(tok("r2"), 10)]);
        assert_eq!(
            P::eq_token(MonoidKind::Sum, &a, &b),
            P::eq_token(MonoidKind::Sum, &b, &a)
        );
    }

    #[test]
    fn prop_4_4_collapse_for_compatible_pairs() {
        // Over K = ℕ (ι iso for every monoid), K^M collapses to K: any
        // expression built from ground pieces has no surviving atoms.
        let lhs = Tensor::<Km<Nat>, Const>::from_terms(
            &MonoidKind::Sum,
            [(Km::embed(Nat(2)), Const::int(10))],
        );
        let rhs = Tensor::<Km<Nat>, Const>::from_terms(
            &MonoidKind::Sum,
            [(Km::embed(Nat(1)), Const::int(20))],
        );
        let token = Km::<Nat>::eq_token(MonoidKind::Sum, &lhs, &rhs);
        assert_eq!(token.try_collapse(), Some(Nat(1)));
        let d = Km::<Nat>::embed(Nat(5)).delta();
        assert_eq!(d.try_collapse(), Some(Nat(1)));
    }

    #[test]
    fn incompatible_pairs_stay_symbolic() {
        // Km<Bool> with SUM: ι is not injective, axiom (*) does not apply,
        // the token must survive.
        let lhs = Tensor::<Km<Bool>, Const>::from_terms(
            &MonoidKind::Sum,
            [(Km::embed(Bool(true)), Const::int(2))],
        );
        let rhs = Tensor::<Km<Bool>, Const>::from_terms(
            &MonoidKind::Sum,
            [(Km::embed(Bool(true)), Const::int(4))],
        );
        let token = Km::<Bool>::eq_token(MonoidKind::Sum, &lhs, &rhs);
        assert!(token.try_collapse().is_none());
        // With MAX (idempotent) the same shapes resolve fine.
        let lhs = Tensor::<Km<Bool>, Const>::from_terms(
            &MonoidKind::Max,
            [(Km::embed(Bool(true)), Const::int(2))],
        );
        let rhs = Tensor::<Km<Bool>, Const>::from_terms(
            &MonoidKind::Max,
            [(Km::embed(Bool(true)), Const::int(4))],
        );
        assert!(Km::<Bool>::eq_token(MonoidKind::Max, &lhs, &rhs).is_zero());
    }

    #[test]
    fn value_eq_token_cases() {
        use crate::annotation::AggAnnotation;
        use crate::value::Value;
        let c20: Value<P> = Value::int(20);
        let c10: Value<P> = Value::int(10);
        assert!(P::value_eq(&c20, &c20).unwrap().is_one());
        assert!(P::value_eq(&c20, &c10).unwrap().is_zero());
        // Constant vs aggregate embeds through ι.
        let agg = Value::Agg(MonoidKind::Sum, t(&[(tok("r1"), 20)]));
        let token = P::value_eq(&c20, &agg).unwrap();
        assert!(token.try_collapse().is_none());
        // Strings never equal numeric aggregates.
        let s: Value<P> = Value::str("d1");
        assert!(P::value_eq(&s, &agg).unwrap().is_zero());
    }

    #[test]
    fn nested_tokens_inside_tokens() {
        // Example 4.5 shape: an annotation multiplying δ and a token, used
        // as a tensor coefficient inside a further token.
        let inner = P::eq_token(
            MonoidKind::Sum,
            &t(&[(tok("r1"), 20), (tok("r2"), 10)]),
            &t(&[(P::one(), 20)]),
        );
        let coeff = tok("r1").plus(&tok("r2")).delta().times(&inner);
        let outer_lhs = t(&[(coeff, 40)]);
        let outer = P::eq_token(MonoidKind::Sum, &outer_lhs, &t(&[(P::one(), 40)]));
        assert!(outer.try_collapse().is_none());
        // Full valuation collapses everything (r1=1, r2=0: inner token 1,
        // δ(1)=1, coeff=1, 1⊗40 = 1⊗40 → 1).
        let v = outer.map_hom(&|p| {
            Valuation::<Nat>::ones()
                .set("r1", Nat(1))
                .set("r2", Nat(0))
                .eval(p)
        });
        assert_eq!(v.try_collapse(), Some(Nat(1)));
    }

    #[test]
    fn cmp_tokens_resolve_and_normalize() {
        use super::CmpPred;
        let twenty = t(&[(P::one(), 20)]);
        let thirty = t(&[(P::one(), 30)]);
        // Ground sides decide eagerly.
        assert!(P::cmp_token(
            CmpPred::Lt,
            MonoidKind::Sum,
            &twenty,
            MonoidKind::Sum,
            &thirty
        )
        .is_one());
        assert!(P::cmp_token(
            CmpPred::Lt,
            MonoidKind::Sum,
            &thirty,
            MonoidKind::Sum,
            &twenty
        )
        .is_zero());
        assert!(P::cmp_token(
            CmpPred::Ne,
            MonoidKind::Sum,
            &twenty,
            MonoidKind::Sum,
            &thirty
        )
        .is_one());
        // Reflexivity on structurally equal symbolic sides.
        let sym = t(&[(tok("x"), 20)]);
        assert!(P::cmp_token(CmpPred::Le, MonoidKind::Sum, &sym, MonoidKind::Sum, &sym).is_one());
        assert!(P::cmp_token(CmpPred::Lt, MonoidKind::Sum, &sym, MonoidKind::Sum, &sym).is_zero());
        assert!(P::cmp_token(CmpPred::Ne, MonoidKind::Sum, &sym, MonoidKind::Sum, &sym).is_zero());
        // ≠ is symmetric: canonical ordering.
        let other = t(&[(tok("y"), 10)]);
        assert_eq!(
            P::cmp_token(CmpPred::Ne, MonoidKind::Sum, &sym, MonoidKind::Sum, &other),
            P::cmp_token(CmpPred::Ne, MonoidKind::Sum, &other, MonoidKind::Sum, &sym),
        );
        // < is NOT symmetric.
        assert_ne!(
            P::cmp_token(CmpPred::Lt, MonoidKind::Sum, &sym, MonoidKind::Sum, &other),
            P::cmp_token(CmpPred::Lt, MonoidKind::Sum, &other, MonoidKind::Sum, &sym),
        );
    }

    #[test]
    fn cmp_tokens_resolve_under_homomorphisms() {
        use super::CmpPred;
        // [x⊗20 + y⊗10 < 1⊗25] over SUM.
        let lhs = t(&[(tok("x"), 20), (tok("y"), 10)]);
        let rhs = t(&[(P::one(), 25)]);
        let token = P::cmp_token(CmpPred::Lt, MonoidKind::Sum, &lhs, MonoidKind::Sum, &rhs);
        assert!(token.try_collapse().is_none());
        let at = |x: u64, y: u64| {
            token
                .map_hom(&|p| {
                    Valuation::<Nat>::ones()
                        .set("x", Nat(x))
                        .set("y", Nat(y))
                        .eval(p)
                })
                .try_collapse()
                .unwrap()
        };
        assert_eq!(at(1, 0), Nat(1), "20 < 25");
        assert_eq!(at(1, 1), Nat(0), "30 ≥ 25");
        assert_eq!(at(0, 2), Nat(1), "20 < 25");
    }

    #[test]
    fn size_counts_nested_structure() {
        let token = P::eq_token(
            MonoidKind::Sum,
            &t(&[(tok("r1"), 20), (tok("r2"), 10)]),
            &t(&[(P::one(), 20)]),
        );
        assert!(token.size() >= 5);
    }
}
