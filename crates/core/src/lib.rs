//! # aggprov-core
//!
//! The core of *Provenance for Aggregate Queries* (Amsterdamer, Deutch &
//! Tannen, PODS 2011):
//!
//! * [`value`] — values of `(M, K)`-relations: constants and tensor-valued
//!   aggregates (§3.2);
//! * [`km`] — the extended semiring `K^M` with symbolic equality tokens and
//!   free δ-structure (§4.2, Definition 3.6);
//! * [`annotation`] — the [`annotation::AggAnnotation`] interface: `Km<K>`
//!   compares symbolically, concrete compatible semirings resolve on the
//!   spot (Proposition 4.4);
//! * [`ops`] — the *physical* relational operators of §3.2/§3.3/§4.3:
//!   hash build/probe joins, hash-partitioned grouping, and ground/symbolic
//!   partitioning so token construction stays off the ground hot path;
//! * [`ops::batch`] — vectorized batch kernels over the columnar ground
//!   partition ([`ops::batch::Chunk`]): selection-vector filter,
//!   gather-based projection, unit-column append, AVG division and hash
//!   join, so pipelines over ground data run columnar end to end;
//! * [`par`] — partition-parallel execution: [`par::ExecOptions`]
//!   (`AGGPROV_THREADS`), shard planning and the scoped thread fan-out the
//!   `ops::*_opts` operator variants run on;
//! * [`specops`] — the literal §4.3 specification operators, retained as
//!   the reference path the physical layer is property-tested against;
//! * [`eval`] — `h_Rel`, token valuations, collapse and plain read-off;
//! * [`difference`] — difference via `B̂`-aggregation and its hybrid direct
//!   form, plus the §5.2 law matrix;
//! * [`naive`] — the exponential tuple-level baseline of §1/Figure 2.
//!
//! The canonical provenance instantiation is [`Prov`] = `Km<ℕ[X]>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod annotation;
pub mod difference;
pub mod eval;
pub mod km;
pub mod naive;
pub mod ops;
pub mod par;
pub mod specops;
pub mod value;

/// The standard aggregate-provenance annotation: the extended semiring over
/// provenance polynomials, `ℕ[X]^M`.
pub type Prov = km::Km<aggprov_algebra::poly::NatPoly>;

pub use annotation::AggAnnotation;
pub use km::{Atom, Km};
pub use ops::{AggSpec, MKRel};
pub use par::ExecOptions;
pub use value::Value;
