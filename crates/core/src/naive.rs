//! The naive tuple-level aggregation baselines of paper §1 / Figure 2.
//!
//! Before introducing value-level provenance, the paper examines keeping
//! annotations at the tuple level and adding an operation `p̂` with
//! `p̂ = 1` when `p = 0` (`p̂ = 1 − p` in `ℤ[X]`, `p̂ = ¬p` in `BoolExp(X)` —
//! the c-tables route). Supporting deletion propagation through a SUM
//! aggregate then requires one output tuple per *subset* of the input —
//! `2ⁿ` tuples, each annotated `Π_{i∈S} pᵢ · Π_{i∉S} p̂ᵢ` (Figure 2(a)).
//! This module implements that construction as the exponential baseline the
//! overhead experiments (E2/Fig. 2) compare against.

use aggprov_algebra::boolexpr::BoolExp;
use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::{CommutativeMonoid, MonoidKind};
use aggprov_algebra::num::Num;
use aggprov_algebra::poly::Var;
use std::collections::BTreeMap;

/// One row of the naive table: a possible aggregate result with the boolean
/// condition under which it is *the* result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaiveRow {
    /// The aggregate value for this subset of surviving tuples.
    pub value: Const,
    /// The annotation `Π_{i∈S} pᵢ · Π_{i∉S} ¬pᵢ` (summed over subsets with
    /// equal values).
    pub condition: BoolExp,
}

/// The naive aggregation table: every subset of the annotated input tuples
/// contributes a row (rows with equal aggregate values merge by ∨).
///
/// Size is `Θ(2ⁿ)` in general for `SUM` — the lower bound the paper cites
/// from Lechtenbörger et al. — versus the linear tensor representation.
pub fn naive_table(kind: MonoidKind, tuples: &[(Var, Num)]) -> Vec<NaiveRow> {
    assert!(
        tuples.len() <= 24,
        "naive table is exponential; refusing more than 24 tuples"
    );
    let mut by_value: BTreeMap<Const, BoolExp> = BTreeMap::new();
    for mask in 0u64..(1 << tuples.len()) {
        let mut value = kind.zero();
        let mut cond = BoolExp::one_();
        for (i, (var, num)) in tuples.iter().enumerate() {
            let var_exp = BoolExp::Var(var.clone());
            if mask & (1 << i) != 0 {
                value = kind.plus(&value, &Const::Num(*num));
                cond = cond.and(&var_exp);
            } else {
                cond = cond.and(&var_exp.not());
            }
        }
        by_value
            .entry(value)
            .and_modify(|c| *c = c.or(&cond))
            .or_insert(cond);
    }
    by_value
        .into_iter()
        .map(|(value, condition)| NaiveRow { value, condition })
        .collect()
}

/// Total representation size of a naive table (rows plus expression nodes)
/// for the overhead comparison.
pub fn naive_size(rows: &[NaiveRow]) -> usize {
    rows.iter().map(|r| 1 + r.condition.size()).sum()
}

/// Deletion propagation on the naive table: assign truth values to the
/// tokens and return the unique surviving aggregate value.
pub fn naive_propagate(rows: &[NaiveRow], alive: &impl Fn(&Var) -> bool) -> Option<Const> {
    let mut result = None;
    for row in rows {
        if row.condition.eval(&mut |v| alive(v)) {
            debug_assert!(result.is_none(), "conditions are mutually exclusive");
            result = Some(row.value.clone());
        }
    }
    result
}

// A tiny helper since BoolExp::one() comes from the semiring trait.
trait BoolExpExt {
    fn one_() -> BoolExp;
}
impl BoolExpExt for BoolExp {
    fn one_() -> BoolExp {
        BoolExp::Const(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::semiring::CommutativeSemiring;

    fn fig2_input() -> Vec<(Var, Num)> {
        // Figure 2: salaries 20, 10, 15 with tokens p1, p2, p3.
        vec![
            (Var::new("p1"), Num::int(20)),
            (Var::new("p2"), Num::int(10)),
            (Var::new("p3"), Num::int(15)),
        ]
    }

    #[test]
    fn figure_2a_rows() {
        let rows = naive_table(MonoidKind::Sum, &fig2_input());
        // All 2³ subset sums are distinct here: 0,10,15,20,25,30,35,45.
        let values: Vec<String> = rows.iter().map(|r| r.value.to_string()).collect();
        assert_eq!(values, vec!["0", "10", "15", "20", "25", "30", "35", "45"]);
        // The 45-row carries p1 ∧ p2 ∧ p3.
        let row45 = rows.iter().find(|r| r.value == Const::int(45)).unwrap();
        assert!(row45.condition.equivalent(
            &BoolExp::var("p1")
                .and(&BoolExp::var("p2"))
                .and(&BoolExp::var("p3"))
        ));
    }

    #[test]
    fn figure_2b_deletion() {
        // Deleting the tuple with token p3 must yield 30 = 20 + 10.
        let rows = naive_table(MonoidKind::Sum, &fig2_input());
        let v = naive_propagate(&rows, &|var| var.name() != "p3").unwrap();
        assert_eq!(v, Const::int(30));
        // All alive: 45. None alive: 0.
        assert_eq!(naive_propagate(&rows, &|_| true).unwrap(), Const::int(45));
        assert_eq!(naive_propagate(&rows, &|_| false).unwrap(), Const::int(0));
    }

    #[test]
    fn size_grows_exponentially() {
        let base = fig2_input();
        let mut sizes = Vec::new();
        for n in 1..=8u32 {
            let mut input = Vec::new();
            for i in 0..n {
                // Powers of two keep all subset sums distinct.
                input.push((Var::new(&format!("p{i}")), Num::int(1 << i)));
            }
            sizes.push(naive_size(&naive_table(MonoidKind::Sum, &input)));
        }
        for w in sizes.windows(2) {
            assert!(w[1] > w[0] * 15 / 10, "super-exponential growth: {sizes:?}");
        }
        let _ = base;
    }

    #[test]
    fn min_aggregation_collapses_rows() {
        // For MIN many subsets share a value: row count stays ≤ n + 1.
        let rows = naive_table(MonoidKind::Min, &fig2_input());
        assert_eq!(rows.len(), 4); // min ∈ {∞, 10, 15, 20}
    }

    #[test]
    fn conditions_partition_the_assignment_space() {
        // The disjunction of all conditions is a tautology and rows are
        // pairwise exclusive — checked semantically.
        let rows = naive_table(MonoidKind::Sum, &fig2_input());
        let total = rows
            .iter()
            .fold(BoolExp::zero(), |acc, r| acc.or(&r.condition));
        assert!(total.equivalent(&BoolExp::Const(true)));
        for (i, a) in rows.iter().enumerate() {
            for b in rows.iter().skip(i + 1) {
                assert!(a
                    .condition
                    .and(&b.condition)
                    .equivalent(&BoolExp::Const(false)));
            }
        }
    }
}
