//! Relational operators over `(M, K)`-relations (paper §3.2, §3.3, §4.3).
//!
//! An `(M, K)`-relation is a [`Relation`] whose values are [`Value`]s — the
//! type alias [`MKRel`]. The operators here implement the paper's extended
//! semantics: wherever the existence of an output tuple depends on comparing
//! (possibly symbolic) aggregate values, the tuple's annotation is
//! multiplied by equality tokens obtained from [`AggAnnotation`].
//!
//! When every relevant value is an ordinary constant, each token resolves to
//! `0`/`1` on the spot and the operators coincide with the classical
//! `K`-relational algebra of §2.1.
//!
//! ## Physical execution: hash operators with a ground/symbolic split
//!
//! The operators here are the *physical* layer. Each one partitions its
//! input into **ground** tuples (only constants at the positions the
//! operator compares) and **symbolic** tuples (a tensor-valued aggregate at
//! one of those positions):
//!
//! * ground × ground work runs classically — hash build/probe for
//!   [`join_on`]/[`natural_join`], hash-partitioned grouping for
//!   [`group_by`], an `O(n log n)` additive merge for [`union`] and
//!   [`project`] — because between constants every §4.3 equality token is
//!   `0` or `1` and structural equality decides it;
//! * the quadratic token construction runs only over the (typically tiny)
//!   symbolic fraction and its cross terms against the ground partition,
//!   then the two partitions recombine per the paper's
//!   sum-of-weighted-contributions rule.
//!
//! The results are bit-identical to the literal §4.3 evaluation, which is
//! retained in [`crate::specops`] as the reference path (property-tested
//! equivalence; see `tests/hash_vs_spec_proptests.rs`).
//!
//! ## Vectorized batch execution
//!
//! The [`batch`] submodule carries the same ground/symbolic split one step
//! further: the ground partition moves column-major
//! ([`aggprov_krel::batch::ColumnBatch`]) through selection-vector kernels
//! (filter, gather/project, unit-column append, AVG division, hash join),
//! so a filter→project→join chain over ground tuples never materializes a
//! `BTreeMap` between nodes. Whenever a symbolic fringe forces cross-row
//! token sums, execution falls back to the operators in this module.
//!
//! ## Partition-parallel execution
//!
//! The same key hashing that drives the ground/symbolic split is the seam
//! for multi-threaded execution: the `*_opts` variants of [`join_on`],
//! [`group_by`], [`union`] and [`project`] shard the ground partition by
//! operator key across scoped worker threads (see [`crate::par`]) and fold
//! the per-shard results in deterministic shard order, while the symbolic
//! fringe stays on the sequential token path. Results are bit-identical at
//! every thread count (see `tests/par_determinism_proptests.rs`).
//!
//! ## Output construction and duplicate groups
//!
//! The §4.3 rules define each output tuple's annotation as a sum over *all*
//! support tuples weighted by equality tokens. Two structurally distinct
//! output tuples may become equal after a homomorphism; both then carry the
//! same (fully cross-weighted) annotation, so on collision we keep one copy
//! — the paper's "duplicates are ignored" (appendix, commutation proof).
//! This is different from the additive merge of `K`-relations, which is why
//! output maps are built with `insert_distinct`.

pub mod batch;
pub(crate) mod typed;

use crate::annotation::AggAnnotation;
use crate::par::{fan_out, plan_shards, split_by, ExecOptions};
use crate::value::Value;
use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::tensor::Tensor;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::{shard_index, Relation, Tuple};
use aggprov_krel::schema::Schema;
use std::collections::{BTreeMap, HashMap};

/// An `(M, K)`-relation: tuples of [`Value`]s annotated with `A`.
pub type MKRel<A> = Relation<A, Value<A>>;

/// One shard of key-projected entries: (projected key, borrowed
/// annotation). The key is owned (projection allocates once, up front);
/// cloning it later is an `Arc` bump.
type KeyedShard<'a, A> = Vec<(Tuple<Value<A>>, &'a A)>;

/// One aggregation request: `kind(attr) AS out`.
#[derive(Clone, Copy, Debug)]
pub struct AggSpec<'a> {
    /// The aggregation monoid.
    pub kind: MonoidKind,
    /// The aggregated attribute.
    pub attr: &'a str,
    /// The output attribute name.
    pub out: &'a str,
}

impl<'a> AggSpec<'a> {
    /// An aggregation whose output column keeps the input attribute name.
    pub fn new(kind: MonoidKind, attr: &'a str) -> Self {
        AggSpec {
            kind,
            attr,
            out: attr,
        }
    }
}

/// True iff any tuple contains a symbolic aggregate value.
pub fn has_symbolic<A: AggAnnotation>(rel: &MKRel<A>) -> bool {
    rel.iter()
        .any(|(t, _)| t.values().iter().any(Value::is_agg))
}

/// True iff a tuple holds only constants at the given positions — the
/// ground/symbolic partition criterion of the physical operators.
fn is_ground_at<A: AggAnnotation>(t: &Tuple<Value<A>>, positions: &[usize]) -> bool {
    positions.iter().all(|i| !t.get(*i).is_agg())
}

/// Lifts a plain constant relation into an `(M, K)`-relation.
pub fn lift<A: AggAnnotation>(rel: &Relation<A, Const>) -> MKRel<A> {
    rel.map_values(&mut |c| Value::Const(c.clone()))
}

/// Inserts with the §4.3 collision rule: annotations of colliding tuples
/// are equal by construction, so the first copy is kept.
pub(crate) fn insert_distinct<A: AggAnnotation>(
    map: &mut BTreeMap<Tuple<Value<A>>, A>,
    t: Tuple<Value<A>>,
    ann: A,
) {
    if ann.is_zero() {
        return;
    }
    map.entry(t).or_insert(ann);
}

pub(crate) fn from_map<A: AggAnnotation>(
    schema: Schema,
    map: BTreeMap<Tuple<Value<A>>, A>,
) -> Result<MKRel<A>> {
    // Keys are distinct by construction, so the map *is* the tuple store;
    // an arity mismatch surfaces as an error rather than a panic.
    Relation::from_tuple_map(schema, map)
}

/// The extended annotation lookup, i.e. the §4.3 reading of `R(t)` on
/// relations whose values may be symbolic:
/// `Σ_{t' ∈ supp(R)} R(t') · Π_u [t'(u) = t(u)]`. Coincides with the
/// structural lookup when no symbolic values are present.
pub fn annotation_at<A: AggAnnotation>(rel: &MKRel<A>, t: &Tuple<Value<A>>) -> Result<A> {
    // The structural fast path needs *both* sides ground: a symbolic
    // lookup tuple carries nonzero equality tokens against ground support
    // tuples (and vice versa), so the token-weighted sum below is the only
    // correct reading whenever either side is symbolic.
    if !has_symbolic(rel) && !t.values().iter().any(Value::is_agg) {
        return Ok(rel.annotation(t));
    }
    let positions: Vec<usize> = (0..rel.schema().arity()).collect();
    let mut parts = Vec::new();
    for (t2, k2) in rel.iter() {
        let tok = tuple_eq_token(t2, t, &positions)?;
        let part = k2.times(&tok);
        if !part.is_zero() {
            parts.push(part);
        }
    }
    Ok(sum_many(parts))
}

/// Sums many annotations by pairwise tree reduction: summing n tokens of
/// size 1 costs O(n log n) rather than the O(n²) of a left fold (each
/// `plus` clones its left operand).
pub(crate) fn sum_many<A: AggAnnotation>(mut items: Vec<A>) -> A {
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut iter = items.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(a.plus(&b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop().unwrap_or_else(A::zero)
}

/// Pushes `k ∗ tv`'s simple tensors onto an accumulator without
/// re-normalizing (the caller builds the tensor once at the end — turning
/// per-tuple O(current-size) merges into a single O(n log n) build).
pub(crate) fn accumulate_scaled<A: AggAnnotation>(
    acc: &mut Vec<(A, Const)>,
    tv: &Tensor<A, Const>,
    k: &A,
) {
    for (ki, e) in tv.terms() {
        let prod = k.times(ki);
        if !prod.is_zero() {
            acc.push((prod, e.clone()));
        }
    }
}

/// Accumulates one tuple's per-spec aggregate contributions scaled by
/// `k`: `terms[i] += k ∗ t(sidx[i])` for each spec, walked as one zip so
/// no position is ever out of bounds.
pub(crate) fn accumulate_specs<A: AggAnnotation>(
    t: &Tuple<Value<A>>,
    specs: &[AggSpec<'_>],
    sidx: &[usize],
    terms: &mut [Vec<(A, Const)>],
    k: &A,
) -> Result<()> {
    for ((spec, si), acc) in specs.iter().zip(sidx).zip(terms.iter_mut()) {
        let tv = t.get(*si).to_tensor(spec.kind)?;
        accumulate_scaled(acc, &tv, k);
    }
    Ok(())
}

/// The product of per-attribute equality tokens `Π_u [t'(u) = t(u)]`.
pub(crate) fn tuple_eq_token<A: AggAnnotation>(
    a: &Tuple<Value<A>>,
    b: &Tuple<Value<A>>,
    positions: &[usize],
) -> Result<A> {
    let mut acc = A::one();
    for &i in positions {
        let tok = A::value_eq(a.get(i), b.get(i))?;
        if tok.is_zero() {
            return Ok(A::zero());
        }
        acc = acc.times(&tok);
    }
    Ok(acc)
}

// ---------------------------------------------------------------------------
// Union and projection (§4.3 items 2–3)
// ---------------------------------------------------------------------------

/// Union. With symbolic values, every output tuple sums contributions from
/// *all* input tuples weighted by equality tokens. Single-threaded; see
/// [`union_opts`] for the partition-parallel form.
pub fn union<A: AggAnnotation>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    union_opts(r1, r2, &ExecOptions::serial())
}

/// [`union`] with explicit [`ExecOptions`].
///
/// Physical plan: fully ground tuples take an `O(n log n)` additive merge
/// (between constants the §4.3 tokens are structural `0`/`1`); the
/// quadratic token construction runs only over the symbolic fraction and
/// its cross terms against the merged ground partition. With more than one
/// thread, the ground partition is sharded by tuple hash across scoped
/// worker threads — the per-shard merges (and the ground side of the cross
/// terms) run concurrently, per-shard outputs fold in shard order, and the
/// symbolic output keys stay on the sequential token path. The result is
/// identical at every thread count.
pub fn union_opts<A: AggAnnotation>(
    r1: &MKRel<A>,
    r2: &MKRel<A>,
    opts: &ExecOptions,
) -> Result<MKRel<A>> {
    if r1.schema() != r2.schema() {
        return Err(RelError::SchemaMismatch {
            left: r1.schema().to_string(),
            right: r2.schema().to_string(),
            op: "union",
        });
    }
    if !has_symbolic(r1) && !has_symbolic(r2) {
        let nshards = plan_shards(opts, r1.len() + r2.len());
        if nshards == 1 {
            return r1.union(r2);
        }
        // Sharded additive merge over both supports' shard views: a tuple
        // lands in the same shard on either side (the split keys on the
        // whole tuple), so pairing the views and keeping `r1`'s entries
        // first reproduces the serial per-key accumulation order exactly.
        // The key closure clones the tuple — an `Arc` bump, not a deep copy.
        let shards1 = r1.shard_views(nshards, Tuple::clone);
        let shards2 = r2.shard_views(nshards, Tuple::clone);
        let pairs: Vec<_> = shards1.into_iter().zip(shards2).collect();
        let maps = fan_out(pairs, |(s1, s2)| {
            let mut m: BTreeMap<&Tuple<Value<A>>, A> = BTreeMap::new();
            for (t, k) in s1.iter().chain(s2.iter()) {
                m.entry(t)
                    .and_modify(|a| *a = a.plus(k))
                    .or_insert_with(|| k.clone());
            }
            Ok(m)
        })?;
        let mut out = BTreeMap::new();
        for m in maps {
            for (t, k) in m {
                insert_distinct(&mut out, t.clone(), k);
            }
        }
        return from_map(r1.schema().clone(), out);
    }
    let all_positions: Vec<usize> = (0..r1.schema().arity()).collect();
    // Partition: ground tuples merge additively (token 1 exactly on
    // structural equality); symbolic tuples keep their annotations for the
    // token-weighted cross sums.
    let mut ground_entries: Vec<(&Tuple<Value<A>>, &A)> = Vec::new();
    let mut sym: Vec<(&Tuple<Value<A>>, &A)> = Vec::new();
    for (t, k) in r1.iter().chain(r2.iter()) {
        if is_ground_at(t, &all_positions) {
            ground_entries.push((t, k));
        } else {
            sym.push((t, k));
        }
    }
    let nshards = plan_shards(opts, ground_entries.len());
    let shards = split_by(&ground_entries, nshards, |(t, _)| shard_index(t, nshards));
    // Ground output keys, per shard: the structural merge plus every
    // symbolic tuple's token-weighted contribution (a constant row can
    // equal a symbolic one under a valuation, so the cross terms are
    // required for §4.3 parity).
    let sym_ref = &sym;
    let positions_ref = &all_positions;
    let shard_results = fan_out(shards, move |entries| {
        let mut ground: BTreeMap<&Tuple<Value<A>>, A> = BTreeMap::new();
        for (t, k) in entries {
            ground
                .entry(t)
                .and_modify(|a| *a = a.plus(k))
                .or_insert_with(|| k.clone());
        }
        let mut rows = BTreeMap::new();
        for (t, base) in &ground {
            let mut parts = vec![base.clone()];
            for (s, ks) in sym_ref {
                let tok = tuple_eq_token(s, t, positions_ref)?;
                if tok.is_zero() {
                    continue;
                }
                let part = ks.times(&tok);
                if !part.is_zero() {
                    parts.push(part);
                }
            }
            insert_distinct(&mut rows, (*t).clone(), sum_many(parts));
        }
        Ok((ground, rows))
    })?;
    let mut out = BTreeMap::new();
    let mut ground_shards = Vec::with_capacity(shard_results.len());
    for (ground, rows) in shard_results {
        for (t, k) in rows {
            insert_distinct(&mut out, t, k);
        }
        ground_shards.push(ground);
    }
    // Symbolic output keys: contributions from every input tuple. The
    // sequential token path — the symbolic fringe is tiny by construction.
    for (t, _) in &sym {
        if out.contains_key(*t) {
            continue;
        }
        let mut parts = Vec::new();
        for ground in &ground_shards {
            for (g, kg) in ground {
                let tok = tuple_eq_token(g, t, &all_positions)?;
                if tok.is_zero() {
                    continue;
                }
                let part = kg.times(&tok);
                if !part.is_zero() {
                    parts.push(part);
                }
            }
        }
        for (s, ks) in &sym {
            let tok = tuple_eq_token(s, t, &all_positions)?;
            if tok.is_zero() {
                continue;
            }
            let part = ks.times(&tok);
            if !part.is_zero() {
                parts.push(part);
            }
        }
        insert_distinct(&mut out, (*t).clone(), sum_many(parts));
    }
    from_map(r1.schema().clone(), out)
}

/// Projection `Π_{U'}`. With symbolic values, annotations sum over all
/// tuples weighted by tokens on the projected attributes. Single-threaded;
/// see [`project_opts`] for the partition-parallel form.
pub fn project<A: AggAnnotation>(rel: &MKRel<A>, attrs: &[&str]) -> Result<MKRel<A>> {
    project_opts(rel, attrs, &ExecOptions::serial())
}

/// [`project`] with explicit [`ExecOptions`].
///
/// Physical plan: tuples that are ground *at the projected positions* (a
/// strictly wider fast set than "the whole relation is ground") merge
/// additively by projected key; the token construction runs only over the
/// symbolic-at-`U'` fraction and its cross terms. With more than one
/// thread, the ground partition is sharded by projected-key hash across
/// scoped worker threads; the symbolic output keys stay on the sequential
/// token path. The result is identical at every thread count.
pub fn project_opts<A: AggAnnotation>(
    rel: &MKRel<A>,
    attrs: &[&str],
    opts: &ExecOptions,
) -> Result<MKRel<A>> {
    let positions = rel.schema().indices_of(attrs)?;
    let schema = rel.schema().project(attrs)?;
    let all: Vec<usize> = (0..positions.len()).collect();
    if rel.iter().all(|(t, _)| is_ground_at(t, &positions)) {
        let nshards = plan_shards(opts, rel.len());
        if nshards == 1 {
            return rel.project(attrs);
        }
        // Sharded additive merge by projected key: each tuple is projected
        // exactly once (the projection allocates; its `Tuple` clone is an
        // `Arc` bump) and equal keys co-locate, so per-shard merged maps
        // are disjoint sorted runs.
        let mut shards: Vec<KeyedShard<'_, A>> = (0..nshards).map(|_| Vec::new()).collect();
        for (t, k) in rel.iter() {
            let proj = t.project(&positions);
            // lint:allow(index, reason = "shard_index is hash % nshards and shards has nshards slots")
            shards[shard_index(&proj, nshards)].push((proj, k));
        }
        let maps = fan_out(shards, |entries| {
            let mut m: BTreeMap<Tuple<Value<A>>, A> = BTreeMap::new();
            for (proj, k) in entries {
                m.entry(proj)
                    .and_modify(|a| *a = a.plus(k))
                    .or_insert_with(|| k.clone());
            }
            Ok(m)
        })?;
        let mut out = BTreeMap::new();
        for m in maps {
            for (t, k) in m {
                insert_distinct(&mut out, t, k);
            }
        }
        return from_map(schema, out);
    }
    // Partition by groundness of the projected key (projected once here,
    // carried through shard assignment and the per-shard merge).
    let mut ground_entries: KeyedShard<'_, A> = Vec::new();
    let mut sym: KeyedShard<'_, A> = Vec::new();
    for (t, k) in rel.iter() {
        let proj = t.project(&positions);
        if is_ground_at(&proj, &all) {
            ground_entries.push((proj, k));
        } else {
            sym.push((proj, k));
        }
    }
    let nshards = plan_shards(opts, ground_entries.len());
    let mut shards: Vec<KeyedShard<'_, A>> = (0..nshards).map(|_| Vec::new()).collect();
    for (proj, k) in ground_entries {
        // lint:allow(index, reason = "shard_index is hash % nshards and shards has nshards slots")
        shards[shard_index(&proj, nshards)].push((proj, k));
    }
    let sym_ref = &sym;
    let all_ref = &all;
    let shard_results = fan_out(shards, move |entries| {
        let mut ground: BTreeMap<Tuple<Value<A>>, A> = BTreeMap::new();
        for (proj, k) in entries {
            ground
                .entry(proj)
                .and_modify(|a| *a = a.plus(k))
                .or_insert_with(|| k.clone());
        }
        let mut rows = BTreeMap::new();
        for (p, base) in &ground {
            let mut parts = vec![base.clone()];
            for (s, ks) in sym_ref {
                let tok = tuple_eq_token(s, p, all_ref)?;
                if tok.is_zero() {
                    continue;
                }
                let part = ks.times(&tok);
                if !part.is_zero() {
                    parts.push(part);
                }
            }
            insert_distinct(&mut rows, p.clone(), sum_many(parts));
        }
        Ok((ground, rows))
    })?;
    let mut out = BTreeMap::new();
    let mut ground_shards = Vec::with_capacity(shard_results.len());
    for (ground, rows) in shard_results {
        for (t, k) in rows {
            insert_distinct(&mut out, t, k);
        }
        ground_shards.push(ground);
    }
    for (p, _) in &sym {
        if out.contains_key(p) {
            continue;
        }
        let mut parts = Vec::new();
        // Token equality depends only on the projected key, so the merged
        // ground partition contributes per distinct key, not per tuple.
        for ground in &ground_shards {
            for (g, kg) in ground {
                let tok = tuple_eq_token(g, p, &all)?;
                if tok.is_zero() {
                    continue;
                }
                let part = kg.times(&tok);
                if !part.is_zero() {
                    parts.push(part);
                }
            }
        }
        for (s, ks) in &sym {
            let tok = tuple_eq_token(s, p, &all)?;
            if tok.is_zero() {
                continue;
            }
            let part = ks.times(&tok);
            if !part.is_zero() {
                parts.push(part);
            }
        }
        insert_distinct(&mut out, p.clone(), sum_many(parts));
    }
    from_map(schema, out)
}

// ---------------------------------------------------------------------------
// Selection and join (§4.3 items 4–5)
// ---------------------------------------------------------------------------

/// Selection `σ_{u = v}` against a constant or aggregate value:
/// `(σ R)(t) = R(t) · [t(u) = v]`.
pub fn select_eq<A: AggAnnotation>(
    rel: &MKRel<A>,
    attr: &str,
    value: &Value<A>,
) -> Result<MKRel<A>> {
    let idx = rel.schema().index_of(attr)?;
    let mut out = BTreeMap::new();
    for (t, k) in rel.iter() {
        let tok = A::value_eq(t.get(idx), value)?;
        insert_distinct(&mut out, t.clone(), k.times(&tok));
    }
    from_map(rel.schema().clone(), out)
}

/// Selection `σ_{u1 = u2}` comparing two attributes of the same relation.
pub fn select_attrs_eq<A: AggAnnotation>(
    rel: &MKRel<A>,
    attr1: &str,
    attr2: &str,
) -> Result<MKRel<A>> {
    let i = rel.schema().index_of(attr1)?;
    let j = rel.schema().index_of(attr2)?;
    let mut out = BTreeMap::new();
    for (t, k) in rel.iter() {
        let tok = A::value_eq(t.get(i), t.get(j))?;
        insert_distinct(&mut out, t.clone(), k.times(&tok));
    }
    from_map(rel.schema().clone(), out)
}

/// Generic tokened selection: multiplies each tuple's annotation by a
/// caller-computed token (which may be symbolic). This is the §4.3
/// selection rule with an arbitrary condition factory — `select_eq`,
/// `select_cmp` and the engine's WHERE/HAVING all reduce to it.
pub fn select_with_token<A: AggAnnotation>(
    rel: &MKRel<A>,
    token: impl Fn(&Schema, &Tuple<Value<A>>) -> Result<A>,
) -> Result<MKRel<A>> {
    let mut out = BTreeMap::new();
    for (t, k) in rel.iter() {
        let tok = token(rel.schema(), t)?;
        // Ground fast path: a predicate over constants yields `0`/`1`, so
        // the tuple is either dropped or kept verbatim — no semiring
        // multiplication on the hot path.
        if tok.is_zero() {
            continue;
        }
        let ann = if tok.is_one() {
            k.clone()
        } else {
            k.times(&tok)
        };
        insert_distinct(&mut out, t.clone(), ann);
    }
    from_map(rel.schema().clone(), out)
}

/// Selection `σ_{u ⋈ v}` with an order/inequality predicate against a
/// value (the paper's comparison-predicate extension).
pub fn select_cmp<A: AggAnnotation>(
    rel: &MKRel<A>,
    attr: &str,
    pred: crate::km::CmpPred,
    value: &Value<A>,
) -> Result<MKRel<A>> {
    let idx = rel.schema().index_of(attr)?;
    select_with_token(rel, |_, t| A::value_cmp(pred, t.get(idx), value))
}

/// Selection `σ_{u1 ⋈ u2}` comparing two attributes with an
/// order/inequality predicate.
pub fn select_attrs_cmp<A: AggAnnotation>(
    rel: &MKRel<A>,
    attr1: &str,
    pred: crate::km::CmpPred,
    attr2: &str,
) -> Result<MKRel<A>> {
    let i = rel.schema().index_of(attr1)?;
    let j = rel.schema().index_of(attr2)?;
    select_with_token(rel, |_, t| A::value_cmp(pred, t.get(i), t.get(j)))
}

/// Selection by an arbitrary predicate on constant attributes (classical
/// `σ_P`). Fails if the predicate needs to inspect a symbolic aggregate.
pub fn select_where<A: AggAnnotation>(
    rel: &MKRel<A>,
    pred: impl Fn(&Schema, &Tuple<Value<A>>) -> Result<bool>,
) -> Result<MKRel<A>> {
    let mut out = BTreeMap::new();
    for (t, k) in rel.iter() {
        if pred(rel.schema(), t)? {
            insert_distinct(&mut out, t.clone(), k.clone());
        }
    }
    from_map(rel.schema().clone(), out)
}

/// Value-based join on attribute pairs (schemas must be disjoint):
/// `R₁(t|U₁) · R₂(t|U₂) · Π [t(u₁ᵢ) = t(u₂ᵢ)]`. Single-threaded; see
/// [`join_on_opts`] for the partition-parallel form.
pub fn join_on<A: AggAnnotation>(
    r1: &MKRel<A>,
    r2: &MKRel<A>,
    on: &[(&str, &str)],
) -> Result<MKRel<A>> {
    join_on_opts(r1, r2, on, &ExecOptions::serial())
}

/// The ground × ground equi-join block: hash build on the right side,
/// probe with the left — between constants the §4.3 tokens are exactly the
/// structural key equality. Shared by the serial path (one call over the
/// whole ground partition) and the parallel path (one call per hash
/// shard).
fn hash_join_ground<A: AggAnnotation>(
    g1: &[(&Tuple<Value<A>>, &A)],
    g2: &[(&Tuple<Value<A>>, &A)],
    left: &[usize],
    right: &[usize],
    out: &mut BTreeMap<Tuple<Value<A>>, A>,
) {
    type Bucket<'a, A> = Vec<(&'a Tuple<Value<A>>, &'a A)>;
    let mut index: HashMap<Vec<&Value<A>>, Bucket<'_, A>> = HashMap::new();
    for (t2, k2) in g2 {
        let key: Vec<&Value<A>> = right.iter().map(|j| t2.get(*j)).collect();
        index.entry(key).or_default().push((t2, k2));
    }
    for (t1, k1) in g1 {
        let key: Vec<&Value<A>> = left.iter().map(|i| t1.get(*i)).collect();
        if let Some(matches) = index.get(&key) {
            for (t2, k2) in matches {
                insert_distinct(out, t1.concat(t2.values()), k1.times(k2));
            }
        }
    }
}

/// [`join_on`] with explicit [`ExecOptions`].
///
/// Physical plan: each side is partitioned by groundness of its join-key
/// columns. The ground × ground block runs as a hash build (right) /
/// probe (left) equi-join — with more than one thread, both ground sides
/// are sharded by the same join-key hash, so each scoped worker joins one
/// hash-disjoint shard pair and the per-shard outputs fold in shard order.
/// Pairs with a symbolic key on either side fall back to the sequential
/// token-weighted nested loop, which therefore costs `O(|G|·|S| + |S|²)`
/// instead of `O(n²)`. The result is identical at every thread count.
pub fn join_on_opts<A: AggAnnotation>(
    r1: &MKRel<A>,
    r2: &MKRel<A>,
    on: &[(&str, &str)],
    opts: &ExecOptions,
) -> Result<MKRel<A>> {
    if !r1.schema().shared_with(r2.schema()).is_empty() {
        return Err(RelError::SchemaMismatch {
            left: r1.schema().to_string(),
            right: r2.schema().to_string(),
            op: "join_on (schemas must be disjoint; rename first)",
        });
    }
    let left: Vec<usize> = on
        .iter()
        .map(|(a, _)| r1.schema().index_of(a))
        .collect::<Result<_>>()?;
    let right: Vec<usize> = on
        .iter()
        .map(|(_, b)| r2.schema().index_of(b))
        .collect::<Result<_>>()?;
    let schema = r1.schema().concat(r2.schema())?;

    type Side<'a, A> = Vec<(&'a Tuple<Value<A>>, &'a A)>;
    let (g1, s1): (Side<'_, A>, Side<'_, A>) = r1.iter().partition(|(t, _)| is_ground_at(t, &left));
    let (g2, s2): (Side<'_, A>, Side<'_, A>) =
        r2.iter().partition(|(t, _)| is_ground_at(t, &right));

    let mut out = BTreeMap::new();
    if on.is_empty() {
        // Cartesian product: no keys, no tokens (s1/s2 are empty since the
        // groundness check over zero positions is vacuous).
        for (t1, k1) in &g1 {
            for (t2, k2) in &g2 {
                insert_distinct(&mut out, t1.concat(t2.values()), k1.times(k2));
            }
        }
    } else {
        let nshards = plan_shards(opts, g1.len().max(g2.len()));
        if nshards == 1 {
            hash_join_ground(&g1, &g2, &left, &right, &mut out);
        } else {
            // Both sides sharded by the same key hash: matching keys land
            // in the same shard, so shard outputs are disjoint.
            let shards1 = split_by(&g1, nshards, |(t, _)| {
                shard_index(&left.iter().map(|i| t.get(*i)).collect::<Vec<_>>(), nshards)
            });
            let shards2 = split_by(&g2, nshards, |(t, _)| {
                shard_index(
                    &right.iter().map(|j| t.get(*j)).collect::<Vec<_>>(),
                    nshards,
                )
            });
            let left_ref = &left;
            let right_ref = &right;
            let pairs: Vec<_> = shards1.into_iter().zip(shards2).collect();
            let maps = fan_out(pairs, move |(p1, p2)| {
                let mut m = BTreeMap::new();
                hash_join_ground(&p1, &p2, left_ref, right_ref, &mut m);
                Ok(m)
            })?;
            for m in maps {
                for (t, k) in m {
                    insert_distinct(&mut out, t, k);
                }
            }
        }
    }
    // Symbolic fringes: every pair with a symbolic key on at least one side
    // carries a genuine §4.3 token product.
    for (lhs, rhs) in [(&g1, &s2), (&s1, &g2), (&s1, &s2)] {
        for (t1, k1) in lhs.iter() {
            for (t2, k2) in rhs.iter() {
                let mut tok = A::one();
                for (i, j) in left.iter().zip(&right) {
                    if tok.is_zero() {
                        break;
                    }
                    tok = tok.times(&A::value_eq(t1.get(*i), t2.get(*j))?);
                }
                if tok.is_zero() {
                    continue;
                }
                insert_distinct(&mut out, t1.concat(t2.values()), k1.times(k2).times(&tok));
            }
        }
    }
    from_map(schema, out)
}

/// Cartesian product (join with no comparisons).
pub fn product<A: AggAnnotation>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    join_on(r1, r2, &[])
}

/// Natural join on the shared attributes. Requires the shared columns to be
/// constant-valued (use [`join_on`] with renaming for symbolic joins); the
/// classical hash build/probe join of
/// [`Relation::natural_join`](aggprov_krel::relation::Relation::natural_join)
/// then applies.
pub fn natural_join<A: AggAnnotation>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    let shared = r1.schema().shared_with(r2.schema());
    for rel in [r1, r2] {
        // One pass per side: resolve the shared positions once, then scan.
        let idx: Vec<usize> = shared
            .iter()
            .map(|a| rel.schema().index_of(a.name()))
            .collect::<Result<_>>()?;
        for (t, _) in rel.iter() {
            if let Some((_, a)) = idx.iter().zip(&shared).find(|(i, _)| t.get(**i).is_agg()) {
                return Err(RelError::Unsupported(format!(
                    "natural join on symbolic aggregate column `{a}`; \
                     rename and use join_on"
                )));
            }
        }
    }
    r1.natural_join(r2)
}

// ---------------------------------------------------------------------------
// Aggregation (§3.2 / §4.3 item 6)
// ---------------------------------------------------------------------------

/// Whole-relation aggregation `AGG_M(R)`: one output tuple, annotated `1`,
/// whose value is `Σ_{t' ∈ supp(R)} R(t') ∗ t'(u)` in `K ⊗ M`.
pub fn agg<A: AggAnnotation>(rel: &MKRel<A>, spec: AggSpec<'_>) -> Result<MKRel<A>> {
    agg_all(rel, &[spec])
}

/// Whole-relation aggregation of several attributes at once: one output
/// tuple, annotated `1`, one tensor value per spec. Like SQL aggregates
/// without `GROUP BY`, the output row exists even for empty input (with
/// value `ι(0_M)`, §3.2).
pub fn agg_all<A: AggAnnotation>(rel: &MKRel<A>, specs: &[AggSpec<'_>]) -> Result<MKRel<A>> {
    let sidx: Vec<usize> = specs
        .iter()
        .map(|s| rel.schema().index_of(s.attr))
        .collect::<Result<_>>()?;
    let mut terms: Vec<Vec<(A, Const)>> = vec![Vec::new(); specs.len()];
    for (t, k) in rel.iter() {
        accumulate_specs(t, specs, &sidx, &mut terms, k)?;
    }
    let tensors: Vec<Tensor<A, Const>> = specs
        .iter()
        .zip(terms)
        .map(|(spec, ts)| Tensor::from_terms(&spec.kind, ts))
        .collect();
    let schema = Schema::new(specs.iter().map(|s| s.out))?;
    let mut out = Relation::empty(schema);
    let row: Vec<Value<A>> = specs
        .iter()
        .zip(tensors)
        .map(|(spec, t)| Value::agg_normalized(spec.kind, t))
        .collect();
    out.insert(row, A::one())?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Group-by (§3.3 Definition 3.7 / §4.3 item 7)
// ---------------------------------------------------------------------------

/// Validates a grouping request and resolves its layout: grouping
/// positions, aggregated positions, and the output schema
/// `group_attrs ++ [spec.out, …]`. Shared between the physical
/// [`group_by`] and the reference [`crate::specops::group_by`].
pub(crate) fn group_by_layout<A: AggAnnotation>(
    rel: &MKRel<A>,
    group_attrs: &[&str],
    specs: &[AggSpec<'_>],
) -> Result<(Vec<usize>, Vec<usize>, Schema)> {
    let gidx = rel.schema().indices_of(group_attrs)?;
    let sidx: Vec<usize> = specs
        .iter()
        .map(|s| rel.schema().index_of(s.attr))
        .collect::<Result<_>>()?;
    for (s, si) in specs.iter().zip(&sidx) {
        if group_attrs.contains(&s.attr) || gidx.contains(si) {
            return Err(RelError::Unsupported(format!(
                "attribute `{}` cannot be both grouped and aggregated",
                s.attr
            )));
        }
    }
    let mut names: Vec<String> = group_attrs.iter().map(|a| (*a).to_string()).collect();
    for s in specs {
        names.push(s.out.to_string());
    }
    let schema = Schema::new(names.iter().map(|s| s.as_str()))?;
    Ok((gidx, sidx, schema))
}

/// A symbolic-keyed tuple of [`group_by_opts`]: its projected group key,
/// the tuple, its annotation.
type SymEntry<'a, A> = (Tuple<Value<A>>, &'a Tuple<Value<A>>, &'a A);

/// Builds one ground candidate group's output row and annotation: the
/// bucket's members join with token 1, symbolic-keyed tuples contribute
/// with a token weight. Shared by the serial and per-shard paths.
fn ground_group_row<A: AggAnnotation>(
    g: &Tuple<Value<A>>,
    members: &[(&Tuple<Value<A>>, &A)],
    sym: &[SymEntry<'_, A>],
    specs: &[AggSpec<'_>],
    sidx: &[usize],
    all: &[usize],
) -> Result<(Tuple<Value<A>>, A)> {
    let mut anns: Vec<A> = Vec::with_capacity(members.len());
    let mut terms: Vec<Vec<(A, Const)>> = vec![Vec::new(); specs.len()];
    for (t, k) in members {
        anns.push((*k).clone());
        accumulate_specs(t, specs, sidx, &mut terms, k)?;
    }
    for (key, t2, k2) in sym {
        let tok = tuple_eq_token(key, g, all)?;
        if tok.is_zero() {
            continue;
        }
        let coeff = k2.times(&tok);
        if coeff.is_zero() {
            continue;
        }
        accumulate_specs(t2, specs, sidx, &mut terms, &coeff)?;
        anns.push(coeff);
    }
    let total = sum_many(anns);
    let mut row: Vec<Value<A>> = g.values().to_vec();
    for (spec, ts) in specs.iter().zip(terms) {
        row.push(Value::agg_normalized(
            spec.kind,
            Tensor::from_terms(&spec.kind, ts),
        ));
    }
    Ok((Tuple::new(row), total.delta()))
}

/// `GB_{U', specs}(R)`: groups by `group_attrs` and aggregates each spec's
/// attribute. Output schema: `group_attrs ++ [spec.attr, …]`. The group
/// tuple's annotation is `δ(Σ_{t' ∈ group} coeff(t'))` where with symbolic
/// group values `coeff(t') = R(t') · Π_{u ∈ U'} [t'(u) = g(u)]`.
/// Single-threaded; see [`group_by_opts`] for the partition-parallel form.
pub fn group_by<A: AggAnnotation>(
    rel: &MKRel<A>,
    group_attrs: &[&str],
    specs: &[AggSpec<'_>],
) -> Result<MKRel<A>> {
    group_by_opts(rel, group_attrs, specs, &ExecOptions::serial())
}

/// [`group_by`] with explicit [`ExecOptions`].
///
/// Physical plan: tuples with ground group keys are hash-partitioned into
/// buckets (between constants the membership token is structural key
/// equality) — with more than one thread, whole buckets are sharded by
/// group-key hash, each scoped worker aggregates its buckets (including
/// the token-weighted contributions of symbolic-keyed tuples), and the
/// per-shard rows fold in shard order. Tuples with symbolic keys join
/// every candidate group with a token-weighted coefficient on the
/// sequential path; tokens against a ground bucket are computed once per
/// bucket, not once per member. The result is identical at every thread
/// count.
pub fn group_by_opts<A: AggAnnotation>(
    rel: &MKRel<A>,
    group_attrs: &[&str],
    specs: &[AggSpec<'_>],
    opts: &ExecOptions,
) -> Result<MKRel<A>> {
    let (gidx, sidx, schema) = group_by_layout(rel, group_attrs, specs)?;
    let all: Vec<usize> = (0..gidx.len()).collect();

    // Partition pass: ground group keys shard by key hash (whole buckets
    // stay together); symbolic-keyed tuples go to the sequential fringe.
    // Keyed entries share the `SymEntry` layout: (group key, tuple, ann).
    type Members<'a, A> = Vec<(&'a Tuple<Value<A>>, &'a A)>;
    let mut ground: Vec<SymEntry<'_, A>> = Vec::new();
    let mut sym: Vec<SymEntry<'_, A>> = Vec::new();
    for (t, k) in rel.iter() {
        let g = t.project(&gidx);
        if is_ground_at(&g, &all) {
            ground.push((g, t, k));
        } else {
            sym.push((g, t, k));
        }
    }
    let nshards = plan_shards(opts, ground.len());
    let mut shards: Vec<Vec<SymEntry<'_, A>>> = (0..nshards).map(|_| Vec::new()).collect();
    for (g, t, k) in ground {
        let shard = shard_index(&g, nshards);
        // lint:allow(index, reason = "shard_index is hash % nshards and shards has nshards slots")
        shards[shard].push((g, t, k));
    }

    let sym_ref = &sym;
    let specs_ref = specs;
    let sidx_ref = &sidx;
    let all_ref = &all;
    let shard_results = fan_out(shards, move |entries| {
        let mut buckets: HashMap<Tuple<Value<A>>, Members<'_, A>> = HashMap::new();
        for (g, t, k) in entries {
            buckets.entry(g).or_default().push((t, k));
        }
        let mut rows = BTreeMap::new();
        for (g, members) in &buckets {
            let (row, ann) = ground_group_row(g, members, sym_ref, specs_ref, sidx_ref, all_ref)?;
            insert_distinct(&mut rows, row, ann);
        }
        Ok((rows, buckets))
    })?;
    let mut out = BTreeMap::new();
    let mut bucket_shards = Vec::with_capacity(shard_results.len());
    for (rows, buckets) in shard_results {
        for (t, k) in rows {
            insert_distinct(&mut out, t, k);
        }
        bucket_shards.push(buckets);
    }
    // Symbolic candidate groups: membership of *every* tuple is weighted by
    // equality tokens (the full §4.3 rule), but the token against a ground
    // bucket depends only on the bucket key — computed once per bucket.
    let mut seen: Vec<&Tuple<Value<A>>> = Vec::new();
    for (p, _, _) in &sym {
        if seen.contains(&p) {
            continue;
        }
        seen.push(p);
        let mut anns: Vec<A> = Vec::new();
        let mut terms: Vec<Vec<(A, Const)>> = vec![Vec::new(); specs.len()];
        for buckets in &bucket_shards {
            for (g, members) in buckets {
                let tok = tuple_eq_token(g, p, &all)?;
                if tok.is_zero() {
                    continue;
                }
                for (t, k) in members {
                    let coeff = k.times(&tok);
                    if coeff.is_zero() {
                        continue;
                    }
                    accumulate_specs(t, specs, &sidx, &mut terms, &coeff)?;
                    anns.push(coeff);
                }
            }
        }
        for (key, t2, k2) in &sym {
            let tok = tuple_eq_token(key, p, &all)?;
            if tok.is_zero() {
                continue;
            }
            let coeff = k2.times(&tok);
            if coeff.is_zero() {
                continue;
            }
            accumulate_specs(t2, specs, &sidx, &mut terms, &coeff)?;
            anns.push(coeff);
        }
        let total = sum_many(anns);
        let mut row: Vec<Value<A>> = p.values().to_vec();
        for (spec, ts) in specs.iter().zip(terms) {
            row.push(Value::agg_normalized(
                spec.kind,
                Tensor::from_terms(&spec.kind, ts),
            ));
        }
        insert_distinct(&mut out, Tuple::new(row), total.delta());
    }
    from_map(schema, out)
}

// ---------------------------------------------------------------------------
// Incremental grouping deltas (view maintenance)
// ---------------------------------------------------------------------------

/// Folds a delta relation into a **group state** — the pre-δ accumulator
/// behind an incrementally maintained `GROUP BY`.
///
/// A group state for `(group_attrs, specs)` has the same schema as the
/// [`group_by`] output (`group_attrs ++ [spec.out, …]`), but keeps the
/// *raw* accumulators instead of the rendered result: every aggregate
/// cell is the un-normalized tensor `Σ_{t' ∈ group} R(t') ∗ t'(attr)`
/// (never collapsed to a constant) and every annotation is the pre-δ
/// membership sum `Σ_{t' ∈ group} R(t')`. [`delta_collapse`] renders a
/// state into the exact [`group_by`] output.
///
/// Because tensors and annotations are kept in canonical normal form
/// (sums merge and re-sort; zero coefficients drop), folding a relation
/// in *any* batch decomposition yields bit-identical state:
/// `fold(update, empty, batches(R)) = update(empty, R)` — the law the
/// `delta_kernel` proptests pin against [`crate::specops`].
///
/// Only ground group keys are supported (an insertion stream into an
/// incrementally maintained view flows through the ground partition);
/// a symbolic key in the delta is an error, because a token-weighted
/// candidate group cannot be attributed to a single state row.
pub fn group_state_update<A: AggAnnotation>(
    state: MKRel<A>,
    delta: &MKRel<A>,
    group_attrs: &[&str],
    specs: &[AggSpec<'_>],
) -> Result<MKRel<A>> {
    let (gidx, sidx, schema) = group_by_layout(delta, group_attrs, specs)?;
    if state.schema() != &schema {
        return Err(RelError::SchemaMismatch {
            left: state.schema().to_string(),
            right: schema.to_string(),
            op: "group_state_update",
        });
    }
    let all: Vec<usize> = (0..gidx.len()).collect();
    let key_positions: Vec<usize> = (0..group_attrs.len()).collect();

    // Accumulate the delta per ground group key in one pass.
    type GroupAcc<A> = (Vec<A>, Vec<Vec<(A, Const)>>);
    let mut touched: BTreeMap<Tuple<Value<A>>, GroupAcc<A>> = BTreeMap::new();
    for (t, k) in delta.iter() {
        let g = t.project(&gidx);
        if !is_ground_at(&g, &all) {
            return Err(RelError::Unsupported(
                "group_state_update: symbolic group key in delta — incremental \
                 grouping is defined on ground keys only"
                    .to_string(),
            ));
        }
        let (anns, terms) = touched
            .entry(g)
            .or_insert_with(|| (Vec::new(), vec![Vec::new(); specs.len()]));
        accumulate_specs(t, specs, &sidx, terms, k)?;
        anns.push(k.clone());
    }

    // One pass over the state finds the touched rows (clones are `Arc`
    // bumps); untouched groups are never visited again.
    let mut old_rows: BTreeMap<Tuple<Value<A>>, Tuple<Value<A>>> = BTreeMap::new();
    for (t, _) in state.iter() {
        let key = t.project(&key_positions);
        if touched.contains_key(&key) {
            old_rows.insert(key, t.clone());
        }
    }

    let n_keys = group_attrs.len();
    let mut out = state;
    for (g, (anns, terms)) in touched {
        let mut row: Vec<Value<A>> = g.values().to_vec();
        let ann = match old_rows.get(&g) {
            Some(old_t) => {
                // Taking the old row out returns its annotation owned — no
                // deep clone of the accumulated sum.
                let old_ann = out.remove(old_t).unwrap_or_else(A::zero);
                for ((spec, cell), ts) in specs
                    .iter()
                    .zip(old_t.values().iter().skip(n_keys))
                    .zip(terms)
                {
                    let merged = cell
                        .to_tensor(spec.kind)?
                        .add(&Tensor::from_terms(&spec.kind, ts), &spec.kind);
                    row.push(Value::Agg(spec.kind, merged));
                }
                old_ann.plus(&sum_many(anns))
            }
            None => {
                for (spec, ts) in specs.iter().zip(terms) {
                    row.push(Value::Agg(spec.kind, Tensor::from_terms(&spec.kind, ts)));
                }
                sum_many(anns)
            }
        };
        // `add` drops zero annotations, so a group whose membership sum
        // cancels leaves the state — matching from-scratch recomputation.
        out.add(Tuple::new(row), ann)?;
    }
    Ok(out)
}

/// Renders a group state (see [`group_state_update`]) into the exact
/// [`group_by`] output: every aggregate cell re-normalizes through
/// [`Value::agg_normalized`] (a resolved tensor collapses to its
/// constant) and every annotation takes its δ. Rows whose δ is zero
/// (an empty membership sum) leave the result, exactly as an empty
/// candidate group never appears in [`group_by`].
pub fn delta_collapse<A: AggAnnotation>(state: &MKRel<A>) -> Result<MKRel<A>> {
    let mut out = BTreeMap::new();
    for (t, k) in state.iter() {
        let row: Vec<Value<A>> = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Agg(kind, tv) => Value::agg_normalized(*kind, tv.clone()),
                Value::Const(c) => Value::Const(c.clone()),
            })
            .collect();
        insert_distinct(&mut out, Tuple::new(row), k.delta());
    }
    from_map(state.schema().clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::km::Km;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_algebra::semiring::{CommutativeSemiring, Nat};

    type P = Km<NatPoly>;

    fn tok(name: &str) -> P {
        Km::embed(NatPoly::token(name))
    }

    fn sch(names: &[&str]) -> Schema {
        Schema::new(names.iter().copied()).unwrap()
    }

    /// Example 3.8's relation: (dept, sal) with tokens r1, r2, r3.
    fn example_3_8() -> MKRel<P> {
        Relation::from_rows(
            sch(&["dept", "sal"]),
            [
                (vec![Value::str("d1"), Value::int(20)], tok("r1")),
                (vec![Value::str("d1"), Value::int(10)], tok("r2")),
                (vec![Value::str("d2"), Value::int(10)], tok("r3")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn example_3_4_agg() {
        // Single-attribute relation {20↦r1, 10↦r2, 30↦r3}; AGG_SUM gives one
        // tuple annotated 1 with value r1⊗20 + r2⊗10 + r3⊗30.
        let rel: MKRel<P> = Relation::from_rows(
            sch(&["sal"]),
            [
                (vec![Value::int(20)], tok("r1")),
                (vec![Value::int(10)], tok("r2")),
                (vec![Value::int(30)], tok("r3")),
            ],
        )
        .unwrap();
        let out = agg(&rel, AggSpec::new(MonoidKind::Sum, "sal")).unwrap();
        assert_eq!(out.len(), 1);
        let (t, k) = out.iter().next().unwrap();
        assert!(k.is_one());
        assert_eq!(t.get(0).to_string(), "SUM⟨(r2)⊗10 + (r1)⊗20 + (r3)⊗30⟩");
    }

    #[test]
    fn empty_agg_yields_zero_of_monoid() {
        let rel: MKRel<P> = Relation::empty(sch(&["sal"]));
        let out = agg(&rel, AggSpec::new(MonoidKind::Sum, "sal")).unwrap();
        assert_eq!(out.len(), 1, "AGG of empty relation is not empty (§3.2)");
        let (t, k) = out.iter().next().unwrap();
        assert!(k.is_one());
        assert_eq!(t.get(0), &Value::int(0));
    }

    #[test]
    fn example_3_8_group_by() {
        // GB dept, SUM(sal): d1 ↦ r1⊗20+r2⊗10 @ δ(r1+r2); d2 ↦ r3⊗10 @ δ(r3).
        let out = group_by(
            &example_3_8(),
            &["dept"],
            &[AggSpec::new(MonoidKind::Sum, "sal")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let rows: Vec<String> = out
            .iter()
            .map(|(t, k)| format!("{} {} @ {}", t.get(0), t.get(1), k))
            .collect();
        assert_eq!(
            rows,
            vec![
                "'d1' SUM⟨(r2)⊗10 + (r1)⊗20⟩ @ δ(r1 + r2)",
                "'d2' SUM⟨(r3)⊗10⟩ @ δ(r3)",
            ]
        );
    }

    #[test]
    fn group_by_over_bags_matches_plain_sql() {
        // With K = ℕ everything resolves: group sums are constants and the
        // group annotation is multiplicity 1.
        let rel: MKRel<Nat> = Relation::from_rows(
            sch(&["dept", "sal"]),
            [
                (vec![Value::str("d1"), Value::int(20)], Nat(2)),
                (vec![Value::str("d1"), Value::int(10)], Nat(1)),
                (vec![Value::str("d2"), Value::int(5)], Nat(3)),
            ],
        )
        .unwrap();
        let out = group_by(&rel, &["dept"], &[AggSpec::new(MonoidKind::Sum, "sal")]).unwrap();
        let rows: Vec<(String, String, Nat)> = out
            .iter()
            .map(|(t, k)| (t.get(0).to_string(), t.get(1).to_string(), *k))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("'d1'".into(), "50".into(), Nat(1)),
                ("'d2'".into(), "15".into(), Nat(1)),
            ]
        );
    }

    #[test]
    fn selection_on_aggregate_multiplies_token() {
        // Example 4.3: select groups whose summed salary equals 20.
        let grouped = group_by(
            &example_3_8(),
            &["dept"],
            &[AggSpec::new(MonoidKind::Sum, "sal")],
        )
        .unwrap();
        let selected = select_eq(&grouped, "sal", &Value::int(20)).unwrap();
        assert_eq!(selected.len(), 2, "both tuples kept with symbolic tokens");
        let anns: Vec<String> = selected.iter().map(|(_, k)| k.to_string()).collect();
        assert!(
            anns[0].contains("δ(r1 + r2)") && anns[0].contains("=SUM="),
            "δ·token product: {}",
            anns[0]
        );
        assert!(
            anns[1].contains("δ(r3)") && anns[1].contains("=SUM="),
            "δ·token product: {}",
            anns[1]
        );
    }

    #[test]
    fn union_requires_matching_schemas() {
        let r1: MKRel<P> = Relation::empty(sch(&["a"]));
        let r2: MKRel<P> = Relation::empty(sch(&["b"]));
        assert!(union(&r1, &r2).is_err());
    }

    #[test]
    fn symbolic_union_cross_counts() {
        // Two one-attribute tuples holding symbolic aggregates that may or
        // may not be equal: each output annotation includes the other
        // tuple's contribution weighted by a token.
        let t1 = Value::Agg(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok("x"), Const::int(10))]),
        );
        let t2 = Value::Agg(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok("y"), Const::int(10))]),
        );
        let r1: MKRel<P> = Relation::from_rows(sch(&["v"]), [(vec![t1], tok("a"))]).unwrap();
        let r2: MKRel<P> = Relation::from_rows(sch(&["v"]), [(vec![t2], tok("b"))]).unwrap();
        let u = union(&r1, &r2).unwrap();
        assert_eq!(u.len(), 2);
        for (_, k) in u.iter() {
            let s = k.to_string();
            assert!(s.contains('['), "annotation has a token: {s}");
        }
        // Valuating x = y = 1 makes the tensors equal: both annotations
        // become a + b, and the tuples merge structurally.
        let v = crate::eval::map_hom_mk(&u, &|p: &NatPoly| {
            aggprov_algebra::hom::Valuation::<Nat>::ones().eval(p)
        });
        assert_eq!(v.len(), 1);
        let (_, k) = v.iter().next().unwrap();
        assert_eq!(k.try_collapse(), Some(Nat(2)));
    }

    #[test]
    fn join_on_aggregate_values() {
        // Join two aggregated relations on their (symbolic) sums.
        let g = group_by(
            &example_3_8(),
            &["dept"],
            &[AggSpec::new(MonoidKind::Sum, "sal")],
        )
        .unwrap();
        let g2 = {
            let r = g.rename("dept", "dept2").unwrap();
            r.rename("sal", "sal2").unwrap()
        };
        let j = join_on(&g, &g2, &[("sal", "sal2")]).unwrap();
        // 2×2 candidate pairs, all kept symbolically (d1⋈d1 and d2⋈d2 have
        // syntactically equal sides → token 1).
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn natural_join_fast_path_on_constants() {
        let dept: MKRel<P> = Relation::from_rows(
            sch(&["dept", "head"]),
            [(vec![Value::str("d1"), Value::str("alice")], P::one())],
        )
        .unwrap();
        let j = natural_join(&example_3_8(), &dept).unwrap();
        assert_eq!(j.len(), 2);
        for (_, k) in j.iter() {
            assert!(k.try_collapse().is_some(), "no tokens on constant join");
        }
    }

    #[test]
    fn group_and_agg_attr_must_differ() {
        assert!(group_by(
            &example_3_8(),
            &["sal"],
            &[AggSpec::new(MonoidKind::Sum, "sal")],
        )
        .is_err());
    }
}
