//! Vectorized batch kernels over the ground partition — the columnar
//! execution layer behind the engine's physical-plan pipeline.
//!
//! A [`Chunk`] is a relation mid-pipeline: the fully ground rows live
//! column-major in a [`ColumnBatch`] of typed columns (unboxed `Vec<i64>`
//! runs, dictionary-encoded strings, boxed fallback — see
//! [`aggprov_krel::typed`]), plus a live selection vector, so a filter
//! never moves data, and the symbolic fringe rides alongside row-wise,
//! exactly as [`GroundBatch`] splits it. The kernels here —
//! [`Chunk::filter`], [`Chunk::project`], [`Chunk::add_unit_column`],
//! [`Chunk::avg_divide`], [`hash_join`] — run classical columnar
//! algorithms over the ground batch: between constants every §4.3
//! equality token is `0`/`1`, so the token machinery degenerates to plain
//! comparisons and a filter→project→join chain never materializes a
//! `BTreeMap` between nodes.
//!
//! Over typed columns, filtering and join-key probing take the
//! monomorphic fast paths of `ops::typed`: the literal operand
//! is compiled once per kernel invocation (a `i64` threshold, a
//! dictionary code, or a per-dictionary-entry decision table), the row
//! loop compacts the selection vector branchlessly, and large kernels
//! shard the selection across the `par::fan_out` workers in
//! contiguous ranges — bit-identical to the serial loop, including which
//! row raises a type error first. Boxed columns keep the `Const` row
//! loop below as their (and the `AGGPROV_TYPED=0` baseline's) path.
//!
//! Division of labour with the row-at-a-time operators of [`crate::ops`]:
//!
//! * **filter** and **unit-column append** have no cross-row terms in
//!   §4.3, so a chunk stays a chunk even with a non-empty fringe — ground
//!   rows take the vectorized comparison, fringe rows the token path
//!   (annotation × token, as in [`crate::ops::select_with_token`]);
//! * **projection**, **join**, **aggregation** and **set operations** sum
//!   token-weighted contributions *across* rows when symbolic values are
//!   present, so their batch kernels require an empty fringe — the
//!   engine's driver falls back to the `ops::*_opts` operators (and their
//!   partition-parallel ground/symbolic machinery) whenever a fringe
//!   exists, keeping results bit-identical to [`crate::specops`].
//!
//! A chunk defers the additive merge of duplicate ground rows to its next
//! materialization ([`Chunk::into_relation`]); semiring distributivity
//! makes that exactly the eager merge the row-at-a-time path performs.

use crate::annotation::AggAnnotation;
use crate::km::CmpPred;
use crate::ops::typed;
use crate::ops::MKRel;
use crate::par::ExecOptions;
use crate::value::Value;
use aggprov_algebra::domain::Const;
use aggprov_krel::batch::{ColumnBatch, GroundBatch};
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Tuple;
use aggprov_krel::schema::Schema;
use aggprov_krel::typed::{ColumnLayout, TypedColumn};
use std::borrow::Cow;
use std::collections::HashMap;

/// One side of a batched comparison: a column of the chunk or a constant
/// (literals and already-bound `$n` parameters look the same down here).
#[derive(Clone, Debug)]
pub enum BatchOperand {
    /// The value at a column position.
    Col(usize),
    /// A constant.
    Lit(Const),
}

/// A batched comparison operator. `>`/`≥` are not represented: callers
/// normalize by swapping the operands, exactly as the token path does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchCmp {
    /// Equality (the §4.3 token `[a = b]`, `0`/`1` between constants).
    Eq,
    /// A canonical order/inequality predicate.
    Pred(CmpPred),
}

/// A relation mid-pipeline: columnar ground rows + live selection vector
/// + row-wise symbolic fringe, under the current schema.
///
/// Columns are addressed through a **view** (logical position → physical
/// column), so a projection is a view update — no values move until the
/// next pipeline breaker materializes.
#[derive(Clone, Debug)]
pub struct Chunk<A: AggAnnotation> {
    schema: Schema,
    ground: ColumnBatch<A>,
    /// Logical column `i` lives in physical column `view[i]`.
    view: Vec<usize>,
    /// Selected ground-row indices, ascending; `None` = all rows.
    sel: Option<Vec<u32>>,
    fringe: Vec<(Tuple<Value<A>>, A)>,
    /// True iff this chunk was built under a forced-boxed layout
    /// (`AGGPROV_TYPED=0`): columns it appends stay boxed too, so the
    /// baseline never silently re-enters a typed path.
    boxed: bool,
}

impl<A: AggAnnotation> Chunk<A> {
    /// Splits a relation into a chunk with the default probing column
    /// layout; see [`Chunk::from_relation_with`].
    pub fn from_relation(rel: &MKRel<A>) -> Self {
        Self::from_relation_with(rel, &ColumnLayout::typed())
    }

    /// Splits a relation into a chunk (ground columns + symbolic fringe),
    /// preserving support order in both partitions. Ground columns are
    /// shaped by `layout`: typed with per-column variant probing (and
    /// optional catalog hints), or forced boxed.
    pub fn from_relation_with(rel: &MKRel<A>, layout: &ColumnLayout) -> Self {
        let batch = GroundBatch::from_relation_with(rel, Value::as_const, layout);
        let (ground, fringe) = batch.into_parts();
        Chunk {
            schema: rel.schema().clone(),
            view: (0..ground.arity()).collect(),
            ground,
            sel: None,
            fringe,
            boxed: layout.is_boxed(),
        }
    }

    /// Materializes the chunk back into a relation: selected ground rows
    /// lift to `Value::Const` tuples (columns reordered through the view
    /// wholesale, values and annotations moved, not re-cloned), duplicates
    /// merge additively, and the fringe rows merge in after them.
    pub fn into_relation(self) -> Result<MKRel<A>> {
        let (phys, anns) = self.ground.into_columns();
        // Move each physical column into its (last) logical slot; only a
        // column viewed more than once (duplicate select items) is cloned.
        let mut uses = vec![0usize; phys.len()];
        for &p in &self.view {
            if let Some(u) = uses.get_mut(p) {
                *u += 1;
            }
        }
        let mut slots: Vec<Option<TypedColumn>> = phys.into_iter().map(Some).collect();
        let mut logical: Vec<TypedColumn> = Vec::with_capacity(self.view.len());
        for &p in &self.view {
            let col = match uses.get_mut(p).zip(slots.get_mut(p)) {
                Some((u, slot)) => {
                    *u -= 1;
                    if *u == 0 {
                        slot.take()
                    } else {
                        slot.clone()
                    }
                }
                None => None,
            };
            let Some(col) = col else {
                return Err(RelError::Internal(format!(
                    "chunk view references physical column {p} out of {}",
                    uses.len()
                )));
            };
            logical.push(col);
        }
        let ground = ColumnBatch::from_columns(logical, anns)?;
        GroundBatch::from_parts(ground, self.fringe).into_relation_selected(
            self.schema,
            Value::Const,
            self.sel.as_deref(),
        )
    }

    /// The current schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replaces the schema wholesale (a rename; arity must match).
    pub fn with_schema(mut self, schema: Schema) -> Result<Self> {
        if schema.arity() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                got: schema.arity(),
            });
        }
        self.schema = schema;
        Ok(self)
    }

    /// The number of currently selected ground rows.
    pub fn ground_len(&self) -> usize {
        match &self.sel {
            None => self.ground.len(),
            Some(s) => s.len(),
        }
    }

    /// The symbolic fringe rows.
    pub fn fringe(&self) -> &[(Tuple<Value<A>>, A)] {
        &self.fringe
    }

    /// True iff the chunk carries symbolic rows — the condition under
    /// which cross-row kernels (project, join) must fall back to the
    /// token-path operators.
    pub fn has_fringe(&self) -> bool {
        !self.fringe.is_empty()
    }

    /// The selected ground-row indices, ascending.
    fn selected(&self) -> Vec<u32> {
        match &self.sel {
            None => (0..self.ground.len() as u32).collect(),
            Some(s) => s.clone(),
        }
    }

    /// The physical column backing logical position `i`. A logical
    /// position outside the view (a planner bug) is an error, not a
    /// panic — these kernels sit on the serving path.
    fn col(&self, i: usize) -> Result<&TypedColumn> {
        let p = self.view.get(i).copied().ok_or_else(|| {
            RelError::Internal(format!(
                "logical column {i} out of range for a {}-column chunk",
                self.view.len()
            ))
        })?;
        self.ground.col(p).ok_or_else(|| {
            RelError::Internal(format!(
                "chunk view maps logical column {i} to missing physical column {p}"
            ))
        })
    }

    /// The value at logical column `i`, selected row `r`, re-materialized
    /// (an `Arc` bump for dictionary strings).
    fn at(&self, i: usize, r: u32) -> Result<Const> {
        self.col(i)?.get(r as usize).ok_or_else(|| {
            RelError::Internal(format!("ground row {r} out of range in chunk column {i}"))
        })
    }

    /// Errors unless the chunk is fringe-free. The cross-row kernels
    /// (projection, join, AVG division) are only defined over ground
    /// rows — symbolic values need the token-weighted operators of
    /// [`crate::ops`] — so misuse must fail loudly, not corrupt results.
    fn require_all_ground(&self, kernel: &str) -> Result<()> {
        if self.fringe.is_empty() {
            Ok(())
        } else {
            Err(RelError::Unsupported(format!(
                "{kernel} over a chunk with {} symbolic row(s); route symbolic \
                 relations through the token-path operators in aggprov_core::ops",
                self.fringe.len()
            )))
        }
    }

    /// The vectorized filter kernel: narrows the selection vector over the
    /// ground columns (between constants the comparison token is `0`/`1`,
    /// so a row is kept verbatim or dropped — no semiring work), and runs
    /// the §4.3 token path over the fringe rows (annotation × token).
    /// `>`/`≥` callers pass swapped operands with `Pred(Lt)`/`Pred(Le)`.
    ///
    /// Typed columns compared against a literal take the monomorphic
    /// branchless kernels of `ops::typed` (sharded across
    /// `opts`' workers when large); boxed columns keep the `Const` row
    /// loop. Matches [`crate::ops::select_with_token`] row for row,
    /// including the type errors ordering comparisons raise across value
    /// types.
    pub fn filter(
        &mut self,
        left: &BatchOperand,
        cmp: BatchCmp,
        right: &BatchOperand,
        opts: &ExecOptions,
    ) -> Result<()> {
        let kept: Vec<u32> = match (left, right) {
            // The common column-vs-literal shapes (either orientation —
            // `>`/`≥` arrive with the literal on the left after operand
            // swapping): the literal is bound/encoded once per kernel
            // invocation, never touched per row.
            (BatchOperand::Col(i), BatchOperand::Lit(c)) => {
                self.filter_col_lit(*i, cmp, c, false, opts)?
            }
            (BatchOperand::Lit(c), BatchOperand::Col(i)) => {
                self.filter_col_lit(*i, cmp, c, true, opts)?
            }
            (BatchOperand::Col(li), BatchOperand::Col(ri)) => {
                let mut kept = Vec::new();
                for r in self.selected() {
                    if const_cmp(&self.at(*li, r)?, cmp, &self.at(*ri, r)?)? {
                        kept.push(r);
                    }
                }
                kept
            }
            (BatchOperand::Lit(lc), BatchOperand::Lit(rc)) => {
                // Row-independent: decide once. An empty selection never
                // reaches the comparison (so it cannot raise), exactly as
                // the row loop behaves.
                let sel = self.selected();
                if sel.is_empty() || const_cmp(lc, cmp, rc)? {
                    sel
                } else {
                    Vec::new()
                }
            }
        };
        self.sel = Some(kept);
        // Fringe rows: genuine §4.3 tokens. The constant operand (literal
        // or bound `$n` parameter) is lifted to a `Value` once, outside
        // the row loop — not cloned per row per comparison.
        if !self.fringe.is_empty() {
            let lift = |op: &BatchOperand| -> Option<Value<A>> {
                match op {
                    BatchOperand::Col(_) => None,
                    BatchOperand::Lit(c) => Some(Value::Const(c.clone())),
                }
            };
            let (lconst, rconst) = (lift(left), lift(right));
            let mut kept_fringe = Vec::with_capacity(self.fringe.len());
            for (t, k) in self.fringe.drain(..) {
                let lv: &Value<A> = match (left, &lconst) {
                    (BatchOperand::Col(i), _) => t.get(*i),
                    (_, Some(v)) => v,
                    (BatchOperand::Lit(_), None) => {
                        return Err(RelError::Internal(
                            "literal operand not lifted before the fringe loop".into(),
                        ))
                    }
                };
                let rv: &Value<A> = match (right, &rconst) {
                    (BatchOperand::Col(i), _) => t.get(*i),
                    (_, Some(v)) => v,
                    (BatchOperand::Lit(_), None) => {
                        return Err(RelError::Internal(
                            "literal operand not lifted before the fringe loop".into(),
                        ))
                    }
                };
                let tok = match cmp {
                    BatchCmp::Eq => A::value_eq(lv, rv)?,
                    BatchCmp::Pred(p) => A::value_cmp(p, lv, rv)?,
                };
                if tok.is_zero() {
                    continue;
                }
                let ann = if tok.is_one() { k } else { k.times(&tok) };
                kept_fringe.push((t, ann));
            }
            self.fringe = kept_fringe;
        }
        Ok(())
    }

    /// One column-vs-literal filter pass over the ground rows: typed
    /// columns compile the literal once and run the branchless kernels;
    /// boxed columns run the `Const` comparison loop (the literal still
    /// bound once — it is borrowed, never cloned, per row).
    fn filter_col_lit(
        &self,
        i: usize,
        cmp: BatchCmp,
        lit: &Const,
        lit_on_left: bool,
        opts: &ExecOptions,
    ) -> Result<Vec<u32>> {
        let col = self.col(i)?;
        if let Some(test) = typed::compile_lit_test(col, cmp, lit, lit_on_left) {
            return typed::run_filter(col, self.sel.as_deref(), &test, opts);
        }
        let TypedColumn::Boxed(vals) = col else {
            return Err(RelError::Internal(
                "typed column declined literal-test compilation".into(),
            ));
        };
        let mut kept = Vec::new();
        for r in self.selected() {
            // lint:allow(index, reason = "selected() rows are < ground.len() by construction")
            let v = &vals[r as usize];
            let keep = if lit_on_left {
                const_cmp(lit, cmp, v)?
            } else {
                const_cmp(v, cmp, lit)?
            };
            if keep {
                kept.push(r);
            }
        }
        Ok(kept)
    }

    /// The projection kernel: remaps the view to the requested columns
    /// (indices may repeat — duplicate select items view one physical
    /// column twice). No values move, no selection is lost; duplicate
    /// *rows* stay unmerged until the next materialization, which merges
    /// them additively — for ground data exactly the §4.3 projection.
    /// Requires an empty fringe — symbolic projection sums token-weighted
    /// contributions across rows and must go through
    /// [`crate::ops::project_opts`].
    pub fn project(self, columns: &[usize], schema: Schema) -> Result<Chunk<A>> {
        self.require_all_ground("batch projection")?;
        if schema.arity() != columns.len() {
            return Err(RelError::ArityMismatch {
                expected: columns.len(),
                got: schema.arity(),
            });
        }
        let view = columns
            .iter()
            .map(|&c| {
                self.view.get(c).copied().ok_or_else(|| {
                    RelError::Internal(format!(
                        "projection column {c} out of range for a {}-column chunk",
                        self.view.len()
                    ))
                })
            })
            .collect::<Result<_>>()?;
        Ok(Chunk {
            schema,
            ground: self.ground,
            view,
            sel: self.sel,
            fringe: self.fringe,
            boxed: self.boxed,
        })
    }

    /// The unit-column kernel: appends the constant-1 column COUNT/AVG
    /// aggregate over (`ι(1)` per row). Per-row on both partitions, so
    /// the fringe stays in the chunk. The appended column is an unboxed
    /// `i64` run — unless the chunk is in forced-boxed baseline mode.
    pub fn add_unit_column(mut self, schema: Schema) -> Result<Chunk<A>> {
        if schema.arity() != self.schema.arity() + 1 {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity() + 1,
                got: schema.arity(),
            });
        }
        let n = self.ground.len();
        let ones = if self.boxed {
            TypedColumn::Boxed(vec![Const::int(1); n])
        } else {
            TypedColumn::Num(vec![1i64; n])
        };
        self.ground.push_typed_column(ones)?;
        self.view.push(self.ground.arity() - 1);
        for (t, _) in &mut self.fringe {
            let mut row = t.values().to_vec();
            row.push(Value::int(1));
            *t = Tuple::new(row);
        }
        self.schema = schema;
        Ok(self)
    }

    /// The AVG-division kernel: appends one `sum / cnt` column per
    /// `(sum, cnt)` logical-position pair. Both inputs are ground numbers
    /// here by construction (a symbolic SUM or COUNT puts the row on the
    /// fringe, and the engine falls back to its row-at-a-time AVG path,
    /// which raises the paper-footnote-6 error). A zero count drops the
    /// row when `ungrouped` (SQL's NULL AVG over empty input; the engine
    /// has no NULLs) and errors otherwise — grouped AVG never sees an
    /// empty group.
    pub fn avg_divide(
        mut self,
        pairs: &[(usize, usize)],
        ungrouped: bool,
        schema: Schema,
    ) -> Result<Chunk<A>> {
        self.require_all_ground("batch AVG division")?;
        if schema.arity() != self.schema.arity() + pairs.len() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity() + pairs.len(),
                got: schema.arity(),
            });
        }
        let nrows = self.ground.len();
        let mut kept: Vec<u32> = Vec::new();
        let mut avg_cols: Vec<Vec<Const>> = vec![Vec::new(); pairs.len()];
        'rows: for r in self.selected() {
            let mut avgs: Vec<Const> = Vec::with_capacity(pairs.len());
            for (si, ci) in pairs {
                let sum = self.at(*si, r)?.as_num();
                let cnt = self.at(*ci, r)?.as_num();
                let avg = match (sum, cnt) {
                    (Some(s), Some(c)) => match s.checked_div(&c) {
                        Some(avg) => avg,
                        None if ungrouped => continue 'rows,
                        None => {
                            return Err(RelError::Unsupported("AVG over an empty group".into()))
                        }
                    },
                    _ => {
                        return Err(RelError::Unsupported(
                            "AVG over symbolic provenance does not resolve; select SUM and \
                             COUNT separately (paper footnote 6)"
                                .into(),
                        ))
                    }
                };
                avgs.push(Const::Num(avg));
            }
            kept.push(r);
            for (col, v) in avg_cols.iter_mut().zip(avgs) {
                col.push(v);
            }
        }
        // The new columns are dense over the kept rows: scatter them back
        // to full length so they align with the existing physical columns
        // (rows outside the selection hold a placeholder).
        for col in avg_cols {
            let mut full = vec![Const::int(0); nrows];
            for (&r, v) in kept.iter().zip(col) {
                // lint:allow(index, reason = "kept rows come from selected() and are < nrows")
                full[r as usize] = v;
            }
            let full = if self.boxed {
                TypedColumn::Boxed(full)
            } else {
                TypedColumn::from_consts(full)
            };
            self.ground.push_typed_column(full)?;
            self.view.push(self.ground.arity() - 1);
        }
        self.sel = Some(kept);
        self.schema = schema;
        Ok(self)
    }
}

/// Decides one batched comparison between constants, with exactly the
/// semantics of [`AggAnnotation::value_cmp`] on `Const`/`Const` pairs:
/// `=` is structural equality, `≠` is total across types, and ordering
/// across types is a type error.
pub(crate) fn const_cmp(lv: &Const, cmp: BatchCmp, rv: &Const) -> Result<bool> {
    match cmp {
        BatchCmp::Eq => Ok(lv == rv),
        BatchCmp::Pred(p) => {
            let same_type = std::mem::discriminant(lv) == std::mem::discriminant(rv);
            if !same_type && p != CmpPred::Ne {
                return Err(RelError::TypeError(format!(
                    "cannot order {} against {}",
                    lv.type_name(),
                    rv.type_name()
                )));
            }
            Ok(p.decide(lv, rv))
        }
    }
}

/// A join-key column in probe-ready form: typed columns borrow their
/// unboxed storage; everything else re-materializes once per kernel.
fn key_consts(col: &TypedColumn) -> Cow<'_, [Const]> {
    match col {
        TypedColumn::Boxed(v) => Cow::Borrowed(v.as_slice()),
        other => Cow::Owned(other.to_consts()),
    }
}

/// The batched hash equi-join kernel: build a hash index over the right
/// chunk's join-key columns, probe with the left, and emit a dense output
/// chunk whose columns are the left's followed by the right's, annotated
/// with the semiring product. Both chunks must be fringe-free (a symbolic
/// join key needs the token-weighted nested loop of
/// [`crate::ops::join_on_opts`]); between constants the §4.3 key tokens
/// are exactly structural equality, so this is the classical join. An
/// empty `on` degenerates to the cartesian product.
///
/// Single-column keys dispatch on the typed variants: two unboxed `i64`
/// columns build an integer-hashed index, two dictionary-encoded columns
/// probe through a dictionary translation table (see
/// `ops::typed`), with the probe loop sharded across `opts`'
/// workers; mixed or boxed keys fall back to the `Const` index below.
/// Output columns gather monomorphically per variant either way.
pub fn hash_join<A: AggAnnotation>(
    left: Chunk<A>,
    right: Chunk<A>,
    on: &[(usize, usize)],
    schema: Schema,
    opts: &ExecOptions,
) -> Result<Chunk<A>> {
    left.require_all_ground("batch hash join")?;
    right.require_all_ground("batch hash join")?;
    if schema.arity() != left.schema.arity() + right.schema.arity() {
        return Err(RelError::ArityMismatch {
            expected: left.schema.arity() + right.schema.arity(),
            got: schema.arity(),
        });
    }
    let lsel = left.selected();
    let rsel = right.selected();
    // Build (right), probe (left) — the same sides as the row-at-a-time
    // hash join — collecting matching row pairs first, then gathering the
    // output column by column (better locality than row-wise assembly).
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    if on.is_empty() {
        for &lr in &lsel {
            for &rr in &rsel {
                pairs.push((lr, rr));
            }
        }
    } else if let [(li, ri)] = on {
        match (left.col(*li)?, right.col(*ri)?) {
            (TypedColumn::Num(l), TypedColumn::Num(r)) => {
                pairs = typed::join_pairs_num(l, r, &lsel, &rsel, opts)?;
            }
            (TypedColumn::Str(l), TypedColumn::Str(r)) => {
                pairs = typed::join_pairs_str(l, r, &lsel, &rsel, opts)?;
            }
            (lcol, rcol) => {
                // Mixed variants (including the forced-boxed baseline):
                // structural `Const` equality over owned-or-borrowed key
                // columns. Cross-variant keys simply never match typed
                // storage of the other type, which is exactly structural
                // equality's answer.
                let (lkeys, rkeys) = (key_consts(lcol), key_consts(rcol));
                let mut index: HashMap<&Const, Vec<u32>> = HashMap::new();
                for &rr in &rsel {
                    // lint:allow(index, reason = "selected() rows are < ground.len() by construction")
                    index.entry(&rkeys[rr as usize]).or_default().push(rr);
                }
                for &lr in &lsel {
                    // lint:allow(index, reason = "selected() rows are < ground.len() by construction")
                    if let Some(matches) = index.get(&lkeys[lr as usize]) {
                        for &rr in matches {
                            pairs.push((lr, rr));
                        }
                    }
                }
            }
        }
    } else {
        // Multi-column keys: resolve the key columns once, outside the
        // row loops, and index by borrowed key vectors.
        let rcols: Vec<Cow<'_, [Const]>> = on
            .iter()
            .map(|(_, j)| right.col(*j).map(key_consts))
            .collect::<Result<_>>()?;
        let lcols: Vec<Cow<'_, [Const]>> = on
            .iter()
            .map(|(i, _)| left.col(*i).map(key_consts))
            .collect::<Result<_>>()?;
        let mut index: HashMap<Vec<&Const>, Vec<u32>> = HashMap::new();
        for &rr in &rsel {
            // lint:allow(index, reason = "selected() rows are < ground.len() by construction")
            let key: Vec<&Const> = rcols.iter().map(|c| &c[rr as usize]).collect();
            index.entry(key).or_default().push(rr);
        }
        for &lr in &lsel {
            // lint:allow(index, reason = "selected() rows are < ground.len() by construction")
            let key: Vec<&Const> = lcols.iter().map(|c| &c[lr as usize]).collect();
            if let Some(matches) = index.get(&key) {
                for &rr in matches {
                    pairs.push((lr, rr));
                }
            }
        }
    }
    let anns: Vec<A> = pairs
        .iter()
        // lint:allow(index, reason = "pair rows come from selected() and are < ground.len()")
        .map(|&(lr, rr)| left.ground.anns()[lr as usize].times(&right.ground.anns()[rr as usize]))
        .collect();
    // Gather the output columns monomorphically per variant: an i64 run
    // copies machine words, a dictionary column copies codes and shares
    // its dictionary, boxed values clone.
    let lrows: Vec<u32> = pairs.iter().map(|&(lr, _)| lr).collect();
    let rrows: Vec<u32> = pairs.iter().map(|&(_, rr)| rr).collect();
    let gather_oob =
        || RelError::Internal("join output gather referenced a row out of range".into());
    let mut cols: Vec<TypedColumn> = Vec::with_capacity(schema.arity());
    for i in 0..left.schema.arity() {
        cols.push(left.col(i)?.gather(&lrows).ok_or_else(gather_oob)?);
    }
    for j in 0..right.schema.arity() {
        cols.push(right.col(j)?.gather(&rrows).ok_or_else(gather_oob)?);
    }
    let ground = ColumnBatch::from_columns(cols, anns)?;
    Ok(Chunk {
        schema,
        view: (0..ground.arity()).collect(),
        ground,
        sel: None,
        fringe: Vec::new(),
        boxed: left.boxed || right.boxed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::km::Km;
    use crate::ops;
    use aggprov_algebra::monoid::MonoidKind;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_algebra::semiring::CommutativeSemiring;
    use aggprov_algebra::tensor::Tensor;
    use aggprov_krel::relation::Relation;

    type P = Km<NatPoly>;

    fn tok(name: &str) -> P {
        Km::embed(NatPoly::token(name))
    }

    fn sch(names: &[&str]) -> Schema {
        Schema::new(names.iter().copied()).unwrap()
    }

    fn serial() -> ExecOptions {
        ExecOptions::serial()
    }

    fn sym(v: i64) -> Value<P> {
        Value::Agg(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok("x"), Const::int(v))]),
        )
    }

    fn mixed() -> MKRel<P> {
        Relation::from_rows(
            sch(&["a", "b"]),
            [
                (vec![Value::int(1), Value::int(10)], tok("p1")),
                (vec![Value::int(2), Value::int(20)], tok("p2")),
                (vec![Value::int(2), sym(20)], tok("p3")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn chunk_round_trips() {
        let rel = mixed();
        let c = Chunk::from_relation(&rel);
        assert_eq!(c.ground_len(), 2);
        assert_eq!(c.fringe().len(), 1);
        assert_eq!(c.into_relation().unwrap(), rel);
    }

    #[test]
    fn filter_matches_select_on_ground_and_fringe() {
        let rel = mixed();
        for layout in [ColumnLayout::typed(), ColumnLayout::boxed()] {
            let mut c = Chunk::from_relation_with(&rel, &layout);
            c.filter(
                &BatchOperand::Col(0),
                BatchCmp::Eq,
                &BatchOperand::Lit(Const::int(2)),
                &serial(),
            )
            .unwrap();
            let got = c.into_relation().unwrap();
            let want = ops::select_eq(&rel, "a", &Value::int(2)).unwrap();
            assert_eq!(got, want);

            // An order comparison over the symbolic column produces a
            // token on the fringe row and plain 0/1 on the ground rows.
            let mut c = Chunk::from_relation_with(&rel, &layout);
            c.filter(
                &BatchOperand::Col(1),
                BatchCmp::Pred(CmpPred::Lt),
                &BatchOperand::Lit(Const::int(15)),
                &serial(),
            )
            .unwrap();
            let got = c.into_relation().unwrap();
            let want = ops::select_cmp(&rel, "b", CmpPred::Lt, &Value::int(15)).unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn ordering_across_types_is_a_type_error() {
        let rel: MKRel<P> =
            Relation::from_rows(sch(&["a"]), [(vec![Value::str("s")], tok("p1"))]).unwrap();
        for layout in [ColumnLayout::typed(), ColumnLayout::boxed()] {
            let mut c = Chunk::from_relation_with(&rel, &layout);
            let err = c
                .filter(
                    &BatchOperand::Col(0),
                    BatchCmp::Pred(CmpPred::Lt),
                    &BatchOperand::Lit(Const::int(1)),
                    &serial(),
                )
                .unwrap_err();
            assert!(err.to_string().contains("cannot order"), "{err}");
            // ≠ across types is simply true, as on the token path.
            let mut c = Chunk::from_relation_with(&rel, &layout);
            c.filter(
                &BatchOperand::Col(0),
                BatchCmp::Pred(CmpPred::Ne),
                &BatchOperand::Lit(Const::int(1)),
                &serial(),
            )
            .unwrap();
            assert_eq!(c.ground_len(), 1);
        }
    }

    #[test]
    fn literal_only_predicates_decide_once() {
        let rel = mixed();
        let mut c = Chunk::from_relation(&rel);
        c.filter(
            &BatchOperand::Lit(Const::int(1)),
            BatchCmp::Pred(CmpPred::Lt),
            &BatchOperand::Lit(Const::int(2)),
            &serial(),
        )
        .unwrap();
        assert_eq!(c.ground_len(), 2, "true literal predicate keeps all rows");
        let mut c = Chunk::from_relation(&rel);
        c.filter(
            &BatchOperand::Lit(Const::int(2)),
            BatchCmp::Eq,
            &BatchOperand::Lit(Const::int(1)),
            &serial(),
        )
        .unwrap();
        assert_eq!(c.ground_len(), 0, "false literal predicate drops all rows");
    }

    #[test]
    fn project_gathers_and_defers_the_merge() {
        let rel: MKRel<P> = Relation::from_rows(
            sch(&["a", "b"]),
            [
                (vec![Value::int(1), Value::int(10)], tok("p1")),
                (vec![Value::int(1), Value::int(20)], tok("p2")),
            ],
        )
        .unwrap();
        let c = Chunk::from_relation(&rel);
        let p = c.project(&[0], sch(&["a"])).unwrap();
        assert_eq!(p.ground_len(), 2, "merge deferred to materialization");
        let got = p.into_relation().unwrap();
        let want = ops::project(&rel, &["a"]).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn hash_join_matches_join_on() {
        let r: MKRel<P> = Relation::from_rows(
            sch(&["a", "b"]),
            [
                (vec![Value::int(1), Value::int(10)], tok("p1")),
                (vec![Value::int(2), Value::int(20)], tok("p2")),
            ],
        )
        .unwrap();
        let s: MKRel<P> = Relation::from_rows(
            sch(&["c", "d"]),
            [
                (vec![Value::int(1), Value::int(100)], tok("q1")),
                (vec![Value::int(1), Value::int(200)], tok("q2")),
            ],
        )
        .unwrap();
        let schema = sch(&["a", "b", "c", "d"]);
        let want = ops::join_on(&r, &s, &[("a", "c")]).unwrap();
        for layout in [ColumnLayout::typed(), ColumnLayout::boxed()] {
            let j = hash_join(
                Chunk::from_relation_with(&r, &layout),
                Chunk::from_relation_with(&s, &layout),
                &[(0, 0)],
                schema.clone(),
                &serial(),
            )
            .unwrap()
            .into_relation()
            .unwrap();
            assert_eq!(j, want);
            // Empty `on` is the cartesian product.
            let prod = hash_join(
                Chunk::from_relation_with(&r, &layout),
                Chunk::from_relation_with(&s, &layout),
                &[],
                schema.clone(),
                &serial(),
            )
            .unwrap()
            .into_relation()
            .unwrap();
            assert_eq!(prod, ops::product(&r, &s).unwrap());
        }
    }

    #[test]
    fn hash_join_dictionary_keys_match_boxed() {
        let r: MKRel<P> = Relation::from_rows(
            sch(&["k", "v"]),
            [
                (vec![Value::str("x"), Value::int(1)], tok("p1")),
                (vec![Value::str("y"), Value::int(2)], tok("p2")),
                (vec![Value::str("z"), Value::int(3)], tok("p3")),
            ],
        )
        .unwrap();
        let s: MKRel<P> = Relation::from_rows(
            sch(&["k2", "w"]),
            [
                (vec![Value::str("y"), Value::int(10)], tok("q1")),
                (vec![Value::str("x"), Value::int(20)], tok("q2")),
                (vec![Value::str("w"), Value::int(30)], tok("q3")),
            ],
        )
        .unwrap();
        let schema = sch(&["k", "v", "k2", "w"]);
        let typed = hash_join(
            Chunk::from_relation(&r),
            Chunk::from_relation(&s),
            &[(0, 0)],
            schema.clone(),
            &serial(),
        )
        .unwrap()
        .into_relation()
        .unwrap();
        let boxed = hash_join(
            Chunk::from_relation_with(&r, &ColumnLayout::boxed()),
            Chunk::from_relation_with(&s, &ColumnLayout::boxed()),
            &[(0, 0)],
            schema,
            &serial(),
        )
        .unwrap()
        .into_relation()
        .unwrap();
        assert_eq!(typed, boxed);
        assert_eq!(typed, ops::join_on(&r, &s, &[("k", "k2")]).unwrap());
    }

    #[test]
    fn unit_column_and_avg_divide() {
        let rel: MKRel<P> = Relation::from_rows(
            sch(&["s", "n"]),
            [(vec![Value::int(70), Value::int(3)], P::one())],
        )
        .unwrap();
        let c = Chunk::from_relation(&rel)
            .add_unit_column(sch(&["s", "n", "one"]))
            .unwrap();
        assert_eq!(c.ground_len(), 1);
        let c = c
            .avg_divide(&[(0, 1)], false, sch(&["s", "n", "one", "avg"]))
            .unwrap();
        let out = c.into_relation().unwrap();
        let (t, _) = out.iter().next().unwrap();
        assert_eq!(
            t.get(3),
            &Value::Const(Const::Num(aggprov_algebra::num::Num::ratio(70, 3)))
        );
    }

    #[test]
    fn ungrouped_avg_over_zero_count_drops_the_row() {
        let rel: MKRel<P> = Relation::from_rows(
            sch(&["s", "n"]),
            [(vec![Value::int(0), Value::int(0)], P::one())],
        )
        .unwrap();
        let ok = Chunk::from_relation(&rel)
            .clone()
            .avg_divide(&[(0, 1)], true, sch(&["s", "n", "avg"]))
            .unwrap();
        assert!(ok.into_relation().unwrap().is_empty());
        let err = Chunk::from_relation(&rel)
            .avg_divide(&[(0, 1)], false, sch(&["s", "n", "avg"]))
            .unwrap_err();
        assert!(err.to_string().contains("empty group"), "{err}");
    }

    #[test]
    fn cross_row_kernels_reject_symbolic_fringes() {
        // Projection, AVG division and hash join are only defined over
        // ground rows; handing them a chunk with a fringe must be a loud
        // error (not a debug-only assert), or symbolic provenance would
        // silently drop in release builds.
        let rel = mixed();
        let chunk = Chunk::from_relation(&rel);
        assert!(chunk.has_fringe());
        let err = chunk.clone().project(&[0], sch(&["a"])).unwrap_err();
        assert!(err.to_string().contains("symbolic"), "{err}");
        assert!(chunk
            .clone()
            .avg_divide(&[(0, 1)], false, sch(&["a", "b", "m"]))
            .is_err());
        let ground: MKRel<P> =
            Relation::from_rows(sch(&["c"]), [(vec![Value::int(2)], tok("q"))]).unwrap();
        assert!(hash_join(
            Chunk::from_relation(&ground),
            chunk,
            &[(0, 0)],
            sch(&["c", "a", "b"]),
            &serial(),
        )
        .is_err());
    }

    #[test]
    fn empty_chunk_kernels_are_total() {
        let rel: MKRel<P> = Relation::empty(sch(&["a", "b"]));
        let mut c = Chunk::from_relation(&rel);
        c.filter(
            &BatchOperand::Col(0),
            BatchCmp::Eq,
            &BatchOperand::Lit(Const::int(1)),
            &serial(),
        )
        .unwrap();
        let c = c.project(&[1, 0], sch(&["b", "a"])).unwrap();
        let c = c.add_unit_column(sch(&["b", "a", "one"])).unwrap();
        assert!(c.into_relation().unwrap().is_empty());
    }
}
