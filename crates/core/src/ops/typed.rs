//! Monomorphic kernels over typed columns: branchless selection and
//! unboxed join probing for the batch pipeline.
//!
//! The boxed kernels in [`crate::ops::batch`] compare one `Const` enum per
//! row — a discriminant branch plus (for numbers) a rational
//! numerator/denominator pair per cell. This module is the typed fast
//! path: the filter literal is **compiled once per kernel invocation**
//! into a [`ColTest`] (an `i64` threshold, a dictionary code, a
//! per-dictionary-entry decision table, or a keep-all/keep-none/type-error
//! verdict), and the row loop then runs over the unboxed `Vec<i64>` run or
//! the `Vec<u32>` code column with **branchless selection compaction** —
//! `out[k] = row; k += keep as usize` — so rustc autovectorizes it. Join
//! probing gets the same treatment: `i64` keys hash through a
//! multiply-based hasher into an integer index, and dictionary-encoded
//! keys probe through a left-dictionary → right-code translation table
//! plus dense per-code buckets, with no string comparison on the probe
//! loop.
//!
//! Large kernels additionally **shard across the [`crate::par::fan_out`]
//! workers**: the row range (or selection vector) splits into contiguous
//! ascending sub-ranges, each worker compacts its own range, and the
//! per-shard results concatenate in shard order. Because the ranges are
//! contiguous and ascending, the concatenation is bit-identical to the
//! serial loop — including *which* row raises a type error first, since
//! the first error in shard order belongs to the globally first offending
//! row.
//!
//! Everything here is semantics-preserving by construction against the
//! boxed row loop ([`crate::ops::batch::const_cmp`] semantics: `=` is
//! structural, `≠` is total across types, ordering across types is a type
//! error raised only if a row actually reaches the comparison) and is
//! property-tested bit-identical to [`crate::specops`] through the batch
//! pipeline at threads 1 and 4. These kernels only ever see the ground
//! partition: [`crate::ops::batch::Chunk`] keeps its symbolic fringe on
//! the token path, and every entry point here is reached behind the
//! chunk's fringe gates.

use crate::km::CmpPred;
use crate::ops::batch::BatchCmp;
use crate::par::{self, ExecOptions};
use aggprov_algebra::domain::Const;
use aggprov_algebra::num::Num;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::typed::{StrColumn, TypedColumn};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Minimum number of selected rows before a filter or probe kernel shards
/// across workers; below this the spawn cost dwarfs the scan.
pub(crate) const SHARD_MIN_ROWS: usize = 8192;

/// A column-vs-literal comparison compiled against one typed column: the
/// literal is bound (and, for strings, dictionary-encoded) exactly once
/// per kernel invocation, and the row loop reduces to a machine compare.
#[derive(Clone, Debug)]
pub(crate) enum ColTest {
    /// Every row passes (e.g. `≠` against a value of another type).
    KeepAll,
    /// No row passes (e.g. `=` against a value of another type).
    KeepNone,
    /// `v == c` over an unboxed `i64` run.
    NumEq(i64),
    /// `v != c`.
    NumNe(i64),
    /// `v < c`.
    NumLt(i64),
    /// `v <= c` (also carries `col < q` / `col ≤ q` for a non-integer
    /// rational `q`, via `floor(q)`).
    NumLe(i64),
    /// `v > c` (also `q < col` / `q ≤ col` for non-integer `q`).
    NumGt(i64),
    /// `v >= c`.
    NumGe(i64),
    /// `code == c` over a dictionary-encoded column.
    CodeEq(u32),
    /// `code != c`.
    CodeNe(u32),
    /// String ordering: one pre-decided boolean per dictionary entry,
    /// indexed by code.
    CodeTable(Vec<bool>),
    /// Ordering across types: an error, but only if a row reaches it —
    /// the row loop never raises on an empty selection.
    TypeErr {
        /// `type_name` of the left operand, as the row loop would report.
        left: &'static str,
        /// `type_name` of the right operand.
        right: &'static str,
    },
}

/// Compiles a column-vs-literal test against a typed column. `None` for
/// the boxed variant — the caller keeps its `Const` row loop. The
/// orientation flag preserves both the comparison direction and the
/// operand order in error messages (`>`/`≥` arrive literal-on-left).
pub(crate) fn compile_lit_test(
    col: &TypedColumn,
    cmp: BatchCmp,
    lit: &Const,
    lit_on_left: bool,
) -> Option<ColTest> {
    match col {
        TypedColumn::Num(_) => Some(compile_num_test(cmp, lit, lit_on_left)),
        TypedColumn::Str(sc) => Some(compile_str_test(sc, cmp, lit, lit_on_left)),
        TypedColumn::Boxed(_) => None,
    }
}

/// The cross-type verdict shared by both typed variants: structural `=`
/// never holds, `≠` always holds, ordering is a (lazy) type error.
fn cross_type(cmp: BatchCmp, col_ty: &'static str, lit: &Const, lit_on_left: bool) -> ColTest {
    match cmp {
        BatchCmp::Eq => ColTest::KeepNone,
        BatchCmp::Pred(CmpPred::Ne) => ColTest::KeepAll,
        BatchCmp::Pred(_) => {
            let (left, right) = if lit_on_left {
                (lit.type_name(), col_ty)
            } else {
                (col_ty, lit.type_name())
            };
            ColTest::TypeErr { left, right }
        }
    }
}

/// Compiles a test for an unboxed `i64` column. Non-integer rational
/// literals fold into integer thresholds (`col < q ⟺ col ≤ ⌊q⌋` when `q`
/// is not an integer); `±∞` and other-type literals fold to
/// keep-all/keep-none/type-error verdicts.
fn compile_num_test(cmp: BatchCmp, lit: &Const, lit_on_left: bool) -> ColTest {
    let Const::Num(n) = lit else {
        return cross_type(cmp, "num", lit, lit_on_left);
    };
    match cmp {
        BatchCmp::Eq => match n.as_int() {
            Some(k) => ColTest::NumEq(k),
            // A non-integer rational or ±∞ structurally equals no `i64`.
            None => ColTest::KeepNone,
        },
        BatchCmp::Pred(CmpPred::Ne) => match n.as_int() {
            Some(k) => ColTest::NumNe(k),
            None => ColTest::KeepAll,
        },
        BatchCmp::Pred(p) => {
            let strict = p == CmpPred::Lt;
            match n {
                Num::PosInf => {
                    // v < +∞ / v ≤ +∞ always; +∞ < v / +∞ ≤ v never.
                    if lit_on_left {
                        ColTest::KeepNone
                    } else {
                        ColTest::KeepAll
                    }
                }
                Num::NegInf => {
                    if lit_on_left {
                        ColTest::KeepAll
                    } else {
                        ColTest::KeepNone
                    }
                }
                Num::Rat(q) if q.is_integer() => {
                    let k = q.numer();
                    match (lit_on_left, strict) {
                        (false, true) => ColTest::NumLt(k),
                        (false, false) => ColTest::NumLe(k),
                        (true, true) => ColTest::NumGt(k),
                        (true, false) => ColTest::NumGe(k),
                    }
                }
                Num::Rat(q) => {
                    // q is not an integer, so strict and non-strict agree:
                    // v < q ⟺ v ≤ q ⟺ v ≤ ⌊q⌋ and q < v ⟺ q ≤ v ⟺ v > ⌊q⌋.
                    // ⌊q⌋ fits i64 because |⌊q⌋| ≤ |numer|; the division
                    // runs in i128 since the denominator is a full u64.
                    let floor = (i128::from(q.numer())).div_euclid(i128::from(q.denom())) as i64;
                    if lit_on_left {
                        ColTest::NumGt(floor)
                    } else {
                        ColTest::NumLe(floor)
                    }
                }
            }
        }
    }
}

/// Compiles a test for a dictionary-encoded column: one dictionary lookup
/// for `=`/`≠`, one pre-decided boolean per dictionary entry for ordering.
fn compile_str_test(sc: &StrColumn, cmp: BatchCmp, lit: &Const, lit_on_left: bool) -> ColTest {
    let Const::Str(s) = lit else {
        return cross_type(cmp, "text", lit, lit_on_left);
    };
    match cmp {
        BatchCmp::Eq => match sc.code_of(s) {
            Some(c) => ColTest::CodeEq(c),
            None => ColTest::KeepNone,
        },
        BatchCmp::Pred(CmpPred::Ne) => match sc.code_of(s) {
            Some(c) => ColTest::CodeNe(c),
            None => ColTest::KeepAll,
        },
        BatchCmp::Pred(p) => {
            let strict = p == CmpPred::Lt;
            let lit: &str = s;
            let decide = |v: &str| -> bool {
                match (lit_on_left, strict) {
                    (false, true) => v < lit,
                    (false, false) => v <= lit,
                    (true, true) => lit < v,
                    (true, false) => lit <= v,
                }
            };
            ColTest::CodeTable(sc.dict().iter().map(|d| decide(d)).collect())
        }
    }
}

/// Runs a compiled test over a typed column, narrowing the selection
/// vector (`None` = all rows). The output is ascending; with more than
/// [`SHARD_MIN_ROWS`] selected rows and a non-serial `opts` the scan
/// shards across workers in contiguous ranges (bit-identical to serial,
/// including which row errors first).
pub(crate) fn run_filter(
    col: &TypedColumn,
    sel: Option<&[u32]>,
    test: &ColTest,
    opts: &ExecOptions,
) -> Result<Vec<u32>> {
    let selected = sel.map_or_else(|| col.len(), <[u32]>::len);
    match test {
        ColTest::KeepAll => Ok(match sel {
            Some(s) => s.to_vec(),
            None => (0..col.len() as u32).collect(),
        }),
        ColTest::KeepNone => Ok(Vec::new()),
        ColTest::TypeErr { left, right } => {
            if selected == 0 {
                Ok(Vec::new())
            } else {
                Err(RelError::TypeError(format!(
                    "cannot order {left} against {right}"
                )))
            }
        }
        ColTest::NumEq(c)
        | ColTest::NumNe(c)
        | ColTest::NumLt(c)
        | ColTest::NumLe(c)
        | ColTest::NumGt(c)
        | ColTest::NumGe(c) => {
            let TypedColumn::Num(vals) = col else {
                return Err(variant_mismatch("num", col));
            };
            let c = *c;
            // One monomorphic instantiation per comparison: the closure is
            // resolved before the row loop, so each arm compiles to a
            // straight-line compare-and-compact loop.
            match test {
                ColTest::NumEq(_) => filter_rows(vals, sel, opts, move |v| v == c),
                ColTest::NumNe(_) => filter_rows(vals, sel, opts, move |v| v != c),
                ColTest::NumLt(_) => filter_rows(vals, sel, opts, move |v| v < c),
                ColTest::NumLe(_) => filter_rows(vals, sel, opts, move |v| v <= c),
                ColTest::NumGt(_) => filter_rows(vals, sel, opts, move |v| v > c),
                _ => filter_rows(vals, sel, opts, move |v| v >= c),
            }
        }
        ColTest::CodeEq(c) | ColTest::CodeNe(c) => {
            let TypedColumn::Str(sc) = col else {
                return Err(variant_mismatch("str", col));
            };
            let c = *c;
            match test {
                ColTest::CodeEq(_) => filter_rows(sc.codes(), sel, opts, move |v| v == c),
                _ => filter_rows(sc.codes(), sel, opts, move |v| v != c),
            }
        }
        ColTest::CodeTable(tbl) => {
            let TypedColumn::Str(sc) = col else {
                return Err(variant_mismatch("str", col));
            };
            if tbl.len() < sc.dict().len() {
                return Err(RelError::Internal(
                    "string decision table shorter than the dictionary".into(),
                ));
            }
            let tbl: &[bool] = tbl;
            // lint:allow(index, reason = "codes index the dictionary by construction and tbl covers it (checked above)")
            filter_rows(sc.codes(), sel, opts, move |v| tbl[v as usize])
        }
    }
}

fn variant_mismatch(expected: &str, col: &TypedColumn) -> RelError {
    RelError::Internal(format!(
        "typed test compiled for a {expected} column applied to a {} column",
        col.variant()
    ))
}

/// Cuts `n` work items into contiguous ascending ranges, one per planned
/// worker; a single range means "stay serial".
fn ranges(n: usize, opts: &ExecOptions) -> Vec<(usize, usize)> {
    let shards = if n >= SHARD_MIN_ROWS {
        par::plan_shards(opts, n)
    } else {
        1
    };
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// The sharded compaction driver: dense mode scans `vals` directly,
/// sparse mode gathers through the selection vector. Each shard compacts
/// a contiguous ascending range, so concatenating in shard order
/// reproduces the serial output exactly.
fn filter_rows<T: Copy + Send + Sync>(
    vals: &[T],
    sel: Option<&[u32]>,
    opts: &ExecOptions,
    keep: impl Fn(T) -> bool + Copy + Sync,
) -> Result<Vec<u32>> {
    let parts = match sel {
        None => par::fan_out(ranges(vals.len(), opts), |(start, end)| {
            let chunk = vals.get(start..end).ok_or_else(shard_oob)?;
            Ok(compact_dense(chunk, start, keep))
        })?,
        Some(s) => par::fan_out(ranges(s.len(), opts), |(start, end)| {
            let rows = s.get(start..end).ok_or_else(shard_oob)?;
            compact_sparse(vals, rows, keep)
        })?,
    };
    Ok(concat(parts))
}

fn shard_oob() -> RelError {
    RelError::Internal("shard range exceeds the input length".into())
}

fn concat<T>(mut parts: Vec<Vec<T>>) -> Vec<T> {
    if parts.len() == 1 {
        return parts.swap_remove(0);
    }
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Branchless compaction over a dense row range: the write index advances
/// by the predicate's boolean, no taken branch in the loop body.
#[inline]
fn compact_dense<T: Copy>(vals: &[T], start: usize, keep: impl Fn(T) -> bool) -> Vec<u32> {
    let mut out = vec![0u32; vals.len()];
    let mut k = 0usize;
    for (i, &v) in vals.iter().enumerate() {
        // lint:allow(index, reason = "branchless compaction: k <= i < out.len() by construction")
        out[k] = (start + i) as u32;
        k += usize::from(keep(v));
    }
    out.truncate(k);
    out
}

/// Branchless compaction through an existing selection vector.
#[inline]
fn compact_sparse<T: Copy>(vals: &[T], sel: &[u32], keep: impl Fn(T) -> bool) -> Result<Vec<u32>> {
    let mut out = vec![0u32; sel.len()];
    let mut k = 0usize;
    for &r in sel {
        let Some(&v) = vals.get(r as usize) else {
            return Err(RelError::Internal(format!(
                "selection row {r} out of range for a {}-row column",
                vals.len()
            )));
        };
        // lint:allow(index, reason = "branchless compaction: k never exceeds the rows visited")
        out[k] = r;
        k += usize::from(keep(v));
    }
    out.truncate(k);
    Ok(out)
}

/// A multiply-based hasher for integer join keys (fxhash-style): one
/// xor-multiply per `u64`, far cheaper than the default SipHash and
/// irrelevant to determinism — output order is probe order × bucket
/// insertion order, never hash-iteration order.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct IntHasher(u64);

const HASH_K: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for IntHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(HASH_K);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0.rotate_left(5) ^ x).wrapping_mul(HASH_K);
    }

    fn write_i64(&mut self, x: i64) {
        self.write_u64(x as u64);
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type IntMap<K, V> = HashMap<K, V, BuildHasherDefault<IntHasher>>;

/// Collects matching `(left_row, right_row)` pairs for a single-column
/// equi-join over two unboxed `i64` key columns: build an integer-hashed
/// index over the right selection, probe with the left. Probe order (and
/// bucket insertion order) reproduce the boxed kernel's pair order
/// exactly; large probes shard across workers in contiguous ranges.
pub(crate) fn join_pairs_num(
    lcol: &[i64],
    rcol: &[i64],
    lsel: &[u32],
    rsel: &[u32],
    opts: &ExecOptions,
) -> Result<Vec<(u32, u32)>> {
    let mut index: IntMap<i64, Vec<u32>> = IntMap::default();
    for &rr in rsel {
        let Some(&k) = rcol.get(rr as usize) else {
            return Err(join_row_oob());
        };
        index.entry(k).or_default().push(rr);
    }
    let parts = par::fan_out(ranges(lsel.len(), opts), |(start, end)| {
        let rows = lsel.get(start..end).ok_or_else(shard_oob)?;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for &lr in rows {
            let Some(k) = lcol.get(lr as usize) else {
                return Err(join_row_oob());
            };
            if let Some(matches) = index.get(k) {
                for &rr in matches {
                    pairs.push((lr, rr));
                }
            }
        }
        Ok(pairs)
    })?;
    Ok(concat(parts))
}

/// Collects matching pairs for a single-column equi-join over two
/// dictionary-encoded key columns: dense buckets indexed by right code,
/// plus a left-dictionary → bucket translation table built once per
/// *dictionary entry* (not per row), so the probe loop is pure integer
/// indexing — no string hashing or comparison per row. Left codes whose
/// string is absent from the right dictionary translate to a shared empty
/// sentinel bucket.
pub(crate) fn join_pairs_str(
    lcol: &StrColumn,
    rcol: &StrColumn,
    lsel: &[u32],
    rsel: &[u32],
    opts: &ExecOptions,
) -> Result<Vec<(u32, u32)>> {
    // buckets[right_code] = right rows with that code; the extra last
    // bucket stays empty and absorbs unmatched left codes.
    let sentinel = rcol.dict().len();
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); sentinel + 1];
    let rcodes = rcol.codes();
    for &rr in rsel {
        let Some(&code) = rcodes.get(rr as usize) else {
            return Err(join_row_oob());
        };
        let Some(bucket) = buckets.get_mut(code as usize) else {
            return Err(join_row_oob());
        };
        bucket.push(rr);
    }
    let xlat: Vec<usize> = lcol
        .dict()
        .iter()
        .map(|s| rcol.code_of(s).map_or(sentinel, |c| c as usize))
        .collect();
    let lcodes = lcol.codes();
    let parts = par::fan_out(ranges(lsel.len(), opts), |(start, end)| {
        let rows = lsel.get(start..end).ok_or_else(shard_oob)?;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for &lr in rows {
            let matched = lcodes
                .get(lr as usize)
                .and_then(|&c| xlat.get(c as usize))
                .and_then(|&b| buckets.get(b))
                .ok_or_else(join_row_oob)?;
            for &rr in matched {
                pairs.push((lr, rr));
            }
        }
        Ok(pairs)
    })?;
    Ok(concat(parts))
}

fn join_row_oob() -> RelError {
    RelError::Internal("join key row out of range for its column".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_krel::typed::ColumnLayout;

    fn num_col(vals: &[i64]) -> TypedColumn {
        TypedColumn::Num(vals.to_vec())
    }

    fn str_col(vals: &[&str]) -> TypedColumn {
        TypedColumn::from_consts(vals.iter().map(|s| Const::str(s)).collect())
    }

    fn run(col: &TypedColumn, sel: Option<&[u32]>, cmp: BatchCmp, lit: &Const) -> Result<Vec<u32>> {
        let test = compile_lit_test(col, cmp, lit, false).expect("typed column");
        run_filter(col, sel, &test, &ExecOptions::serial())
    }

    #[test]
    fn num_literal_compiles_once_and_filters() {
        let col = num_col(&[5, 1, 9, 5, -2]);
        let got = run(&col, None, BatchCmp::Eq, &Const::int(5)).unwrap();
        assert_eq!(got, vec![0, 3]);
        let got = run(&col, None, BatchCmp::Pred(CmpPred::Lt), &Const::int(5)).unwrap();
        assert_eq!(got, vec![1, 4]);
        // Sparse: an existing selection narrows further.
        let sel = [0u32, 2, 4];
        let got = run(
            &col,
            Some(&sel),
            BatchCmp::Pred(CmpPred::Ne),
            &Const::int(9),
        )
        .unwrap();
        assert_eq!(got, vec![0, 4]);
    }

    #[test]
    fn rational_and_infinite_literals_fold_to_thresholds() {
        let col = num_col(&[1, 2, 3]);
        // v < 5/2 ⟺ v ≤ 2; v ≤ 5/2 likewise.
        let q = Const::Num(Num::ratio(5, 2));
        assert_eq!(
            run(&col, None, BatchCmp::Pred(CmpPred::Lt), &q).unwrap(),
            vec![0, 1]
        );
        assert_eq!(
            run(&col, None, BatchCmp::Pred(CmpPred::Le), &q).unwrap(),
            vec![0, 1]
        );
        // Literal on the left: 5/2 < v ⟺ v ≥ 3.
        let test = compile_lit_test(&col, BatchCmp::Pred(CmpPred::Lt), &q, true).unwrap();
        assert_eq!(
            run_filter(&col, None, &test, &ExecOptions::serial()).unwrap(),
            vec![2]
        );
        // Negative floors: v < -5/2 ⟺ v ≤ -3.
        let nq = Const::Num(Num::ratio(-5, 2));
        assert_eq!(
            run(
                &num_col(&[-3, -2, 0]),
                None,
                BatchCmp::Pred(CmpPred::Lt),
                &nq
            )
            .unwrap(),
            vec![0]
        );
        // No i64 equals a non-integer rational; every one differs from it.
        assert_eq!(
            run(&col, None, BatchCmp::Eq, &q).unwrap(),
            Vec::<u32>::new()
        );
        assert_eq!(
            run(&col, None, BatchCmp::Pred(CmpPred::Ne), &q).unwrap(),
            vec![0, 1, 2]
        );
        // ±∞.
        let inf = Const::Num(Num::PosInf);
        assert_eq!(
            run(&col, None, BatchCmp::Pred(CmpPred::Lt), &inf).unwrap(),
            vec![0, 1, 2]
        );
        let test = compile_lit_test(&col, BatchCmp::Pred(CmpPred::Le), &inf, true).unwrap();
        assert_eq!(
            run_filter(&col, None, &test, &ExecOptions::serial()).unwrap(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn string_literal_encodes_once_and_orders_via_table() {
        let col = str_col(&["b", "a", "c", "b"]);
        assert_eq!(
            run(&col, None, BatchCmp::Eq, &Const::str("b")).unwrap(),
            vec![0, 3]
        );
        // A literal absent from the dictionary: = keeps none, ≠ keeps all.
        assert_eq!(
            run(&col, None, BatchCmp::Eq, &Const::str("zz")).unwrap(),
            Vec::<u32>::new()
        );
        assert_eq!(
            run(&col, None, BatchCmp::Pred(CmpPred::Ne), &Const::str("zz")).unwrap(),
            vec![0, 1, 2, 3]
        );
        // Ordering decides per dictionary entry.
        assert_eq!(
            run(&col, None, BatchCmp::Pred(CmpPred::Le), &Const::str("b")).unwrap(),
            vec![0, 1, 3]
        );
    }

    #[test]
    fn cross_type_errors_only_when_rows_are_selected() {
        let col = num_col(&[1, 2]);
        let lit = Const::str("s");
        let err = run(&col, None, BatchCmp::Pred(CmpPred::Lt), &lit).unwrap_err();
        assert_eq!(err.to_string(), "type error: cannot order num against text");
        // Orientation is preserved in the message.
        let test = compile_lit_test(&col, BatchCmp::Pred(CmpPred::Lt), &lit, true).unwrap();
        let err = run_filter(&col, None, &test, &ExecOptions::serial()).unwrap_err();
        assert_eq!(err.to_string(), "type error: cannot order text against num");
        // An empty selection never reaches the comparison.
        let got = run(&col, Some(&[]), BatchCmp::Pred(CmpPred::Lt), &lit).unwrap();
        assert!(got.is_empty());
        // = / ≠ stay total across types.
        assert_eq!(
            run(&col, None, BatchCmp::Eq, &lit).unwrap(),
            Vec::<u32>::new()
        );
        assert_eq!(
            run(&col, None, BatchCmp::Pred(CmpPred::Ne), &lit).unwrap(),
            vec![0, 1]
        );
    }

    #[test]
    fn sharded_filter_matches_serial() {
        let vals: Vec<i64> = (0..20_000).map(|i| i * 7 % 101).collect();
        let col = num_col(&vals);
        let lit = Const::int(50);
        let serial = run(&col, None, BatchCmp::Pred(CmpPred::Lt), &lit).unwrap();
        let test = compile_lit_test(&col, BatchCmp::Pred(CmpPred::Lt), &lit, false).unwrap();
        let sharded = run_filter(&col, None, &test, &ExecOptions::with_threads(4)).unwrap();
        assert_eq!(serial, sharded);
        // Sparse sharding too.
        let sel: Vec<u32> = (0..20_000).step_by(2).collect();
        let serial = run(&col, Some(&sel), BatchCmp::Pred(CmpPred::Le), &lit).unwrap();
        let test = compile_lit_test(&col, BatchCmp::Pred(CmpPred::Le), &lit, false).unwrap();
        let sharded = run_filter(&col, Some(&sel), &test, &ExecOptions::with_threads(4)).unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn join_pairs_probe_in_left_order() {
        let l = [1i64, 2, 3, 2];
        let r = [2i64, 9, 2];
        let lsel: Vec<u32> = (0..l.len() as u32).collect();
        let rsel: Vec<u32> = (0..r.len() as u32).collect();
        let pairs = join_pairs_num(&l, &r, &lsel, &rsel, &ExecOptions::serial()).unwrap();
        assert_eq!(pairs, vec![(1, 0), (1, 2), (3, 0), (3, 2)]);
        // Sharded probing concatenates to the same order.
        let big_l: Vec<i64> = (0..20_000).map(|i| i % 16).collect();
        let big_lsel: Vec<u32> = (0..big_l.len() as u32).collect();
        let small_r: Vec<i64> = (0..16).collect();
        let small_rsel: Vec<u32> = (0..16).collect();
        let a = join_pairs_num(
            &big_l,
            &small_r,
            &big_lsel,
            &small_rsel,
            &ExecOptions::serial(),
        )
        .unwrap();
        let b = join_pairs_num(
            &big_l,
            &small_r,
            &big_lsel,
            &small_rsel,
            &ExecOptions::with_threads(4),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn str_join_translates_dictionaries() {
        let mk = |vals: &[&str]| {
            let TypedColumn::Str(sc) = str_col(vals) else {
                panic!("expected dictionary column");
            };
            sc
        };
        let l = mk(&["x", "y", "z", "y"]);
        let r = mk(&["y", "w", "x"]);
        let lsel: Vec<u32> = (0..4).collect();
        let rsel: Vec<u32> = (0..3).collect();
        let pairs = join_pairs_str(&l, &r, &lsel, &rsel, &ExecOptions::serial()).unwrap();
        // "x" matches right row 2, "y" right row 0, "z" nothing.
        assert_eq!(pairs, vec![(0, 2), (1, 0), (3, 0)]);
    }

    #[test]
    fn boxed_columns_decline_compilation() {
        let col = TypedColumn::for_layout(&ColumnLayout::boxed(), 0, 0);
        assert!(compile_lit_test(&col, BatchCmp::Eq, &Const::int(1), false).is_none());
    }
}
