//! Partition-parallel execution: thread-count options, shard planning and
//! the scoped fan-out the physical operators run on.
//!
//! The ground/symbolic split of [`crate::ops`] makes the expensive part of
//! every operator embarrassingly parallel: ground tuples interact only
//! through structural key equality, so hash-partitioning them by operator
//! key (join key, group key, output tuple, projected tuple) yields shards
//! whose outputs are disjoint. Each shard runs the ordinary single-threaded
//! algorithm on a scoped worker thread ([`std::thread::scope`] — no
//! dependencies, no `'static` bounds, shards borrow the input relations
//! directly); the per-shard result maps are then folded **in shard order**
//! into one output map, which keeps merge order — and therefore every
//! produced relation — deterministic. The symbolic fringe stays on the
//! sequential token path of `ops`, so results are bit-identical to the
//! [`crate::specops`] oracle at every thread count (property-tested in
//! `tests/par_determinism_proptests.rs`).
//!
//! Thread count comes from [`ExecOptions`]: explicitly
//! ([`ExecOptions::with_threads`]), from the `AGGPROV_THREADS` environment
//! variable ([`ExecOptions::from_env`], the engine's default), or the
//! machine's available parallelism. An unparseable `AGGPROV_THREADS` is a
//! loud [`RelError::InvalidEnv`] naming the variable and the bad value —
//! never a silent fallback to serial execution.

use aggprov_krel::error::{RelError, Result};
pub use aggprov_krel::relation::shard_index;

/// The environment variable overriding the executor thread count.
pub const THREADS_ENV: &str = "AGGPROV_THREADS";

/// The environment variable toggling typed columnar kernels:
/// `AGGPROV_TYPED=0` forces every chunk onto boxed `Vec<Const>` columns
/// (the baseline the typed paths are benchmarked and property-tested
/// against); `AGGPROV_TYPED=1` (the default) lets columns specialize to
/// unboxed `i64` runs and dictionary-encoded strings.
pub const TYPED_ENV: &str = "AGGPROV_TYPED";

/// Execution options for the physical operators: how many worker threads
/// an operator may shard its ground partition across.
///
/// `threads = 1` is the exact single-threaded code path of PR 2 (no shard
/// planning, no spawns); any higher count fans ground shards out over
/// scoped threads. Results are identical at every thread count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecOptions {
    threads: usize,
    typed: bool,
}

impl ExecOptions {
    /// Single-threaded execution (the PR 2 behaviour; also what the plain
    /// `ops::join_on`-style wrappers use).
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            typed: true,
        }
    }

    /// Execution with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads: threads.max(1),
            typed: true,
        }
    }

    /// One worker per hardware thread the process can use.
    pub fn available() -> Self {
        Self::with_threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The engine default: `AGGPROV_THREADS` when set, otherwise the
    /// machine's available parallelism; typed columnar kernels unless
    /// `AGGPROV_TYPED=0`.
    ///
    /// A set-but-unusable value (not a positive integer thread count, not
    /// a `0`/`1` typed toggle) is a loud [`RelError::InvalidEnv`] —
    /// `AGGPROV_THREADS=fast` must fail the query, not silently
    /// serialize it.
    pub fn from_env() -> Result<Self> {
        let base = match std::env::var(THREADS_ENV) {
            Err(std::env::VarError::NotPresent) => Self::available(),
            Err(std::env::VarError::NotUnicode(raw)) => {
                return Err(RelError::InvalidEnv {
                    var: THREADS_ENV,
                    value: raw.to_string_lossy().into_owned(),
                    expected: "a positive integer thread count",
                })
            }
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Self::with_threads(n),
                _ => {
                    return Err(RelError::InvalidEnv {
                        var: THREADS_ENV,
                        value: s,
                        expected: "a positive integer thread count",
                    })
                }
            },
        };
        match std::env::var(TYPED_ENV) {
            Err(std::env::VarError::NotPresent) => Ok(base),
            Err(std::env::VarError::NotUnicode(raw)) => Err(RelError::InvalidEnv {
                var: TYPED_ENV,
                value: raw.to_string_lossy().into_owned(),
                expected: "0 (boxed columns) or 1 (typed columns)",
            }),
            Ok(s) => match s.trim() {
                "0" => Ok(base.with_typed(false)),
                "1" => Ok(base.with_typed(true)),
                _ => Err(RelError::InvalidEnv {
                    var: TYPED_ENV,
                    value: s,
                    expected: "0 (boxed columns) or 1 (typed columns)",
                }),
            },
        }
    }

    /// The worker-thread count (at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True iff execution is single-threaded.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// True iff chunks may use typed column storage (unboxed `i64` runs,
    /// dictionary-encoded strings); false forces the boxed baseline.
    pub fn typed(&self) -> bool {
        self.typed
    }

    /// Returns these options with the typed-column toggle set.
    pub fn with_typed(mut self, typed: bool) -> Self {
        self.typed = typed;
        self
    }
}

impl Default for ExecOptions {
    /// Defaults to the machine's available parallelism (the documented
    /// engine default; use [`ExecOptions::serial`] for the single-threaded
    /// path).
    fn default() -> Self {
        Self::available()
    }
}

/// How many shards to cut `items` work items into: one per worker thread,
/// never more than there are items, never zero. `1` means "run the serial
/// path" — callers skip shard planning entirely.
pub(crate) fn plan_shards(opts: &ExecOptions, items: usize) -> usize {
    opts.threads().min(items).max(1)
}

/// Splits borrowed entries into `n` shards, preserving input order within
/// each shard (the property the deterministic merges rely on). The caller
/// supplies the shard index directly — typically `shard_index(key, n)`,
/// computed exactly once per entry; entries with equal keys must map to
/// the same index.
pub(crate) fn split_by<T: Copy>(
    entries: &[T],
    n: usize,
    shard_of: impl Fn(&T) -> usize,
) -> Vec<Vec<T>> {
    let mut shards: Vec<Vec<T>> = (0..n.max(1)).map(|_| Vec::new()).collect();
    for e in entries {
        // lint:allow(index, reason = "shard_of returns hash % n, always < shards.len()")
        shards[shard_of(e)].push(*e);
    }
    shards
}

/// Runs one scoped worker per shard and returns the per-shard results **in
/// shard order** (the deterministic merge order). A single shard runs
/// inline — no thread is ever spawned for serial execution. The first
/// shard error (in shard order) wins; worker panics propagate.
pub(crate) fn fan_out<T: Send, R: Send>(
    shards: Vec<T>,
    f: impl Fn(T) -> Result<R> + Sync,
) -> Result<Vec<R>> {
    if shards.len() <= 1 {
        return shards.into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| scope.spawn(move || f(shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_clamp_to_one() {
        assert_eq!(ExecOptions::with_threads(0).threads(), 1);
        assert!(ExecOptions::with_threads(0).is_serial());
        assert_eq!(ExecOptions::with_threads(8).threads(), 8);
        assert!(ExecOptions::serial().is_serial());
        assert!(ExecOptions::available().threads() >= 1);
    }

    #[test]
    fn typed_defaults_on_and_toggles() {
        assert!(ExecOptions::serial().typed());
        assert!(ExecOptions::with_threads(4).typed());
        assert!(ExecOptions::default().typed());
        let boxed = ExecOptions::serial().with_typed(false);
        assert!(!boxed.typed());
        assert!(boxed.with_typed(true).typed());
    }

    #[test]
    fn shard_planning_never_exceeds_items() {
        let opts = ExecOptions::with_threads(8);
        assert_eq!(plan_shards(&opts, 0), 1);
        assert_eq!(plan_shards(&opts, 3), 3);
        assert_eq!(plan_shards(&opts, 100), 8);
        assert_eq!(plan_shards(&ExecOptions::serial(), 100), 1);
    }

    #[test]
    fn split_preserves_order_and_key_locality() {
        let entries: Vec<u32> = (0..100).collect();
        let shards = split_by(&entries, 4, |e| shard_index(&(*e % 10), 4));
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 100);
        for shard in &shards {
            assert!(shard.windows(2).all(|w| w[0] < w[1]), "order preserved");
        }
        // Equal keys co-locate: 3 and 13 share `key = 3`.
        let home = shards.iter().position(|s| s.contains(&3)).unwrap();
        assert!(shards[home].contains(&13));
    }

    #[test]
    fn fan_out_returns_shard_order_and_first_error() {
        let doubled = fan_out(vec![1u32, 2, 3, 4], |x| Ok(x * 2)).unwrap();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let err = fan_out(vec![1u32, 2, 3], |x| {
            if x >= 2 {
                Err(RelError::Unsupported(format!("shard {x}")))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "unsupported: shard 2", "shard order wins");
    }

    // `from_env` is covered by `tests/exec_options_env.rs`, an integration
    // test isolated in its own binary: the variable is process-global and
    // mutating it here would race any future unit test that reads it.
}
