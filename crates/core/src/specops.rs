//! The literal §4.3 specification operators — the retained reference
//! (naive) execution path.
//!
//! Each operator here computes output annotations exactly as the paper
//! writes them: a sum over *all* support tuples weighted by per-attribute
//! equality tokens, with no ground/symbolic partitioning, no hash indexes
//! and no structural fast paths. That makes the implementations quadratic
//! in general — deliberately so. This module is the oracle that the
//! hash-partitioned physical operators in [`crate::ops`] are
//! property-tested against (`hash_vs_spec` proptests) and benchmarked
//! against (`hash_vs_naive`); both paths must produce bit-identical
//! relations.

use crate::annotation::AggAnnotation;
use crate::ops::{
    accumulate_scaled, from_map, insert_distinct, sum_many, tuple_eq_token, AggSpec, MKRel,
};
use crate::value::Value;
use aggprov_algebra::tensor::Tensor;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Tuple;
use std::collections::BTreeMap;

/// Union by the literal §4.3 rule: every output tuple sums contributions
/// from *all* input tuples weighted by equality tokens.
pub fn union<A: AggAnnotation>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    if r1.schema() != r2.schema() {
        return Err(RelError::SchemaMismatch {
            left: r1.schema().to_string(),
            right: r2.schema().to_string(),
            op: "union",
        });
    }
    let all_positions: Vec<usize> = (0..r1.schema().arity()).collect();
    let mut out = BTreeMap::new();
    for (t, _) in r1.iter().chain(r2.iter()) {
        if out.contains_key(t) {
            continue;
        }
        let mut parts = Vec::new();
        for (t2, k2) in r1.iter().chain(r2.iter()) {
            let tok = tuple_eq_token(t2, t, &all_positions)?;
            if tok.is_zero() {
                continue;
            }
            let part = k2.times(&tok);
            if !part.is_zero() {
                parts.push(part);
            }
        }
        insert_distinct(&mut out, t.clone(), sum_many(parts));
    }
    Ok(from_map(r1.schema().clone(), out))
}

/// Projection `Π_{U'}` by the literal §4.3 rule: annotations sum over all
/// tuples weighted by tokens on the projected attributes.
pub fn project<A: AggAnnotation>(rel: &MKRel<A>, attrs: &[&str]) -> Result<MKRel<A>> {
    let positions = rel.schema().indices_of(attrs)?;
    let schema = rel.schema().project(attrs)?;
    let all: Vec<usize> = (0..positions.len()).collect();
    let mut out = BTreeMap::new();
    for (t, _) in rel.iter() {
        let proj = t.project(&positions);
        if out.contains_key(&proj) {
            continue;
        }
        let mut parts = Vec::new();
        for (t2, k2) in rel.iter() {
            let tok = tuple_eq_token(&t2.project(&positions), &proj, &all)?;
            if tok.is_zero() {
                continue;
            }
            let part = k2.times(&tok);
            if !part.is_zero() {
                parts.push(part);
            }
        }
        insert_distinct(&mut out, proj, sum_many(parts));
    }
    Ok(from_map(schema, out))
}

/// Value-based join on attribute pairs by the literal §4.3 rule: a full
/// nested loop, `R₁(t|U₁) · R₂(t|U₂) · Π [t(u₁ᵢ) = t(u₂ᵢ)]` per pair.
pub fn join_on<A: AggAnnotation>(
    r1: &MKRel<A>,
    r2: &MKRel<A>,
    on: &[(&str, &str)],
) -> Result<MKRel<A>> {
    if !r1.schema().shared_with(r2.schema()).is_empty() {
        return Err(RelError::SchemaMismatch {
            left: r1.schema().to_string(),
            right: r2.schema().to_string(),
            op: "join_on (schemas must be disjoint; rename first)",
        });
    }
    let left: Vec<usize> = on
        .iter()
        .map(|(a, _)| r1.schema().index_of(a))
        .collect::<Result<_>>()?;
    let right: Vec<usize> = on
        .iter()
        .map(|(_, b)| r2.schema().index_of(b))
        .collect::<Result<_>>()?;
    let schema = r1.schema().concat(r2.schema())?;
    let mut out = BTreeMap::new();
    for (t1, k1) in r1.iter() {
        for (t2, k2) in r2.iter() {
            let mut tok = A::one();
            for (i, j) in left.iter().zip(&right) {
                if tok.is_zero() {
                    break;
                }
                tok = tok.times(&A::value_eq(t1.get(*i), t2.get(*j))?);
            }
            if tok.is_zero() {
                continue;
            }
            insert_distinct(&mut out, t1.concat(t2.values()), k1.times(k2).times(&tok));
        }
    }
    Ok(from_map(schema, out))
}

/// Whole-relation aggregation by the literal §3.2 rule: one output tuple,
/// annotated `1`, value `Σ_{t' ∈ supp(R)} R(t') ∗ t'(u)` per spec.
pub fn agg_all<A: AggAnnotation>(rel: &MKRel<A>, specs: &[AggSpec<'_>]) -> Result<MKRel<A>> {
    // Already a single linear fold in the physical layer; the spec and the
    // physical path coincide.
    crate::ops::agg_all(rel, specs)
}

/// `GB_{U', specs}(R)` by the literal §4.3 rule: every distinct group key
/// is a candidate group and membership of *every* tuple is weighted by
/// equality tokens on the grouping attributes.
pub fn group_by<A: AggAnnotation>(
    rel: &MKRel<A>,
    group_attrs: &[&str],
    specs: &[AggSpec<'_>],
) -> Result<MKRel<A>> {
    let (gidx, sidx, schema) = crate::ops::group_by_layout(rel, group_attrs, specs)?;
    let all: Vec<usize> = (0..gidx.len()).collect();
    let mut out = BTreeMap::new();
    let mut seen: Vec<Tuple<Value<A>>> = Vec::new();
    for (t, _) in rel.iter() {
        let g = t.project(&gidx);
        if seen.contains(&g) {
            continue;
        }
        seen.push(g.clone());
        let mut anns: Vec<A> = Vec::new();
        let mut terms: Vec<Vec<(A, aggprov_algebra::domain::Const)>> =
            vec![Vec::new(); specs.len()];
        for (t2, k2) in rel.iter() {
            let tok = tuple_eq_token(&t2.project(&gidx), &g, &all)?;
            if tok.is_zero() {
                continue;
            }
            let coeff = k2.times(&tok);
            if coeff.is_zero() {
                continue;
            }
            for (si, spec) in specs.iter().enumerate() {
                let tv = t2.get(sidx[si]).to_tensor(spec.kind)?;
                accumulate_scaled(&mut terms[si], &tv, &coeff);
            }
            anns.push(coeff);
        }
        let total = sum_many(anns);
        let mut row: Vec<Value<A>> = g.values().to_vec();
        for (spec, ts) in specs.iter().zip(terms) {
            row.push(Value::agg_normalized(
                spec.kind,
                Tensor::from_terms(&spec.kind, ts),
            ));
        }
        insert_distinct(&mut out, Tuple::new(row), total.delta());
    }
    Ok(from_map(schema, out))
}
