//! The literal §4.3 specification operators — the retained reference
//! (naive) execution path.
//!
//! Each operator here computes output annotations exactly as the paper
//! writes them: a sum over *all* support tuples weighted by per-attribute
//! equality tokens, with no ground/symbolic partitioning, no hash indexes
//! and no structural fast paths. That makes the implementations quadratic
//! in general — deliberately so. This module is the oracle that the
//! hash-partitioned physical operators in [`crate::ops`] are
//! property-tested against (`hash_vs_spec` proptests) and benchmarked
//! against (`hash_vs_naive`); both paths must produce bit-identical
//! relations.

use crate::annotation::AggAnnotation;
use crate::km::CmpPred;
use crate::ops::{
    accumulate_specs, from_map, insert_distinct, sum_many, tuple_eq_token, AggSpec, MKRel,
};
use crate::value::Value;
use aggprov_algebra::domain::Const;
use aggprov_algebra::tensor::Tensor;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Tuple;
use aggprov_krel::schema::Schema;
use std::collections::BTreeMap;

/// The extended annotation lookup `R(t)` by the literal §4.3 rule:
/// `Σ_{t' ∈ supp(R)} R(t') · Π_u [t'(u) = t(u)]` — the token-weighted sum
/// over *all* support tuples, with no structural fast path for the
/// all-ground case.
pub fn annotation_at<A: AggAnnotation>(rel: &MKRel<A>, t: &Tuple<Value<A>>) -> Result<A> {
    let positions: Vec<usize> = (0..rel.schema().arity()).collect();
    let mut parts = Vec::new();
    for (t2, k2) in rel.iter() {
        let tok = tuple_eq_token(t2, t, &positions)?;
        let part = k2.times(&tok);
        if !part.is_zero() {
            parts.push(part);
        }
    }
    Ok(sum_many(parts))
}

/// Union by the literal §4.3 rule: every output tuple sums contributions
/// from *all* input tuples weighted by equality tokens.
pub fn union<A: AggAnnotation>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    if r1.schema() != r2.schema() {
        return Err(RelError::SchemaMismatch {
            left: r1.schema().to_string(),
            right: r2.schema().to_string(),
            op: "union",
        });
    }
    let all_positions: Vec<usize> = (0..r1.schema().arity()).collect();
    let mut out = BTreeMap::new();
    for (t, _) in r1.iter().chain(r2.iter()) {
        if out.contains_key(t) {
            continue;
        }
        let mut parts = Vec::new();
        for (t2, k2) in r1.iter().chain(r2.iter()) {
            let tok = tuple_eq_token(t2, t, &all_positions)?;
            if tok.is_zero() {
                continue;
            }
            let part = k2.times(&tok);
            if !part.is_zero() {
                parts.push(part);
            }
        }
        insert_distinct(&mut out, t.clone(), sum_many(parts));
    }
    from_map(r1.schema().clone(), out)
}

/// Projection `Π_{U'}` by the literal §4.3 rule: annotations sum over all
/// tuples weighted by tokens on the projected attributes.
pub fn project<A: AggAnnotation>(rel: &MKRel<A>, attrs: &[&str]) -> Result<MKRel<A>> {
    let positions = rel.schema().indices_of(attrs)?;
    let schema = rel.schema().project(attrs)?;
    let all: Vec<usize> = (0..positions.len()).collect();
    let mut out = BTreeMap::new();
    for (t, _) in rel.iter() {
        let proj = t.project(&positions);
        if out.contains_key(&proj) {
            continue;
        }
        let mut parts = Vec::new();
        for (t2, k2) in rel.iter() {
            let tok = tuple_eq_token(&t2.project(&positions), &proj, &all)?;
            if tok.is_zero() {
                continue;
            }
            let part = k2.times(&tok);
            if !part.is_zero() {
                parts.push(part);
            }
        }
        insert_distinct(&mut out, proj, sum_many(parts));
    }
    from_map(schema, out)
}

/// Value-based join on attribute pairs by the literal §4.3 rule: a full
/// nested loop, `R₁(t|U₁) · R₂(t|U₂) · Π [t(u₁ᵢ) = t(u₂ᵢ)]` per pair.
pub fn join_on<A: AggAnnotation>(
    r1: &MKRel<A>,
    r2: &MKRel<A>,
    on: &[(&str, &str)],
) -> Result<MKRel<A>> {
    if !r1.schema().shared_with(r2.schema()).is_empty() {
        return Err(RelError::SchemaMismatch {
            left: r1.schema().to_string(),
            right: r2.schema().to_string(),
            op: "join_on (schemas must be disjoint; rename first)",
        });
    }
    let left: Vec<usize> = on
        .iter()
        .map(|(a, _)| r1.schema().index_of(a))
        .collect::<Result<_>>()?;
    let right: Vec<usize> = on
        .iter()
        .map(|(_, b)| r2.schema().index_of(b))
        .collect::<Result<_>>()?;
    let schema = r1.schema().concat(r2.schema())?;
    let mut out = BTreeMap::new();
    for (t1, k1) in r1.iter() {
        for (t2, k2) in r2.iter() {
            let mut tok = A::one();
            for (i, j) in left.iter().zip(&right) {
                if tok.is_zero() {
                    break;
                }
                tok = tok.times(&A::value_eq(t1.get(*i), t2.get(*j))?);
            }
            if tok.is_zero() {
                continue;
            }
            insert_distinct(&mut out, t1.concat(t2.values()), k1.times(k2).times(&tok));
        }
    }
    from_map(schema, out)
}

/// Generic tokened selection by the literal §4.3 rule: every tuple's
/// annotation is multiplied by its token, with no `0`/`1` shortcuts.
pub fn select_with_token<A: AggAnnotation>(
    rel: &MKRel<A>,
    token: impl Fn(&Schema, &Tuple<Value<A>>) -> Result<A>,
) -> Result<MKRel<A>> {
    let mut out = BTreeMap::new();
    for (t, k) in rel.iter() {
        let tok = token(rel.schema(), t)?;
        insert_distinct(&mut out, t.clone(), k.times(&tok));
    }
    from_map(rel.schema().clone(), out)
}

/// Selection `σ_{u = v}` by the literal §4.3 rule:
/// `(σ R)(t) = R(t) · [t(u) = v]`.
pub fn select_eq<A: AggAnnotation>(
    rel: &MKRel<A>,
    attr: &str,
    value: &Value<A>,
) -> Result<MKRel<A>> {
    let idx = rel.schema().index_of(attr)?;
    select_with_token(rel, |_, t| A::value_eq(t.get(idx), value))
}

/// Selection `σ_{u1 = u2}` between two attributes by the literal §4.3
/// rule.
pub fn select_attrs_eq<A: AggAnnotation>(
    rel: &MKRel<A>,
    attr1: &str,
    attr2: &str,
) -> Result<MKRel<A>> {
    let i = rel.schema().index_of(attr1)?;
    let j = rel.schema().index_of(attr2)?;
    select_with_token(rel, |_, t| A::value_eq(t.get(i), t.get(j)))
}

/// Selection `σ_{u ⋈ v}` against a value with an order/inequality
/// predicate, by the literal comparison-token rule.
pub fn select_cmp<A: AggAnnotation>(
    rel: &MKRel<A>,
    attr: &str,
    pred: CmpPred,
    value: &Value<A>,
) -> Result<MKRel<A>> {
    let idx = rel.schema().index_of(attr)?;
    select_with_token(rel, |_, t| A::value_cmp(pred, t.get(idx), value))
}

/// Selection `σ_{u1 ⋈ u2}` between two attributes with an
/// order/inequality predicate, by the literal comparison-token rule.
pub fn select_attrs_cmp<A: AggAnnotation>(
    rel: &MKRel<A>,
    attr1: &str,
    pred: CmpPred,
    attr2: &str,
) -> Result<MKRel<A>> {
    let i = rel.schema().index_of(attr1)?;
    let j = rel.schema().index_of(attr2)?;
    select_with_token(rel, |_, t| A::value_cmp(pred, t.get(i), t.get(j)))
}

/// Classical selection `σ_P` over constant attributes: keep or drop per
/// tuple. Fails, like the physical operator, if the predicate must
/// inspect a symbolic aggregate.
pub fn select_where<A: AggAnnotation>(
    rel: &MKRel<A>,
    pred: impl Fn(&Schema, &Tuple<Value<A>>) -> Result<bool>,
) -> Result<MKRel<A>> {
    let mut out = BTreeMap::new();
    for (t, k) in rel.iter() {
        if pred(rel.schema(), t)? {
            insert_distinct(&mut out, t.clone(), k.clone());
        }
    }
    from_map(rel.schema().clone(), out)
}

/// Cartesian product — [`join_on`] with no comparison pairs (the token
/// product over an empty set is `1`).
pub fn product<A: AggAnnotation>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    join_on(r1, r2, &[])
}

/// Natural join on the shared attributes by the literal rule: a full
/// nested loop multiplying equality tokens on every shared column, the
/// right side's shared columns dropped from the output. Shares the
/// physical operator's domain: shared columns must be constant-valued
/// (rename and use [`join_on`] for symbolic join keys).
pub fn natural_join<A: AggAnnotation>(r1: &MKRel<A>, r2: &MKRel<A>) -> Result<MKRel<A>> {
    let shared = r1.schema().shared_with(r2.schema());
    let i1: Vec<usize> = shared
        .iter()
        .map(|a| r1.schema().index_of(a.name()))
        .collect::<Result<_>>()?;
    let i2: Vec<usize> = shared
        .iter()
        .map(|a| r2.schema().index_of(a.name()))
        .collect::<Result<_>>()?;
    for (rel, idx) in [(r1, &i1), (r2, &i2)] {
        for (t, _) in rel.iter() {
            if let Some((_, a)) = idx.iter().zip(&shared).find(|(i, _)| t.get(**i).is_agg()) {
                return Err(RelError::Unsupported(format!(
                    "natural join on symbolic aggregate column `{a}`; \
                     rename and use join_on"
                )));
            }
        }
    }
    let keep2: Vec<usize> = (0..r2.schema().arity())
        .filter(|j| !i2.contains(j))
        .collect();
    let mut names: Vec<&str> = r1.schema().attrs().iter().map(|a| a.name()).collect();
    names.extend(
        r2.schema()
            .attrs()
            .iter()
            .enumerate()
            .filter(|(j, _)| keep2.contains(j))
            .map(|(_, a)| a.name()),
    );
    let schema = Schema::new(names)?;
    let mut out = BTreeMap::new();
    for (t1, k1) in r1.iter() {
        for (t2, k2) in r2.iter() {
            let mut tok = A::one();
            for (i, j) in i1.iter().zip(&i2) {
                if tok.is_zero() {
                    break;
                }
                tok = tok.times(&A::value_eq(t1.get(*i), t2.get(*j))?);
            }
            if tok.is_zero() {
                continue;
            }
            let mut row: Vec<Value<A>> = t1.values().to_vec();
            row.extend(
                t2.values()
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| keep2.contains(j))
                    .map(|(_, v)| v.clone()),
            );
            insert_distinct(&mut out, Tuple::new(row), k1.times(k2).times(&tok));
        }
    }
    from_map(schema, out)
}

/// Single-spec whole-relation aggregation — [`agg_all`] with one spec
/// (§3.2 states a single linear rule, so spec and physical coincide).
pub fn agg<A: AggAnnotation>(rel: &MKRel<A>, spec: AggSpec<'_>) -> Result<MKRel<A>> {
    agg_all(rel, &[spec])
}

/// Whole-relation aggregation by the literal §3.2 rule: one output tuple,
/// annotated `1`, value `Σ_{t' ∈ supp(R)} R(t') ∗ t'(u)` per spec.
pub fn agg_all<A: AggAnnotation>(rel: &MKRel<A>, specs: &[AggSpec<'_>]) -> Result<MKRel<A>> {
    // Already a single linear fold in the physical layer; the spec and the
    // physical path coincide.
    crate::ops::agg_all(rel, specs)
}

/// `GB_{U', specs}(R)` by the literal §4.3 rule: every distinct group key
/// is a candidate group and membership of *every* tuple is weighted by
/// equality tokens on the grouping attributes.
pub fn group_by<A: AggAnnotation>(
    rel: &MKRel<A>,
    group_attrs: &[&str],
    specs: &[AggSpec<'_>],
) -> Result<MKRel<A>> {
    let (gidx, sidx, schema) = crate::ops::group_by_layout(rel, group_attrs, specs)?;
    let all: Vec<usize> = (0..gidx.len()).collect();
    let mut out = BTreeMap::new();
    let mut seen: Vec<Tuple<Value<A>>> = Vec::new();
    for (t, _) in rel.iter() {
        let g = t.project(&gidx);
        if seen.contains(&g) {
            continue;
        }
        seen.push(g.clone());
        let mut anns: Vec<A> = Vec::new();
        let mut terms: Vec<Vec<(A, aggprov_algebra::domain::Const)>> =
            vec![Vec::new(); specs.len()];
        for (t2, k2) in rel.iter() {
            let tok = tuple_eq_token(&t2.project(&gidx), &g, &all)?;
            if tok.is_zero() {
                continue;
            }
            let coeff = k2.times(&tok);
            if coeff.is_zero() {
                continue;
            }
            accumulate_specs(t2, specs, &sidx, &mut terms, &coeff)?;
            anns.push(coeff);
        }
        let total = sum_many(anns);
        let mut row: Vec<Value<A>> = g.values().to_vec();
        for (spec, ts) in specs.iter().zip(terms) {
            row.push(Value::agg_normalized(
                spec.kind,
                Tensor::from_terms(&spec.kind, ts),
            ));
        }
        insert_distinct(&mut out, Tuple::new(row), total.delta());
    }
    from_map(schema, out)
}

/// Incremental group-state fold by the literal one-tuple-at-a-time rule:
/// each delta tuple is folded individually, the touched state row found by
/// a linear scan — no per-group batching, no hash or map lookups. The
/// physical [`crate::ops::group_state_update`] must agree bit for bit
/// under any batch decomposition (accumulators stay in canonical normal
/// form, so summation order cannot show).
pub fn group_state_update<A: AggAnnotation>(
    state: &MKRel<A>,
    delta: &MKRel<A>,
    group_attrs: &[&str],
    specs: &[AggSpec<'_>],
) -> Result<MKRel<A>> {
    let (gidx, sidx, schema) = crate::ops::group_by_layout(delta, group_attrs, specs)?;
    if state.schema() != &schema {
        return Err(RelError::SchemaMismatch {
            left: state.schema().to_string(),
            right: schema.to_string(),
            op: "group_state_update",
        });
    }
    let key_positions: Vec<usize> = (0..group_attrs.len()).collect();
    let n_keys = group_attrs.len();
    let mut out = state.clone();
    for (t, k) in delta.iter() {
        let g = t.project(&gidx);
        if g.values().iter().any(Value::is_agg) {
            return Err(RelError::Unsupported(
                "group_state_update: symbolic group key in delta — incremental \
                 grouping is defined on ground keys only"
                    .to_string(),
            ));
        }
        let mut terms: Vec<Vec<(A, Const)>> = vec![Vec::new(); specs.len()];
        accumulate_specs(t, specs, &sidx, &mut terms, k)?;
        let old = out
            .iter()
            .find(|(t2, _)| t2.project(&key_positions) == g)
            .map(|(t2, _)| t2.clone());
        let mut row: Vec<Value<A>> = g.values().to_vec();
        let ann = match old {
            Some(old_t) => {
                let old_ann = out.remove(&old_t).unwrap_or_else(A::zero);
                for ((spec, cell), ts) in specs
                    .iter()
                    .zip(old_t.values().iter().skip(n_keys))
                    .zip(terms)
                {
                    let merged = cell
                        .to_tensor(spec.kind)?
                        .add(&Tensor::from_terms(&spec.kind, ts), &spec.kind);
                    row.push(Value::Agg(spec.kind, merged));
                }
                old_ann.plus(k)
            }
            None => {
                for (spec, ts) in specs.iter().zip(terms) {
                    row.push(Value::Agg(spec.kind, Tensor::from_terms(&spec.kind, ts)));
                }
                k.clone()
            }
        };
        out.add(Tuple::new(row), ann)?;
    }
    Ok(out)
}

/// Group-state rendering — already a literal per-row map in the physical
/// layer (δ on the annotation, re-normalization on every aggregate cell),
/// so spec and physical paths coincide, like [`agg_all`].
pub fn delta_collapse<A: AggAnnotation>(state: &MKRel<A>) -> Result<MKRel<A>> {
    crate::ops::delta_collapse(state)
}
