//! Values of `(M, K)`-relations (paper §3.2).
//!
//! The output domain of aggregate queries extends the constant domain `D`
//! with tensor values from `K ⊗ M`: an attribute either holds an ordinary
//! constant or an annotated aggregate expression `Σ kᵢ ⊗ mᵢ`. Plain
//! constants enter tensor positions through the embedding
//! `ι(m) = 1_K ⊗ m`.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::semiring::CommutativeSemiring;
use aggprov_algebra::tensor::Tensor;
use aggprov_krel::error::{RelError, Result};
use std::fmt;

/// A value in an `(M, K)`-relation: a constant from `D` or an annotated
/// aggregate expression from `K ⊗ M`. The annotation type `A` is the
/// relation's semiring (for nested aggregation, the extended semiring
/// `K^M`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value<A: Ord> {
    /// An ordinary constant.
    Const(Const),
    /// An aggregate value over the tagged monoid.
    Agg(MonoidKind, Tensor<A, Const>),
}

impl<A: CommutativeSemiring> Value<A> {
    /// An integer constant.
    pub fn int(n: i64) -> Self {
        Value::Const(Const::int(n))
    }

    /// A string constant.
    pub fn str(s: &str) -> Self {
        Value::Const(Const::str(s))
    }

    /// The constant, if this is one.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Value::Const(c) => Some(c),
            Value::Agg(..) => None,
        }
    }

    /// True iff the value is an aggregate expression.
    pub fn is_agg(&self) -> bool {
        matches!(self, Value::Agg(..))
    }

    /// Checks that a constant lies in the carrier of the monoid `kind`.
    pub fn carrier_check(kind: MonoidKind, c: &Const) -> Result<()> {
        let ok = match kind {
            MonoidKind::Or => matches!(c, Const::Bool(_)),
            _ => matches!(c, Const::Num(_)),
        };
        if ok {
            Ok(())
        } else {
            Err(RelError::TypeError(format!(
                "{kind} aggregation over {} value {c}",
                c.type_name()
            )))
        }
    }

    /// Views the value as a tensor of the given monoid kind: constants embed
    /// through `ι`, aggregate values must carry the same kind.
    pub fn to_tensor(&self, kind: MonoidKind) -> Result<Tensor<A, Const>> {
        match self {
            Value::Const(c) => {
                Self::carrier_check(kind, c)?;
                Ok(Tensor::iota(&kind, c.clone()))
            }
            Value::Agg(k, t) => {
                if *k == kind {
                    Ok(t.clone())
                } else {
                    Err(RelError::TypeError(format!(
                        "cannot use a {k} aggregate where a {kind} value is needed"
                    )))
                }
            }
        }
    }

    /// Builds an aggregate value, normalizing: a tensor that resolves to a
    /// unique monoid element (compatible pair, ground coefficients) becomes
    /// the plain constant — "stripping off ι" (paper §3.4).
    pub fn agg_normalized(kind: MonoidKind, t: Tensor<A, Const>) -> Self {
        match t.try_resolve(&kind) {
            Some(c) => Value::Const(c),
            None => Value::Agg(kind, t),
        }
    }

    /// Maps the tensor coefficients through a homomorphism (the value part
    /// of `h_Rel`, paper §3.2), renormalizing so that now-ground aggregates
    /// collapse to constants.
    pub fn map_hom<B: CommutativeSemiring>(&self, h: &mut impl FnMut(&A) -> B) -> Value<B> {
        match self {
            Value::Const(c) => Value::Const(c.clone()),
            Value::Agg(kind, t) => Value::agg_normalized(*kind, t.map_coeffs(kind, h)),
        }
    }

    /// A size measure counting tensor terms (constants cost 1).
    pub fn size(&self) -> usize {
        match self {
            Value::Const(_) => 1,
            Value::Agg(_, t) => 1 + t.len(),
        }
    }
}

impl<A: CommutativeSemiring> From<Const> for Value<A> {
    fn from(c: Const) -> Self {
        Value::Const(c)
    }
}

impl<A: CommutativeSemiring> fmt::Display for Value<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Agg(kind, t) => write!(f, "{kind}⟨{t}⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::num::Num;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_algebra::semiring::Nat;

    #[test]
    fn const_embedding_via_iota() {
        let v: Value<NatPoly> = Value::int(20);
        let t = v.to_tensor(MonoidKind::Sum).unwrap();
        assert_eq!(t.to_string(), "1⊗20");
    }

    #[test]
    fn carrier_mismatch_is_error() {
        let v: Value<NatPoly> = Value::str("d1");
        assert!(v.to_tensor(MonoidKind::Sum).is_err());
        let b: Value<NatPoly> = Value::Const(Const::Bool(true));
        assert!(b.to_tensor(MonoidKind::Or).is_ok());
        assert!(b.to_tensor(MonoidKind::Max).is_err());
    }

    #[test]
    fn kind_mismatch_is_error() {
        let t = Tensor::<NatPoly, Const>::iota(&MonoidKind::Sum, Const::int(1));
        let v = Value::Agg(MonoidKind::Sum, t);
        assert!(v.to_tensor(MonoidKind::Max).is_err());
    }

    #[test]
    fn normalization_strips_iota_when_ground() {
        // 2⊗30 over ℕ resolves to the constant 60.
        let t = Tensor::<Nat, Const>::simple(&MonoidKind::Sum, Nat(2), Const::int(30));
        let v = Value::agg_normalized(MonoidKind::Sum, t);
        assert_eq!(v, Value::int(60));
        // Symbolic tensors stay symbolic.
        let t =
            Tensor::<NatPoly, Const>::simple(&MonoidKind::Sum, NatPoly::token("x"), Const::int(30));
        let v = Value::agg_normalized(MonoidKind::Sum, t);
        assert!(v.is_agg());
    }

    #[test]
    fn map_hom_resolves_ground_images() {
        // x⊗30 with x ↦ 2 becomes the constant 60.
        let t =
            Tensor::<NatPoly, Const>::simple(&MonoidKind::Sum, NatPoly::token("x"), Const::int(30));
        let v = Value::Agg(MonoidKind::Sum, t);
        let mapped = v.map_hom(&mut |p| {
            aggprov_algebra::hom::Valuation::<Nat>::ones()
                .set("x", Nat(2))
                .eval(p)
        });
        assert_eq!(mapped, Value::int(60));
    }

    #[test]
    fn empty_sum_tensor_is_zero_constant() {
        let v = Value::<Nat>::agg_normalized(MonoidKind::Sum, Tensor::zero());
        assert_eq!(v, Value::Const(Const::Num(Num::ZERO)));
    }
}
