//! Property-tested equivalence between the columnar batch kernels
//! ([`aggprov_core::ops::batch`]) and the row-at-a-time operators /
//! literal §4.3 reference ([`aggprov_core::specops`]).
//!
//! The per-row kernels (filter, unit-column append) are checked over
//! *mixed* ground/symbolic relations — the chunk keeps the symbolic
//! fringe on the token path while the ground partition runs vectorized,
//! and the recombined relation must be bit-identical to the row-at-a-time
//! operator. The cross-row kernels (project, hash join, and the full
//! filter→project→join pipeline) are checked over fully ground relations,
//! which is exactly the regime the engine dispatches them in (a symbolic
//! fringe sends those nodes to `ops::*_opts`). Empty-batch and
//! all-symbolic edge cases get dedicated tests for every kernel.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::km::{CmpPred, Km};
use aggprov_core::ops::batch::{hash_join, BatchCmp, BatchOperand, Chunk};
use aggprov_core::ops::{self, MKRel};
use aggprov_core::par::ExecOptions;
use aggprov_core::{specops, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One generated cell, as in the PR 2/3 suites: `(kind, var_index, int)`
/// with kind 0–5 — 0–2 ground ints, 3 a ground string, 4–5 a symbolic
/// `SUM` tensor (≈1/3 symbolic).
type RawVal = (u8, usize, i64);

fn decode_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    match kind {
        0..=2 => Value::int(n),
        3 => Value::str(if n % 2 == 0 { "s0" } else { "s1" }),
        _ => Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        ),
    }
}

/// Numeric-only cell (ground int or symbolic tensor) — for columns under
/// order comparisons, where a string would be a type error on both paths.
fn decode_num_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    if kind <= 3 {
        Value::int(n)
    } else {
        Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        )
    }
}

/// Fully ground cell.
fn decode_ground_val(raw: RawVal) -> Value<P> {
    let (kind, _, n) = raw;
    if kind == 3 {
        Value::str(if n % 2 == 0 { "s0" } else { "s1" })
    } else {
        Value::int(n)
    }
}

fn raw_val() -> impl Strategy<Value = RawVal> {
    (0u8..6, 0..VARS.len(), -2i64..5)
}

fn rel_from(prefix: &str, schema: Schema, rows: Vec<Vec<Value<P>>>) -> MKRel<P> {
    Relation::from_rows(
        schema,
        rows.into_iter()
            .enumerate()
            .map(|(i, row)| (row, tok(&format!("{prefix}{i}")))),
    )
    .unwrap()
}

/// A mixed relation over `(a, b)` with `b` numeric-or-symbolic.
fn arb_mixed(
    prefix: &'static str,
    a: &'static str,
    b: &'static str,
) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7).prop_map(move |rows| {
        rel_from(
            prefix,
            Schema::new([a, b]).unwrap(),
            rows.into_iter()
                .map(|(x, y)| vec![decode_val(x), decode_num_val(y)])
                .collect(),
        )
    })
}

/// A fully ground relation over `(a, b)`.
fn arb_ground(
    prefix: &'static str,
    a: &'static str,
    b: &'static str,
) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), raw_val()), 0..9).prop_map(move |rows| {
        rel_from(
            prefix,
            Schema::new([a, b]).unwrap(),
            rows.into_iter()
                .map(|(x, y)| vec![decode_ground_val(x), decode_ground_val(y)])
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chunk_round_trip_is_lossless(rel in arb_mixed("a", "a", "b")) {
        let back = Chunk::from_relation(&rel).into_relation().unwrap();
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn filter_eq_matches_select_eq(rel in arb_mixed("a", "a", "b"), v in raw_val()) {
        // Equality against a constant or symbolic value: the chunk path
        // (selection vector over ground, token path over the fringe) must
        // match the row-at-a-time §4.3 selection bit for bit.
        let value = decode_val(v);
        let want = ops::select_eq(&rel, "a", &value).unwrap();
        let got = match &value {
            Value::Const(c) => {
                let mut chunk = Chunk::from_relation(&rel);
                chunk
                    .filter(&BatchOperand::Col(0), BatchCmp::Eq, &BatchOperand::Lit(c.clone()), &ExecOptions::serial())
                    .unwrap();
                chunk.into_relation().unwrap()
            }
            // A symbolic comparison value never reaches the batch kernel
            // (operands there are Const); the engine routes it through the
            // same ops::select_eq. Nothing to compare.
            Value::Agg(..) => want.clone(),
        };
        prop_assert_eq!(got, want);
    }

    #[test]
    fn filter_cmp_matches_select_attrs_cmp(rel in arb_mixed("a", "a", "b"), which in 0u8..3) {
        // Column-vs-column order comparison over the numeric/symbolic
        // column pair; both paths error together on type mismatches.
        let pred = [CmpPred::Lt, CmpPred::Le, CmpPred::Ne][which as usize];
        let want = ops::select_attrs_cmp(&rel, "a", pred, "b");
        let mut chunk = Chunk::from_relation(&rel);
        let got = chunk
            .filter(&BatchOperand::Col(0), BatchCmp::Pred(pred), &BatchOperand::Col(1), &ExecOptions::serial())
            .map(|()| chunk.into_relation().unwrap());
        match (got, want) {
            (Ok(g), Ok(w)) => prop_assert_eq!(g, w),
            (Err(_), Err(_)) => {}
            (g, w) => prop_assert!(false, "one path errored: batch {g:?} vs ops {w:?}"),
        }
    }

    #[test]
    fn project_matches_spec_on_ground(rel in arb_ground("a", "a", "b"), dup in prop::bool::ANY) {
        // The gather kernel (duplicates deferred to materialization)
        // against the literal §4.3 projection + positional expansion.
        let chunk = Chunk::from_relation(&rel);
        if dup {
            // SELECT b, b, a: a duplicated select item.
            let got = chunk
                .project(&[1, 1, 0], Schema::new(["b1", "b2", "a"]).unwrap())
                .unwrap()
                .into_relation()
                .unwrap();
            let spec = specops::project(&rel, &["b", "a"]).unwrap();
            let mut expanded = Relation::empty(Schema::new(["b1", "b2", "a"]).unwrap());
            for (t, k) in spec.iter() {
                expanded
                    .insert(vec![t.get(0).clone(), t.get(0).clone(), t.get(1).clone()], k.clone())
                    .unwrap();
            }
            prop_assert_eq!(got, expanded);
        } else {
            let got = chunk
                .project(&[0], Schema::new(["a"]).unwrap())
                .unwrap()
                .into_relation()
                .unwrap();
            let spec = specops::project(&rel, &["a"]).unwrap();
            prop_assert_eq!(got, spec);
        }
    }

    #[test]
    fn hash_join_matches_spec_on_ground(
        r1 in arb_ground("a", "a", "b"),
        r2 in arb_ground("b", "c", "d"),
    ) {
        let schema = Schema::new(["a", "b", "c", "d"]).unwrap();
        let got = hash_join(
            Chunk::from_relation(&r1),
            Chunk::from_relation(&r2),
            &[(0, 0)],
            schema.clone(),
            &ExecOptions::serial(),
        )
        .unwrap()
        .into_relation()
        .unwrap();
        let spec = specops::join_on(&r1, &r2, &[("a", "c")]).unwrap();
        prop_assert_eq!(got, spec);

        // The empty-`on` (cartesian product) shape as well.
        let got = hash_join(
            Chunk::from_relation(&r1),
            Chunk::from_relation(&r2),
            &[],
            schema,
            &ExecOptions::serial(),
        )
        .unwrap()
        .into_relation()
        .unwrap();
        let spec = specops::join_on(&r1, &r2, &[]).unwrap();
        prop_assert_eq!(got, spec);
    }

    #[test]
    fn pipeline_matches_composed_spec_on_ground(
        r1 in arb_ground("a", "a", "b"),
        r2 in arb_ground("b", "c", "d"),
        v in -2i64..5,
    ) {
        // σ → Π → ⋈ entirely in chunk land (one materialization at the
        // end) against the node-at-a-time spec composition.
        let mut chunk = Chunk::from_relation(&r1);
        chunk
            .filter(&BatchOperand::Col(1), BatchCmp::Eq, &BatchOperand::Lit(Const::int(v)), &ExecOptions::serial())
            .unwrap();
        let projected = chunk.project(&[0], Schema::new(["a"]).unwrap()).unwrap();
        let got = hash_join(
            projected,
            Chunk::from_relation(&r2),
            &[(0, 0)],
            Schema::new(["a", "c", "d"]).unwrap(),
            &ExecOptions::serial(),
        )
        .unwrap()
        .into_relation()
        .unwrap();

        let filtered = ops::select_eq(&r1, "b", &Value::int(v)).unwrap();
        let spec_p = specops::project(&filtered, &["a"]).unwrap();
        let spec = specops::join_on(&spec_p, &r2, &[("a", "c")]).unwrap();
        prop_assert_eq!(got, spec);
    }

    #[test]
    fn all_symbolic_chunks_stay_on_the_token_path(rows in prop::collection::vec((0..VARS.len(), 1i64..5), 0..6)) {
        // Every row symbolic (values are nonzero so `x⊗n` cannot
        // normalize to a ground constant): the ground batch is empty and
        // the whole relation rides the fringe; filter must still match
        // the §4.3 selection exactly.
        let rel = rel_from(
            "s",
            Schema::new(["a"]).unwrap(),
            rows.into_iter()
                .map(|(vi, n)| {
                    vec![Value::agg_normalized(
                        MonoidKind::Sum,
                        Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
                    )]
                })
                .collect(),
        );
        let chunk = Chunk::from_relation(&rel);
        prop_assert_eq!(chunk.ground_len(), 0);
        let mut chunk = chunk;
        chunk
            .filter(&BatchOperand::Col(0), BatchCmp::Eq, &BatchOperand::Lit(Const::int(1)), &ExecOptions::serial())
            .unwrap();
        let got = chunk.into_relation().unwrap();
        let want = ops::select_eq(&rel, "a", &Value::int(1)).unwrap();
        prop_assert_eq!(got, want);
    }
}

#[test]
fn empty_relation_through_every_kernel() {
    let schema = Schema::new(["a", "b"]).unwrap();
    let rel: MKRel<P> = Relation::empty(schema.clone());
    let mut chunk = Chunk::from_relation(&rel);
    chunk
        .filter(
            &BatchOperand::Col(0),
            BatchCmp::Pred(CmpPred::Lt),
            &BatchOperand::Lit(Const::int(3)),
            &ExecOptions::serial(),
        )
        .unwrap();
    let chunk = chunk
        .add_unit_column(Schema::new(["a", "b", "one"]).unwrap())
        .unwrap();
    let chunk = chunk
        .project(&[0, 2], Schema::new(["a", "one"]).unwrap())
        .unwrap();
    let joined = hash_join(
        chunk,
        Chunk::from_relation(&Relation::<P, Value<P>>::empty(Schema::new(["c"]).unwrap())),
        &[(0, 0)],
        Schema::new(["a", "one", "c"]).unwrap(),
        &ExecOptions::serial(),
    )
    .unwrap();
    let out = joined
        .avg_divide(
            &[(0, 1)],
            false,
            Schema::new(["a", "one", "c", "q"]).unwrap(),
        )
        .unwrap()
        .into_relation()
        .unwrap();
    assert!(out.is_empty());
}
