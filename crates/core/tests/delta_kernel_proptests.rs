//! Property-tested laws of the incremental grouping kernels
//! ([`aggprov_core::ops::group_state_update`] /
//! [`aggprov_core::ops::delta_collapse`]) against the literal
//! one-tuple-at-a-time reference ([`aggprov_core::specops`]).
//!
//! The central law is **batch invariance + collapse correctness**: folding
//! a relation into an empty group state in *any* batch decomposition
//! yields bit-identical state, and collapsing that state is bit-identical
//! to a from-scratch `group_by` over the whole relation — which is itself
//! oracled against the literal §4.3 `specops::group_by`. Aggregated cells
//! are mixed ground/symbolic; group keys are ground (symbolic keys are a
//! pinned error on both paths).

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::km::Km;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::{specops, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One aggregated cell: `(kind, var_index, int_value)`; kind 0–3 a ground
/// integer, 4–5 a symbolic `SUM` tensor (≈1/3 symbolic).
type RawVal = (u8, usize, i64);

fn decode_num_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    if kind <= 3 {
        Value::int(n)
    } else {
        Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        )
    }
}

fn raw_val() -> impl Strategy<Value = RawVal> {
    (0u8..6, 0..VARS.len(), -2i64..5)
}

/// Batches of `(ground key, mixed SUM value, ground MAX value)` rows;
/// tokens are distinct across the whole stream. The MAX column stays
/// ground because a MAX spec over a symbolic SUM tensor is a kind
/// mismatch on every path (incremental and from-scratch alike).
fn arb_batches() -> impl Strategy<Value = Vec<Vec<(i64, RawVal, i64)>>> {
    prop::collection::vec(
        prop::collection::vec((0i64..4, raw_val(), -3i64..6), 0..5),
        0..5,
    )
}

fn schema() -> Schema {
    Schema::new(["g", "v", "w"]).unwrap()
}

fn batch_rel(batch: &[(i64, RawVal, i64)], first_token: usize) -> MKRel<P> {
    Relation::from_rows(
        schema(),
        batch.iter().enumerate().map(|(i, (g, v, w))| {
            (
                vec![Value::int(*g), decode_num_val(*v), Value::int(*w)],
                tok(&format!("p{}", first_token + i)),
            )
        }),
    )
    .unwrap()
}

/// The whole stream as one relation (same tokens as the batched form).
fn full_rel(batches: &[Vec<(i64, RawVal, i64)>]) -> MKRel<P> {
    let rows: Vec<(i64, RawVal, i64)> = batches.iter().flatten().copied().collect();
    batch_rel(&rows, 0)
}

const SPECS: [AggSpec<'static>; 2] = [
    AggSpec {
        kind: MonoidKind::Sum,
        attr: "v",
        out: "total",
    },
    AggSpec {
        kind: MonoidKind::Max,
        attr: "w",
        out: "peak",
    },
];

/// Folds the batches through the physical kernel.
fn fold_ops(batches: &[Vec<(i64, RawVal, i64)>]) -> MKRel<P> {
    let state_schema = Schema::new(["g", "total", "peak"]).unwrap();
    let mut state: MKRel<P> = Relation::empty(state_schema);
    let mut next_token = 0;
    for batch in batches {
        let delta = batch_rel(batch, next_token);
        next_token += batch.len();
        state = ops::group_state_update(state, &delta, &["g"], &SPECS).unwrap();
    }
    state
}

/// Folds the batches through the literal reference kernel.
fn fold_spec(batches: &[Vec<(i64, RawVal, i64)>]) -> MKRel<P> {
    let state_schema = Schema::new(["g", "total", "peak"]).unwrap();
    let mut state: MKRel<P> = Relation::empty(state_schema);
    let mut next_token = 0;
    for batch in batches {
        let delta = batch_rel(batch, next_token);
        next_token += batch.len();
        state = specops::group_state_update(&state, &delta, &["g"], &SPECS).unwrap();
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Physical and literal folds agree bit for bit on the state itself.
    #[test]
    fn state_fold_matches_spec(batches in arb_batches()) {
        prop_assert_eq!(fold_ops(&batches), fold_spec(&batches));
    }

    /// Batch decomposition is invisible: folding batch-by-batch equals
    /// folding the whole stream in one delta.
    #[test]
    fn state_is_batch_invariant(batches in arb_batches()) {
        let whole = vec![batches.iter().flatten().copied().collect::<Vec<_>>()];
        prop_assert_eq!(fold_ops(&batches), fold_ops(&whole));
    }

    /// Collapsing the incrementally built state is bit-identical to a
    /// from-scratch `group_by` — which is itself bit-identical to the
    /// literal §4.3 `specops::group_by` on these (ground-keyed) inputs.
    #[test]
    fn collapse_matches_group_by_and_spec(batches in arb_batches()) {
        let state = fold_ops(&batches);
        let collapsed = ops::delta_collapse(&state).unwrap();
        let full = full_rel(&batches);
        let scratch = ops::group_by(&full, &["g"], &SPECS).unwrap();
        let literal = specops::group_by(&full, &["g"], &SPECS).unwrap();
        prop_assert_eq!(collapsed.clone(), scratch);
        prop_assert_eq!(collapsed.clone(), literal);
        // The rendering map is shared: spec and physical collapse coincide.
        let spec_collapsed = specops::delta_collapse(&state).unwrap();
        prop_assert_eq!(collapsed, spec_collapsed);
    }

    /// A symbolic group key in the delta is a pinned error on both paths.
    /// (`n` stays nonzero: `x ⊗ 0` *is* the zero tensor by bilinearity, so
    /// it would normalize to the ground constant `0` and group fine.)
    #[test]
    fn symbolic_group_key_is_rejected(n in 1i64..5) {
        let state: MKRel<P> = Relation::empty(Schema::new(["g", "total", "peak"]).unwrap());
        let delta: MKRel<P> = Relation::from_rows(
            schema(),
            [(
                vec![
                    Value::agg_normalized(
                        MonoidKind::Sum,
                        Tensor::from_terms(&MonoidKind::Sum, [(tok("x"), Const::int(n))]),
                    ),
                    Value::int(1),
                    Value::int(2),
                ],
                tok("p0"),
            )],
        )
        .unwrap();
        prop_assert!(ops::group_state_update(state.clone(), &delta, &["g"], &SPECS).is_err());
        prop_assert!(specops::group_state_update(&state, &delta, &["g"], &SPECS).is_err());
    }
}
