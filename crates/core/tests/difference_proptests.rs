//! Property tests for relational difference (`EXCEPT`,
//! [`aggprov_core::difference`]) over mixed ground/symbolic relations —
//! the §5 hybrid semantics `(R − S)(t) = [S(t) ⊗ ⊤ = 0] · R(t)`.
//!
//! Oracles, in increasing symbolic content:
//!
//! * with `ℕ` annotations and ground values everything resolves, and the
//!   hybrid semantics must coincide with a directly-written membership
//!   filter (keep `t` with its full `R`-multiplicity iff `S(t) = 0`);
//! * with token annotations the result stays symbolic; the encoded form
//!   (`B̂`-aggregation, §5.1) must agree with the direct form under every
//!   valuation into `ℕ` (Proposition 5.1), and valuation must commute
//!   with the difference itself;
//! * with symbolic *values* in the tuples, valuation commutation is the
//!   oracle: specializing the symbolic difference agrees with taking the
//!   difference of the specialized inputs.

use aggprov_algebra::domain::Const;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::Nat;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::difference::{difference, difference_encoded};
use aggprov_core::eval::{collapse, map_hom_mk};
use aggprov_core::km::Km;
use aggprov_core::ops::MKRel;
use aggprov_core::Value;
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 3] = ["x", "y", "z"];

fn schema2() -> Schema {
    Schema::new(["a", "b"]).unwrap()
}

/// A ground `ℕ`-annotated relation over `(a, b)`.
fn arb_nat_rel() -> impl Strategy<Value = MKRel<Nat>> {
    prop::collection::vec(((-1i64..3, -1i64..3), 0u64..3), 0..6).prop_map(|rows| {
        let mut rel = Relation::empty(schema2());
        for ((a, b), n) in rows {
            rel.insert(vec![Value::int(a), Value::int(b)], Nat(n))
                .unwrap();
        }
        rel
    })
}

/// A ground-valued, token-annotated relation over `(a, b)`.
fn arb_tok_rel(prefix: &'static str) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((-1i64..3, -1i64..3), 0..5).prop_map(move |rows| {
        let mut rel = Relation::empty(schema2());
        for (i, (a, b)) in rows.into_iter().enumerate() {
            rel.insert(
                vec![Value::int(a), Value::int(b)],
                tok(&format!("{prefix}{i}")),
            )
            .unwrap();
        }
        rel
    })
}

/// A mixed-value, token-annotated relation over `(a,)`: cells are ground
/// ints or symbolic `SUM` tensors over the shared variables.
fn arb_mixed_rel(prefix: &'static str) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((0u8..3, 0..VARS.len(), 1i64..4), 0..5).prop_map(move |rows| {
        let mut rel = Relation::empty(Schema::new(["a"]).unwrap());
        for (i, (kind, vi, n)) in rows.into_iter().enumerate() {
            let v = if kind < 2 {
                Value::int(n)
            } else {
                Value::agg_normalized(
                    MonoidKind::Sum,
                    Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
                )
            };
            rel.insert(vec![v], tok(&format!("{prefix}{i}"))).unwrap();
        }
        rel
    })
}

/// The membership reference for resolved inputs: keep `t` with its full
/// `R`-annotation iff `t` is absent from `S`.
fn membership_reference(r: &MKRel<Nat>, s: &MKRel<Nat>) -> MKRel<Nat> {
    let mut out = Relation::empty(r.schema().clone());
    for (t, k) in r.iter() {
        if s.annotation(t) == Nat(0) {
            out.insert(t.values().to_vec(), *k).unwrap();
        }
    }
    out
}

/// A valuation sending the shared token space into small naturals.
fn valuation(bits: u32) -> Valuation<Nat> {
    let mut val = Valuation::<Nat>::ones();
    for (i, v) in VARS.iter().enumerate() {
        val = val.set(*v, Nat(u64::from((bits >> i) & 3)));
    }
    for (i, p) in ["r0", "r1", "r2", "r3", "r4"].iter().enumerate() {
        val = val.set(*p, Nat(u64::from((bits >> (2 * i + 3)) & 1)));
    }
    for (i, p) in ["s0", "s1", "s2", "s3", "s4"].iter().enumerate() {
        val = val.set(*p, Nat(u64::from((bits >> (2 * i + 4)) & 1)));
    }
    val
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hybrid_matches_membership_on_resolved_inputs(r in arb_nat_rel(), s in arb_nat_rel()) {
        // With ℕ annotations every [S(t)⊗⊤ = 0] token resolves on the
        // spot: existence in S deletes, survivors keep multiplicity.
        let got = difference(&r, &s).unwrap();
        prop_assert_eq!(got, membership_reference(&r, &s));
    }

    #[test]
    fn difference_with_empty_and_self(r in arb_tok_rel("r0")) {
        // R − ∅ = R (the guard token is [0⊗⊤ = 0] = 1) and, once
        // resolved, R − R = ∅ wherever R's annotation is non-zero.
        let empty: MKRel<P> = Relation::empty(schema2());
        prop_assert_eq!(difference(&r, &empty).unwrap(), r.clone());
        let self_diff = difference(&r, &r).unwrap();
        let resolved = collapse(&map_hom_mk(&self_diff, &|p: &NatPoly| {
            Valuation::<Nat>::ones().eval(p)
        }))
        .unwrap();
        prop_assert!(resolved.is_empty(), "R − R resolves empty, got {resolved}");
    }

    #[test]
    fn encoded_matches_direct_under_valuations(
        r in arb_tok_rel("r"),
        s in arb_tok_rel("s"),
        bits in 0u32..(1 << 14),
    ) {
        // Proposition 5.1: the §5.1 B̂-aggregation encoding and the direct
        // hybrid form agree under every valuation into ℕ.
        let direct = difference(&r, &s).unwrap();
        let encoded = difference_encoded(&r, &s).unwrap();
        let val = valuation(bits);
        let d = collapse(&map_hom_mk(&direct, &|p: &NatPoly| val.eval(p))).unwrap();
        let e = collapse(&map_hom_mk(&encoded, &|p: &NatPoly| val.eval(p))).unwrap();
        prop_assert_eq!(d, e);
    }

    #[test]
    fn valuation_commutes_with_difference_on_mixed_values(
        r in arb_mixed_rel("r"),
        s in arb_mixed_rel("s"),
        bits in 0u32..(1 << 14),
    ) {
        // Symbolic values in the tuples: specializing the symbolic
        // difference must agree with differencing the specialized inputs.
        // Supports always agree. Annotations agree whenever specialization
        // does not merge distinct tuples — when it does, `h_Rel` keeps the
        // first colliding annotation (the §4.3 convention, whose premise
        // "colliding annotations are equal by construction" holds for
        // query outputs but not for arbitrary hand-built inputs), while
        // the extended reading inside `difference` sums token-weighted
        // contributions, so only support equality is promised there.
        let sym = difference(&r, &s).unwrap();
        let val = valuation(bits);
        let lhs = collapse(&map_hom_mk(&sym, &|p: &NatPoly| val.eval(p))).unwrap();
        let r_res = collapse(&map_hom_mk(&r, &|p: &NatPoly| val.eval(p))).unwrap();
        let s_res = collapse(&map_hom_mk(&s, &|p: &NatPoly| val.eval(p))).unwrap();
        let rhs = difference(&r_res, &s_res).unwrap();
        let support = |rel: &MKRel<Nat>| -> Vec<_> { rel.iter().map(|(t, _)| t.clone()).collect() };
        prop_assert_eq!(support(&lhs), support(&rhs));
        let collision_free = r_res.len() == r.len() && s_res.len() == s.len();
        if collision_free {
            prop_assert_eq!(lhs, rhs);
        }
    }
}
