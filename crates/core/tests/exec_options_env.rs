//! `AGGPROV_THREADS` / `AGGPROV_TYPED` handling, isolated in its own
//! test binary: the variables are process-global and this test mutates
//! them (including setting invalid values), so it must not share a
//! process with tests that might read them concurrently.

use aggprov_core::par::{ExecOptions, THREADS_ENV, TYPED_ENV};

#[test]
fn from_env_reads_and_rejects_loudly() {
    // Restores the prior value so a CI thread-matrix env survives.
    let saved = std::env::var(THREADS_ENV).ok();
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(ExecOptions::from_env().unwrap().threads(), 3);
    std::env::set_var(THREADS_ENV, " 2 ");
    assert_eq!(ExecOptions::from_env().unwrap().threads(), 2);
    for bad in ["", "0", "-1", "many", "4.0"] {
        std::env::set_var(THREADS_ENV, bad);
        let err = ExecOptions::from_env().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(THREADS_ENV) && msg.contains(&format!("`{bad}`")),
            "loud error names variable and value: {msg}"
        );
    }
    match saved {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    assert!(ExecOptions::from_env().is_ok());

    // The typed-kernel toggle: unset defaults to typed, `0` forces the
    // boxed baseline, `1` is typed, anything else is a loud error.
    let saved_typed = std::env::var(TYPED_ENV).ok();
    std::env::remove_var(TYPED_ENV);
    assert!(ExecOptions::from_env().unwrap().typed());
    std::env::set_var(TYPED_ENV, "0");
    assert!(!ExecOptions::from_env().unwrap().typed());
    std::env::set_var(TYPED_ENV, " 1 ");
    assert!(ExecOptions::from_env().unwrap().typed());
    for bad in ["", "2", "yes", "true"] {
        std::env::set_var(TYPED_ENV, bad);
        let err = ExecOptions::from_env().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(TYPED_ENV) && msg.contains(&format!("`{bad}`")),
            "loud error names variable and value: {msg}"
        );
    }
    match saved_typed {
        Some(v) => std::env::set_var(TYPED_ENV, v),
        None => std::env::remove_var(TYPED_ENV),
    }
    assert!(ExecOptions::from_env().is_ok());
}
