//! `AGGPROV_THREADS` handling, isolated in its own test binary: the
//! variable is process-global and this test mutates it (including setting
//! invalid values), so it must not share a process with tests that might
//! read it concurrently.

use aggprov_core::par::{ExecOptions, THREADS_ENV};

#[test]
fn from_env_reads_and_rejects_loudly() {
    // Restores the prior value so a CI thread-matrix env survives.
    let saved = std::env::var(THREADS_ENV).ok();
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(ExecOptions::from_env().unwrap().threads(), 3);
    std::env::set_var(THREADS_ENV, " 2 ");
    assert_eq!(ExecOptions::from_env().unwrap().threads(), 2);
    for bad in ["", "0", "-1", "many", "4.0"] {
        std::env::set_var(THREADS_ENV, bad);
        let err = ExecOptions::from_env().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(THREADS_ENV) && msg.contains(&format!("`{bad}`")),
            "loud error names variable and value: {msg}"
        );
    }
    match saved {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    assert!(ExecOptions::from_env().is_ok());
}
