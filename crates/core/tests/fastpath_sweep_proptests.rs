//! The fast-path correctness sweep: targeted property tests for the
//! one-sided-ground bug class that PR 4 fixed in `ops::annotation_at`
//! (the structural fast path fired when only the *relation* was ground,
//! silently dropping the token cross terms a symbolic lookup tuple
//! carries against ground support tuples).
//!
//! Audit of the remaining `is_ground_at` gates in `core/src/ops.rs`:
//!
//! * **`union_opts` partition** (the `is_ground_at` split over all
//!   positions): ground output keys explicitly add every symbolic
//!   tuple's token-weighted contribution (`sym_ref` loop inside the
//!   shard closure), and symbolic output keys sum over both partitions —
//!   two-sided by construction. The top-level structural merge only
//!   fires when **both** inputs pass `has_symbolic = false`.
//! * **`project_opts`** both gates: the all-ground fast path requires
//!   *every* tuple ground at the projected positions (a strictly wider
//!   fast set than whole-relation groundness — deliberate, and sound
//!   because tokens only read the projected columns); the partitioned
//!   path adds cross terms in both directions.
//! * **`select_with_token`** (`tok.is_zero()` / `is_one()` shortcut):
//!   §4.3 selection is per-tuple — `(σR)(t) = R(t)·[cond]` has no
//!   cross-tuple sum, so dropping zero-token tuples and keeping
//!   one-token tuples verbatim cannot lose symbolic terms. The shortcut
//!   is exercised one-sidedly here (ground rows against a symbolic
//!   comparison value and vice versa) against a literal no-shortcut
//!   oracle.
//! * **`group_by_opts` partition**: ground buckets fold the
//!   token-weighted contributions of symbolic-keyed tuples
//!   (`ground_group_row`'s `sym` loop); symbolic candidate groups sum
//!   over every bucket and the symbolic fringe — two-sided.
//! * **`join_on_opts`**: the hash block only joins ground × ground key
//!   pairs; all three one-or-two-sided symbolic blocks
//!   (`g×s`, `s×g`, `s×s`) run the token nested loop.
//!
//! No further instance of the bug class was found; these tests pin each
//! gate in exactly the regime where it would bite — one side (or one
//! column subset) fully ground, the other symbolic — bit-identical to
//! the literal §4.3 `specops` oracles at `threads ∈ {1, 4}`, mirroring
//! `difference_proptests.rs`.

use aggprov_algebra::domain::Const;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{CommutativeSemiring, Nat};
use aggprov_algebra::tensor::Tensor;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::eval::{collapse, map_hom_mk};
use aggprov_core::km::{CmpPred, Km};
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::par::ExecOptions;
use aggprov_core::{specops, Value};
use aggprov_krel::relation::{Relation, Tuple};
use aggprov_krel::schema::Schema;
use proptest::prelude::*;
use std::collections::BTreeMap;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 3] = ["x", "y", "z"];

fn schema2() -> Schema {
    Schema::new(["a", "b"]).unwrap()
}

fn sym_value(vi: usize, n: i64) -> Value<P> {
    Value::agg_normalized(
        MonoidKind::Sum,
        Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
    )
}

/// A fully ground relation over `(a, b)` with distinct tokens.
fn arb_ground_rel(prefix: &'static str) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((-1i64..3, -1i64..3), 0..5).prop_map(move |rows| {
        let mut rel = Relation::empty(schema2());
        for (i, (a, b)) in rows.into_iter().enumerate() {
            rel.insert(
                vec![Value::int(a), Value::int(b)],
                tok(&format!("{prefix}{i}")),
            )
            .unwrap();
        }
        rel
    })
}

/// A relation over `(a, b)` whose **every** row is symbolic at `a` (the
/// one-sided regime: no row of this side lands in a ground partition
/// keyed on `a`); `b` stays a ground number.
fn arb_sym_rel(prefix: &'static str) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((0..VARS.len(), 1i64..4, -1i64..3), 0..4).prop_map(move |rows| {
        let mut rel = Relation::empty(schema2());
        for (i, (vi, n, b)) in rows.into_iter().enumerate() {
            rel.insert(
                vec![sym_value(vi, n), Value::int(b)],
                tok(&format!("{prefix}{i}")),
            )
            .unwrap();
        }
        rel
    })
}

/// Both thread counts of an `_opts` operator must agree with the oracle.
fn both_threads<F>(f: F) -> (MKRel<P>, MKRel<P>)
where
    F: Fn(&ExecOptions) -> MKRel<P>,
{
    (f(&ExecOptions::serial()), f(&ExecOptions::with_threads(4)))
}

/// A valuation covering the shared symbolic variables and row tokens.
fn valuation(bits: u32) -> Valuation<Nat> {
    let mut val = Valuation::<Nat>::ones();
    for (i, v) in VARS.iter().enumerate() {
        val = val.set(*v, Nat(u64::from((bits >> i) & 3)));
    }
    for (i, p) in ["g0", "g1", "g2", "g3", "g4"].iter().enumerate() {
        val = val.set(*p, Nat(u64::from((bits >> (i + 6)) & 1)));
    }
    for (i, p) in ["s0", "s1", "s2", "s3"].iter().enumerate() {
        val = val.set(*p, Nat(u64::from((bits >> (i + 11)) & 1)));
    }
    val
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn union_one_sided_ground_matches_spec(
        g in arb_ground_rel("g"),
        s in arb_sym_rel("s"),
    ) {
        // Ground ∪ symbolic, both orders: the ground partition's merge
        // must still pick up every cross term against the symbolic side.
        let want_gs = specops::union(&g, &s).unwrap();
        let (t1, t4) = both_threads(|o| ops::union_opts(&g, &s, o).unwrap());
        prop_assert_eq!(&t1, &want_gs);
        prop_assert_eq!(&t4, &want_gs);

        let want_sg = specops::union(&s, &g).unwrap();
        let (t1, t4) = both_threads(|o| ops::union_opts(&s, &g, o).unwrap());
        prop_assert_eq!(&t1, &want_sg);
        prop_assert_eq!(&t4, &want_sg);
    }

    #[test]
    fn union_one_sided_commutes_with_valuations(
        g in arb_ground_rel("g"),
        s in arb_sym_rel("s"),
        bits in 0u32..(1 << 15),
    ) {
        // The §4.3 semantic grounding, as in difference_proptests:
        // specializing the symbolic union agrees with unioning the
        // specialized inputs — support always; annotations whenever
        // specialization does not merge distinct input tuples (the
        // collision caveat of h_Rel's first-copy convention).
        let sym_union = ops::union(&g, &s).unwrap();
        let val = valuation(bits);
        let lhs = collapse(&map_hom_mk(&sym_union, &|p: &NatPoly| val.eval(p))).unwrap();
        let g_res = collapse(&map_hom_mk(&g, &|p: &NatPoly| val.eval(p))).unwrap();
        let s_res = collapse(&map_hom_mk(&s, &|p: &NatPoly| val.eval(p))).unwrap();
        let rhs = ops::union(&g_res, &s_res).unwrap();
        let support = |rel: &MKRel<Nat>| -> Vec<_> {
            rel.iter().map(|(t, _)| t.clone()).collect()
        };
        prop_assert_eq!(support(&lhs), support(&rhs));
        if g_res.len() == g.len() && s_res.len() == s.len() {
            prop_assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn project_with_one_sided_symbolic_columns_matches_spec(
        g in arb_ground_rel("g"),
        s in arb_sym_rel("s"),
    ) {
        // One relation mixing ground rows and symbolic-at-`a` rows.
        let mut mixed = g.clone();
        for (t, k) in s.iter() {
            if mixed.annotation(t).is_zero() {
                mixed.insert(t.values().to_vec(), k.clone()).unwrap();
            }
        }
        // Π_a: some projected keys symbolic, some ground — the
        // partitioned path with cross terms in both directions.
        let want = specops::project(&mixed, &["a"]).unwrap();
        let (t1, t4) = both_threads(|o| ops::project_opts(&mixed, &["a"], o).unwrap());
        prop_assert_eq!(&t1, &want);
        prop_assert_eq!(&t4, &want);

        // Π_b: every projected key ground even though the relation holds
        // symbolic values — the widened all-ground fast path must agree
        // with the literal rule (tokens only read the projected column).
        let want = specops::project(&mixed, &["b"]).unwrap();
        let (t1, t4) = both_threads(|o| ops::project_opts(&mixed, &["b"], o).unwrap());
        prop_assert_eq!(&t1, &want);
        prop_assert_eq!(&t4, &want);
    }

    #[test]
    fn join_on_one_sided_ground_keys_matches_spec(
        g in arb_ground_rel("g"),
        s in arb_sym_rel("s"),
    ) {
        let g = g.rename("a", "a1").unwrap().rename("b", "b1").unwrap();
        let s = s.rename("a", "a2").unwrap().rename("b", "b2").unwrap();
        // Ground keys probe symbolic keys (and vice versa): every pair
        // runs the token loop, nothing may take the hash block.
        let want = specops::join_on(&g, &s, &[("a1", "a2")]).unwrap();
        let (t1, t4) = both_threads(|o| ops::join_on_opts(&g, &s, &[("a1", "a2")], o).unwrap());
        prop_assert_eq!(&t1, &want);
        prop_assert_eq!(&t4, &want);

        let want = specops::join_on(&s, &g, &[("a2", "a1")]).unwrap();
        let (t1, t4) = both_threads(|o| ops::join_on_opts(&s, &g, &[("a2", "a1")], o).unwrap());
        prop_assert_eq!(&t1, &want);
        prop_assert_eq!(&t4, &want);
    }

    #[test]
    fn group_by_with_one_sided_symbolic_keys_matches_spec(
        g in arb_ground_rel("g"),
        s in arb_sym_rel("s"),
    ) {
        let mut mixed = g.clone();
        for (t, k) in s.iter() {
            if mixed.annotation(t).is_zero() {
                mixed.insert(t.values().to_vec(), k.clone()).unwrap();
            }
        }
        let specs = [AggSpec::new(MonoidKind::Sum, "b")];
        // Group keys on `a`: ground buckets must fold the token-weighted
        // membership of the symbolic-keyed rows, and symbolic candidate
        // groups must sum over the ground buckets.
        let want = specops::group_by(&mixed, &["a"], &specs).unwrap();
        let (t1, t4) = both_threads(|o| ops::group_by_opts(&mixed, &["a"], &specs, o).unwrap());
        prop_assert_eq!(&t1, &want);
        prop_assert_eq!(&t4, &want);

        // Group keys on `b` (all ground) with symbolic aggregated values
        // at `a`: the bucketing fast path with symbolic payloads.
        let specs = [AggSpec::new(MonoidKind::Sum, "a")];
        let want = specops::group_by(&mixed, &["b"], &specs).unwrap();
        let (t1, t4) = both_threads(|o| ops::group_by_opts(&mixed, &["b"], &specs, o).unwrap());
        prop_assert_eq!(&t1, &want);
        prop_assert_eq!(&t4, &want);
    }

    #[test]
    fn selection_shortcuts_match_the_literal_rule(
        g in arb_ground_rel("g"),
        s in arb_sym_rel("s"),
        vi in 0..VARS.len(),
        n in 1i64..4,
        c in -1i64..3,
    ) {
        // The literal §4.3 selection with no zero/one shortcut.
        let literal = |rel: &MKRel<P>, value: &Value<P>, pred: Option<CmpPred>| {
            let idx = rel.schema().index_of("a").unwrap();
            let mut out: BTreeMap<Tuple<Value<P>>, P> = BTreeMap::new();
            for (t, k) in rel.iter() {
                let tok = match pred {
                    None => P::value_eq(t.get(idx), value).unwrap(),
                    Some(p) => P::value_cmp(p, t.get(idx), value).unwrap(),
                };
                let ann = k.times(&tok);
                if !ann.is_zero() {
                    out.insert(t.clone(), ann);
                }
            }
            Relation::from_tuple_map(rel.schema().clone(), out).unwrap()
        };

        // Ground rows against a symbolic comparison value: every kept
        // tuple's token is symbolic, the shortcut only skips zeros.
        let sym_val = sym_value(vi, n);
        let got = ops::select_eq(&g, "a", &sym_val).unwrap();
        prop_assert_eq!(got, literal(&g, &sym_val, None));
        let got = ops::select_cmp(&g, "a", CmpPred::Le, &sym_val).unwrap();
        prop_assert_eq!(got, literal(&g, &sym_val, Some(CmpPred::Le)));

        // Symbolic rows against a ground value (the mirrored side).
        let ground_val = Value::int(c);
        let got = ops::select_eq(&s, "a", &ground_val).unwrap();
        prop_assert_eq!(got, literal(&s, &ground_val, None));
        let got = ops::select_cmp(&s, "a", CmpPred::Lt, &ground_val).unwrap();
        prop_assert_eq!(got, literal(&s, &ground_val, Some(CmpPred::Lt)));
    }

    #[test]
    fn annotation_at_one_sided_matches_the_token_sum(
        g in arb_ground_rel("g"),
        vi in 0..VARS.len(),
        n in 1i64..4,
        b in -1i64..3,
    ) {
        // Regression guard for the PR 4 bug itself: a symbolic lookup
        // tuple against a fully ground relation must take the
        // token-weighted sum, never the structural lookup.
        let lookup = Tuple::new(vec![sym_value(vi, n), Value::int(b)]);
        let got = ops::annotation_at(&g, &lookup).unwrap();
        let mut want = P::zero();
        for (t, k) in g.iter() {
            let mut tok = P::one();
            for i in 0..2 {
                tok = tok.times(&P::value_eq(t.get(i), lookup.get(i)).unwrap());
            }
            let part = k.times(&tok);
            if !part.is_zero() {
                want = want.plus(&part);
            }
        }
        prop_assert_eq!(got, want);
    }
}
