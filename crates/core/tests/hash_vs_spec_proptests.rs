//! Property-tested equivalence between the hash-partitioned physical
//! operators ([`aggprov_core::ops`]) and the literal §4.3 reference
//! implementations ([`aggprov_core::specops`]).
//!
//! The relations are generated with a *mixed* ground/symbolic population:
//! most values are constants (exercising the hash/merge fast partitions),
//! a fraction are symbolic `SUM` tensors (exercising the token-weighted
//! cross terms and the recombination of the two partitions). Equality is
//! full structural equality of the result relations — schema, support,
//! and every annotation, bit for bit.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::km::Km;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::{specops, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One generated cell: decoded into a ground constant or a symbolic `SUM`
/// tensor. `(kind, var_index, int_value)` with kind 0–5: 0–2 ground ints,
/// 3 a ground string, 4–5 a symbolic tensor (≈1/3 symbolic).
type RawVal = (u8, usize, i64);

fn decode_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    match kind {
        0..=2 => Value::int(n),
        3 => Value::str(if n % 2 == 0 { "s0" } else { "s1" }),
        _ => Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        ),
    }
}

/// Numeric-only cell (for aggregated columns, where a string would be a
/// carrier-type error on both paths).
fn decode_num_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    if kind <= 3 {
        Value::int(n)
    } else {
        Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        )
    }
}

fn raw_val() -> impl Strategy<Value = RawVal> {
    (0u8..6, 0..VARS.len(), -2i64..5)
}

fn rel_from(prefix: &str, schema: Schema, rows: Vec<Vec<Value<P>>>) -> MKRel<P> {
    Relation::from_rows(
        schema,
        rows.into_iter()
            .enumerate()
            .map(|(i, row)| (row, tok(&format!("{prefix}{i}")))),
    )
    .unwrap()
}

fn arb_rel2(
    prefix: &'static str,
    a: &'static str,
    b: &'static str,
) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7).prop_map(move |rows| {
        rel_from(
            prefix,
            Schema::new([a, b]).unwrap(),
            rows.into_iter()
                .map(|(x, y)| vec![decode_val(x), decode_val(y)])
                .collect(),
        )
    })
}

/// A `(group-key, numeric)` relation for the grouping/aggregation tests.
fn arb_group_rel() -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7).prop_map(|rows| {
        rel_from(
            "g",
            Schema::new(["g", "v"]).unwrap(),
            rows.into_iter()
                .map(|(x, y)| vec![decode_val(x), decode_num_val(y)])
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_hash_matches_spec(r1 in arb_rel2("a", "a", "b"), r2 in arb_rel2("b", "a", "b")) {
        let hash = ops::union(&r1, &r2).unwrap();
        let spec = specops::union(&r1, &r2).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn project_hash_matches_spec(rel in arb_rel2("a", "a", "b"), keep_b in prop::bool::ANY) {
        let attrs: Vec<&str> = if keep_b { vec!["b", "a"] } else { vec!["a"] };
        let hash = ops::project(&rel, &attrs).unwrap();
        let spec = specops::project(&rel, &attrs).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn join_on_hash_matches_spec(r1 in arb_rel2("a", "a", "b"), r2 in arb_rel2("b", "c", "d")) {
        let hash = ops::join_on(&r1, &r2, &[("a", "c")]).unwrap();
        let spec = specops::join_on(&r1, &r2, &[("a", "c")]).unwrap();
        prop_assert_eq!(hash, spec);

        // The empty-`on` (cartesian product) shape as well.
        let hash = ops::join_on(&r1, &r2, &[]).unwrap();
        let spec = specops::join_on(&r1, &r2, &[]).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn two_column_join_hash_matches_spec(
        r1 in arb_rel2("a", "a", "b"),
        r2 in arb_rel2("b", "c", "d"),
    ) {
        let on = [("a", "c"), ("b", "d")];
        let hash = ops::join_on(&r1, &r2, &on).unwrap();
        let spec = specops::join_on(&r1, &r2, &on).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn group_by_hash_matches_spec(rel in arb_group_rel()) {
        let specs = [AggSpec::new(MonoidKind::Sum, "v")];
        let hash = ops::group_by(&rel, &["g"], &specs).unwrap();
        let spec = specops::group_by(&rel, &["g"], &specs).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn agg_all_hash_matches_spec(rel in arb_group_rel()) {
        let specs = [AggSpec::new(MonoidKind::Sum, "v")];
        let hash = ops::agg_all(&rel, &specs).unwrap();
        let spec = specops::agg_all(&rel, &specs).unwrap();
        prop_assert_eq!(hash, spec);
    }
}
