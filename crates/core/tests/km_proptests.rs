//! Property tests for the extended semiring `K^M` (`Km`): semiring and
//! δ-laws over randomly generated elements with genuine symbolic atoms, and
//! homomorphism-stability of the eager token normalization.

use aggprov_algebra::domain::Const;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::laws::{check_delta, check_semiring};
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{Bool, CommutativeSemiring, Nat};
use aggprov_algebra::tensor::Tensor;
use aggprov_core::km::{CmpPred, Km};
use proptest::prelude::*;

type P = Km<NatPoly>;

const VARS: [&str; 3] = ["x", "y", "z"];
const KINDS: [MonoidKind; 3] = [MonoidKind::Sum, MonoidKind::Min, MonoidKind::Max];

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

fn arb_tensor() -> impl Strategy<Value = (MonoidKind, Tensor<P, Const>)> {
    (
        0..KINDS.len(),
        prop::collection::vec((0..VARS.len(), prop::bool::ANY, -5i64..6), 0..3),
    )
        .prop_map(|(ki, terms)| {
            let kind = KINDS[ki];
            let tensor = Tensor::from_terms(
                &kind,
                terms.into_iter().map(|(vi, symbolic, value)| {
                    let coeff = if symbolic { tok(VARS[vi]) } else { P::one() };
                    (coeff, Const::int(value))
                }),
            );
            (kind, tensor)
        })
}

fn arb_km() -> impl Strategy<Value = P> {
    // Sums of products of: base tokens, δ-atoms, eq-atoms, cmp-atoms.
    let atom = prop_oneof![
        (0..VARS.len()).prop_map(|i| tok(VARS[i])),
        (0..VARS.len()).prop_map(|i| tok(VARS[i]).plus(&P::one()).delta()),
        (arb_tensor(), arb_tensor())
            .prop_map(|((k1, t1), (k2, t2))| { P::eq_token_mixed(k1, &t1, k2, &t2) }),
        (arb_tensor(), arb_tensor(), 0..3usize).prop_map(|((k1, t1), (k2, t2), p)| {
            let pred = [CmpPred::Lt, CmpPred::Le, CmpPred::Ne][p];
            P::cmp_token(pred, k1, &t1, k2, &t2)
        }),
        (0u64..3).prop_map(P::from_nat),
    ];
    prop::collection::vec(prop::collection::vec(atom, 1..3), 0..3).prop_map(|sums| {
        sums.into_iter().fold(P::zero(), |acc, prods| {
            acc.plus(&prods.into_iter().fold(P::one(), |a, b| a.times(&b)))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn km_semiring_laws(a in arb_km(), b in arb_km(), c in arb_km()) {
        check_semiring(&a, &b, &c).unwrap();
    }

    #[test]
    fn km_delta_laws(a in arb_km(), n in 0u64..4) {
        check_delta(&a, n).unwrap();
    }

    #[test]
    fn map_hom_is_a_semiring_homomorphism(
        a in arb_km(), b in arb_km(),
        vx in 0u64..3, vy in 0u64..3, vz in 0u64..3,
    ) {
        let val = Valuation::<Nat>::ones()
            .set("x", Nat(vx)).set("y", Nat(vy)).set("z", Nat(vz));
        let h = |p: &P| p.map_hom(&|q: &NatPoly| val.eval(q));
        prop_assert_eq!(h(&a.plus(&b)), h(&a).plus(&h(&b)));
        prop_assert_eq!(h(&a.times(&b)), h(&a).times(&h(&b)));
        prop_assert!(h(&P::zero()).is_zero());
        prop_assert!(h(&P::one()).is_one());
    }

    #[test]
    fn full_nat_valuations_collapse_everything(
        a in arb_km(),
        vx in 0u64..3, vy in 0u64..3, vz in 0u64..3,
    ) {
        // Proposition 4.4: with K' = ℕ (ι iso for every monoid) all atoms
        // resolve and K^M collapses to K'.
        let val = Valuation::<Nat>::ones()
            .set("x", Nat(vx)).set("y", Nat(vy)).set("z", Nat(vz));
        let image = a.map_hom(&|q: &NatPoly| val.eval(q));
        prop_assert!(image.try_collapse().is_some(), "unresolved: {image}");
    }

    #[test]
    fn hom_composition_commutes(
        a in arb_km(),
        vx in 0u64..3, vy in 0u64..3, vz in 0u64..3,
    ) {
        // (support ∘ count) = support-valuation, through all the atoms.
        let nat_val = Valuation::<Nat>::ones()
            .set("x", Nat(vx)).set("y", Nat(vy)).set("z", Nat(vz));
        let via_nat = a
            .map_hom(&|q: &NatPoly| nat_val.eval(q))
            .map_hom(&|n: &Nat| Bool(n.0 > 0));
        let bool_val = Valuation::<Bool>::ones()
            .set("x", Bool(vx > 0)).set("y", Bool(vy > 0)).set("z", Bool(vz > 0));
        let direct = a.map_hom(&|q: &NatPoly| bool_val.eval(q));
        // Both land in Km<Bool>; they agree whenever both collapse (they
        // may differ only in which symbolic atoms survived — and with SUM
        // tensors under B some do). Compare their collapses when present.
        if let (Some(x), Some(y)) = (via_nat.try_collapse(), direct.try_collapse()) {
            prop_assert_eq!(x, y);
        }
    }
}
