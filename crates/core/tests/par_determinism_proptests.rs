//! Parallel determinism: the partition-parallel operator variants
//! (`ops::*_opts`) must produce relations **bit-identical** to the literal
//! §4.3 reference path (`specops`) at every thread count.
//!
//! The generated relations mix ground and symbolic values (as in
//! `hash_vs_spec_proptests`), and the thread counts deliberately straddle
//! the input sizes: with up to 7-row relations, `threads = 2` splits real
//! work while `threads = 8` produces more shards than tuples — so empty
//! shards, single-tuple shards and the shard-order merge are all exercised
//! on every case. Dedicated tests pin the degenerate corners: empty
//! inputs, all-symbolic relations (an empty ground partition with a
//! populated fringe), and a larger deterministic workload where every
//! shard is genuinely busy.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::km::Km;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::par::ExecOptions;
use aggprov_core::{specops, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

/// The thread counts under test: serial, genuine splitting, and more
/// shards than tuples (empty shards).
const THREADS: [usize; 3] = [1, 2, 8];

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One generated cell (see `hash_vs_spec_proptests`): `(kind, var_index,
/// int_value)` with kind 0–5; 0–2 ground ints, 3 a ground string, 4–5 a
/// symbolic `SUM` tensor.
type RawVal = (u8, usize, i64);

fn decode_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    match kind {
        0..=2 => Value::int(n),
        3 => Value::str(if n % 2 == 0 { "s0" } else { "s1" }),
        _ => sym_val(vi, n),
    }
}

fn sym_val(vi: usize, n: i64) -> Value<P> {
    Value::agg_normalized(
        MonoidKind::Sum,
        Tensor::from_terms(
            &MonoidKind::Sum,
            [(tok(VARS[vi % VARS.len()]), Const::int(n))],
        ),
    )
}

fn raw_val() -> impl Strategy<Value = RawVal> {
    (0u8..6, 0..VARS.len(), -2i64..5)
}

fn rel_from(prefix: &str, schema: Schema, rows: Vec<Vec<Value<P>>>) -> MKRel<P> {
    Relation::from_rows(
        schema,
        rows.into_iter()
            .enumerate()
            .map(|(i, row)| (row, tok(&format!("{prefix}{i}")))),
    )
    .unwrap()
}

fn arb_rel2(
    prefix: &'static str,
    a: &'static str,
    b: &'static str,
) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7).prop_map(move |rows| {
        rel_from(
            prefix,
            Schema::new([a, b]).unwrap(),
            rows.into_iter()
                .map(|(x, y)| vec![decode_val(x), decode_val(y)])
                .collect(),
        )
    })
}

/// A `(group-key, numeric)` relation for the grouping tests (strings in
/// the aggregated column would be carrier-type errors on both paths).
fn arb_group_rel() -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7).prop_map(|rows| {
        rel_from(
            "g",
            Schema::new(["g", "v"]).unwrap(),
            rows.into_iter()
                .map(|(x, y)| {
                    let (kind, vi, n) = y;
                    let v = if kind <= 3 {
                        Value::int(n)
                    } else {
                        sym_val(vi, n)
                    };
                    vec![decode_val(x), v]
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_parallel_matches_spec(r1 in arb_rel2("a", "a", "b"), r2 in arb_rel2("b", "a", "b")) {
        let spec = specops::union(&r1, &r2).unwrap();
        for t in THREADS {
            let par = ops::union_opts(&r1, &r2, &ExecOptions::with_threads(t)).unwrap();
            prop_assert_eq!(&par, &spec, "threads = {}", t);
        }
    }

    #[test]
    fn project_parallel_matches_spec(rel in arb_rel2("a", "a", "b"), keep_b in prop::bool::ANY) {
        let attrs: Vec<&str> = if keep_b { vec!["b", "a"] } else { vec!["a"] };
        let spec = specops::project(&rel, &attrs).unwrap();
        for t in THREADS {
            let par = ops::project_opts(&rel, &attrs, &ExecOptions::with_threads(t)).unwrap();
            prop_assert_eq!(&par, &spec, "threads = {}", t);
        }
    }

    #[test]
    fn join_on_parallel_matches_spec(r1 in arb_rel2("a", "a", "b"), r2 in arb_rel2("b", "c", "d")) {
        let spec = specops::join_on(&r1, &r2, &[("a", "c")]).unwrap();
        let spec2 = specops::join_on(&r1, &r2, &[("a", "c"), ("b", "d")]).unwrap();
        for t in THREADS {
            let opts = ExecOptions::with_threads(t);
            let par = ops::join_on_opts(&r1, &r2, &[("a", "c")], &opts).unwrap();
            prop_assert_eq!(&par, &spec, "threads = {}", t);
            let par2 = ops::join_on_opts(&r1, &r2, &[("a", "c"), ("b", "d")], &opts).unwrap();
            prop_assert_eq!(&par2, &spec2, "two-column, threads = {}", t);
        }
    }

    #[test]
    fn group_by_parallel_matches_spec(rel in arb_group_rel()) {
        let specs = [AggSpec::new(MonoidKind::Sum, "v")];
        let spec = specops::group_by(&rel, &["g"], &specs).unwrap();
        for t in THREADS {
            let par =
                ops::group_by_opts(&rel, &["g"], &specs, &ExecOptions::with_threads(t)).unwrap();
            prop_assert_eq!(&par, &spec, "threads = {}", t);
        }
    }

    #[test]
    fn parallel_is_deterministic_across_thread_counts(
        r1 in arb_rel2("a", "a", "b"),
        r2 in arb_rel2("b", "a", "b"),
    ) {
        // threads = 2 vs threads = 8 directly (not just both-equal-spec):
        // the merge order itself must not leak into the result.
        let two = ops::union_opts(&r1, &r2, &ExecOptions::with_threads(2)).unwrap();
        let eight = ops::union_opts(&r1, &r2, &ExecOptions::with_threads(8)).unwrap();
        prop_assert_eq!(two, eight);
    }
}

fn sch(names: &[&str]) -> Schema {
    Schema::new(names.iter().copied()).unwrap()
}

/// Empty inputs at high thread counts: shard planning must degrade to one
/// (empty) shard instead of spawning workers over nothing.
#[test]
fn empty_inputs_at_high_thread_counts() {
    let empty: MKRel<P> = Relation::empty(sch(&["a", "b"]));
    let opts = ExecOptions::with_threads(8);
    assert!(ops::union_opts(&empty, &empty, &opts).unwrap().is_empty());
    assert!(ops::project_opts(&empty, &["a"], &opts).unwrap().is_empty());
    assert!(ops::join_on_opts(
        &empty,
        &empty.clone().with_schema(sch(&["c", "d"])).unwrap(),
        &[("a", "c")],
        &opts
    )
    .unwrap()
    .is_empty());
    let grouped =
        ops::group_by_opts(&empty, &["a"], &[AggSpec::new(MonoidKind::Sum, "b")], &opts).unwrap();
    assert!(grouped.is_empty());
}

/// All-symbolic relations: the ground partition is empty, so every shard
/// is empty and the whole computation runs on the sequential token path.
#[test]
fn all_symbolic_relations_match_spec_at_every_thread_count() {
    let rows: Vec<Vec<Value<P>>> = (0..5)
        .map(|i| vec![sym_val(i, i as i64), sym_val(i + 1, 2)])
        .collect();
    let r1 = rel_from("a", sch(&["a", "b"]), rows.clone());
    let r2 = rel_from("b", sch(&["a", "b"]), rows.into_iter().rev().collect());
    let spec_union = specops::union(&r1, &r2).unwrap();
    let spec_proj = specops::project(&r1, &["a"]).unwrap();
    let r2j = r2.clone().with_schema(sch(&["c", "d"])).unwrap();
    let spec_join = specops::join_on(&r1, &r2j, &[("a", "c")]).unwrap();
    let gspecs = [AggSpec::new(MonoidKind::Sum, "b")];
    let spec_group = specops::group_by(&r1, &["a"], &gspecs).unwrap();
    for t in THREADS {
        let opts = ExecOptions::with_threads(t);
        assert_eq!(ops::union_opts(&r1, &r2, &opts).unwrap(), spec_union);
        assert_eq!(ops::project_opts(&r1, &["a"], &opts).unwrap(), spec_proj);
        assert_eq!(
            ops::join_on_opts(&r1, &r2j, &[("a", "c")], &opts).unwrap(),
            spec_join
        );
        assert_eq!(
            ops::group_by_opts(&r1, &["a"], &gspecs, &opts).unwrap(),
            spec_group
        );
    }
}

/// A workload big enough that every shard at `threads = 8` is busy:
/// parallel results must equal the serial hash path (which the
/// `hash_vs_spec` suite already ties to the oracle) tuple for tuple.
#[test]
fn busy_shards_match_serial_hash_path() {
    let mut emp = Relation::empty(sch(&["emp", "dept", "sal"]));
    let mut state: u64 = 0xDEAD_BEEF;
    for i in 0..400 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let dept = (state >> 33) as i64 % 23;
        let sal = 10 + (state >> 17) as i64 % 90;
        emp.insert(
            vec![Value::int(i as i64), Value::int(dept), Value::int(sal)],
            tok(&format!("p{i}")),
        )
        .unwrap();
    }
    let mut dim = Relation::empty(sch(&["dept2", "region"]));
    for d in 0..23 {
        dim.insert(
            vec![Value::int(d), Value::int(d % 5)],
            tok(&format!("d{d}")),
        )
        .unwrap();
    }
    let serial = ExecOptions::serial();
    let par = ExecOptions::with_threads(8);
    assert_eq!(
        ops::join_on_opts(&emp, &dim, &[("dept", "dept2")], &par).unwrap(),
        ops::join_on_opts(&emp, &dim, &[("dept", "dept2")], &serial).unwrap()
    );
    let gspecs = [AggSpec::new(MonoidKind::Sum, "sal")];
    assert_eq!(
        ops::group_by_opts(&emp, &["dept"], &gspecs, &par).unwrap(),
        ops::group_by_opts(&emp, &["dept"], &gspecs, &serial).unwrap()
    );
    assert_eq!(
        ops::project_opts(&emp, &["dept"], &par).unwrap(),
        ops::project_opts(&emp, &["dept"], &serial).unwrap()
    );
    assert_eq!(
        ops::union_opts(&emp, &emp, &par).unwrap(),
        ops::union_opts(&emp, &emp, &serial).unwrap()
    );
}
