//! Property-tested equivalence between the remaining physical operators
//! ([`aggprov_core::ops`]) and their literal-spec oracles
//! ([`aggprov_core::specops`]): the extended annotation lookup, the
//! selection family, product, natural join, and single-spec aggregation.
//! Together with `hash_vs_spec_proptests.rs` (union, project, join_on,
//! group_by, agg_all) this gives every public operator in `core::ops` a
//! proptested `specops::` twin — the invariant `aggprov-lint`'s `oracle`
//! rule enforces.
//!
//! As in the sibling suite, relations mix ground constants with symbolic
//! `SUM` tensors so both the fast partitions and the token-weighted §4.3
//! paths are exercised, and equality is full structural equality — schema,
//! support, and every annotation, bit for bit. Where an operator's domain
//! excludes some generated inputs (ordering across types, symbolic natural
//! join keys), both paths must fail with the *same* error.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::km::{CmpPred, Km};
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::{specops, Value};
use aggprov_krel::relation::{Relation, Tuple};
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One generated cell, as in `hash_vs_spec_proptests.rs`: kind 0–2 ground
/// ints, 3 a ground string, 4–5 a symbolic `SUM` tensor.
type RawVal = (u8, usize, i64);

fn decode_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    match kind {
        0..=2 => Value::int(n),
        3 => Value::str(if n % 2 == 0 { "s0" } else { "s1" }),
        _ => Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        ),
    }
}

/// Numeric-only cell (for aggregated columns).
fn decode_num_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    if kind <= 3 {
        Value::int(n)
    } else {
        Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        )
    }
}

fn raw_val() -> impl Strategy<Value = RawVal> {
    (0u8..6, 0..VARS.len(), -2i64..5)
}

fn rel_from(prefix: &str, schema: Schema, rows: Vec<Vec<Value<P>>>) -> MKRel<P> {
    Relation::from_rows(
        schema,
        rows.into_iter()
            .enumerate()
            .map(|(i, row)| (row, tok(&format!("{prefix}{i}")))),
    )
    .unwrap()
}

fn arb_rel2(
    prefix: &'static str,
    a: &'static str,
    b: &'static str,
) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7).prop_map(move |rows| {
        rel_from(
            prefix,
            Schema::new([a, b]).unwrap(),
            rows.into_iter()
                .map(|(x, y)| vec![decode_val(x), decode_val(y)])
                .collect(),
        )
    })
}

/// Like [`arb_rel2`] but with an always-ground (int) second column — the
/// shape the natural-join success path needs on its shared attribute.
fn arb_rel2_ground_b(
    prefix: &'static str,
    a: &'static str,
    b: &'static str,
) -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), -2i64..3), 0..7).prop_map(move |rows| {
        rel_from(
            prefix,
            Schema::new([a, b]).unwrap(),
            rows.into_iter()
                .map(|(x, n)| vec![decode_val(x), Value::int(n)])
                .collect(),
        )
    })
}

/// A `(group-key, numeric)` relation for the aggregation tests.
fn arb_group_rel() -> impl Strategy<Value = MKRel<P>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7).prop_map(|rows| {
        rel_from(
            "g",
            Schema::new(["g", "v"]).unwrap(),
            rows.into_iter()
                .map(|(x, y)| vec![decode_val(x), decode_num_val(y)])
                .collect(),
        )
    })
}

fn arb_cmp() -> impl Strategy<Value = CmpPred> {
    prop_oneof![Just(CmpPred::Lt), Just(CmpPred::Le), Just(CmpPred::Ne)]
}

/// Asserts both paths agree: equal relations on success, the same error
/// (message and all) when the input is outside the operator's domain.
macro_rules! assert_paths_agree {
    ($hash:expr, $spec:expr) => {
        match ($hash, $spec) {
            (Ok(h), Ok(s)) => prop_assert_eq!(h, s),
            (Err(h), Err(s)) => prop_assert_eq!(h.to_string(), s.to_string()),
            (h, s) => prop_assert!(
                false,
                "paths diverge: hash ok={}, spec ok={}",
                h.is_ok(),
                s.is_ok()
            ),
        }
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn annotation_at_hash_matches_spec(
        rel in arb_rel2("a", "a", "b"),
        probe in (raw_val(), raw_val()),
        pick in prop::bool::ANY,
    ) {
        // Probe with a generated tuple — and, when possible, with an exact
        // support tuple (the case the structural fast path serves).
        let t = if pick && !rel.is_empty() {
            rel.iter().next().map(|(t, _)| t.clone()).unwrap()
        } else {
            Tuple::new(vec![decode_val(probe.0), decode_val(probe.1)])
        };
        let hash = ops::annotation_at(&rel, &t).unwrap();
        let spec = specops::annotation_at(&rel, &t).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn select_eq_hash_matches_spec(rel in arb_rel2("a", "a", "b"), v in raw_val()) {
        let value = decode_val(v);
        let hash = ops::select_eq(&rel, "a", &value).unwrap();
        let spec = specops::select_eq(&rel, "a", &value).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn select_attrs_eq_hash_matches_spec(rel in arb_rel2("a", "a", "b")) {
        let hash = ops::select_attrs_eq(&rel, "a", "b").unwrap();
        let spec = specops::select_attrs_eq(&rel, "a", "b").unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn select_with_token_hash_matches_spec(rel in arb_rel2("a", "a", "b")) {
        let one = Value::int(1);
        let hash = ops::select_with_token(&rel, |_, t| P::value_eq(t.get(0), &one)).unwrap();
        let spec = specops::select_with_token(&rel, |_, t| P::value_eq(t.get(0), &one)).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn select_cmp_hash_matches_spec(
        rel in arb_rel2("a", "a", "b"),
        pred in arb_cmp(),
        v in raw_val(),
    ) {
        let value = decode_val(v);
        // Ordering across value types is a type error — on both paths, at
        // the same tuple.
        assert_paths_agree!(
            ops::select_cmp(&rel, "a", pred, &value),
            specops::select_cmp(&rel, "a", pred, &value)
        );
    }

    #[test]
    fn select_attrs_cmp_hash_matches_spec(rel in arb_rel2("a", "a", "b"), pred in arb_cmp()) {
        assert_paths_agree!(
            ops::select_attrs_cmp(&rel, "a", pred, "b"),
            specops::select_attrs_cmp(&rel, "a", pred, "b")
        );
    }

    #[test]
    fn select_where_hash_matches_spec(rel in arb_rel2("a", "a", "b")) {
        let keep_ground = |_: &Schema, t: &Tuple<Value<P>>| Ok(!t.get(0).is_agg());
        let hash = ops::select_where(&rel, keep_ground).unwrap();
        let spec = specops::select_where(&rel, keep_ground).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn product_hash_matches_spec(r1 in arb_rel2("a", "a", "b"), r2 in arb_rel2("b", "c", "d")) {
        let hash = ops::product(&r1, &r2).unwrap();
        let spec = specops::product(&r1, &r2).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn natural_join_hash_matches_spec(
        r1 in arb_rel2_ground_b("a", "a", "b"),
        r2 in arb_rel2_ground_b("b", "c", "b"),
    ) {
        // Shared attribute `b` is ground on both sides: the success path.
        let hash = ops::natural_join(&r1, &r2).unwrap();
        let spec = specops::natural_join(&r1, &r2).unwrap();
        prop_assert_eq!(hash, spec);
    }

    #[test]
    fn natural_join_rejects_symbolic_keys_on_both_paths(
        r1 in arb_rel2("a", "a", "b"),
        r2 in arb_rel2("b", "c", "b"),
    ) {
        // Shared attribute `b` may be symbolic here; when it is, both
        // paths must raise the same rename-and-join_on error.
        assert_paths_agree!(ops::natural_join(&r1, &r2), specops::natural_join(&r1, &r2));
    }

    #[test]
    fn agg_hash_matches_spec(rel in arb_group_rel()) {
        let spec_one = AggSpec::new(MonoidKind::Sum, "v");
        let hash = ops::agg(&rel, spec_one).unwrap();
        let spec = specops::agg(&rel, spec_one).unwrap();
        prop_assert_eq!(hash, spec);
    }
}
