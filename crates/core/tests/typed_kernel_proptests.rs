//! Property tests for the typed columnar storage and its monomorphic
//! kernels: `TypedColumn` round-trips (unboxed `i64` runs, dictionary
//! re-materialization, mixed-type demotion to boxed) must be lossless,
//! and the typed fast paths must be **bit-identical** to both the forced
//! boxed baseline (`ColumnLayout::boxed()`, the `AGGPROV_TYPED=0` path)
//! and the row-at-a-time `ops`/`specops` reference — at
//! `threads ∈ {1, 4}`, so the sharded selection-vector kernels are under
//! the same oracle as the serial loops.

use aggprov_algebra::domain::Const;
use aggprov_algebra::num::Num;
use aggprov_algebra::poly::NatPoly;
use aggprov_core::km::{CmpPred, Km};
use aggprov_core::ops::batch::{hash_join, BatchCmp, BatchOperand, Chunk};
use aggprov_core::ops::{self, MKRel};
use aggprov_core::par::ExecOptions;
use aggprov_core::{specops, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use aggprov_krel::typed::{ColHint, ColumnLayout, TypedColumn};
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const STRS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One generated constant: integers dominate (the unboxed run), strings
/// share a small pool (real dictionaries), and the tail exercises the
/// boxed fallback — bools, non-integer rationals, infinities.
type RawConst = (u8, i64);

fn decode_const(raw: RawConst) -> Const {
    let (kind, n) = raw;
    match kind {
        0..=3 => Const::int(n),
        4..=6 => Const::str(STRS[(n.rem_euclid(4)) as usize]),
        7 => Const::Bool(n % 2 == 0),
        8 => Const::Num(Num::ratio(2 * n + 1, 2)),
        _ => Const::Num(if n % 2 == 0 { Num::PosInf } else { Num::NegInf }),
    }
}

fn raw_const() -> impl Strategy<Value = RawConst> {
    (0u8..10, -3i64..6)
}

/// A single-variant generator (all-int or all-string columns), for the
/// typed fast paths proper.
fn raw_int() -> impl Strategy<Value = RawConst> {
    (0u8..4, -3i64..6)
}

fn raw_str() -> impl Strategy<Value = RawConst> {
    (4u8..7, -3i64..6)
}

fn rel_from(prefix: &str, schema: Schema, rows: Vec<Vec<Const>>) -> MKRel<P> {
    Relation::from_rows(
        schema,
        rows.into_iter().enumerate().map(|(i, row)| {
            (
                row.into_iter().map(Value::Const).collect::<Vec<_>>(),
                tok(&format!("{prefix}{i}")),
            )
        }),
    )
    .unwrap()
}

/// Asserts a typed filter, its boxed twin, and the `ops` oracle agree —
/// Ok against Ok bit for bit, or all three erroring together.
fn check_filter(rel: &MKRel<P>, col: usize, attr: &str, cmp: BatchCmp, lit: Const) {
    let value = Value::Const(lit.clone());
    let want = match cmp {
        BatchCmp::Eq => ops::select_eq(rel, attr, &value),
        BatchCmp::Pred(p) => ops::select_cmp(rel, attr, p, &value),
    };
    for layout in [ColumnLayout::typed(), ColumnLayout::boxed()] {
        for threads in [1usize, 4] {
            let opts = ExecOptions::with_threads(threads);
            let mut chunk = Chunk::from_relation_with(rel, &layout);
            let got = chunk
                .filter(
                    &BatchOperand::Col(col),
                    cmp,
                    &BatchOperand::Lit(lit.clone()),
                    &opts,
                )
                .and_then(|()| chunk.into_relation());
            match (&got, &want) {
                (Ok(g), Ok(w)) => assert_eq!(g, w, "layout {layout:?} threads {threads}"),
                (Err(_), Err(_)) => {}
                _ => panic!("paths disagree on error: batch {got:?} vs ops {want:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn typed_column_round_trips_all_variants(vals in prop::collection::vec(raw_const(), 0..40)) {
        // from_consts → to_consts is the identity whatever variant the
        // probe (and any mid-stream demotion) lands on.
        let consts: Vec<Const> = vals.into_iter().map(decode_const).collect();
        let col = TypedColumn::from_consts(consts.clone());
        prop_assert_eq!(col.len(), consts.len());
        prop_assert_eq!(col.to_consts(), consts.clone());
        // Per-row access agrees with the bulk path, and one-past-the-end
        // is None, not a panic.
        for (r, c) in consts.iter().enumerate() {
            prop_assert_eq!(col.get(r).as_ref(), Some(c));
        }
        prop_assert!(col.get(consts.len()).is_none());
        // Gather of the reversed row set re-materializes losslessly
        // (dictionary columns share their dictionary through it).
        let rows: Vec<u32> = (0..consts.len() as u32).rev().collect();
        let gathered = col.gather(&rows).expect("rows in range");
        let mut rev = consts.clone();
        rev.reverse();
        prop_assert_eq!(gathered.to_consts(), rev);
    }

    #[test]
    fn relation_batch_round_trip_is_lossless(
        rows in prop::collection::vec((raw_const(), raw_const(), raw_const()), 0..12),
    ) {
        // Relation → typed chunk → Relation is the identity, whatever mix
        // of variants the three columns probe into; and the typed and
        // boxed layouts materialize the identical relation.
        let schema = Schema::new(["a", "b", "c"]).unwrap();
        let rel = rel_from(
            "t",
            schema,
            rows.into_iter()
                .map(|(x, y, z)| vec![decode_const(x), decode_const(y), decode_const(z)])
                .collect(),
        );
        let typed = Chunk::from_relation_with(&rel, &ColumnLayout::typed())
            .into_relation()
            .unwrap();
        prop_assert_eq!(&typed, &rel);
        let boxed = Chunk::from_relation_with(&rel, &ColumnLayout::boxed())
            .into_relation()
            .unwrap();
        prop_assert_eq!(&boxed, &rel);
        // A catalog hint that mispredicts the data (everything hinted
        // Num) must demote gracefully, never corrupt.
        let hinted = Chunk::from_relation_with(
            &rel,
            &ColumnLayout::with_hints(vec![Some(ColHint::Num); 3]),
        )
        .into_relation()
        .unwrap();
        prop_assert_eq!(&hinted, &rel);
    }

    #[test]
    fn typed_filter_matches_boxed_and_ops(
        rows in prop::collection::vec((raw_int(), raw_str()), 0..14),
        lit in raw_const(),
        which in 0u8..4,
    ) {
        // Column 0 is an unboxed i64 run, column 1 a dictionary column;
        // the literal ranges over every constant kind, so the compiled
        // tests cover same-type, cross-type (lazy errors), non-integer
        // rational folding and ±∞ folding.
        let schema = Schema::new(["a", "b"]).unwrap();
        let rel = rel_from(
            "t",
            schema,
            rows.into_iter()
                .map(|(x, y)| vec![decode_const(x), decode_const(y)])
                .collect(),
        );
        let cmp = match which {
            0 => BatchCmp::Eq,
            1 => BatchCmp::Pred(CmpPred::Lt),
            2 => BatchCmp::Pred(CmpPred::Le),
            _ => BatchCmp::Pred(CmpPred::Ne),
        };
        let lit = decode_const(lit);
        check_filter(&rel, 0, "a", cmp, lit.clone());
        check_filter(&rel, 1, "b", cmp, lit);
    }

    #[test]
    fn typed_join_matches_boxed_and_specops(
        l_rows in prop::collection::vec((raw_int(), raw_str()), 0..10),
        r_rows in prop::collection::vec((raw_int(), raw_str()), 0..10),
        on_str in prop::bool::ANY,
    ) {
        // Join on the i64 column or the dictionary column: the integer
        // hash index and the dictionary translation table against the
        // boxed Const index and the literal §4.3 join.
        let l = rel_from(
            "l",
            Schema::new(["a", "b"]).unwrap(),
            l_rows
                .into_iter()
                .map(|(x, y)| vec![decode_const(x), decode_const(y)])
                .collect(),
        );
        let r = rel_from(
            "r",
            Schema::new(["c", "d"]).unwrap(),
            r_rows
                .into_iter()
                .map(|(x, y)| vec![decode_const(x), decode_const(y)])
                .collect(),
        );
        let (on_idx, on_names) = if on_str {
            ([(1usize, 1usize)], [("b", "d")])
        } else {
            ([(0usize, 0usize)], [("a", "c")])
        };
        let schema = Schema::new(["a", "b", "c", "d"]).unwrap();
        let want = specops::join_on(&l, &r, &on_names).unwrap();
        for layout in [ColumnLayout::typed(), ColumnLayout::boxed()] {
            for threads in [1usize, 4] {
                let got = hash_join(
                    Chunk::from_relation_with(&l, &layout),
                    Chunk::from_relation_with(&r, &layout),
                    &on_idx,
                    schema.clone(),
                    &ExecOptions::with_threads(threads),
                )
                .unwrap()
                .into_relation()
                .unwrap();
                prop_assert_eq!(&got, &want, "layout {:?} threads {}", layout, threads);
            }
        }
    }
}

/// Above the sharding threshold (8192 rows), the fan-out kernels must be
/// bit-identical to the serial loops — including which row's error wins
/// when a cross-type ordering appears mid-column.
#[test]
fn sharded_kernels_match_serial_above_threshold() {
    const N: i64 = 20_000;
    let schema = Schema::new(["a", "b"]).unwrap();
    let rel = rel_from(
        "t",
        schema,
        (0..N)
            .map(|i| vec![Const::int(i % 257), Const::str(STRS[(i % 4) as usize])])
            .collect(),
    );
    let dim = rel_from(
        "d",
        Schema::new(["c", "e"]).unwrap(),
        (0..128)
            .map(|i| vec![Const::int(i), Const::int(i * 10)])
            .collect(),
    );
    let out_schema = Schema::new(["a", "b", "c", "e"]).unwrap();
    let mut results = Vec::new();
    for layout in [ColumnLayout::typed(), ColumnLayout::boxed()] {
        for threads in [1usize, 4] {
            let opts = ExecOptions::with_threads(threads);
            let mut chunk = Chunk::from_relation_with(&rel, &layout);
            chunk
                .filter(
                    &BatchOperand::Col(0),
                    BatchCmp::Pred(CmpPred::Lt),
                    &BatchOperand::Lit(Const::int(128)),
                    &opts,
                )
                .unwrap();
            chunk
                .filter(
                    &BatchOperand::Col(1),
                    BatchCmp::Pred(CmpPred::Ne),
                    &BatchOperand::Lit(Const::str("delta")),
                    &opts,
                )
                .unwrap();
            let joined = hash_join(
                chunk,
                Chunk::from_relation_with(&dim, &layout),
                &[(0, 0)],
                out_schema.clone(),
                &opts,
            )
            .unwrap()
            .into_relation()
            .unwrap();
            results.push(joined);
        }
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1], "layout/thread variant diverged");
    }
}
