//! Parsing of `PROVENANCE …` annotations for the supported semirings.

use aggprov_algebra::num::Num;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{
    Bool, CommutativeSemiring, IntZ, Nat, Security, Tropical, Viterbi,
};
use aggprov_algebra::sn::Sn;
use aggprov_core::km::Km;

/// Parses the text after `PROVENANCE` in an `INSERT` into an annotation.
///
/// What counts as valid text depends on the semiring: a token name for
/// provenance polynomials, a multiplicity for `ℕ`, a clearance level for the
/// security semirings, a cost for the tropical semiring, a confidence for
/// Viterbi. `None` means the text is not meaningful for this semiring.
pub trait ParseAnnotation: Sized {
    /// Parses an annotation literal.
    fn parse_annotation(text: &str) -> Option<Self>;
}

impl ParseAnnotation for Nat {
    fn parse_annotation(text: &str) -> Option<Self> {
        text.parse().ok().map(Nat)
    }
}

impl ParseAnnotation for IntZ {
    fn parse_annotation(text: &str) -> Option<Self> {
        text.parse().ok().map(IntZ)
    }
}

impl ParseAnnotation for Bool {
    fn parse_annotation(text: &str) -> Option<Self> {
        if text.eq_ignore_ascii_case("true") {
            Some(Bool(true))
        } else if text.eq_ignore_ascii_case("false") {
            Some(Bool(false))
        } else {
            text.parse::<u64>().ok().map(|n| Bool(n != 0))
        }
    }
}

fn parse_level(text: &str) -> Option<Security> {
    match text.to_ascii_uppercase().as_str() {
        "PUBLIC" | "1S" => Some(Security::Public),
        "CONFIDENTIAL" | "C" => Some(Security::Confidential),
        "SECRET" | "S" => Some(Security::Secret),
        "TOPSECRET" | "TOP_SECRET" | "T" => Some(Security::TopSecret),
        "NEVER" | "0S" => Some(Security::Never),
        _ => None,
    }
}

impl ParseAnnotation for Security {
    fn parse_annotation(text: &str) -> Option<Self> {
        parse_level(text)
    }
}

impl ParseAnnotation for Sn {
    fn parse_annotation(text: &str) -> Option<Self> {
        if let Some(level) = parse_level(text) {
            return Some(Sn::level(level));
        }
        text.parse::<u64>().ok().map(Sn::from_nat)
    }
}

impl ParseAnnotation for Tropical {
    fn parse_annotation(text: &str) -> Option<Self> {
        if text.eq_ignore_ascii_case("inf") {
            return Some(Tropical::Inf);
        }
        text.parse().ok().map(Tropical::Fin)
    }
}

impl ParseAnnotation for Viterbi {
    fn parse_annotation(text: &str) -> Option<Self> {
        let n = Num::parse(text)?;
        (Num::ZERO <= n && n <= Num::ONE).then(|| Viterbi::new(n))
    }
}

impl ParseAnnotation for NatPoly {
    fn parse_annotation(text: &str) -> Option<Self> {
        if let Ok(n) = text.parse::<u64>() {
            return Some(NatPoly::from_nat(n));
        }
        let valid = !text.is_empty() && text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        valid.then(|| NatPoly::token(text))
    }
}

impl<K: CommutativeSemiring + ParseAnnotation> ParseAnnotation for Km<K> {
    fn parse_annotation(text: &str) -> Option<Self> {
        K::parse_annotation(text).map(Km::embed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_per_semiring() {
        assert_eq!(Nat::parse_annotation("3"), Some(Nat(3)));
        assert_eq!(Nat::parse_annotation("p1"), None);
        assert_eq!(Bool::parse_annotation("true"), Some(Bool(true)));
        assert_eq!(Security::parse_annotation("secret"), Some(Security::Secret));
        assert_eq!(Tropical::parse_annotation("inf"), Some(Tropical::Inf));
        assert_eq!(Viterbi::parse_annotation("0.5"), Some(Viterbi::ratio(1, 2)));
        assert_eq!(Viterbi::parse_annotation("2"), None);
        assert_eq!(NatPoly::parse_annotation("p1"), Some(NatPoly::token("p1")));
        assert_eq!(
            Km::<NatPoly>::parse_annotation("p1"),
            Some(Km::embed(NatPoly::token("p1")))
        );
        assert_eq!(
            Sn::parse_annotation("T"),
            Some(Sn::level(Security::TopSecret))
        );
    }
}
