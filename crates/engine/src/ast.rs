//! Abstract syntax for the SQL-ish query language.
//!
//! The surface language covers exactly the query classes the paper treats:
//! SPJU (`SELECT`/`WHERE`/`JOIN`/`UNION`), simple aggregation
//! (`SELECT AGG(x) …`, `GROUP BY`), nested aggregation (`HAVING`, joins and
//! filters over aggregate results) and difference (`EXCEPT`).

use aggprov_algebra::num::Num;

/// A top-level statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `CREATE TABLE name (col TYPE, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column names and types.
        columns: Vec<(String, ColType)>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name VALUES (lit, …) [PROVENANCE ann]`
    Insert {
        /// Table name.
        table: String,
        /// Row literals.
        values: Vec<Lit>,
        /// Optional annotation text (token name, multiplicity, clearance…).
        provenance: Option<String>,
    },
    /// A query.
    Query(Query),
}

/// Column types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColType {
    /// Strings.
    Text,
    /// Exact numbers.
    Num,
    /// Booleans.
    Bool,
}

/// A query: a select body possibly combined with set operations.
#[derive(Clone, PartialEq, Debug)]
pub enum Query {
    /// A plain `SELECT`.
    Select(Box<SelectStmt>),
    /// `left UNION right` or `left EXCEPT right`.
    SetOp {
        /// The operation.
        op: SetOp,
        /// Left operand.
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
    },
}

/// Set operations between queries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SetOp {
    /// Annotated union (`+_K`).
    Union,
    /// The paper's hybrid difference (§5).
    Except,
}

/// A `SELECT` statement.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SelectStmt {
    /// Selected items.
    pub items: Vec<SelectItem>,
    /// `FROM` table references (cross-joined).
    pub from: Vec<TableRef>,
    /// `JOIN … ON …` clauses, applied left to right.
    pub joins: Vec<Join>,
    /// `WHERE` conjuncts.
    pub where_: Vec<Condition>,
    /// `GROUP BY` columns.
    pub group_by: Vec<ColRef>,
    /// `HAVING` conjuncts (over output columns).
    pub having: Vec<Condition>,
}

/// One item of the `SELECT` list.
#[derive(Clone, PartialEq, Debug)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A column, with optional `AS` alias.
    Col(ColRef, Option<String>),
    /// An aggregate `FUNC(arg)`, with optional `AS` alias.
    Agg(AggFunc, AggArg, Option<String>),
}

/// Aggregation functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// Summation (monoid `SUM`).
    Sum,
    /// Minimum (monoid `MIN`).
    Min,
    /// Maximum (monoid `MAX`).
    Max,
    /// Product (monoid `PROD`).
    Prod,
    /// Count (summation of `1`s, paper footnote 6).
    Count,
    /// Average (`SUM`/`COUNT`, resolvable results only).
    Avg,
    /// Boolean or (monoid `B̂`).
    BoolOr,
}

impl AggFunc {
    /// The SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Prod => "PROD",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::BoolOr => "BOOL_OR",
        }
    }
}

/// The argument of an aggregate.
#[derive(Clone, PartialEq, Debug)]
pub enum AggArg {
    /// `COUNT(*)`
    Star,
    /// An ordinary column.
    Col(ColRef),
}

/// A possibly-qualified column reference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColRef {
    /// Optional table / alias qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// An unqualified reference.
    pub fn bare(column: &str) -> Self {
        ColRef {
            table: None,
            column: column.to_string(),
        }
    }

    /// The display name (`t.c` or `c`).
    pub fn display(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// A table reference with optional alias.
#[derive(Clone, PartialEq, Debug)]
pub struct TableRef {
    /// The source: a named table or a parenthesized subquery.
    pub source: TableSource,
    /// The alias (defaults to the table name; required for subqueries).
    pub alias: Option<String>,
}

/// The source of a table reference.
#[derive(Clone, PartialEq, Debug)]
pub enum TableSource {
    /// A named base table.
    Named(String),
    /// A derived table `(SELECT …)` — this is how nested aggregation
    /// (paper §4, Example 4.5) is written in SQL.
    Subquery(Box<Query>),
}

impl TableRef {
    /// The effective alias.
    pub fn effective_alias(&self) -> &str {
        if let Some(a) = &self.alias {
            return a;
        }
        match &self.source {
            TableSource::Named(n) => n,
            TableSource::Subquery(_) => "__subquery",
        }
    }
}

/// One `JOIN table ON l = r [AND …]` clause.
#[derive(Clone, PartialEq, Debug)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// Equality pairs from the `ON` clause.
    pub on: Vec<(ColRef, ColRef)>,
}

/// A comparison condition.
#[derive(Clone, PartialEq, Debug)]
pub struct Condition {
    /// Left operand.
    pub left: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
}

/// A condition operand.
#[derive(Clone, PartialEq, Debug)]
pub enum Operand {
    /// A column.
    Col(ColRef),
    /// A literal.
    Lit(Lit),
    /// A prepared-statement placeholder `$n` (1-based), bound at
    /// [`execute_with`](crate::database::Prepared::execute_with) time.
    Param(u32),
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=` — works on symbolic aggregates (equality tokens).
    Eq,
    /// `<>` — boolean complement of `=` on resolvable values only.
    Ne,
    /// `<` (resolvable values only).
    Lt,
    /// `<=` (resolvable values only).
    Le,
    /// `>` (resolvable values only).
    Gt,
    /// `>=` (resolvable values only).
    Ge,
}

/// A literal value.
#[derive(Clone, PartialEq, Debug)]
pub enum Lit {
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}
