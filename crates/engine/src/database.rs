//! The annotated database: catalog, DDL/DML execution, and queries.

use crate::annot::ParseAnnotation;
use crate::ast::{ColType, Lit, Stmt};
use crate::exec::run_query;
use crate::parser::parse_script;
use aggprov_algebra::domain::Const;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::ops::MKRel;
use aggprov_core::Value;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use std::collections::BTreeMap;

/// A database of `(M, K)`-relations annotated with `A`.
///
/// The annotation semiring is chosen at the type level:
/// [`ProvDb`](crate::ProvDb) tracks full aggregate provenance, while
/// `Database<Nat>` runs plain bag semantics, `Database<Security>` security
/// clearances, and so on — the factorization property in action.
#[derive(Clone, Default, Debug)]
pub struct Database<A: AggAnnotation + ParseAnnotation> {
    tables: BTreeMap<String, TableEntry<A>>,
}

#[derive(Clone, Debug)]
struct TableEntry<A: AggAnnotation> {
    types: Option<Vec<ColType>>,
    rel: MKRel<A>,
}

impl<A: AggAnnotation + ParseAnnotation> Database<A> {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            tables: BTreeMap::new(),
        }
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Result<&MKRel<A>> {
        self.tables
            .get(name)
            .map(|t| &t.rel)
            .ok_or_else(|| RelError::UnknownAttr(format!("table `{name}`")))
    }

    /// Registers (or replaces) a table built programmatically.
    pub fn register(&mut self, name: &str, rel: MKRel<A>) {
        self.tables
            .insert(name.to_string(), TableEntry { types: None, rel });
    }

    /// The table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Executes a script of `;`-separated statements. Returns the result of
    /// the last query in the script, if any.
    pub fn exec(&mut self, script: &str) -> Result<Option<MKRel<A>>> {
        let stmts = parse_script(script)?;
        let mut last = None;
        for stmt in stmts {
            match stmt {
                Stmt::CreateTable { name, columns } => {
                    if self.tables.contains_key(&name) {
                        return Err(RelError::DuplicateAttr(format!("table `{name}`")));
                    }
                    let schema = Schema::new(columns.iter().map(|(n, _)| n.as_str()))?;
                    self.tables.insert(
                        name,
                        TableEntry {
                            types: Some(columns.into_iter().map(|(_, t)| t).collect()),
                            rel: Relation::empty(schema),
                        },
                    );
                }
                Stmt::DropTable { name } => {
                    self.tables
                        .remove(&name)
                        .ok_or_else(|| RelError::UnknownAttr(format!("table `{name}`")))?;
                }
                Stmt::Insert {
                    table,
                    values,
                    provenance,
                } => self.insert_row(&table, &values, provenance.as_deref())?,
                Stmt::Query(q) => {
                    last = Some(run_query(self, &q)?);
                }
            }
        }
        Ok(last)
    }

    /// Runs a single query (read-only).
    pub fn query(&self, sql: &str) -> Result<MKRel<A>> {
        let q = crate::parser::parse_query(sql)?;
        run_query(self, &q)
    }

    fn insert_row(&mut self, table: &str, values: &[Lit], provenance: Option<&str>) -> Result<()> {
        let ann = match provenance {
            None => A::one(),
            Some(text) => A::parse_annotation(text).ok_or_else(|| {
                RelError::Unsupported(format!(
                    "`{text}` is not a valid annotation for this semiring"
                ))
            })?,
        };
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| RelError::UnknownAttr(format!("table `{table}`")))?;
        if let Some(types) = &entry.types {
            if types.len() != values.len() {
                return Err(RelError::ArityMismatch {
                    expected: types.len(),
                    got: values.len(),
                });
            }
            for (lit, ty) in values.iter().zip(types) {
                let ok = matches!(
                    (lit, ty),
                    (Lit::Num(_), ColType::Num)
                        | (Lit::Str(_), ColType::Text)
                        | (Lit::Bool(_), ColType::Bool)
                );
                if !ok {
                    return Err(RelError::TypeError(format!(
                        "literal {lit:?} does not match declared column type {ty:?}"
                    )));
                }
            }
        }
        let row: Vec<Value<A>> = values
            .iter()
            .map(|l| {
                Value::Const(match l {
                    Lit::Num(n) => Const::Num(*n),
                    Lit::Str(s) => Const::str(s),
                    Lit::Bool(b) => Const::Bool(*b),
                })
            })
            .collect();
        entry.rel.insert(row, ann)
    }
}
