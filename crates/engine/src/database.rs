//! The annotated database: catalog, DDL/DML execution, prepared
//! statements, and queries.

use crate::annot::ParseAnnotation;
use crate::ast::{ColType, Lit, Stmt};
use crate::exec::execute_plan;
use crate::parser::parse_script;
use crate::phys::PhysNode;
use crate::plan::{lower_query, Plan};
use crate::result::ResultSet;
use aggprov_algebra::domain::Const;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::ops::MKRel;
use aggprov_core::par::ExecOptions;
use aggprov_core::Value;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A database of `(M, K)`-relations annotated with `A`.
///
/// The annotation semiring is chosen at the type level:
/// [`ProvDb`](crate::ProvDb) tracks full aggregate provenance, while
/// `Database<Nat>` runs plain bag semantics, `Database<Security>` security
/// clearances, and so on — the factorization property in action.
#[derive(Clone, Default, Debug)]
pub struct Database<A: AggAnnotation + ParseAnnotation> {
    tables: BTreeMap<String, TableEntry<A>>,
}

#[derive(Clone, Debug)]
struct TableEntry<A: AggAnnotation> {
    types: Option<Vec<ColType>>,
    rel: MKRel<A>,
}

impl<A: AggAnnotation + ParseAnnotation> Database<A> {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            tables: BTreeMap::new(),
        }
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Result<&MKRel<A>> {
        self.tables
            .get(name)
            .map(|t| &t.rel)
            .ok_or_else(|| RelError::UnknownAttr(format!("table `{name}`")))
    }

    /// Registers (or replaces) a table built programmatically.
    pub fn register(&mut self, name: &str, rel: MKRel<A>) {
        self.tables
            .insert(name.to_string(), TableEntry { types: None, rel });
    }

    /// The table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Executes a script of `;`-separated statements. Returns the result of
    /// the last query in the script, if any.
    pub fn exec(&mut self, script: &str) -> Result<Option<MKRel<A>>> {
        let stmts = parse_script(script)?;
        let mut last = None;
        for stmt in stmts {
            match stmt {
                Stmt::CreateTable { name, columns } => {
                    if self.tables.contains_key(&name) {
                        return Err(RelError::DuplicateAttr(format!("table `{name}`")));
                    }
                    let schema = Schema::new(columns.iter().map(|(n, _)| n.as_str()))?;
                    self.tables.insert(
                        name,
                        TableEntry {
                            types: Some(columns.into_iter().map(|(_, t)| t).collect()),
                            rel: Relation::empty(schema),
                        },
                    );
                }
                Stmt::DropTable { name } => {
                    self.tables
                        .remove(&name)
                        .ok_or_else(|| RelError::UnknownAttr(format!("table `{name}`")))?;
                }
                Stmt::Insert {
                    table,
                    values,
                    provenance,
                } => self.insert_row(&table, &values, provenance.as_deref())?,
                Stmt::Query(q) => {
                    let lowered = lower_query(self, &q)?;
                    if lowered.param_count > 0 {
                        return Err(RelError::Unsupported(
                            "`$n` parameters require prepare()/execute_with()".into(),
                        ));
                    }
                    last = Some(execute_plan(
                        self,
                        &crate::phys::lower(&lowered.plan),
                        &[],
                        0,
                        &ExecOptions::from_env()?,
                    )?);
                }
            }
        }
        Ok(last)
    }

    /// Prepares a query: parses, lowers to the logical-plan IR, resolves
    /// and validates every name — once. The returned [`Prepared`] can be
    /// executed any number of times (with different `$n` parameters)
    /// without re-parsing or re-resolving.
    pub fn prepare(&self, sql: &str) -> Result<Prepared<'_, A>> {
        let q = crate::parser::parse_query(sql)?;
        let lowered = lower_query(self, &q)?;
        let phys = crate::phys::lower(&lowered.plan);
        Ok(Prepared {
            db: self,
            plan: Arc::new(lowered.plan),
            phys: Arc::new(phys),
            param_count: lowered.param_count,
        })
    }

    /// Runs a single query (read-only). Equivalent to
    /// `prepare(sql)?.execute()?.into_relation()` — kept as the one-shot
    /// convenience entry point.
    pub fn query(&self, sql: &str) -> Result<MKRel<A>> {
        Ok(self.prepare(sql)?.execute()?.into_relation())
    }

    fn insert_row(&mut self, table: &str, values: &[Lit], provenance: Option<&str>) -> Result<()> {
        let ann = match provenance {
            None => A::one(),
            Some(text) => A::parse_annotation(text).ok_or_else(|| {
                RelError::Unsupported(format!(
                    "`{text}` is not a valid annotation for this semiring"
                ))
            })?,
        };
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| RelError::UnknownAttr(format!("table `{table}`")))?;
        if let Some(types) = &entry.types {
            if types.len() != values.len() {
                return Err(RelError::ArityMismatch {
                    expected: types.len(),
                    got: values.len(),
                });
            }
            for (lit, ty) in values.iter().zip(types) {
                let ok = matches!(
                    (lit, ty),
                    (Lit::Num(_), ColType::Num)
                        | (Lit::Str(_), ColType::Text)
                        | (Lit::Bool(_), ColType::Bool)
                );
                if !ok {
                    return Err(RelError::TypeError(format!(
                        "literal {lit:?} does not match declared column type {ty:?}"
                    )));
                }
            }
        }
        let row: Vec<Value<A>> = values
            .iter()
            .map(|l| {
                Value::Const(match l {
                    Lit::Num(n) => Const::Num(*n),
                    Lit::Str(s) => Const::str(s),
                    Lit::Bool(b) => Const::Bool(*b),
                })
            })
            .collect();
        entry.rel.insert(row, ann)
    }
}

/// A prepared query: the logical plan with all names resolved — plus its
/// lowered physical form — bound to the database it was prepared against.
///
/// Executing a `Prepared` drives the physical pipeline lowered from the
/// stored [`Plan`] at prepare time — no re-parsing, no re-resolution, no
/// per-execution position lookups. Because it borrows the database
/// immutably, the catalog cannot change under a live prepared statement
/// (the borrow checker enforces what other engines need epoch counters
/// for).
///
/// ```
/// use aggprov_engine::ProvDb;
/// use aggprov_algebra::domain::Const;
///
/// let mut db = ProvDb::new();
/// db.exec(
///     "CREATE TABLE r (dept TEXT, sal NUM);
///      INSERT INTO r VALUES ('d1', 20) PROVENANCE p1;
///      INSERT INTO r VALUES ('d2', 30) PROVENANCE p2;",
/// )
/// .unwrap();
///
/// let by_dept = db.prepare("SELECT sal FROM r WHERE dept = $1").unwrap();
/// let d1 = by_dept.execute_with(&[Const::str("d1")]).unwrap();
/// let d2 = by_dept.execute_with(&[Const::str("d2")]).unwrap();
/// assert_eq!(d1.len(), 1);
/// assert_eq!(d2.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Prepared<'db, A: AggAnnotation + ParseAnnotation> {
    db: &'db Database<A>,
    plan: Arc<Plan>,
    phys: Arc<PhysNode>,
    param_count: usize,
}

impl<'db, A: AggAnnotation + ParseAnnotation> Prepared<'db, A> {
    /// The logical plan this statement executes.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// How many `$n` parameters the query expects.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The result schema (known without executing).
    pub fn schema(&self) -> &Schema {
        self.plan.schema()
    }

    /// Executes the plan. Fails if the query has `$n` placeholders (use
    /// [`execute_with`](Prepared::execute_with)).
    ///
    /// Physical operators run partition-parallel with the environment's
    /// thread count: `AGGPROV_THREADS` when set (an unparseable value is a
    /// loud [`RelError::InvalidEnv`]), otherwise the machine's available
    /// parallelism. The produced result is identical at every thread count
    /// — use [`execute_with_opts`](Prepared::execute_with_opts) to pin it
    /// explicitly.
    pub fn execute(&self) -> Result<ResultSet<A>> {
        self.execute_with(&[])
    }

    /// Executes the plan with `$1, $2, …` bound to `params` in order,
    /// using the environment's thread count (see
    /// [`execute`](Prepared::execute)).
    pub fn execute_with(&self, params: &[Const]) -> Result<ResultSet<A>> {
        self.execute_with_opts(params, &ExecOptions::from_env()?)
    }

    /// Executes the plan with `$1, $2, …` bound to `params` and an explicit
    /// [`ExecOptions`] — `ExecOptions::serial()` pins the single-threaded
    /// path, `ExecOptions::with_threads(n)` shards ground partitions across
    /// `n` scoped worker threads.
    pub fn execute_with_opts(&self, params: &[Const], opts: &ExecOptions) -> Result<ResultSet<A>> {
        if params.len() != self.param_count {
            return Err(RelError::ParamArity {
                expected: self.param_count,
                got: params.len(),
            });
        }
        Ok(ResultSet::from_relation(execute_plan(
            self.db,
            &self.phys,
            params,
            self.param_count,
            opts,
        )?))
    }
}
