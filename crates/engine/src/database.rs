//! The annotated database: catalog, DDL/DML execution, prepared
//! statements, and queries.

use crate::annot::ParseAnnotation;
use crate::ast::{ColType, Lit, Stmt};
use crate::exec::execute_plan;
use crate::opt::{self, Catalog};
use crate::parser::parse_script;
use crate::phys::PhysNode;
use crate::plan::{lower_query, Plan};
use crate::result::ResultSet;
use aggprov_algebra::domain::Const;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::ops::MKRel;
use aggprov_core::par::ExecOptions;
use aggprov_core::Value;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A database of `(M, K)`-relations annotated with `A`.
///
/// The annotation semiring is chosen at the type level:
/// [`ProvDb`](crate::ProvDb) tracks full aggregate provenance, while
/// `Database<Nat>` runs plain bag semantics, `Database<Security>` security
/// clearances, and so on — the factorization property in action.
///
/// Prepared plans are **cached** keyed by SQL text: preparing the same
/// statement twice returns the same optimized plan without re-parsing,
/// re-lowering or re-optimizing. Every catalog or data mutation (DDL,
/// `INSERT`, [`register`](Database::register)) invalidates the whole
/// cache — the optimizer's rewrites are gated on a snapshot of table
/// cardinalities and per-column groundness, so a stale plan could be
/// mis-optimized, not merely slow.
#[derive(Debug, Default)]
pub struct Database<A: AggAnnotation + ParseAnnotation> {
    tables: BTreeMap<String, TableEntry<A>>,
    cache: PlanCache,
}

impl<A: AggAnnotation + ParseAnnotation> Clone for Database<A> {
    fn clone(&self) -> Self {
        Database {
            tables: self.tables.clone(),
            // The clone sees identical data, so the cached plans (cheap
            // `Arc` bumps) remain valid for it.
            cache: self.cache.clone(),
        }
    }
}

/// One fully prepared statement, as stored in the plan cache.
#[derive(Clone, Debug)]
struct CachedStatement {
    /// The lowered logical plan, pre-optimization.
    logical: Arc<Plan>,
    /// The optimized logical plan.
    optimized: Arc<Plan>,
    /// The physical plan lowered from the optimized plan.
    phys: Arc<PhysNode>,
    /// The number of `$n` slots.
    param_count: usize,
}

/// The `Prepared`-plan cache: SQL text → fully lowered statement.
#[derive(Debug, Default)]
struct PlanCache {
    map: Mutex<HashMap<String, CachedStatement>>,
}

impl Clone for PlanCache {
    fn clone(&self) -> Self {
        PlanCache {
            map: Mutex::new(self.lock().clone()),
        }
    }
}

impl PlanCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, CachedStatement>> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is always in a consistent state.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, sql: &str) -> Option<CachedStatement> {
        self.lock().get(sql).cloned()
    }

    fn insert(&self, sql: &str, stmt: CachedStatement) {
        self.lock().insert(sql.to_string(), stmt);
    }

    fn invalidate(&self) {
        self.lock().clear();
    }

    fn len(&self) -> usize {
        self.lock().len()
    }
}

#[derive(Clone, Debug)]
struct TableEntry<A: AggAnnotation> {
    types: Option<Vec<ColType>>,
    rel: MKRel<A>,
    /// Per column, `true` iff every value is a ground constant —
    /// maintained incrementally (SQL `INSERT` only adds constants;
    /// [`Database::register`] scans once), so a catalog snapshot is
    /// `O(columns)`, never a per-prepare pass over the rows.
    ground_cols: Vec<bool>,
}

/// One pass over a relation for its per-column groundness, stopping
/// early once every column is flagged symbolic.
fn scan_ground_cols<A: AggAnnotation>(rel: &MKRel<A>) -> Vec<bool> {
    let mut ground = vec![true; rel.schema().arity()];
    for (t, _) in rel.iter() {
        for (i, v) in t.values().iter().enumerate() {
            if v.is_agg() {
                ground[i] = false;
            }
        }
        if ground.iter().all(|g| !g) {
            break;
        }
    }
    ground
}

impl<A: AggAnnotation + ParseAnnotation> Database<A> {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            tables: BTreeMap::new(),
            cache: PlanCache::default(),
        }
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Result<&MKRel<A>> {
        self.tables
            .get(name)
            .map(|t| &t.rel)
            .ok_or_else(|| RelError::UnknownAttr(format!("table `{name}`")))
    }

    /// Registers (or replaces) a table built programmatically. Invalidates
    /// the prepared-plan cache.
    pub fn register(&mut self, name: &str, rel: MKRel<A>) {
        let ground_cols = scan_ground_cols(&rel);
        self.tables.insert(
            name.to_string(),
            TableEntry {
                types: None,
                rel,
                ground_cols,
            },
        );
        self.cache.invalidate();
    }

    /// The optimizer-facing statistics of one table: tuple count plus the
    /// incrementally maintained per-column groundness. `O(columns)`.
    pub(crate) fn table_stats(&self, name: &str) -> Option<crate::opt::TableStats> {
        self.tables.get(name).map(|e| crate::opt::TableStats {
            rows: e.rel.len(),
            ground_cols: e.ground_cols.clone(),
        })
    }

    /// The table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Executes a script of `;`-separated statements. Returns the result of
    /// the last query in the script, if any. Every DDL/`INSERT` statement
    /// invalidates the prepared-plan cache (the optimizer's groundness and
    /// cardinality snapshot is only valid for unchanged data).
    pub fn exec(&mut self, script: &str) -> Result<Option<MKRel<A>>> {
        let stmts = parse_script(script)?;
        let mut last = None;
        for stmt in stmts {
            match stmt {
                Stmt::CreateTable { name, columns } => {
                    if self.tables.contains_key(&name) {
                        return Err(RelError::DuplicateAttr(format!("table `{name}`")));
                    }
                    let schema = Schema::new(columns.iter().map(|(n, _)| n.as_str()))?;
                    let ground_cols = vec![true; schema.arity()];
                    self.tables.insert(
                        name,
                        TableEntry {
                            types: Some(columns.into_iter().map(|(_, t)| t).collect()),
                            rel: Relation::empty(schema),
                            ground_cols,
                        },
                    );
                    self.cache.invalidate();
                }
                Stmt::DropTable { name } => {
                    self.tables
                        .remove(&name)
                        .ok_or_else(|| RelError::UnknownAttr(format!("table `{name}`")))?;
                    self.cache.invalidate();
                }
                Stmt::Insert {
                    table,
                    values,
                    provenance,
                } => {
                    self.insert_row(&table, &values, provenance.as_deref())?;
                    self.cache.invalidate();
                }
                Stmt::Query(q) => {
                    // The same lower→optimize→phys pipeline as prepare()
                    // (scripts have no SQL-text key per statement, so the
                    // plan cache does not apply here).
                    let stmt = self.plan_query(&q)?;
                    if stmt.param_count > 0 {
                        return Err(RelError::Unsupported(
                            "`$n` parameters require prepare()/execute_with()".into(),
                        ));
                    }
                    last = Some(execute_plan(
                        self,
                        &stmt.phys,
                        &[],
                        0,
                        &ExecOptions::from_env()?,
                    )?);
                }
            }
        }
        Ok(last)
    }

    /// Prepares a query: parses, lowers to the logical-plan IR, resolves
    /// and validates every name, runs the semiring-sound optimizer
    /// ([`crate::opt`]) against a snapshot of the current catalog, and
    /// lowers the optimized plan to its physical form — once. The
    /// returned [`Prepared`] can be executed any number of times (with
    /// different `$n` parameters) without re-parsing or re-resolving.
    ///
    /// Plans are cached by SQL text: preparing the same statement again
    /// (before any catalog/data mutation) is a lookup, not a re-plan.
    pub fn prepare(&self, sql: &str) -> Result<Prepared<'_, A>> {
        if let Some(stmt) = self.cache.get(sql) {
            return Ok(Prepared { db: self, stmt });
        }
        let q = crate::parser::parse_query(sql)?;
        let stmt = self.plan_query(&q)?;
        self.cache.insert(sql, stmt.clone());
        Ok(Prepared { db: self, stmt })
    }

    /// The shared planning pipeline behind [`prepare`](Database::prepare)
    /// and [`exec`](Database::exec): lower, optimize against the
    /// plan-restricted catalog snapshot, lower to physical form.
    fn plan_query(&self, q: &crate::ast::Query) -> Result<CachedStatement> {
        let lowered = lower_query(self, q)?;
        let optimized = opt::optimize(&lowered.plan, &Catalog::of_plan(self, &lowered.plan));
        let phys = crate::phys::lower(&optimized)?;
        Ok(CachedStatement {
            logical: Arc::new(lowered.plan),
            optimized: Arc::new(optimized),
            phys: Arc::new(phys),
            param_count: lowered.param_count,
        })
    }

    /// Prepares a query with the optimizer switched off — the literal
    /// lowered plan shape, bypassing (and not populating) the plan cache.
    /// The execution-equivalence oracle for the optimizer's property
    /// tests, and a debugging aid next to
    /// [`plan_display`](Prepared::plan_display).
    pub fn prepare_unoptimized(&self, sql: &str) -> Result<Prepared<'_, A>> {
        let q = crate::parser::parse_query(sql)?;
        let lowered = lower_query(self, &q)?;
        let phys = crate::phys::lower(&lowered.plan)?;
        let logical = Arc::new(lowered.plan);
        Ok(Prepared {
            db: self,
            stmt: CachedStatement {
                optimized: logical.clone(),
                logical,
                phys: Arc::new(phys),
                param_count: lowered.param_count,
            },
        })
    }

    /// How many prepared plans the cache currently holds (diagnostic).
    pub fn cached_plan_count(&self) -> usize {
        self.cache.len()
    }

    /// Snapshots the optimizer's base-table catalog (cardinalities and
    /// per-column groundness) for the database's current state.
    pub fn catalog(&self) -> Catalog {
        Catalog::of(self)
    }

    /// Runs a single query (read-only). Equivalent to
    /// `prepare(sql)?.execute()?.into_relation()` — kept as the one-shot
    /// convenience entry point.
    pub fn query(&self, sql: &str) -> Result<MKRel<A>> {
        Ok(self.prepare(sql)?.execute()?.into_relation())
    }

    fn insert_row(&mut self, table: &str, values: &[Lit], provenance: Option<&str>) -> Result<()> {
        let ann = match provenance {
            None => A::one(),
            Some(text) => A::parse_annotation(text).ok_or_else(|| {
                RelError::Unsupported(format!(
                    "`{text}` is not a valid annotation for this semiring"
                ))
            })?,
        };
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| RelError::UnknownAttr(format!("table `{table}`")))?;
        if let Some(types) = &entry.types {
            if types.len() != values.len() {
                return Err(RelError::ArityMismatch {
                    expected: types.len(),
                    got: values.len(),
                });
            }
            for (lit, ty) in values.iter().zip(types) {
                let ok = matches!(
                    (lit, ty),
                    (Lit::Num(_), ColType::Num)
                        | (Lit::Str(_), ColType::Text)
                        | (Lit::Bool(_), ColType::Bool)
                );
                if !ok {
                    return Err(RelError::TypeError(format!(
                        "literal {lit:?} does not match declared column type {ty:?}"
                    )));
                }
            }
        }
        // Literal rows hold only constants, so the entry's incremental
        // `ground_cols` stays valid without rescanning.
        let row: Vec<Value<A>> = values
            .iter()
            .map(|l| {
                Value::Const(match l {
                    Lit::Num(n) => Const::Num(*n),
                    Lit::Str(s) => Const::str(s),
                    Lit::Bool(b) => Const::Bool(*b),
                })
            })
            .collect();
        entry.rel.insert(row, ann)
    }
}

/// A prepared query: the logical plan with all names resolved — plus its
/// lowered physical form — bound to the database it was prepared against.
///
/// Executing a `Prepared` drives the physical pipeline lowered from the
/// stored [`Plan`] at prepare time — no re-parsing, no re-resolution, no
/// per-execution position lookups. Because it borrows the database
/// immutably, the catalog cannot change under a live prepared statement
/// (the borrow checker enforces what other engines need epoch counters
/// for).
///
/// ```
/// use aggprov_engine::ProvDb;
/// use aggprov_algebra::domain::Const;
///
/// let mut db = ProvDb::new();
/// db.exec(
///     "CREATE TABLE r (dept TEXT, sal NUM);
///      INSERT INTO r VALUES ('d1', 20) PROVENANCE p1;
///      INSERT INTO r VALUES ('d2', 30) PROVENANCE p2;",
/// )
/// .unwrap();
///
/// let by_dept = db.prepare("SELECT sal FROM r WHERE dept = $1").unwrap();
/// let d1 = by_dept.execute_with(&[Const::str("d1")]).unwrap();
/// let d2 = by_dept.execute_with(&[Const::str("d2")]).unwrap();
/// assert_eq!(d1.len(), 1);
/// assert_eq!(d2.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Prepared<'db, A: AggAnnotation + ParseAnnotation> {
    db: &'db Database<A>,
    stmt: CachedStatement,
}

impl<'db, A: AggAnnotation + ParseAnnotation> Prepared<'db, A> {
    /// The logical plan as lowered from the SQL, before optimization.
    pub fn plan(&self) -> &Plan {
        &self.stmt.logical
    }

    /// The optimized logical plan — what actually executes (identical to
    /// [`plan`](Prepared::plan) when no rewrite fired).
    pub fn optimized_plan(&self) -> &Plan {
        &self.stmt.optimized
    }

    /// `EXPLAIN`-style introspection: the pre-optimization and
    /// post-optimization operator trees, rendered for humans.
    ///
    /// ```
    /// use aggprov_engine::ProvDb;
    /// let mut db = ProvDb::new();
    /// db.exec("CREATE TABLE r (a NUM, b NUM)").unwrap();
    /// let stmt = db.prepare("SELECT a FROM r WHERE b = 1").unwrap();
    /// assert!(stmt.plan_display().contains("Filter r.b = 1"));
    /// ```
    pub fn plan_display(&self) -> String {
        format!(
            "logical plan (as lowered):\n{}optimized plan:\n{}",
            opt::render_plan(&self.stmt.logical),
            opt::render_plan(&self.stmt.optimized),
        )
    }

    /// How many `$n` parameters the query expects.
    pub fn param_count(&self) -> usize {
        self.stmt.param_count
    }

    /// The result schema (known without executing).
    pub fn schema(&self) -> &Schema {
        self.stmt.logical.schema()
    }

    /// Executes the plan. Fails if the query has `$n` placeholders (use
    /// [`execute_with`](Prepared::execute_with)).
    ///
    /// Physical operators run partition-parallel with the environment's
    /// thread count: `AGGPROV_THREADS` when set (an unparseable value is a
    /// loud [`RelError::InvalidEnv`]), otherwise the machine's available
    /// parallelism. The produced result is identical at every thread count
    /// — use [`execute_with_opts`](Prepared::execute_with_opts) to pin it
    /// explicitly.
    pub fn execute(&self) -> Result<ResultSet<A>> {
        self.execute_with(&[])
    }

    /// Executes the plan with `$1, $2, …` bound to `params` in order,
    /// using the environment's thread count (see
    /// [`execute`](Prepared::execute)).
    pub fn execute_with(&self, params: &[Const]) -> Result<ResultSet<A>> {
        self.execute_with_opts(params, &ExecOptions::from_env()?)
    }

    /// Executes the plan with `$1, $2, …` bound to `params` and an explicit
    /// [`ExecOptions`] — `ExecOptions::serial()` pins the single-threaded
    /// path, `ExecOptions::with_threads(n)` shards ground partitions across
    /// `n` scoped worker threads.
    pub fn execute_with_opts(&self, params: &[Const], opts: &ExecOptions) -> Result<ResultSet<A>> {
        if params.len() != self.stmt.param_count {
            return Err(RelError::ParamArity {
                expected: self.stmt.param_count,
                got: params.len(),
            });
        }
        Ok(ResultSet::from_relation(execute_plan(
            self.db,
            &self.stmt.phys,
            params,
            self.stmt.param_count,
            opts,
        )?))
    }
}
