//! The annotated database: catalog, DDL/DML execution, prepared
//! statements, epoch snapshots, and queries.
//!
//! ## Epochs and snapshots
//!
//! The table map lives behind an [`Arc`]: every mutation goes through
//! [`Arc::make_mut`], so a mutation either edits the map in place (no
//! snapshot outstanding) or copies it out first — whole-database
//! copy-on-write, the same discipline [`Relation`]'s tuple store already
//! uses one level down (and the per-table copies are themselves `Arc`
//! bumps, so "copying the map" never duplicates tuple data).
//! [`Database::snapshot`] clones the `Arc` — an immutable **epoch** any
//! number of reader threads can prepare and execute against with no
//! locks, while the single writer (`&mut self` — Rust enforces the
//! single-writer discipline at compile time) installs the next epoch
//! atomically. A server wraps the writer in one `RwLock` whose read
//! critical section is just the `Arc` bump; execution itself never holds
//! a lock.

use crate::annot::ParseAnnotation;
use crate::ast::{ColType, Lit, Stmt};
use crate::exec::execute_plan;
use crate::opt::{self, Catalog};
use crate::parser::parse_script;
use crate::phys::PhysNode;
use crate::plan::{lower_query, Plan};
use crate::result::ResultSet;
use aggprov_algebra::domain::Const;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::ops::MKRel;
use aggprov_core::par::ExecOptions;
use aggprov_core::Value;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::{Relation, Tuple};
use aggprov_krel::schema::Schema;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

#[path = "view.rs"]
pub mod view;

/// The process-wide version clock behind table versions and epoch ids.
///
/// Versions must be unique across *diverged* databases (clones that
/// mutated independently share one plan cache lineage through snapshots),
/// so the clock is global, not per-database: two different states of a
/// table can never carry the same version, and a cached plan's
/// `(table, version)` dependencies identify exactly one table state.
static VERSION_CLOCK: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    VERSION_CLOCK.fetch_add(1, Ordering::Relaxed)
}

/// How many prepared plans the cache keeps by default before evicting the
/// least-recently-used entry.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// A database of `(M, K)`-relations annotated with `A`.
///
/// The annotation semiring is chosen at the type level:
/// [`ProvDb`](crate::ProvDb) tracks full aggregate provenance, while
/// `Database<Nat>` runs plain bag semantics, `Database<Security>` security
/// clearances, and so on — the factorization property in action.
///
/// Prepared plans are **cached** keyed by SQL text, with per-table
/// dependency tracking: every cached plan records the `(table, version)`
/// pairs it was optimized against, a mutation of one table (DDL, `INSERT`,
/// [`register`](Database::register)) invalidates only the entries that
/// scan it, and the cache holds at most
/// [`DEFAULT_PLAN_CACHE_CAPACITY`] entries (least-recently-used eviction;
/// see [`set_plan_cache_capacity`](Database::set_plan_cache_capacity)).
/// The version check makes the cache safe to share between the live
/// database and its [snapshots](Database::snapshot): an entry is served
/// only to a reader whose epoch holds exactly the table states the plan
/// was optimized for — the optimizer's rewrites are gated on cardinality
/// and groundness, so a stale plan could be mis-optimized, not merely
/// slow.
#[derive(Debug)]
pub struct Database<A: AggAnnotation + ParseAnnotation> {
    epoch: Arc<EpochTables<A>>,
    epoch_id: u64,
    cache: Arc<PlanCache>,
}

impl<A: AggAnnotation + ParseAnnotation> Default for Database<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: AggAnnotation + ParseAnnotation> Clone for Database<A> {
    fn clone(&self) -> Self {
        Database {
            // An Arc bump: the clone and the original copy-on-write away
            // from each other on the first mutation of either.
            epoch: self.epoch.clone(),
            epoch_id: self.epoch_id,
            // The clone gets its own cache holding the same entries
            // (cheap `Arc` bumps); version dependencies keep every entry
            // safe even after the two databases diverge.
            cache: Arc::new(self.cache.duplicate()),
        }
    }
}

/// The frozen table map of one epoch. Immutable once published: mutation
/// goes through `Arc::make_mut` on the owning [`Database`].
#[derive(Clone, Debug)]
struct EpochTables<A: AggAnnotation> {
    tables: BTreeMap<String, TableEntry<A>>,
    /// Materialized views, maintained by [`view`]'s delta machinery.
    /// Part of the epoch: a snapshot freezes views and tables together.
    views: BTreeMap<String, view::ViewEntry<A>>,
}

impl<A: AggAnnotation> EpochTables<A> {
    fn table_version(&self, name: &str) -> Option<u64> {
        self.tables.get(name).map(|e| e.version)
    }
}

/// One fully prepared statement, as stored in the plan cache.
#[derive(Clone, Debug)]
struct CachedStatement {
    /// The lowered logical plan, pre-optimization.
    logical: Arc<Plan>,
    /// The optimized logical plan.
    optimized: Arc<Plan>,
    /// The physical plan lowered from the optimized plan.
    phys: Arc<PhysNode>,
    /// The number of `$n` slots.
    param_count: usize,
    /// The `(table, version)` states the optimizer snapshot was taken
    /// against — the cache serves this statement only to epochs holding
    /// exactly these table states.
    deps: Arc<[(String, u64)]>,
}

/// One cache slot: the statement plus its LRU recency stamp. The stamp is
/// atomic so a cache *hit* (under the shared read lock) can refresh
/// recency without taking the write lock.
#[derive(Debug)]
struct CacheEntry {
    stmt: CachedStatement,
    stamp: AtomicU64,
}

impl CacheEntry {
    fn duplicate(&self) -> CacheEntry {
        CacheEntry {
            stmt: self.stmt.clone(),
            stamp: AtomicU64::new(self.stamp.load(Ordering::Relaxed)),
        }
    }
}

/// The `Prepared`-plan cache: SQL text → fully lowered statement, bounded
/// LRU, per-table invalidation, readers share an [`RwLock`] read guard (a
/// hit never serializes concurrent preparers on a write lock).
#[derive(Debug)]
struct PlanCache {
    inner: RwLock<CacheInner>,
    /// The LRU clock: bumped on every hit and insert.
    clock: AtomicU64,
}

#[derive(Debug)]
struct CacheInner {
    map: HashMap<String, CacheEntry>,
    capacity: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            inner: RwLock::new(CacheInner {
                map: HashMap::new(),
                capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            }),
            clock: AtomicU64::new(1),
        }
    }
}

impl PlanCache {
    fn read(&self) -> std::sync::RwLockReadGuard<'_, CacheInner> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is always in a consistent state.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, CacheInner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks `sql` up, serving the entry only if every table dependency
    /// still has the version the plan was optimized against in the
    /// caller's epoch. A hit refreshes the LRU stamp under the read lock.
    fn get<A: AggAnnotation>(&self, sql: &str, epoch: &EpochTables<A>) -> Option<CachedStatement> {
        let inner = self.read();
        let entry = inner.map.get(sql)?;
        if !entry
            .stmt
            .deps
            .iter()
            .all(|(table, version)| epoch.table_version(table) == Some(*version))
        {
            return None;
        }
        entry.stamp.store(self.tick(), Ordering::Relaxed);
        Some(entry.stmt.clone())
    }

    /// Inserts a statement, evicting the least-recently-used entry when
    /// the cache is full.
    fn insert(&self, sql: &str, stmt: CachedStatement) {
        let mut inner = self.write();
        while inner.map.len() >= inner.capacity && !inner.map.contains_key(sql) {
            let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(sql, _)| sql.clone())
            else {
                break;
            };
            inner.map.remove(&lru);
        }
        let stamp = AtomicU64::new(self.tick());
        inner
            .map
            .insert(sql.to_string(), CacheEntry { stmt, stamp });
    }

    /// Drops every entry whose plan depends on `table` — the per-table
    /// invalidation run by `INSERT`/DDL/`register`.
    fn invalidate_table(&self, table: &str) {
        self.write()
            .map
            .retain(|_, e| !e.stmt.deps.iter().any(|(t, _)| t == table));
    }

    fn len(&self) -> usize {
        self.read().map.len()
    }

    fn set_capacity(&self, capacity: usize) {
        let mut inner = self.write();
        inner.capacity = capacity.max(1);
        while inner.map.len() > inner.capacity {
            let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(sql, _)| sql.clone())
            else {
                break;
            };
            inner.map.remove(&lru);
        }
    }

    /// An independent cache holding the same entries (for `Clone`).
    fn duplicate(&self) -> PlanCache {
        let inner = self.read();
        PlanCache {
            inner: RwLock::new(CacheInner {
                map: inner
                    .map
                    .iter()
                    .map(|(sql, e)| (sql.clone(), e.duplicate()))
                    .collect(),
                capacity: inner.capacity,
            }),
            clock: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
        }
    }
}

#[derive(Clone, Debug)]
struct TableEntry<A: AggAnnotation> {
    types: Option<Vec<ColType>>,
    rel: MKRel<A>,
    /// Per column, `true` iff every value is a ground constant —
    /// maintained incrementally (SQL `INSERT` only adds constants;
    /// [`Database::register`] scans once), so a catalog snapshot is
    /// `O(columns)`, never a per-prepare pass over the rows.
    ground_cols: Vec<bool>,
    /// The globally unique version of this table state; reassigned on
    /// every mutation. Cached plans pin the versions they planned
    /// against.
    version: u64,
}

/// One pass over a relation for its per-column groundness, stopping
/// early once every column is flagged symbolic.
fn scan_ground_cols<A: AggAnnotation>(rel: &MKRel<A>) -> Vec<bool> {
    let mut ground = vec![true; rel.schema().arity()];
    for (t, _) in rel.iter() {
        for (i, v) in t.values().iter().enumerate() {
            if v.is_agg() {
                ground[i] = false;
            }
        }
        if ground.iter().all(|g| !g) {
            break;
        }
    }
    ground
}

impl<A: AggAnnotation + ParseAnnotation> Database<A> {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            epoch: Arc::new(EpochTables {
                tables: BTreeMap::new(),
                views: BTreeMap::new(),
            }),
            epoch_id: next_version(),
            cache: Arc::new(PlanCache::default()),
        }
    }

    /// The mutable epoch (tables *and* views): copies the epoch out if a
    /// snapshot still holds it, and stamps the database with a fresh epoch
    /// id — every caller is a mutation about to happen.
    fn epoch_mut(&mut self) -> &mut EpochTables<A> {
        self.epoch_id = next_version();
        Arc::make_mut(&mut self.epoch)
    }

    /// The mutable table map (see [`epoch_mut`](Database::epoch_mut)).
    fn tables_mut(&mut self) -> &mut BTreeMap<String, TableEntry<A>> {
        &mut self.epoch_mut().tables
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Result<&MKRel<A>> {
        self.epoch
            .tables
            .get(name)
            .map(|t| &t.rel)
            .ok_or_else(|| RelError::UnknownAttr(format!("table `{name}`")))
    }

    /// Registers (or replaces) a table built programmatically. Invalidates
    /// the cached plans that scan this table and re-materializes the
    /// views that depend on it (a wholesale replacement has no delta).
    pub fn register(&mut self, name: &str, rel: MKRel<A>) {
        let ground_cols = scan_ground_cols(&rel);
        let version = next_version();
        self.tables_mut().insert(
            name.to_string(),
            TableEntry {
                types: None,
                rel,
                ground_cols,
                version,
            },
        );
        self.cache.invalidate_table(name);
        view::refresh_dependents(self, name);
    }

    /// Typed-column layout hints for one table, from its declared column
    /// types (`NUM` → unboxed `i64` run, `TEXT` → dictionary codes,
    /// `BOOL` → no hint, the boxed fallback probes it). `None` for
    /// unknown tables and tables registered without declared types.
    fn scan_hints(&self, name: &str) -> Option<Vec<Option<aggprov_krel::typed::ColHint>>> {
        use aggprov_krel::typed::ColHint;
        let types = self.epoch.tables.get(name)?.types.as_ref()?;
        Some(
            types
                .iter()
                .map(|t| match t {
                    ColType::Num => Some(ColHint::Num),
                    ColType::Text => Some(ColHint::Str),
                    ColType::Bool => None,
                })
                .collect(),
        )
    }

    /// The optimizer-facing statistics of one table: tuple count plus the
    /// incrementally maintained per-column groundness. `O(columns)`.
    pub(crate) fn table_stats(&self, name: &str) -> Option<crate::opt::TableStats> {
        self.epoch.tables.get(name).map(|e| crate::opt::TableStats {
            rows: e.rel.len(),
            ground_cols: e.ground_cols.clone(),
        })
    }

    /// The table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.epoch.tables.keys().map(|s| s.as_str())
    }

    /// The id of the current epoch: globally unique, reassigned by every
    /// mutation. Two databases (or a database and a snapshot) with the
    /// same epoch id hold identical data.
    pub fn epoch(&self) -> u64 {
        self.epoch_id
    }

    /// An immutable whole-database snapshot of the current epoch.
    ///
    /// The snapshot is an `Arc` bump — no tuple is copied — and is
    /// [`Send`] + [`Sync`] + `'static`: any number of reader threads can
    /// [`prepare`](DbSnapshot::prepare) and execute against it with no
    /// locks while the writer keeps mutating the live database
    /// (copy-on-write publishes each new epoch without disturbing
    /// readers). The snapshot shares the live database's plan cache;
    /// version-stamped dependencies keep entries planned for different
    /// epochs apart.
    pub fn snapshot(&self) -> DbSnapshot<A> {
        DbSnapshot {
            db: Arc::new(Database {
                epoch: self.epoch.clone(),
                epoch_id: self.epoch_id,
                cache: self.cache.clone(),
            }),
        }
    }

    /// Executes a script of `;`-separated statements. Returns the result of
    /// the last query in the script, if any. Every DDL/`INSERT` statement
    /// invalidates the cached plans scanning the affected table (the
    /// optimizer's groundness and cardinality snapshot is only valid for
    /// unchanged data) and publishes a fresh epoch.
    pub fn exec(&mut self, script: &str) -> Result<Option<MKRel<A>>> {
        let stmts = parse_script(script)?;
        let mut last = None;
        for stmt in stmts {
            match stmt {
                Stmt::CreateTable { name, columns } => {
                    if self.epoch.tables.contains_key(&name) {
                        return Err(RelError::DuplicateAttr(format!("table `{name}`")));
                    }
                    let schema = Schema::new(columns.iter().map(|(n, _)| n.as_str()))?;
                    let ground_cols = vec![true; schema.arity()];
                    let version = next_version();
                    // A table that never existed cannot appear in any
                    // cached plan's dependencies, but invalidate anyway:
                    // it is cheap and keeps CREATE/DROP/CREATE symmetric.
                    self.cache.invalidate_table(&name);
                    self.tables_mut().insert(
                        name,
                        TableEntry {
                            types: Some(columns.into_iter().map(|(_, t)| t).collect()),
                            rel: Relation::empty(schema),
                            ground_cols,
                            version,
                        },
                    );
                }
                Stmt::DropTable { name } => {
                    self.tables_mut()
                        .remove(&name)
                        .ok_or_else(|| RelError::UnknownAttr(format!("table `{name}`")))?;
                    self.cache.invalidate_table(&name);
                    view::break_dependents(self, &name, "base table dropped");
                }
                Stmt::Insert {
                    table,
                    values,
                    provenance,
                } => {
                    let (row, ann) = self.insert_row(&table, &values, provenance.as_deref())?;
                    self.cache.invalidate_table(&table);
                    view::maintain_after_insert(self, &table, row, ann)?;
                }
                Stmt::Query(q) => {
                    // The same lower→optimize→phys pipeline as prepare()
                    // (scripts have no SQL-text key per statement, so the
                    // plan cache does not apply here).
                    let stmt = self.plan_query(&q)?;
                    if stmt.param_count > 0 {
                        return Err(RelError::Unsupported(
                            "`$n` parameters require prepare()/execute_with()".into(),
                        ));
                    }
                    last = Some(execute_plan(
                        self,
                        &stmt.phys,
                        &[],
                        0,
                        &ExecOptions::from_env()?,
                    )?);
                }
            }
        }
        Ok(last)
    }

    /// Prepares a query: parses, lowers to the logical-plan IR, resolves
    /// and validates every name, runs the semiring-sound optimizer
    /// ([`crate::opt`]) against a snapshot of the current catalog, and
    /// lowers the optimized plan to its physical form — once. The
    /// returned [`Prepared`] can be executed any number of times (with
    /// different `$n` parameters) without re-parsing or re-resolving.
    ///
    /// Plans are cached by SQL text: preparing the same statement again
    /// (before a mutation of any table it scans) is a lookup, not a
    /// re-plan.
    pub fn prepare(&self, sql: &str) -> Result<Prepared<'_, A>> {
        let stmt = self.cached_statement(sql)?;
        Ok(Prepared { db: self, stmt })
    }

    /// The cache-aware planning entry shared by [`Database::prepare`] and
    /// [`DbSnapshot::prepare`].
    fn cached_statement(&self, sql: &str) -> Result<CachedStatement> {
        if let Some(stmt) = self.cache.get(sql, &self.epoch) {
            return Ok(stmt);
        }
        let q = crate::parser::parse_query(sql)?;
        let stmt = self.plan_query(&q)?;
        self.cache.insert(sql, stmt.clone());
        Ok(stmt)
    }

    /// The shared planning pipeline behind [`prepare`](Database::prepare)
    /// and [`exec`](Database::exec): lower, optimize against the
    /// plan-restricted catalog snapshot, lower to physical form.
    fn plan_query(&self, q: &crate::ast::Query) -> Result<CachedStatement> {
        let lowered = lower_query(self, q)?;
        let optimized = opt::optimize(&lowered.plan, &Catalog::of_plan(self, &lowered.plan));
        let phys = crate::phys::lower_with(&optimized, &|t| self.scan_hints(t))?;
        let deps: Vec<(String, u64)> = lowered
            .plan
            .scanned_tables()
            .into_iter()
            .filter_map(|t| self.epoch.table_version(&t).map(|v| (t, v)))
            .collect();
        Ok(CachedStatement {
            logical: Arc::new(lowered.plan),
            optimized: Arc::new(optimized),
            phys: Arc::new(phys),
            param_count: lowered.param_count,
            deps: deps.into(),
        })
    }

    /// Prepares a query with the optimizer switched off — the literal
    /// lowered plan shape, bypassing (and not populating) the plan cache.
    /// The execution-equivalence oracle for the optimizer's property
    /// tests, and a debugging aid next to
    /// [`plan_display`](Prepared::plan_display).
    pub fn prepare_unoptimized(&self, sql: &str) -> Result<Prepared<'_, A>> {
        let q = crate::parser::parse_query(sql)?;
        let lowered = lower_query(self, &q)?;
        let phys = crate::phys::lower_with(&lowered.plan, &|t| self.scan_hints(t))?;
        let logical = Arc::new(lowered.plan);
        Ok(Prepared {
            db: self,
            stmt: CachedStatement {
                optimized: logical.clone(),
                logical,
                phys: Arc::new(phys),
                param_count: lowered.param_count,
                deps: Arc::from(Vec::new()),
            },
        })
    }

    /// How many prepared plans the cache currently holds (diagnostic).
    /// Accurate under concurrent readers: the count is taken under the
    /// cache's shared lock.
    pub fn cached_plan_count(&self) -> usize {
        self.cache.len()
    }

    /// Caps the plan cache at `capacity` entries (at least 1), evicting
    /// least-recently-used entries immediately if it is over.
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// Snapshots the optimizer's base-table catalog (cardinalities and
    /// per-column groundness) for the database's current state.
    pub fn catalog(&self) -> Catalog {
        Catalog::of(self)
    }

    /// Runs a single query (read-only). Equivalent to
    /// `prepare(sql)?.execute()?.into_relation()` — kept as the one-shot
    /// convenience entry point.
    pub fn query(&self, sql: &str) -> Result<MKRel<A>> {
        Ok(self.prepare(sql)?.execute()?.into_relation())
    }

    /// Inserts one literal row, returning the inserted tuple and its
    /// annotation — the delta the view-maintenance hook propagates.
    fn insert_row(
        &mut self,
        table: &str,
        values: &[Lit],
        provenance: Option<&str>,
    ) -> Result<(Tuple<Value<A>>, A)> {
        let ann = match provenance {
            None => A::one(),
            Some(text) => A::parse_annotation(text).ok_or_else(|| {
                RelError::Unsupported(format!(
                    "`{text}` is not a valid annotation for this semiring"
                ))
            })?,
        };
        // Validate against the *current* epoch before touching anything:
        // a failed INSERT must not publish a new epoch.
        let entry = self
            .epoch
            .tables
            .get(table)
            .ok_or_else(|| RelError::UnknownAttr(format!("table `{table}`")))?;
        if let Some(types) = &entry.types {
            if types.len() != values.len() {
                return Err(RelError::ArityMismatch {
                    expected: types.len(),
                    got: values.len(),
                });
            }
            for (lit, ty) in values.iter().zip(types) {
                let ok = matches!(
                    (lit, ty),
                    (Lit::Num(_), ColType::Num)
                        | (Lit::Str(_), ColType::Text)
                        | (Lit::Bool(_), ColType::Bool)
                );
                if !ok {
                    return Err(RelError::TypeError(format!(
                        "literal {lit:?} does not match declared column type {ty:?}"
                    )));
                }
            }
        }
        // Literal rows hold only constants, so the entry's incremental
        // `ground_cols` stays valid without rescanning.
        let row: Vec<Value<A>> = values
            .iter()
            .map(|l| {
                Value::Const(match l {
                    Lit::Num(n) => Const::Num(*n),
                    Lit::Str(s) => Const::str(s),
                    Lit::Bool(b) => Const::Bool(*b),
                })
            })
            .collect();
        let version = next_version();
        let entry = self
            .tables_mut()
            .get_mut(table)
            .expect("existence checked above");
        entry.version = version;
        let t = Tuple::new(row);
        entry.rel.add(t.clone(), ann.clone())?;
        Ok((t, ann))
    }
}

/// A prepared query: the logical plan with all names resolved — plus its
/// lowered physical form — bound to the database it was prepared against.
///
/// Executing a `Prepared` drives the physical pipeline lowered from the
/// stored [`Plan`] at prepare time — no re-parsing, no re-resolution, no
/// per-execution position lookups. Because it borrows the database
/// immutably, the catalog cannot change under a live prepared statement
/// (the borrow checker enforces what other engines need epoch counters
/// for). For an owned handle that outlives the borrow — the serving
/// layer's session model — see [`DbSnapshot::prepare`].
///
/// ```
/// use aggprov_engine::ProvDb;
/// use aggprov_algebra::domain::Const;
///
/// let mut db = ProvDb::new();
/// db.exec(
///     "CREATE TABLE r (dept TEXT, sal NUM);
///      INSERT INTO r VALUES ('d1', 20) PROVENANCE p1;
///      INSERT INTO r VALUES ('d2', 30) PROVENANCE p2;",
/// )
/// .unwrap();
///
/// let by_dept = db.prepare("SELECT sal FROM r WHERE dept = $1").unwrap();
/// let d1 = by_dept.execute_with(&[Const::str("d1")]).unwrap();
/// let d2 = by_dept.execute_with(&[Const::str("d2")]).unwrap();
/// assert_eq!(d1.len(), 1);
/// assert_eq!(d2.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Prepared<'db, A: AggAnnotation + ParseAnnotation> {
    db: &'db Database<A>,
    stmt: CachedStatement,
}

/// Executes a cached statement against a database state — the shared body
/// of [`Prepared`] and [`SnapPrepared`].
fn execute_stmt<A: AggAnnotation + ParseAnnotation>(
    db: &Database<A>,
    stmt: &CachedStatement,
    params: &[Const],
    opts: &ExecOptions,
) -> Result<ResultSet<A>> {
    if params.len() != stmt.param_count {
        return Err(RelError::ParamArity {
            expected: stmt.param_count,
            got: params.len(),
        });
    }
    Ok(ResultSet::from_relation(execute_plan(
        db,
        &stmt.phys,
        params,
        stmt.param_count,
        opts,
    )?))
}

impl<'db, A: AggAnnotation + ParseAnnotation> Prepared<'db, A> {
    /// The logical plan as lowered from the SQL, before optimization.
    pub fn plan(&self) -> &Plan {
        &self.stmt.logical
    }

    /// The optimized logical plan — what actually executes (identical to
    /// [`plan`](Prepared::plan) when no rewrite fired).
    pub fn optimized_plan(&self) -> &Plan {
        &self.stmt.optimized
    }

    /// `EXPLAIN`-style introspection: the pre-optimization and
    /// post-optimization operator trees, rendered for humans.
    ///
    /// ```
    /// use aggprov_engine::ProvDb;
    /// let mut db = ProvDb::new();
    /// db.exec("CREATE TABLE r (a NUM, b NUM)").unwrap();
    /// let stmt = db.prepare("SELECT a FROM r WHERE b = 1").unwrap();
    /// assert!(stmt.plan_display().contains("Filter r.b = 1"));
    /// ```
    pub fn plan_display(&self) -> String {
        format!(
            "logical plan (as lowered):\n{}optimized plan:\n{}",
            opt::render_plan(&self.stmt.logical),
            opt::render_plan(&self.stmt.optimized),
        )
    }

    /// How many `$n` parameters the query expects.
    pub fn param_count(&self) -> usize {
        self.stmt.param_count
    }

    /// The result schema (known without executing).
    pub fn schema(&self) -> &Schema {
        self.stmt.logical.schema()
    }

    /// Executes the plan. Fails if the query has `$n` placeholders (use
    /// [`execute_with`](Prepared::execute_with)).
    ///
    /// Physical operators run partition-parallel with the environment's
    /// thread count: `AGGPROV_THREADS` when set (an unparseable value is a
    /// loud [`RelError::InvalidEnv`]), otherwise the machine's available
    /// parallelism. The produced result is identical at every thread count
    /// — use [`execute_with_opts`](Prepared::execute_with_opts) to pin it
    /// explicitly.
    pub fn execute(&self) -> Result<ResultSet<A>> {
        self.execute_with(&[])
    }

    /// Executes the plan with `$1, $2, …` bound to `params` in order,
    /// using the environment's thread count (see
    /// [`execute`](Prepared::execute)).
    pub fn execute_with(&self, params: &[Const]) -> Result<ResultSet<A>> {
        self.execute_with_opts(params, &ExecOptions::from_env()?)
    }

    /// Executes the plan with `$1, $2, …` bound to `params` and an explicit
    /// [`ExecOptions`] — `ExecOptions::serial()` pins the single-threaded
    /// path, `ExecOptions::with_threads(n)` shards ground partitions across
    /// `n` scoped worker threads.
    pub fn execute_with_opts(&self, params: &[Const], opts: &ExecOptions) -> Result<ResultSet<A>> {
        execute_stmt(self.db, &self.stmt, params, opts)
    }
}

/// An immutable whole-database snapshot: one frozen epoch plus the shared
/// plan cache (see [`Database::snapshot`]).
///
/// A snapshot is cheap to clone (`Arc` bumps), is `Send + Sync +
/// 'static`, and never changes: queries prepared and executed against it
/// see exactly the data of the epoch it was taken from, no matter what
/// the live database does concurrently. This is the reader half of the
/// serving layer's single-writer/many-readers model.
#[derive(Clone, Debug)]
pub struct DbSnapshot<A: AggAnnotation + ParseAnnotation> {
    db: Arc<Database<A>>,
}

impl<A: AggAnnotation + ParseAnnotation> DbSnapshot<A> {
    /// The epoch this snapshot froze (see [`Database::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.db.epoch_id
    }

    /// Looks a table up in the frozen epoch.
    pub fn table(&self, name: &str) -> Result<&MKRel<A>> {
        self.db.table(name)
    }

    /// The table names of the frozen epoch.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.db.table_names()
    }

    /// Prepares a query against the frozen epoch, returning an **owned**
    /// [`SnapPrepared`] handle: it keeps the epoch alive, can move across
    /// threads, and executes with no locks. Cached plans are shared with
    /// the live database where the table versions agree.
    pub fn prepare(&self, sql: &str) -> Result<SnapPrepared<A>> {
        let stmt = self.db.cached_statement(sql)?;
        Ok(SnapPrepared {
            db: self.db.clone(),
            stmt,
        })
    }

    /// Runs a single query against the frozen epoch (the one-shot
    /// convenience wrapper, as [`Database::query`]).
    pub fn query(&self, sql: &str) -> Result<MKRel<A>> {
        self.db.query(sql)
    }
}

/// An owned prepared statement bound to a [`DbSnapshot`]'s frozen epoch.
///
/// Unlike [`Prepared`] this does not borrow the database: sessions can
/// hold it across requests, hand it to worker threads, and execute it
/// concurrently — every execution sees the same frozen epoch.
#[derive(Clone, Debug)]
pub struct SnapPrepared<A: AggAnnotation + ParseAnnotation> {
    db: Arc<Database<A>>,
    stmt: CachedStatement,
}

impl<A: AggAnnotation + ParseAnnotation> SnapPrepared<A> {
    /// The logical plan as lowered from the SQL, before optimization.
    pub fn plan(&self) -> &Plan {
        &self.stmt.logical
    }

    /// The optimized logical plan — what actually executes.
    pub fn optimized_plan(&self) -> &Plan {
        &self.stmt.optimized
    }

    /// How many `$n` parameters the query expects.
    pub fn param_count(&self) -> usize {
        self.stmt.param_count
    }

    /// The result schema (known without executing).
    pub fn schema(&self) -> &Schema {
        self.stmt.logical.schema()
    }

    /// The epoch this statement executes against.
    pub fn epoch(&self) -> u64 {
        self.db.epoch_id
    }

    /// Executes the plan (no `$n` placeholders; see
    /// [`execute_with`](SnapPrepared::execute_with)).
    pub fn execute(&self) -> Result<ResultSet<A>> {
        self.execute_with(&[])
    }

    /// Executes with `$1, $2, …` bound to `params`, using the
    /// environment's thread count.
    pub fn execute_with(&self, params: &[Const]) -> Result<ResultSet<A>> {
        self.execute_with_opts(params, &ExecOptions::from_env()?)
    }

    /// Executes with explicit [`ExecOptions`].
    pub fn execute_with_opts(&self, params: &[Const], opts: &ExecOptions) -> Result<ResultSet<A>> {
        execute_stmt(&self.db, &self.stmt, params, opts)
    }
}
