//! Query execution: interprets the AST against annotated relations using
//! the operators of `aggprov-core`.
//!
//! Name handling: every scanned table's columns are internally renamed to
//! `alias.column`; unqualified references resolve by unique suffix match.
//! Aggregate outputs take their `AS` alias (or a `FUNC(col)` display name)
//! immediately after grouping, so `HAVING` can reference them.

use crate::ast::*;
use crate::database::Database;
use crate::annot::ParseAnnotation;
use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::{difference, Value};
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;

fn unsup(msg: impl Into<String>) -> RelError {
    RelError::Unsupported(msg.into())
}

/// Runs a query against the database.
pub fn run_query<A>(db: &Database<A>, q: &Query) -> Result<MKRel<A>>
where
    A: AggAnnotation + ParseAnnotation,
{
    match q {
        Query::Select(s) => run_select(db, s),
        Query::SetOp { op, left, right } => {
            let l = run_query(db, left)?;
            let r = run_query(db, right)?;
            if l.schema().arity() != r.schema().arity() {
                return Err(RelError::SchemaMismatch {
                    left: l.schema().to_string(),
                    right: r.schema().to_string(),
                    op: "set operation (arities differ)",
                });
            }
            // Align by position, as in SQL.
            let mut r2 = r;
            let left_names: Vec<String> = l
                .schema()
                .attrs()
                .iter()
                .map(|a| a.name().to_string())
                .collect();
            for (i, name) in left_names.iter().enumerate() {
                let current = r2.schema().attrs()[i].name().to_string();
                if &current != name {
                    // Two-step rename avoids transient collisions.
                    let tmp = format!("__align_{i}");
                    r2 = r2.rename(&current, &tmp)?;
                    r2 = r2.rename(&tmp, name)?;
                }
            }
            match op {
                SetOp::Union => ops::union(&l, &r2),
                SetOp::Except => difference::difference(&l, &r2),
            }
        }
    }
}

fn lit_to_const(lit: &Lit) -> Const {
    match lit {
        Lit::Num(n) => Const::Num(*n),
        Lit::Str(s) => Const::str(s),
        Lit::Bool(b) => Const::Bool(*b),
    }
}

/// Renames every column of a scanned table (or derived subquery) to
/// `alias.column`.
fn scan<A>(db: &Database<A>, tref: &TableRef) -> Result<MKRel<A>>
where
    A: AggAnnotation + ParseAnnotation,
{
    let derived;
    let rel = match &tref.source {
        crate::ast::TableSource::Named(name) => db.table(name)?,
        crate::ast::TableSource::Subquery(q) => {
            derived = run_query(db, q)?;
            &derived
        }
    };
    let alias = tref.effective_alias();
    if alias.contains('.') {
        return Err(unsup(format!("alias `{alias}` may not contain `.`")));
    }
    let names: Vec<String> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut out = rel.clone();
    for name in names {
        out = out.rename(&name, &format!("{alias}.{name}"))?;
    }
    Ok(out)
}

/// Resolves a column reference against a schema.
fn resolve_col(schema: &Schema, col: &ColRef) -> Result<String> {
    let want = col.display();
    if schema.contains(&want) {
        return Ok(want);
    }
    if col.table.is_none() {
        let suffix = format!(".{}", col.column);
        let matches: Vec<&str> = schema
            .attrs()
            .iter()
            .map(|a| a.name())
            .filter(|n| n.ends_with(suffix.as_str()))
            .collect();
        match matches.len() {
            1 => return Ok(matches[0].to_string()),
            0 => {}
            _ => {
                return Err(unsup(format!(
                    "ambiguous column `{}` (candidates: {})",
                    col.column,
                    matches.join(", ")
                )))
            }
        }
    }
    Err(RelError::UnknownAttr(want))
}

fn apply_condition<A: AggAnnotation>(rel: &MKRel<A>, cond: &Condition) -> Result<MKRel<A>> {
    use aggprov_core::km::CmpPred;
    enum Fetch {
        Col(usize),
        Lit(Const),
    }
    let resolve = |operand: &Operand| -> Result<Fetch> {
        Ok(match operand {
            Operand::Col(c) => Fetch::Col(rel.schema().index_of(&resolve_col(rel.schema(), c)?)?),
            Operand::Lit(l) => Fetch::Lit(lit_to_const(l)),
        })
    };
    let left = resolve(&cond.left)?;
    let right = resolve(&cond.right)?;
    ops::select_with_token(rel, move |_, t| {
        let fetch = |f: &Fetch| -> Value<A> {
            match f {
                Fetch::Col(i) => t.get(*i).clone(),
                Fetch::Lit(c) => Value::Const(c.clone()),
            }
        };
        let (lv, rv) = (fetch(&left), fetch(&right));
        match cond.op {
            CmpOp::Eq => A::value_eq(&lv, &rv),
            CmpOp::Ne => A::value_cmp(CmpPred::Ne, &lv, &rv),
            CmpOp::Lt => A::value_cmp(CmpPred::Lt, &lv, &rv),
            CmpOp::Le => A::value_cmp(CmpPred::Le, &lv, &rv),
            CmpOp::Gt => A::value_cmp(CmpPred::Lt, &rv, &lv),
            CmpOp::Ge => A::value_cmp(CmpPred::Le, &rv, &lv),
        }
    })
}

fn agg_kind(func: AggFunc) -> MonoidKind {
    match func {
        AggFunc::Sum | AggFunc::Count | AggFunc::Avg => MonoidKind::Sum,
        AggFunc::Min => MonoidKind::Min,
        AggFunc::Max => MonoidKind::Max,
        AggFunc::Prod => MonoidKind::Prod,
        AggFunc::BoolOr => MonoidKind::Or,
    }
}

const ONE_COL: &str = "__one";

/// Appends a constant-1 column (for COUNT/AVG).
fn with_one_column<A: AggAnnotation>(rel: &MKRel<A>) -> Result<MKRel<A>> {
    let mut names: Vec<String> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    names.push(ONE_COL.to_string());
    let schema = Schema::new(names.iter().map(|s| s.as_str()))?;
    let mut out = Relation::empty(schema);
    for (t, k) in rel.iter() {
        let mut row = t.values().to_vec();
        row.push(Value::int(1));
        out.insert(row, k.clone())?;
    }
    Ok(out)
}

struct Planned {
    /// Internal output column per select item, in order.
    internal: Vec<String>,
    /// Display name per select item, in order.
    display: Vec<String>,
}

fn run_select<A>(db: &Database<A>, s: &SelectStmt) -> Result<MKRel<A>>
where
    A: AggAnnotation + ParseAnnotation,
{
    if s.from.is_empty() {
        return Err(unsup("FROM clause is required"));
    }
    // FROM and JOIN.
    let mut rel = scan(db, &s.from[0])?;
    for tref in &s.from[1..] {
        rel = ops::product(&rel, &scan(db, tref)?)?;
    }
    for join in &s.joins {
        let right = scan(db, &join.table)?;
        let mut pairs: Vec<(String, String)> = Vec::new();
        for (l, r) in &join.on {
            // Orient each pair: one side in the accumulated relation, the
            // other in the joined table.
            let (lc, rc) = match (resolve_col(rel.schema(), l), resolve_col(right.schema(), r)) {
                (Ok(a), Ok(b)) => (a, b),
                _ => {
                    let a = resolve_col(rel.schema(), r)?;
                    let b = resolve_col(right.schema(), l)?;
                    (a, b)
                }
            };
            pairs.push((lc, rc));
        }
        let pair_refs: Vec<(&str, &str)> =
            pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        rel = ops::join_on(&rel, &right, &pair_refs)?;
    }
    // WHERE.
    for cond in &s.where_ {
        rel = apply_condition(&rel, cond)?;
    }

    let has_agg = s
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Agg(..)));

    let planned = if has_agg || !s.group_by.is_empty() {
        let (aggregated, planned) = run_aggregate(rel, s)?;
        rel = aggregated;
        planned
    } else {
        if !s.having.is_empty() {
            return Err(unsup("HAVING requires aggregation"));
        }
        plan_plain_items(&rel, s)?
    };

    // HAVING (aggregate outputs are already named).
    for cond in &s.having {
        rel = apply_condition(&rel, cond)?;
    }

    // Final projection and renaming to display names.
    let internal_refs: Vec<&str> = planned.internal.iter().map(|s| s.as_str()).collect();
    let mut out = ops::project(&rel, &internal_refs)?;
    for (i, display) in planned.display.iter().enumerate() {
        let current = out.schema().attrs()[i].name().to_string();
        if &current != display {
            let tmp = format!("__out_{i}");
            out = out.rename(&current, &tmp)?;
            out = out.rename(&tmp, display)?;
        }
    }
    Ok(out)
}

/// Plans SELECT items when no aggregation is involved.
fn plan_plain_items<A: AggAnnotation>(rel: &MKRel<A>, s: &SelectStmt) -> Result<Planned> {
    let mut internal = Vec::new();
    let mut display = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Star => {
                for a in rel.schema().attrs() {
                    internal.push(a.name().to_string());
                    display.push(bare_display(rel.schema(), a.name()));
                }
            }
            SelectItem::Col(c, alias) => {
                let name = resolve_col(rel.schema(), c)?;
                internal.push(name);
                display.push(alias.clone().unwrap_or_else(|| c.column.clone()));
            }
            SelectItem::Agg(..) => unreachable!("plain path has no aggregates"),
        }
    }
    Ok(Planned { internal, display })
}

/// For `SELECT *`: strips the alias prefix when the bare column name is
/// unambiguous.
fn bare_display(schema: &Schema, internal: &str) -> String {
    let bare = internal.rsplit('.').next().unwrap_or(internal);
    let suffix = format!(".{bare}");
    let count = schema
        .attrs()
        .iter()
        .filter(|a| a.name() == bare || a.name().ends_with(suffix.as_str()))
        .count();
    if count == 1 {
        bare.to_string()
    } else {
        internal.to_string()
    }
}

/// Executes grouping/aggregation and names the outputs.
fn run_aggregate<A: AggAnnotation>(
    rel: MKRel<A>,
    s: &SelectStmt,
) -> Result<(MKRel<A>, Planned)> {
    // Resolve grouping columns.
    let group_internal: Vec<String> = s
        .group_by
        .iter()
        .map(|c| resolve_col(rel.schema(), c))
        .collect::<Result<_>>()?;

    let needs_one = s.items.iter().any(|i| {
        matches!(
            i,
            SelectItem::Agg(AggFunc::Count | AggFunc::Avg, _, _)
        )
    });
    let rel = if needs_one { with_one_column(&rel)? } else { rel };

    // Build specs and the output plan.
    let mut specs_owned: Vec<(MonoidKind, String, String)> = Vec::new();
    let mut avg_pairs: Vec<(String, String, String)> = Vec::new(); // (sum, cnt, out)
    let mut internal = Vec::new();
    let mut display = Vec::new();

    for (i, item) in s.items.iter().enumerate() {
        match item {
            SelectItem::Star => {
                return Err(unsup("`*` cannot be mixed with aggregation; list columns"))
            }
            SelectItem::Col(c, alias) => {
                let name = resolve_col(rel.schema(), c)?;
                if !group_internal.contains(&name) {
                    return Err(unsup(format!(
                        "column `{}` must appear in GROUP BY or inside an aggregate",
                        c.display()
                    )));
                }
                internal.push(name);
                display.push(alias.clone().unwrap_or_else(|| c.column.clone()));
            }
            SelectItem::Agg(func, arg, alias) => {
                let (attr, arg_name) = match arg {
                    AggArg::Star => {
                        if !matches!(func, AggFunc::Count) {
                            return Err(unsup(format!("{}(*) is not supported", func.name())));
                        }
                        (ONE_COL.to_string(), "*".to_string())
                    }
                    AggArg::Col(c) => (resolve_col(rel.schema(), c)?, c.display()),
                };
                let out_name = alias
                    .clone()
                    .unwrap_or_else(|| format!("{}({})", func.name(), arg_name));
                match func {
                    AggFunc::Count => {
                        specs_owned.push((MonoidKind::Sum, ONE_COL.into(), out_name.clone()));
                    }
                    AggFunc::Avg => {
                        let s_col = format!("__avg_sum_{i}");
                        let c_col = format!("__avg_cnt_{i}");
                        specs_owned.push((MonoidKind::Sum, attr, s_col.clone()));
                        specs_owned.push((MonoidKind::Sum, ONE_COL.into(), c_col.clone()));
                        avg_pairs.push((s_col, c_col, out_name.clone()));
                    }
                    _ => {
                        specs_owned.push((agg_kind(*func), attr, out_name.clone()));
                    }
                }
                internal.push(out_name.clone());
                display.push(out_name);
            }
        }
    }

    let specs: Vec<AggSpec<'_>> = specs_owned
        .iter()
        .map(|(kind, attr, out)| AggSpec {
            kind: *kind,
            attr,
            out,
        })
        .collect();
    let group_refs: Vec<&str> = group_internal.iter().map(|g| g.as_str()).collect();
    let grouped = if group_refs.is_empty() {
        ops::agg_all(&rel, &specs)?
    } else {
        ops::group_by(&rel, &group_refs, &specs)?
    };

    // Compute AVG columns from their SUM/COUNT parts.
    let finished = if avg_pairs.is_empty() {
        grouped
    } else {
        compute_avg_columns(&grouped, &avg_pairs)?
    };
    Ok((finished, Planned { internal, display }))
}

/// Appends `out = sum / cnt` columns; both parts must have resolved
/// (symbolic AVG would require division in the monoid — compute SUM and
/// COUNT separately to keep provenance, per paper footnote 6).
fn compute_avg_columns<A: AggAnnotation>(
    rel: &MKRel<A>,
    pairs: &[(String, String, String)],
) -> Result<MKRel<A>> {
    let mut names: Vec<String> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    for (_, _, out) in pairs {
        names.push(out.clone());
    }
    let schema = Schema::new(names.iter().map(|s| s.as_str()))?;
    let indices: Vec<(usize, usize)> = pairs
        .iter()
        .map(|(s, c, _)| Ok((rel.schema().index_of(s)?, rel.schema().index_of(c)?)))
        .collect::<Result<_>>()?;
    let mut out = Relation::empty(schema);
    for (t, k) in rel.iter() {
        let mut row = t.values().to_vec();
        for (si, ci) in &indices {
            let sum = t.get(*si).as_const().and_then(Const::as_num);
            let cnt = t.get(*ci).as_const().and_then(Const::as_num);
            let avg = match (sum, cnt) {
                (Some(s), Some(c)) => s.checked_div(&c).ok_or_else(|| {
                    unsup("AVG over an empty group")
                })?,
                _ => {
                    return Err(unsup(
                        "AVG over symbolic provenance does not resolve; select SUM and \
                         COUNT separately (paper footnote 6)",
                    ))
                }
            };
            row.push(Value::Const(Const::Num(avg)));
        }
        out.insert(row, k.clone())?;
    }
    Ok(out)
}
