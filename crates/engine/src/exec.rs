//! Plan execution: interprets the logical-plan IR of [`crate::plan`]
//! against annotated relations using the operators of `aggprov-core`.
//!
//! All parsing, name resolution and validation happened at prepare time
//! (see [`crate::plan::lower_query`]); this module only moves data. Column
//! references arrive as positions or resolved internal names, output
//! naming and set-operation alignment are single schema-level renames
//! ([`Relation::with_schema`](aggprov_krel::relation::Relation::with_schema)),
//! and `$n` parameters are bound from the slice passed alongside the plan.
//!
//! Join, group-by, union and projection nodes run the partition-parallel
//! operator variants of `aggprov_core::ops`, sharding their ground
//! partitions across the worker threads of the [`ExecOptions`] passed down
//! from [`Prepared::execute_with_opts`](crate::database::Prepared); the
//! produced relations are identical at every thread count.

use crate::annot::ParseAnnotation;
use crate::ast::{CmpOp, SetOp};
use crate::database::Database;
use crate::plan::{AvgSpec, Plan, PlanOperand, Predicate};
use aggprov_algebra::domain::Const;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::par::ExecOptions;
use aggprov_core::{difference, Value};
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Relation;

fn unsup(msg: impl Into<String>) -> RelError {
    RelError::Unsupported(msg.into())
}

/// Executes a plan against the database with `$n` parameters bound from
/// `params` (slot `i` holds `$i+1`).
///
/// Crate-private on purpose: plans interpret column references by
/// position without re-validating them, so the only safe entry points are
/// the ones that lowered the plan against this database —
/// [`Prepared`](crate::database::Prepared) and
/// [`Database::exec`](crate::database::Database::exec).
pub(crate) fn execute_plan<A>(
    db: &Database<A>,
    plan: &Plan,
    params: &[Const],
    param_count: usize,
    opts: &ExecOptions,
) -> Result<MKRel<A>>
where
    A: AggAnnotation + ParseAnnotation,
{
    match plan {
        Plan::Scan { table, schema } => db.table(table)?.clone().with_schema(schema.clone()),
        Plan::Derived { input, schema } => {
            execute_plan(db, input, params, param_count, opts)?.with_schema(schema.clone())
        }
        Plan::Product { left, right, .. } => {
            let l = execute_plan(db, left, params, param_count, opts)?;
            let r = execute_plan(db, right, params, param_count, opts)?;
            ops::product(&l, &r)
        }
        Plan::Join {
            left, right, on, ..
        } => {
            let l = execute_plan(db, left, params, param_count, opts)?;
            let r = execute_plan(db, right, params, param_count, opts)?;
            let pairs: Vec<(&str, &str)> =
                on.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            ops::join_on_opts(&l, &r, &pairs, opts)
        }
        Plan::Filter { input, pred } => {
            let rel = execute_plan(db, input, params, param_count, opts)?;
            apply_predicate(&rel, pred, params, param_count)
        }
        Plan::AddUnitColumn { input, schema } => {
            let rel = execute_plan(db, input, params, param_count, opts)?;
            let mut out = Relation::empty(schema.clone());
            for (t, k) in rel.iter() {
                let mut row = t.values().to_vec();
                row.push(Value::int(1));
                out.insert(row, k.clone())?;
            }
            Ok(out)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            avg,
            ..
        } => {
            let rel = execute_plan(db, input, params, param_count, opts)?;
            let specs: Vec<AggSpec<'_>> = aggs
                .iter()
                .map(|a| AggSpec {
                    kind: a.kind,
                    attr: &a.attr,
                    out: &a.out,
                })
                .collect();
            let group_refs: Vec<&str> = group_by.iter().map(|g| g.as_str()).collect();
            let grouped = if group_refs.is_empty() {
                ops::agg_all(&rel, &specs)?
            } else {
                ops::group_by_opts(&rel, &group_refs, &specs, opts)?
            };
            if avg.is_empty() {
                Ok(grouped)
            } else {
                compute_avg_columns(&grouped, avg, group_refs.is_empty())
            }
        }
        Plan::Project {
            input,
            columns,
            schema,
        } => {
            let rel = execute_plan(db, input, params, param_count, opts)?;
            // Project the *distinct* input positions first — the §4.3
            // symbolic projection (annotation merging under equality
            // tokens) is defined over a set of attributes — then expand
            // duplicated select items (`SELECT dept AS a, dept AS b`)
            // positionally and install the display schema in one
            // schema-level rename.
            let mut distinct: Vec<usize> = Vec::new();
            let expand: Vec<usize> = columns
                .iter()
                .map(|i| {
                    distinct.iter().position(|d| d == i).unwrap_or_else(|| {
                        distinct.push(*i);
                        distinct.len() - 1
                    })
                })
                .collect();
            let names: Vec<&str> = distinct
                .iter()
                .map(|i| rel.schema().attrs()[*i].name())
                .collect();
            // An identity projection (every input column, in order) over a
            // symbol-free relation is a pure schema rename: no tuple
            // rebuild, the Arc'd store stays shared with the input (and,
            // through a bare scan, with the base table itself). With
            // symbolic values the §4.3 projection is *not* the identity —
            // a constant row and an aggregate row can carry a nonzero
            // equality token, so cross contributions must still be summed.
            let identity = distinct.len() == rel.schema().arity()
                && distinct.iter().enumerate().all(|(i, d)| i == *d)
                && !ops::has_symbolic(&rel);
            let projected = if identity {
                rel
            } else {
                ops::project_opts(&rel, &names, opts)?
            };
            if distinct.len() == columns.len() {
                return projected.with_schema(schema.clone());
            }
            let mut out = Relation::empty(schema.clone());
            for (t, k) in projected.iter() {
                let row: Vec<Value<A>> = expand.iter().map(|i| t.get(*i).clone()).collect();
                out.insert(row, k.clone())?;
            }
            Ok(out)
        }
        Plan::SetOp {
            op,
            left,
            right,
            schema,
        } => {
            let l = execute_plan(db, left, params, param_count, opts)?;
            // Align the right side by position, as in SQL: one
            // schema-level rename instead of a per-column rename loop.
            let r =
                execute_plan(db, right, params, param_count, opts)?.with_schema(schema.clone())?;
            match op {
                SetOp::Union => ops::union_opts(&l, &r, opts),
                SetOp::Except => difference::difference(&l, &r),
            }
        }
    }
}

/// Binds a resolved operand to a concrete value fetcher.
enum Fetch {
    Col(usize),
    Const(Const),
}

fn bind_operand(op: &PlanOperand, params: &[Const], param_count: usize) -> Result<Fetch> {
    Ok(match op {
        PlanOperand::Col(i) => Fetch::Col(*i),
        PlanOperand::Lit(c) => Fetch::Const(c.clone()),
        PlanOperand::Param(slot) => {
            // Defensive re-check of what `Prepared::execute_with` verified
            // up front; both paths raise the same `ParamArity` error.
            let c = params.get(*slot).ok_or(RelError::ParamArity {
                expected: param_count,
                got: params.len(),
            })?;
            Fetch::Const(c.clone())
        }
    })
}

fn apply_predicate<A: AggAnnotation>(
    rel: &MKRel<A>,
    pred: &Predicate,
    params: &[Const],
    param_count: usize,
) -> Result<MKRel<A>> {
    use aggprov_core::km::CmpPred;
    let left = bind_operand(&pred.left, params, param_count)?;
    let right = bind_operand(&pred.right, params, param_count)?;
    ops::select_with_token(rel, move |_, t| {
        let fetch = |f: &Fetch| -> Value<A> {
            match f {
                Fetch::Col(i) => t.get(*i).clone(),
                Fetch::Const(c) => Value::Const(c.clone()),
            }
        };
        let (lv, rv) = (fetch(&left), fetch(&right));
        match pred.op {
            CmpOp::Eq => A::value_eq(&lv, &rv),
            CmpOp::Ne => A::value_cmp(CmpPred::Ne, &lv, &rv),
            CmpOp::Lt => A::value_cmp(CmpPred::Lt, &lv, &rv),
            CmpOp::Le => A::value_cmp(CmpPred::Le, &lv, &rv),
            CmpOp::Gt => A::value_cmp(CmpPred::Lt, &rv, &lv),
            CmpOp::Ge => A::value_cmp(CmpPred::Le, &rv, &lv),
        }
    })
}

/// Appends `out = sum / cnt` columns; both parts must have resolved
/// (symbolic AVG would require division in the monoid — compute SUM and
/// COUNT separately to keep provenance, per paper footnote 6).
///
/// An *ungrouped* AVG over empty input sees the §3.2 identity row
/// (`sum = 0, cnt = 0`); SQL answers NULL there, and since the engine has
/// no NULLs, we drop the row and return an empty result instead of
/// erroring. Grouped AVG never divides by zero — a group only exists with
/// at least one member — so a zero count there stays an error.
fn compute_avg_columns<A: AggAnnotation>(
    rel: &MKRel<A>,
    pairs: &[AvgSpec],
    ungrouped: bool,
) -> Result<MKRel<A>> {
    let mut names: Vec<String> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    for spec in pairs {
        names.push(spec.out.clone());
    }
    let schema = aggprov_krel::schema::Schema::new(names.iter().map(|s| s.as_str()))?;
    let indices: Vec<(usize, usize)> = pairs
        .iter()
        .map(|spec| {
            Ok((
                rel.schema().index_of(&spec.sum)?,
                rel.schema().index_of(&spec.count)?,
            ))
        })
        .collect::<Result<_>>()?;
    let mut out = Relation::empty(schema);
    'rows: for (t, k) in rel.iter() {
        let mut row = t.values().to_vec();
        for (si, ci) in &indices {
            let sum = t.get(*si).as_const().and_then(Const::as_num);
            let cnt = t.get(*ci).as_const().and_then(Const::as_num);
            let avg = match (sum, cnt) {
                (Some(s), Some(c)) => match s.checked_div(&c) {
                    Some(avg) => avg,
                    None if ungrouped => continue 'rows,
                    None => return Err(unsup("AVG over an empty group")),
                },
                _ => {
                    return Err(unsup(
                        "AVG over symbolic provenance does not resolve; select SUM and \
                         COUNT separately (paper footnote 6)",
                    ))
                }
            };
            row.push(Value::Const(Const::Num(avg)));
        }
        out.insert(row, k.clone())?;
    }
    Ok(out)
}
