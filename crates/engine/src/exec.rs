//! Physical-plan execution: drives the `PhysNode`
//! pipeline of `crate::phys` against annotated relations.
//!
//! All parsing, name resolution and validation happened at prepare time
//! (see [`crate::plan::lower_query`] and `crate::phys::lower`); this
//! module only moves data. Execution streams `Flow` values — either a
//! materialized relation or a columnar [`Chunk`] (ground batch + selection
//! vector + symbolic fringe) — through the operator tree:
//!
//! * **pipeline segments** (Filter → Project → AddUnitColumn → HashJoin
//!   over ground data) stay in chunk form, so no `BTreeMap` relation is
//!   materialized between nodes — filters narrow a selection vector,
//!   projections gather columns, joins hash build/probe over columns;
//! * **pipeline breakers** — Aggregate and SetOp — materialize their
//!   inputs and run the row-at-a-time operators of `aggprov_core::ops`
//!   (which also carry the partition-parallel sharding of
//!   [`ExecOptions`]);
//! * whenever the symbolic fringe forces cross-row token sums (projection
//!   or join over symbolic values), the affected node falls back to the
//!   same `ops::*_opts` operators, so results are bit-identical to the
//!   `specops` reference at every thread count.

use crate::annot::ParseAnnotation;
use crate::ast::{CmpOp, SetOp};
use crate::database::Database;
use crate::phys::PhysNode;
use crate::plan::{PlanOperand, Predicate};
use aggprov_algebra::domain::Const;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::km::CmpPred;
use aggprov_core::ops::batch::{hash_join, BatchCmp, BatchOperand, Chunk};
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::par::ExecOptions;
use aggprov_core::{difference, Value};
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::{Relation, Tuple};
use aggprov_krel::schema::Schema;
use aggprov_krel::typed::{ColHint, ColumnLayout};
use std::collections::BTreeMap;

fn unsup(msg: impl Into<String>) -> RelError {
    RelError::Unsupported(msg.into())
}

/// A value mid-pipeline: a materialized relation (with the typed-column
/// hints its scan pinned, if any) or a columnar chunk. Conversions are
/// lazy — a scan stays an `Arc`-shared relation until a vectorized node
/// actually needs columns.
enum Flow<A: AggAnnotation> {
    Rel(MKRel<A>, Option<Vec<Option<ColHint>>>),
    Chunk(Chunk<A>),
}

/// The column layout a chunk conversion should use: forced boxed when
/// `AGGPROV_TYPED=0`, catalog-hinted when the scan pinned column types at
/// prepare time, per-column probing otherwise.
fn layout_for(opts: &ExecOptions, hints: Option<Vec<Option<ColHint>>>) -> ColumnLayout {
    if !opts.typed() {
        ColumnLayout::boxed()
    } else {
        match hints {
            Some(h) => ColumnLayout::with_hints(h),
            None => ColumnLayout::typed(),
        }
    }
}

impl<A: AggAnnotation> Flow<A> {
    /// Materializes (merging any deferred duplicates additively).
    fn into_rel(self) -> Result<MKRel<A>> {
        match self {
            Flow::Rel(r, _) => Ok(r),
            Flow::Chunk(c) => c.into_relation(),
        }
    }

    /// Moves to columnar form (splitting off the symbolic fringe), under
    /// the layout `opts` and any pinned scan hints dictate.
    fn into_chunk(self, opts: &ExecOptions) -> Chunk<A> {
        match self {
            Flow::Rel(r, hints) => Chunk::from_relation_with(&r, &layout_for(opts, hints)),
            Flow::Chunk(c) => c,
        }
    }

    /// True iff any row carries a symbolic aggregate value — the
    /// condition that sends cross-row nodes to the token-path fallback.
    fn has_symbolic(&self) -> bool {
        match self {
            Flow::Rel(r, _) => ops::has_symbolic(r),
            Flow::Chunk(c) => c.has_fringe(),
        }
    }
}

/// Executes a physical plan against the database with `$n` parameters
/// bound from `params` (slot `i` holds `$i+1`).
///
/// Crate-private on purpose: physical plans interpret column references
/// by position without re-validating them, so the only safe entry points
/// are the ones that lowered the plan against this database —
/// [`Prepared`](crate::database::Prepared) and
/// [`Database::exec`](crate::database::Database::exec).
pub(crate) fn execute_plan<A>(
    db: &Database<A>,
    phys: &PhysNode,
    params: &[Const],
    param_count: usize,
    opts: &ExecOptions,
) -> Result<MKRel<A>>
where
    A: AggAnnotation + ParseAnnotation,
{
    run(db, phys, params, param_count, opts)?.into_rel()
}

fn run<A>(
    db: &Database<A>,
    phys: &PhysNode,
    params: &[Const],
    param_count: usize,
    opts: &ExecOptions,
) -> Result<Flow<A>>
where
    A: AggAnnotation + ParseAnnotation,
{
    match phys {
        PhysNode::Scan {
            table,
            schema,
            hints,
        } => Ok(Flow::Rel(
            db.table(table)?.clone().with_schema(schema.clone())?,
            hints.clone(),
        )),
        PhysNode::Rename { input, schema } => match run(db, input, params, param_count, opts)? {
            Flow::Rel(r, hints) => Ok(Flow::Rel(r.with_schema(schema.clone())?, hints)),
            Flow::Chunk(c) => Ok(Flow::Chunk(c.with_schema(schema.clone())?)),
        },
        PhysNode::Filter { input, preds } => {
            // Fused conjuncts narrow one selection vector in sequence
            // (innermost conjunct first, exactly as the unfused pipeline
            // applied them).
            let mut chunk = run(db, input, params, param_count, opts)?.into_chunk(opts);
            for pred in preds {
                let (left, cmp, right) = bind_predicate(pred, params, param_count)?;
                chunk.filter(&left, cmp, &right, opts)?;
            }
            Ok(Flow::Chunk(chunk))
        }
        PhysNode::AddUnitColumn { input, schema } => {
            let chunk = run(db, input, params, param_count, opts)?.into_chunk(opts);
            Ok(Flow::Chunk(chunk.add_unit_column(schema.clone())?))
        }
        PhysNode::Project {
            input,
            columns,
            distinct,
            expand,
            identity,
            schema,
        } => {
            let flow = run(db, input, params, param_count, opts)?;
            if flow.has_symbolic() {
                // Cross-row token sums: the §4.3 projection over the
                // distinct positions, then positional expansion.
                let rel = flow.into_rel()?;
                return Ok(Flow::Rel(
                    project_symbolic(&rel, distinct, expand, schema, opts)?,
                    None,
                ));
            }
            if *identity {
                // A pure schema rename over symbol-free input: the Arc'd
                // tuple store (or the columns) stay shared untouched.
                return match flow {
                    Flow::Rel(r, hints) => Ok(Flow::Rel(r.with_schema(schema.clone())?, hints)),
                    Flow::Chunk(c) => Ok(Flow::Chunk(c.with_schema(schema.clone())?)),
                };
            }
            Ok(Flow::Chunk(
                flow.into_chunk(opts).project(columns, schema.clone())?,
            ))
        }
        PhysNode::Product {
            left,
            right,
            schema,
        } => {
            let l = run(db, left, params, param_count, opts)?;
            let r = run(db, right, params, param_count, opts)?;
            if !l.has_symbolic() && !r.has_symbolic() {
                return Ok(Flow::Chunk(hash_join(
                    l.into_chunk(opts),
                    r.into_chunk(opts),
                    &[],
                    schema.clone(),
                    opts,
                )?));
            }
            Ok(Flow::Rel(
                ops::product(&l.into_rel()?, &r.into_rel()?)?,
                None,
            ))
        }
        PhysNode::HashJoin {
            left,
            right,
            on_idx,
            on_names,
            schema,
        } => {
            let l = run(db, left, params, param_count, opts)?;
            let r = run(db, right, params, param_count, opts)?;
            if !l.has_symbolic() && !r.has_symbolic() {
                return Ok(Flow::Chunk(hash_join(
                    l.into_chunk(opts),
                    r.into_chunk(opts),
                    on_idx,
                    schema.clone(),
                    opts,
                )?));
            }
            // Symbolic join keys (or values): the token-weighted operator
            // with its internal ground/symbolic partitioning.
            let pairs: Vec<(&str, &str)> = on_names
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            Ok(Flow::Rel(
                ops::join_on_opts(&l.into_rel()?, &r.into_rel()?, &pairs, opts)?,
                None,
            ))
        }
        PhysNode::Aggregate {
            input,
            group_by,
            aggs,
            avg,
            avg_idx,
            schema,
        } => {
            // Pipeline breaker: aggregation needs the whole input.
            let rel = run(db, input, params, param_count, opts)?.into_rel()?;
            let specs: Vec<AggSpec<'_>> = aggs
                .iter()
                .map(|a| AggSpec {
                    kind: a.kind,
                    attr: &a.attr,
                    out: &a.out,
                })
                .collect();
            let group_refs: Vec<&str> = group_by.iter().map(|g| g.as_str()).collect();
            let ungrouped = group_refs.is_empty();
            let grouped = if ungrouped {
                ops::agg_all(&rel, &specs)?
            } else {
                ops::group_by_opts(&rel, &group_refs, &specs, opts)?
            };
            if avg.is_empty() {
                return Ok(Flow::Rel(grouped, None));
            }
            if !ops::has_symbolic(&grouped) {
                // The batched AVG division; the result stays columnar so a
                // following HAVING filter or projection runs vectorized.
                let chunk = Chunk::from_relation_with(&grouped, &layout_for(opts, None));
                return Ok(Flow::Chunk(chunk.avg_divide(
                    avg_idx,
                    ungrouped,
                    schema.clone(),
                )?));
            }
            Ok(Flow::Rel(
                compute_avg_columns(&grouped, avg_idx, schema, ungrouped)?,
                None,
            ))
        }
        PhysNode::SetOp {
            op,
            left,
            right,
            schema,
        } => {
            // Pipeline breaker on both inputs. The right side is aligned
            // by position, as in SQL: one schema-level rename.
            let l = run(db, left, params, param_count, opts)?.into_rel()?;
            let r = run(db, right, params, param_count, opts)?
                .into_rel()?
                .with_schema(schema.clone())?;
            match op {
                SetOp::Union => Ok(Flow::Rel(ops::union_opts(&l, &r, opts)?, None)),
                SetOp::Except => Ok(Flow::Rel(difference::difference(&l, &r)?, None)),
            }
        }
    }
}

/// Binds a resolved operand to a batch operand, resolving `$n` slots.
fn bind_operand(op: &PlanOperand, params: &[Const], param_count: usize) -> Result<BatchOperand> {
    Ok(match op {
        PlanOperand::Col(i) => BatchOperand::Col(*i),
        PlanOperand::Lit(c) => BatchOperand::Lit(c.clone()),
        PlanOperand::Param(slot) => {
            // Defensive re-check of what `Prepared::execute_with` verified
            // up front; both paths raise the same `ParamArity` error.
            let c = params.get(*slot).ok_or(RelError::ParamArity {
                expected: param_count,
                got: params.len(),
            })?;
            BatchOperand::Lit(c.clone())
        }
    })
}

/// Binds a predicate for the filter kernel: operands resolved once (a
/// constant or `$n` parameter is cloned exactly once per execution, never
/// per tuple), `>`/`≥` normalized by swapping sides.
fn bind_predicate(
    pred: &Predicate,
    params: &[Const],
    param_count: usize,
) -> Result<(BatchOperand, BatchCmp, BatchOperand)> {
    let left = bind_operand(&pred.left, params, param_count)?;
    let right = bind_operand(&pred.right, params, param_count)?;
    Ok(match pred.op {
        CmpOp::Eq => (left, BatchCmp::Eq, right),
        CmpOp::Ne => (left, BatchCmp::Pred(CmpPred::Ne), right),
        CmpOp::Lt => (left, BatchCmp::Pred(CmpPred::Lt), right),
        CmpOp::Le => (left, BatchCmp::Pred(CmpPred::Le), right),
        CmpOp::Gt => (right, BatchCmp::Pred(CmpPred::Lt), left),
        CmpOp::Ge => (right, BatchCmp::Pred(CmpPred::Le), left),
    })
}

/// The row-at-a-time projection fallback for symbolic inputs: the §4.3
/// token projection over the distinct positions, then positional
/// expansion of duplicated select items, built in bulk (one `BTreeMap`
/// handed to `from_tuple_map`, no per-row `insert`).
fn project_symbolic<A: AggAnnotation>(
    rel: &MKRel<A>,
    distinct: &[usize],
    expand: &[usize],
    schema: &Schema,
    opts: &ExecOptions,
) -> Result<MKRel<A>> {
    let names: Vec<&str> = distinct
        .iter()
        .map(|i| {
            rel.schema()
                .attrs()
                .get(*i)
                .map(|a| a.name())
                .ok_or_else(|| RelError::Internal(format!("projection position {i} out of range")))
        })
        .collect::<Result<_>>()?;
    let projected = ops::project_opts(rel, &names, opts)?;
    if distinct.len() == expand.len() {
        return projected.with_schema(schema.clone());
    }
    // Expansion is injective on rows (every distinct position appears in
    // `expand`), so the map keys never collide.
    let mut out = BTreeMap::new();
    for (t, k) in projected.iter() {
        let row: Vec<Value<A>> = expand.iter().map(|i| t.get(*i).clone()).collect();
        out.insert(Tuple::new(row), k.clone());
    }
    Relation::from_tuple_map(schema.clone(), out)
}

/// Appends `out = sum / cnt` columns row-at-a-time — the fallback when the
/// grouped result carries symbolic values. Both parts of every pair must
/// have resolved (symbolic AVG would require division in the monoid —
/// compute SUM and COUNT separately to keep provenance, per paper
/// footnote 6); other columns (e.g. a symbolic group key) pass through.
///
/// An *ungrouped* AVG over empty input sees the §3.2 identity row
/// (`sum = 0, cnt = 0`); SQL answers NULL there, and since the engine has
/// no NULLs, we drop the row and return an empty result instead of
/// erroring. Grouped AVG never divides by zero — a group only exists with
/// at least one member — so a zero count there stays an error.
fn compute_avg_columns<A: AggAnnotation>(
    rel: &MKRel<A>,
    pairs: &[(usize, usize)],
    schema: &Schema,
    ungrouped: bool,
) -> Result<MKRel<A>> {
    let mut out = BTreeMap::new();
    'rows: for (t, k) in rel.iter() {
        let mut row = t.values().to_vec();
        for (si, ci) in pairs {
            let sum = t.get(*si).as_const().and_then(Const::as_num);
            let cnt = t.get(*ci).as_const().and_then(Const::as_num);
            let avg = match (sum, cnt) {
                (Some(s), Some(c)) => match s.checked_div(&c) {
                    Some(avg) => avg,
                    None if ungrouped => continue 'rows,
                    None => return Err(unsup("AVG over an empty group")),
                },
                _ => {
                    return Err(unsup(
                        "AVG over symbolic provenance does not resolve; select SUM and \
                         COUNT separately (paper footnote 6)",
                    ))
                }
            };
            row.push(Value::Const(Const::Num(avg)));
        }
        // Input rows are distinct and only gain columns: no collisions.
        out.insert(Tuple::new(row), k.clone());
    }
    Relation::from_tuple_map(schema.clone(), out)
}
