//! A hand-written lexer for the SQL-ish language.

use aggprov_algebra::num::Num;
use aggprov_krel::error::RelError;
use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// An identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser level).
    Ident(String),
    /// A numeric literal.
    Number(Num),
    /// A single-quoted string literal.
    Str(String),
    /// A prepared-statement placeholder `$1`, `$2`, … (1-based).
    Param(u32),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Param(n) => write!(f, "${n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

fn err_at(pos: usize, msg: String) -> RelError {
    RelError::Parse {
        pos,
        msg: format!("syntax error: {msg}"),
    }
}

/// Tokenizes an input string. `--` starts a line comment. Convenience
/// wrapper over [`lex_spanned`] for callers that do not need positions.
pub fn lex(input: &str) -> Result<Vec<Token>, RelError> {
    Ok(lex_spanned(input)?.into_iter().map(|(t, _)| t).collect())
}

/// Tokenizes an input string, returning each token with the byte offset
/// it starts at — the positions carried by [`RelError::Parse`].
pub fn lex_spanned(input: &str) -> Result<Vec<(Token, usize)>, RelError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let tok_start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push((Token::LParen, tok_start));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, tok_start));
                i += 1;
            }
            ',' => {
                out.push((Token::Comma, tok_start));
                i += 1;
            }
            ';' => {
                out.push((Token::Semi, tok_start));
                i += 1;
            }
            '.' => {
                out.push((Token::Dot, tok_start));
                i += 1;
            }
            '*' => {
                out.push((Token::Star, tok_start));
                i += 1;
            }
            '=' => {
                out.push((Token::Eq, tok_start));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push((Token::Ne, tok_start));
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Token::Ne, tok_start));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Le, tok_start));
                    i += 2;
                } else {
                    out.push((Token::Lt, tok_start));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ge, tok_start));
                    i += 2;
                } else {
                    out.push((Token::Gt, tok_start));
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(err_at(
                        tok_start,
                        "expected a parameter number after `$`".into(),
                    ));
                }
                let n: u32 = input[start..j].parse().map_err(|_| {
                    err_at(
                        tok_start,
                        format!("parameter `${}` out of range", &input[start..j]),
                    )
                })?;
                if n == 0 {
                    return Err(err_at(tok_start, "parameters are numbered from $1".into()));
                }
                out.push((Token::Param(n), tok_start));
                i = j;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err_at(tok_start, "unterminated string literal".into()));
                }
                out.push((Token::Str(input[start..j].to_string()), tok_start));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    // A dot is part of the number only if followed by a digit
                    // (so `r.a` lexes as ident-dot-ident).
                    if bytes[j] == b'.'
                        && !bytes
                            .get(j + 1)
                            .is_some_and(|b| (*b as char).is_ascii_digit())
                    {
                        break;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                let n = Num::parse(text)
                    .ok_or_else(|| err_at(tok_start, format!("invalid number `{text}`")))?;
                out.push((Token::Number(n), tok_start));
                i = j;
            }
            '-' => {
                // Negative literal: unary minus, optionally separated from
                // its digits by whitespace (`WHERE x > - 1`). The `--`
                // comment case was handled above, so a `-` followed by
                // another `-` (even after spaces) is stray.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                    j += 1;
                }
                let digits_start = j;
                if !bytes.get(j).is_some_and(|b| (*b as char).is_ascii_digit()) {
                    return Err(err_at(tok_start, "stray `-`".into()));
                }
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    if bytes[j] == b'.'
                        && !bytes
                            .get(j + 1)
                            .is_some_and(|b| (*b as char).is_ascii_digit())
                    {
                        break;
                    }
                    j += 1;
                }
                let text = format!("-{}", &input[digits_start..j]);
                let n = Num::parse(&text)
                    .ok_or_else(|| err_at(tok_start, format!("invalid number `{text}`")))?;
                out.push((Token::Number(n), tok_start));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push((Token::Ident(input[start..j].to_string()), tok_start));
                i = j;
            }
            other => return Err(err_at(tok_start, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("SELECT dept, SUM(sal) FROM r WHERE x = 'd1';").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::Str("d1".into())));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn numbers_and_qualified_names() {
        let toks = lex("r.a 12 3.5 -4").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("r".into()),
                Token::Dot,
                Token::Ident("a".into()),
                Token::Number(Num::int(12)),
                Token::Number(Num::ratio(7, 2)),
                Token::Number(Num::int(-4)),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a <= b <> c >= d < e > f != g").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Le,
                &Token::Ne,
                &Token::Ge,
                &Token::Lt,
                &Token::Gt,
                &Token::Ne
            ]
        );
    }

    #[test]
    fn comments_and_errors() {
        assert_eq!(lex("-- hi\nx").unwrap(), vec![Token::Ident("x".into())]);
        assert!(lex("'unterminated").is_err());
        assert!(lex("@").is_err());
    }

    #[test]
    fn spans_point_at_token_starts() {
        let toks = lex_spanned("ab  <= 'str' $3").unwrap();
        let spans: Vec<usize> = toks.iter().map(|(_, p)| *p).collect();
        assert_eq!(spans, vec![0, 4, 7, 13]);
    }

    #[test]
    fn lex_errors_are_parse_errors_with_positions() {
        let err = lex("ab @").unwrap_err();
        let RelError::Parse { pos, msg } = &err else {
            panic!("expected RelError::Parse, got {err:?}");
        };
        assert_eq!(*pos, 3);
        assert!(msg.contains("unexpected character"), "{msg}");
        assert!(err.to_string().contains("at byte 3"), "{err}");
        // An unterminated string points at its opening quote.
        let err = lex("x = 'oops").unwrap_err();
        assert!(matches!(err, RelError::Parse { pos: 4, .. }), "{err:?}");
    }

    #[test]
    fn unary_minus_separated_from_digits() {
        // `WHERE x > - 1` must lex: whitespace between the unary minus and
        // its digits is allowed.
        let toks = lex("x > - 1").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::Gt,
                Token::Number(Num::int(-1)),
            ]
        );
        assert_eq!(
            lex("-   3.5").unwrap(),
            vec![Token::Number(Num::ratio(-7, 2))]
        );
        // A `-` with nothing numeric after it is still stray…
        assert!(lex("x > -").is_err());
        assert!(lex("x > - y").is_err());
        // …and two separated minuses do not merge into a comment.
        assert!(lex("- - 1").is_err());
    }

    #[test]
    fn negative_numbers_adjacent_to_comments() {
        // `--` still starts a comment, even right after a negative literal.
        assert_eq!(
            lex("-1--note\n-2").unwrap(),
            vec![Token::Number(Num::int(-1)), Token::Number(Num::int(-2))]
        );
        // A comment line followed by a spaced negative literal.
        assert_eq!(lex("-- c\n- 7").unwrap(), vec![Token::Number(Num::int(-7))]);
        // `--1` is a comment, not negative negative one.
        assert_eq!(lex("--1\n5").unwrap(), vec![Token::Number(Num::int(5))]);
    }
}
