//! # aggprov-engine
//!
//! A small SQL front-end over provenance-annotated databases with
//! aggregation: lexer, recursive-descent parser, and an executor that maps
//! queries onto the `(M, K)`-relational operators of `aggprov-core`.
//!
//! The surface language covers the paper's query classes end to end:
//!
//! ```text
//! CREATE TABLE r (emp TEXT, dept TEXT, sal NUM);
//! INSERT INTO r VALUES ('e1', 'd1', 20) PROVENANCE p1;
//! SELECT dept, SUM(sal) AS total FROM r GROUP BY dept;          -- §3.3
//! SELECT dept, SUM(sal) AS total FROM r GROUP BY dept
//!     HAVING total = 20;                                        -- §4
//! SELECT dept FROM r EXCEPT SELECT dept FROM closed;            -- §5
//! ```
//!
//! The database is generic over the annotation semiring: [`ProvDb`] tracks
//! symbolic aggregate provenance (`ℕ[X]^M`); instantiations at `ℕ`, `B`,
//! `Security`, `SN`, … run the same queries under bag, set, or
//! security semantics directly.
//!
//! ## The prepared-statement pipeline
//!
//! Queries run through a three-stage pipeline:
//!
//! 1. [`Database::prepare`] parses and **lowers** the SQL to a logical-plan
//!    IR ([`plan::Plan`]): name resolution, schema computation and
//!    validation happen exactly once;
//! 2. [`Prepared::execute`] / [`Prepared::execute_with`] interpret the
//!    plan (re-executable, with `$n` parameters);
//! 3. the resulting [`ResultSet`] is interrogated fluently —
//!    [`ResultSet::valuate`], [`ResultSet::delete_tokens`],
//!    [`ResultSet::clearance`], [`ResultSet::collapse`], by-name rows.
//!
//! [`Database::query`] remains as the one-shot convenience wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod annot;
pub mod ast;
pub mod database;
pub mod exec;
pub mod lexer;
pub mod opt;
pub mod parser;
pub(crate) mod phys;
pub mod plan;
pub mod result;

pub use annot::ParseAnnotation;
pub use database::view::MaintenanceStrategy;
pub use database::{Database, DbSnapshot, Prepared, SnapPrepared, DEFAULT_PLAN_CACHE_CAPACITY};
pub use plan::Plan;
pub use result::{ResultSet, Row};

/// Constants, re-exported for `Prepared::execute_with` parameter lists.
pub use aggprov_algebra::domain::Const;

/// Execution options (worker-thread count, `AGGPROV_THREADS`), re-exported
/// for `Prepared::execute_with_opts`.
pub use aggprov_core::par::ExecOptions;

/// A database tracking full aggregate provenance (`ℕ[X]^M` annotations).
pub type ProvDb = Database<aggprov_core::Prov>;

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::hom::Valuation;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_algebra::semiring::{Nat, Security};
    use aggprov_core::eval::{collapse, map_hom_mk};
    use aggprov_core::{Km, Value};

    fn figure_1_db() -> ProvDb {
        let mut db = ProvDb::new();
        db.exec(
            "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
             INSERT INTO r VALUES (1, 'd1', 20) PROVENANCE p1;
             INSERT INTO r VALUES (2, 'd1', 10) PROVENANCE p2;
             INSERT INTO r VALUES (3, 'd1', 15) PROVENANCE p3;
             INSERT INTO r VALUES (4, 'd2', 10) PROVENANCE r1;
             INSERT INTO r VALUES (5, 'd2', 15) PROVENANCE r2;",
        )
        .unwrap();
        db
    }

    #[test]
    fn figure_1_projection() {
        let db = figure_1_db();
        let out = db.query("SELECT dept FROM r").unwrap();
        assert_eq!(out.len(), 2);
        let d1 = out.annotation(&aggprov_krel::relation::Tuple::from([Value::str("d1")]));
        assert_eq!(d1.try_collapse().unwrap().to_string(), "p1 + p2 + p3");
    }

    #[test]
    fn group_by_sum_produces_tensors() {
        let db = figure_1_db();
        let out = db
            .query("SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept")
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().to_string(), "dept, mass");
        let rows: Vec<String> = out.iter().map(|(t, k)| format!("{t} @ {k}")).collect();
        assert!(
            rows[0].contains("(p2)⊗10 + (p3)⊗15 + (p1)⊗20"),
            "{}",
            rows[0]
        );
        assert!(rows[0].contains("δ(p1 + p2 + p3)"), "{}", rows[0]);
    }

    #[test]
    fn where_join_and_qualified_columns() {
        let mut db = figure_1_db();
        db.exec(
            "CREATE TABLE heads (dept TEXT, head TEXT);
             INSERT INTO heads VALUES ('d1', 'alice') PROVENANCE h1;",
        )
        .unwrap();
        let out = db
            .query(
                "SELECT r.emp, heads.head FROM r JOIN heads ON r.dept = heads.dept \
                 WHERE r.sal >= 15",
            )
            .unwrap();
        // d1 employees with sal ≥ 15: emp 1 (20) and emp 3 (15).
        assert_eq!(out.len(), 2);
        for (_, k) in out.iter() {
            assert!(k.to_string().contains("h1"));
        }
    }

    #[test]
    fn having_keeps_symbolic_tokens() {
        let db = figure_1_db();
        let out = db
            .query("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept HAVING total = 25")
            .unwrap();
        // Both groups survive symbolically with equality tokens.
        assert_eq!(out.len(), 2);
        // Valuate everything to 1: d1 = 45, d2 = 25 → only d2 survives.
        let resolved = collapse(&map_hom_mk(&out, &|p: &NatPoly| {
            Valuation::<Nat>::ones().eval(p)
        }))
        .unwrap();
        assert_eq!(resolved.len(), 1);
        let (t, _) = resolved.iter().next().unwrap();
        assert_eq!(t.get(0), &Value::str("d2"));
        assert_eq!(t.get(1), &Value::int(25));
    }

    #[test]
    fn count_and_avg() {
        // Over a bag database AVG resolves on the spot.
        let mut db: Database<Nat> = Database::new();
        db.exec(
            "CREATE TABLE r (sal NUM);
             INSERT INTO r VALUES (20) PROVENANCE 2;
             INSERT INTO r VALUES (30);",
        )
        .unwrap();
        let out = db
            .query("SELECT COUNT(*) AS n, AVG(sal) AS mean FROM r")
            .unwrap();
        let (t, _) = out.iter().next().unwrap();
        assert_eq!(t.get(0), &Value::int(3));
        assert_eq!(
            t.get(1),
            &Value::Const(aggprov_algebra::domain::Const::Num(
                aggprov_algebra::num::Num::ratio(70, 3)
            ))
        );

        // Over symbolic provenance AVG cannot resolve: the engine says so
        // and points at SUM/COUNT (paper footnote 6). COUNT alone is fine —
        // it stays a symbolic tensor over the tokens.
        let db = figure_1_db();
        let err = db.query("SELECT AVG(sal) AS mean FROM r").unwrap_err();
        assert!(err.to_string().contains("AVG"));
        let out = db.query("SELECT COUNT(*) AS n FROM r").unwrap();
        let resolved = collapse(&map_hom_mk(&out, &|p: &NatPoly| {
            Valuation::<Nat>::ones().eval(p)
        }))
        .unwrap();
        let (t, _) = resolved.iter().next().unwrap();
        assert_eq!(t.get(0), &Value::int(5));
    }

    #[test]
    fn having_with_order_comparison() {
        // The paper's comparison-predicate extension: HAVING total > 25
        // produces symbolic order tokens that resolve under valuations.
        let db = figure_1_db();
        let out = db
            .query("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept HAVING total > 25")
            .unwrap();
        assert_eq!(out.len(), 2, "both groups kept symbolically");
        // All tokens present: d1 = 45 > 25 kept, d2 = 25 not (> is strict).
        let resolved = collapse(&map_hom_mk(&out, &|p: &NatPoly| {
            Valuation::<Nat>::ones().eval(p)
        }))
        .unwrap();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved.iter().next().unwrap().0.get(0), &Value::str("d1"));

        // Deleting p1 (d1 drops to 25): nothing survives the strict >.
        let resolved = collapse(&map_hom_mk(&out, &|p: &NatPoly| {
            Valuation::<Nat>::ones().set("p1", Nat(0)).eval(p)
        }))
        .unwrap();
        assert_eq!(resolved.len(), 0);

        // >= keeps both under the all-ones valuation.
        let out = db
            .query("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept HAVING total >= 25")
            .unwrap();
        let resolved = collapse(&map_hom_mk(&out, &|p: &NatPoly| {
            Valuation::<Nat>::ones().eval(p)
        }))
        .unwrap();
        assert_eq!(resolved.len(), 2);
    }

    #[test]
    fn where_with_ne_on_symbolic_registered_table() {
        // <> over symbolic aggregates also stays symbolic.
        let db = figure_1_db();
        let grouped = db
            .query("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept HAVING total <> 25")
            .unwrap();
        assert_eq!(grouped.len(), 2);
        let resolved = collapse(&map_hom_mk(&grouped, &|p: &NatPoly| {
            Valuation::<Nat>::ones().eval(p)
        }))
        .unwrap();
        assert_eq!(resolved.len(), 1, "d2 = 25 filtered out");
    }

    #[test]
    fn union_and_except() {
        let mut db = ProvDb::new();
        db.exec(
            "CREATE TABLE a (x NUM); CREATE TABLE b (x NUM);
             INSERT INTO a VALUES (1) PROVENANCE t1;
             INSERT INTO a VALUES (2) PROVENANCE t2;
             INSERT INTO b VALUES (2) PROVENANCE t3;",
        )
        .unwrap();
        let u = db.query("SELECT x FROM a UNION SELECT x FROM b").unwrap();
        assert_eq!(u.len(), 2);
        let d = db.query("SELECT x FROM a EXCEPT SELECT x FROM b").unwrap();
        assert_eq!(d.len(), 2, "x = 2 is kept with a symbolic guard");
        // Valuating t3 ↦ 1 removes x = 2.
        let resolved = collapse(&map_hom_mk(&d, &|p: &NatPoly| {
            Valuation::<Nat>::ones().eval(p)
        }))
        .unwrap();
        assert_eq!(resolved.len(), 1);
    }

    #[test]
    fn bag_database_matches_sql_semantics() {
        let mut db: Database<Nat> = Database::new();
        db.exec(
            "CREATE TABLE r (dept TEXT, sal NUM);
             INSERT INTO r VALUES ('d1', 20) PROVENANCE 2;
             INSERT INTO r VALUES ('d1', 10);
             INSERT INTO r VALUES ('d2', 5) PROVENANCE 3;",
        )
        .unwrap();
        let out = db
            .query("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept")
            .unwrap();
        let rows: Vec<String> = out.iter().map(|(t, _)| t.to_string()).collect();
        assert_eq!(rows, vec!["('d1', 50)", "('d2', 15)"]);
    }

    #[test]
    fn security_database() {
        let mut db: Database<Km<Security>> = Database::new();
        db.exec(
            "CREATE TABLE r (sal NUM);
             INSERT INTO r VALUES (20) PROVENANCE S;
             INSERT INTO r VALUES (10) PROVENANCE PUBLIC;
             INSERT INTO r VALUES (30) PROVENANCE S;",
        )
        .unwrap();
        let out = db.query("SELECT MAX(sal) AS top FROM r").unwrap();
        let (t, _) = out.iter().next().unwrap();
        // Example 3.5's aggregate stays symbolic until credentials arrive.
        assert!(t.get(0).is_agg());
        // A user with credentials S sees 30.
        let view = map_hom_mk(&out, &|s: &Security| {
            if s.visible_to(Security::Secret) {
                Security::Public
            } else {
                Security::Never
            }
        });
        let (t, _) = view.iter().next().unwrap();
        assert_eq!(t.get(0), &Value::int(30));
    }

    #[test]
    fn subquery_in_from_runs_example_4_5_in_sql() {
        // Example 4.5 entirely in SQL: sum the salaries of the groups whose
        // summed salary equals 20.
        let mut db = ProvDb::new();
        db.exec(
            "CREATE TABLE r (dept TEXT, sal NUM);
             INSERT INTO r VALUES ('d1', 20) PROVENANCE r1;
             INSERT INTO r VALUES ('d1', 10) PROVENANCE r2;
             INSERT INTO r VALUES ('d2', 10) PROVENANCE r3;",
        )
        .unwrap();
        let out = db
            .query(
                "SELECT SUM(s) AS total FROM                  (SELECT dept, SUM(sal) AS s FROM r GROUP BY dept HAVING s = 20) g",
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        // h(r1)=1, h(r2)=0, h(r3)=2: both groups sum to 20 → total 40.
        let resolve = |r1: u64, r2: u64, r3: u64| {
            let val = Valuation::<Nat>::ones()
                .set("r1", Nat(r1))
                .set("r2", Nat(r2))
                .set("r3", Nat(r3));
            let plain = collapse(&map_hom_mk(&out, &|p: &NatPoly| val.eval(p))).unwrap();
            let value = plain.iter().next().unwrap().0.get(0).clone();
            value
        };
        assert_eq!(resolve(1, 0, 2), Value::int(40));
        // r2 ↦ 1 flips d1 out non-monotonically: total 20.
        assert_eq!(resolve(1, 1, 2), Value::int(20));
        // Subqueries also nest in joins and set operations.
        let nested = db
            .query(
                "SELECT g.dept FROM                  (SELECT dept, SUM(sal) AS s FROM r GROUP BY dept) g                  WHERE g.s = 30",
            )
            .unwrap();
        assert_eq!(nested.len(), 2, "symbolic filter keeps both candidates");
    }

    #[test]
    fn errors() {
        let mut db = ProvDb::new();
        db.exec("CREATE TABLE t (a NUM)").unwrap();
        assert!(db.exec("CREATE TABLE t (b NUM)").is_err());
        assert!(db.exec("INSERT INTO t VALUES ('str')").is_err());
        assert!(db.exec("INSERT INTO missing VALUES (1)").is_err());
        assert!(db.query("SELECT b FROM t").is_err());
        assert!(db.query("SELECT a FROM t HAVING a = 1").is_err());
        assert!(
            db.query("SELECT a, SUM(a) FROM t").is_err(),
            "a not grouped"
        );
        assert!(db.exec("DROP TABLE t").is_ok());
        assert!(db.query("SELECT a FROM t").is_err());
    }
}
