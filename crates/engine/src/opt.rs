//! The plan optimizer: semiring-sound rewrites between [`Plan`] lowering
//! and physical lowering.
//!
//! Classic relational rewrites are **not** free under the paper's extended
//! semantics: a rewrite may only fire if it provably preserves the output
//! relation *bit for bit* — support, values, and every annotation of the
//! `(M, K)`-relation — over an arbitrary commutative semiring, including
//! the symbolic `K^M` aggregate values of §4–§5. A rewrite that merely
//! preserves results *up to valuation* would silently change recorded
//! provenance. The discipline here is the same one ProvSQL and
//! rewriting-based capture engines apply when grafting provenance onto an
//! optimizing host: every rule carries an explicit sound/unsound gate.
//!
//! ## The gate: static per-column groundness
//!
//! All gates reduce to one statically decidable property, computed from
//! the [`Catalog`] snapshot taken at prepare time: **which plan columns
//! can possibly hold a symbolic aggregate value**. A predicate over
//! provably ground columns evaluates to the semiring constants `0`/`1` on
//! every row — such a filter only *drops rows* and never multiplies a
//! non-trivial token into an annotation, so it commutes exactly with the
//! operators it moves past (the equality tokens of §4.3 between distinct
//! ground constants are structurally `0`, so a dropped row contributes
//! nothing anywhere downstream). The catalog cannot go stale under a
//! prepared statement: `Prepared` borrows the database immutably, and the
//! plan cache is invalidated by every DDL/DML mutation.
//!
//! ## Rules
//!
//! * **Predicate pushdown** (`push_filters`): a `Filter` whose column
//!   operands are all statically ground moves through `Derived` renames,
//!   `Project` (operand positions remapped across the projection map),
//!   other `Filter`s, and into the matching side of `Product`/`Join`.
//!   It never crosses `Aggregate`, `AddUnitColumn`, or `SetOp`: those
//!   operators sum annotations *across* rows (δ-groups, unit counting,
//!   union/difference cross terms), so selection before and after them
//!   are genuinely different queries. Predicates over possibly-symbolic
//!   columns (e.g. a `HAVING` over an aggregate output) never move —
//!   their tokens multiply into annotations and multiplication order is
//!   part of the recorded provenance expression.
//! * **Join/product reordering** (`reorder_joins`): a maximal
//!   `Join`/`Product` chain whose every input is statically fully ground
//!   is re-sequenced greedily by estimated cardinality (smallest
//!   estimated input first, then the cheapest *connected* input, products
//!   only when forced), and the original column order is restored by one
//!   compensating positional `Project`. Over ground inputs every join
//!   token is structural and annotation products are canonical-form
//!   commutative, so the reordered chain is bit-identical; a chain with
//!   any possibly-symbolic input is left untouched (the §4.3 token cross
//!   terms are order-sensitive expressions there).
//! * **Filter fusion** happens one layer down, at physical lowering
//!   (`phys::lower`): stacked `Filter` nodes become one physical node
//!   narrowing a single selection vector.
//!
//! Equivalence is enforced the way PR 2–4 enforced their layers:
//! property tests assert optimized plans are bit-identical to
//! unoptimized plans (and to the `specops` oracles) over mixed
//! ground/symbolic relations at `threads ∈ {1, 4}` — see
//! `crates/engine/tests/opt_equivalence_proptests.rs`.

use crate::annot::ParseAnnotation;
use crate::ast::{CmpOp, SetOp};
use crate::database::Database;
use crate::plan::{Plan, PlanOperand, Predicate};
use aggprov_core::annotation::AggAnnotation;
use std::collections::{BTreeMap, BTreeSet};

/// Statistics for one base table, snapshotted at prepare time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableStats {
    /// The table's tuple count.
    pub rows: usize,
    /// Per column, `true` iff every value in that column is a ground
    /// constant (no symbolic aggregate anywhere).
    pub ground_cols: Vec<bool>,
}

/// A base-table cardinality/groundness catalog: the optimizer's only view
/// of the data. Built by [`Catalog::of`] from the database's current
/// tables; `Database::prepare` snapshots one per cache miss.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Catalog {
    tables: BTreeMap<String, TableStats>,
}

impl Catalog {
    /// Snapshots every table of the database: one pass per table for the
    /// tuple count and per-column groundness.
    pub fn of<A: AggAnnotation + ParseAnnotation>(db: &Database<A>) -> Catalog {
        Self::snapshot(db, db.table_names().map(str::to_string).collect())
    }

    /// Snapshots only the tables a plan scans — what `prepare` uses, so
    /// planning one query never pays a groundness pass over unrelated
    /// tables.
    pub fn of_plan<A: AggAnnotation + ParseAnnotation>(db: &Database<A>, plan: &Plan) -> Catalog {
        Self::snapshot(db, plan.scanned_tables())
    }

    fn snapshot<A: AggAnnotation + ParseAnnotation>(
        db: &Database<A>,
        names: std::collections::BTreeSet<String>,
    ) -> Catalog {
        // Per-column groundness is maintained incrementally on the table
        // entries (`INSERT` only adds constants; `register` scans once),
        // so each snapshot is O(columns) per table — planning never pays
        // a per-prepare pass over the rows.
        let mut tables = BTreeMap::new();
        for name in names {
            if let Some(stats) = db.table_stats(&name) {
                tables.insert(name, stats);
            }
        }
        Catalog { tables }
    }

    /// The stats for one table, if known.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }
}

/// Runs all rewrite passes over a lowered plan. The returned plan has the
/// same output schema and — property-tested — produces bit-identical
/// results over every input the gates admit rewrites for.
pub fn optimize(plan: &Plan, catalog: &Catalog) -> Plan {
    let pushed = push_filters(plan.clone(), catalog);
    reorder_joins(pushed, catalog)
}

// ---------------------------------------------------------------------------
// Static groundness
// ---------------------------------------------------------------------------

/// Per output column of `plan`, `true` iff the column can possibly hold a
/// symbolic aggregate value. Conservative: aggregate outputs are always
/// flagged; scans read the catalog's observed per-column groundness.
fn symbolic_cols(plan: &Plan, catalog: &Catalog) -> Vec<bool> {
    match plan {
        Plan::Scan { table, schema } => catalog
            .table(table)
            .map(|s| s.ground_cols.iter().map(|g| !g).collect())
            .unwrap_or_else(|| vec![true; schema.arity()]),
        Plan::Derived { input, .. } | Plan::Filter { input, .. } => symbolic_cols(input, catalog),
        Plan::Product { left, right, .. } | Plan::Join { left, right, .. } => {
            let mut flags = symbolic_cols(left, catalog);
            flags.extend(symbolic_cols(right, catalog));
            flags
        }
        Plan::AddUnitColumn { input, .. } => {
            let mut flags = symbolic_cols(input, catalog);
            flags.push(false);
            flags
        }
        Plan::Project { input, columns, .. } => {
            // An out-of-range position can only come from a malformed
            // hand-built plan; flagging it symbolic vetoes every rewrite,
            // so the plan passes through for phys::lower to reject.
            let inner = symbolic_cols(input, catalog);
            columns
                .iter()
                .map(|i| inner.get(*i).copied().unwrap_or(true))
                .collect()
        }
        Plan::Aggregate {
            input,
            group_by,
            schema,
            ..
        } => {
            // Group columns inherit their input column's flag; aggregate
            // (and AVG) outputs can always be symbolic under symbolic
            // annotations.
            let inner = symbolic_cols(input, catalog);
            let mut flags = Vec::with_capacity(schema.arity());
            for g in group_by {
                let flag = input
                    .schema()
                    .index_of(g)
                    .map(|i| inner.get(i).copied().unwrap_or(true))
                    .unwrap_or(true);
                flags.push(flag);
            }
            flags.resize(schema.arity(), true);
            flags
        }
        Plan::SetOp { left, right, .. } => {
            // Positional alignment, as the set op executes.
            let l = symbolic_cols(left, catalog);
            let r = symbolic_cols(right, catalog);
            l.iter().zip(&r).map(|(a, b)| *a || *b).collect()
        }
    }
}

/// The column positions a predicate reads.
fn pred_cols(pred: &Predicate) -> Vec<usize> {
    [&pred.left, &pred.right]
        .into_iter()
        .filter_map(|op| match op {
            PlanOperand::Col(i) => Some(*i),
            _ => None,
        })
        .collect()
}

/// True iff every column the predicate reads is statically ground in the
/// given flags — the pushdown gate.
fn pred_is_ground(pred: &Predicate, flags: &[bool]) -> bool {
    // An out-of-range column (malformed hand-built plan) counts as
    // symbolic: the filter stays put and the malformed plan surfaces as
    // `RelError::Internal` downstream instead of a panic here.
    pred_cols(pred)
        .iter()
        .all(|c| flags.get(*c).is_some_and(|s| !*s))
}

/// Rewrites the predicate's column positions through `f`.
fn remap_pred(pred: &Predicate, f: impl Fn(usize) -> usize) -> Predicate {
    let map = |op: &PlanOperand| match op {
        PlanOperand::Col(i) => PlanOperand::Col(f(*i)),
        other => other.clone(),
    };
    Predicate {
        left: map(&pred.left),
        op: pred.op,
        right: map(&pred.right),
    }
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

/// The pushdown pass: recursively pushes every `Filter` with a statically
/// ground predicate as deep as the soundness gate allows.
fn push_filters(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Filter { input, pred } => {
            let input = push_filters(*input, catalog);
            push_into(input, pred, catalog)
        }
        Plan::Scan { .. } => plan,
        Plan::Derived { input, schema } => Plan::Derived {
            input: Box::new(push_filters(*input, catalog)),
            schema,
        },
        Plan::AddUnitColumn { input, schema } => Plan::AddUnitColumn {
            input: Box::new(push_filters(*input, catalog)),
            schema,
        },
        Plan::Project {
            input,
            columns,
            schema,
        } => Plan::Project {
            input: Box::new(push_filters(*input, catalog)),
            columns,
            schema,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            avg,
            schema,
        } => Plan::Aggregate {
            input: Box::new(push_filters(*input, catalog)),
            group_by,
            aggs,
            avg,
            schema,
        },
        Plan::Product {
            left,
            right,
            schema,
        } => Plan::Product {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
            schema,
        },
        Plan::Join {
            left,
            right,
            on,
            schema,
        } => Plan::Join {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
            on,
            schema,
        },
        Plan::SetOp {
            op,
            left,
            right,
            schema,
        } => Plan::SetOp {
            op,
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
            schema,
        },
    }
}

/// Pushes one predicate into (already-pushed) `input` as deep as soundness
/// allows, leaving a `Filter` node at the deepest admissible spot.
fn push_into(input: Plan, pred: Predicate, catalog: &Catalog) -> Plan {
    // The gate: only predicates over statically ground columns move at
    // all. Checked against the node the filter currently sits on; the
    // property is preserved by every remapping below (a ground output
    // column of Project/Derived maps to a ground input column).
    if !pred_is_ground(&pred, &symbolic_cols(&input, catalog)) {
        return Plan::Filter {
            input: Box::new(input),
            pred,
        };
    }
    match input {
        // A ground filter commutes with any other filter: it only drops
        // rows, so k·tok products of the stationary filter are untouched.
        Plan::Filter {
            input: inner,
            pred: stay,
        } => Plan::Filter {
            input: Box::new(push_into(*inner, pred, catalog)),
            pred: stay,
        },
        // A derived-table rename does not move columns: descend as is.
        Plan::Derived {
            input: inner,
            schema,
        } => Plan::Derived {
            input: Box::new(push_into(*inner, pred, catalog)),
            schema,
        },
        // Through a projection: output position `i` reads input position
        // `columns[i]`. A predicate column outside the view (a planner
        // bug) stops the push instead of panicking.
        Plan::Project {
            input: inner,
            columns,
            schema,
        } => {
            let col_of = |op: &PlanOperand| match op {
                PlanOperand::Col(i) => Some(*i),
                _ => None,
            };
            let out_of_range = [&pred.left, &pred.right]
                .into_iter()
                .filter_map(col_of)
                .any(|i| i >= columns.len());
            if out_of_range {
                return Plan::Filter {
                    input: Box::new(Plan::Project {
                        input: inner,
                        columns,
                        schema,
                    }),
                    pred,
                };
            }
            let remapped = remap_pred(&pred, |i| columns.get(i).copied().unwrap_or(i));
            Plan::Project {
                input: Box::new(push_into(*inner, remapped, catalog)),
                columns,
                schema,
            }
        }
        // Into the matching side of a product/join; predicates straddling
        // both sides stay above the node.
        Plan::Product {
            left,
            right,
            schema,
        } => {
            let la = left.schema().arity();
            let cols = pred_cols(&pred);
            if cols.iter().all(|c| *c < la) {
                Plan::Product {
                    left: Box::new(push_into(*left, pred, catalog)),
                    right,
                    schema,
                }
            } else if cols.iter().all(|c| *c >= la) {
                let remapped = remap_pred(&pred, |i| i - la);
                Plan::Product {
                    left,
                    right: Box::new(push_into(*right, remapped, catalog)),
                    schema,
                }
            } else {
                Plan::Filter {
                    input: Box::new(Plan::Product {
                        left,
                        right,
                        schema,
                    }),
                    pred,
                }
            }
        }
        Plan::Join {
            left,
            right,
            on,
            schema,
        } => {
            let la = left.schema().arity();
            let cols = pred_cols(&pred);
            if cols.iter().all(|c| *c < la) {
                Plan::Join {
                    left: Box::new(push_into(*left, pred, catalog)),
                    right,
                    on,
                    schema,
                }
            } else if cols.iter().all(|c| *c >= la) {
                let remapped = remap_pred(&pred, |i| i - la);
                Plan::Join {
                    left,
                    right: Box::new(push_into(*right, remapped, catalog)),
                    on,
                    schema,
                }
            } else {
                Plan::Filter {
                    input: Box::new(Plan::Join {
                        left,
                        right,
                        on,
                        schema,
                    }),
                    pred,
                }
            }
        }
        // The hard boundaries: Aggregate, AddUnitColumn and SetOp sum
        // annotations across rows — selection before ≠ selection after.
        boundary @ (Plan::Scan { .. }
        | Plan::AddUnitColumn { .. }
        | Plan::Aggregate { .. }
        | Plan::SetOp { .. }) => Plan::Filter {
            input: Box::new(boundary),
            pred,
        },
    }
}

// ---------------------------------------------------------------------------
// Cardinality estimation and join reordering
// ---------------------------------------------------------------------------

/// Per-comparison selectivity heuristic (no histograms — base cardinality
/// only, per the ROADMAP's remaining-items note).
fn selectivity(op: CmpOp) -> f64 {
    match op {
        CmpOp::Eq => 0.1,
        CmpOp::Ne => 0.9,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => 0.5,
    }
}

/// Estimated output cardinality, driven by the catalog's base-table row
/// counts.
fn estimate(plan: &Plan, catalog: &Catalog) -> f64 {
    match plan {
        Plan::Scan { table, .. } => catalog
            .table(table)
            .map(|s| s.rows as f64)
            .unwrap_or(1000.0),
        Plan::Filter { input, pred } => estimate(input, catalog) * selectivity(pred.op),
        Plan::Derived { input, .. }
        | Plan::AddUnitColumn { input, .. }
        | Plan::Project { input, .. } => estimate(input, catalog),
        Plan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                // Grouping collapses duplicates; the square root is the
                // usual guess with no per-column statistics.
                estimate(input, catalog).sqrt()
            }
        }
        Plan::Product { left, right, .. } => estimate(left, catalog) * estimate(right, catalog),
        Plan::Join {
            left, right, on, ..
        } => {
            let mut est = estimate(left, catalog) * estimate(right, catalog);
            for _ in on {
                est *= 0.1;
            }
            est
        }
        Plan::SetOp { left, right, .. } => estimate(left, catalog) + estimate(right, catalog),
    }
}

/// The reorder pass: finds maximal `Join`/`Product` chains and greedily
/// re-sequences those whose every input is statically fully ground.
fn reorder_joins(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        chain @ (Plan::Join { .. } | Plan::Product { .. }) => reorder_chain(chain, catalog),
        Plan::Scan { .. } => plan,
        Plan::Filter { input, pred } => Plan::Filter {
            input: Box::new(reorder_joins(*input, catalog)),
            pred,
        },
        Plan::Derived { input, schema } => Plan::Derived {
            input: Box::new(reorder_joins(*input, catalog)),
            schema,
        },
        Plan::AddUnitColumn { input, schema } => Plan::AddUnitColumn {
            input: Box::new(reorder_joins(*input, catalog)),
            schema,
        },
        Plan::Project {
            input,
            columns,
            schema,
        } => Plan::Project {
            input: Box::new(reorder_joins(*input, catalog)),
            columns,
            schema,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            avg,
            schema,
        } => Plan::Aggregate {
            input: Box::new(reorder_joins(*input, catalog)),
            group_by,
            aggs,
            avg,
            schema,
        },
        Plan::SetOp {
            op,
            left,
            right,
            schema,
        } => Plan::SetOp {
            op,
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
            schema,
        },
    }
}

/// Flattens a `Join`/`Product` chain into its non-join inputs and the
/// equality pairs connecting them.
fn flatten_chain(plan: Plan, leaves: &mut Vec<Plan>, pairs: &mut Vec<(String, String)>) {
    match plan {
        Plan::Join {
            left, right, on, ..
        } => {
            flatten_chain(*left, leaves, pairs);
            flatten_chain(*right, leaves, pairs);
            pairs.extend(on);
        }
        Plan::Product { left, right, .. } => {
            flatten_chain(*left, leaves, pairs);
            flatten_chain(*right, leaves, pairs);
        }
        other => leaves.push(other),
    }
}

/// Reorders one maximal chain. Returns the original plan untouched when
/// the all-ground gate fails (recursing into sub-plans only), or the
/// greedily re-sequenced chain capped by a compensating projection that
/// restores the original column order.
fn reorder_chain(plan: Plan, catalog: &Catalog) -> Plan {
    let original_schema = plan.schema().clone();
    // Keep a pristine copy to fall back to: the rewrite below is pure
    // plan surgery, so any unexpected inconsistency (a pair not spanning
    // two leaves, a failed concat) abandons the rewrite, never the query.
    let fallback = plan.clone();

    let mut leaves: Vec<Plan> = Vec::new();
    let mut pairs: Vec<(String, String)> = Vec::new();
    flatten_chain(plan, &mut leaves, &mut pairs);

    // The soundness gate: every input statically fully ground. A chain
    // with any possibly-symbolic column keeps its lowered shape — the
    // §4.3 token cross terms there are order-sensitive expressions.
    let all_ground = leaves
        .iter()
        .all(|l| symbolic_cols(l, catalog).iter().all(|s| !s));
    if leaves.len() < 2 || !all_ground {
        return descend_original(fallback, catalog);
    }

    // Recurse into the leaves themselves (derived subqueries may contain
    // further chains), then greedily order by estimated cardinality.
    let leaves: Vec<Plan> = leaves
        .into_iter()
        .map(|l| reorder_joins(l, catalog))
        .collect();
    let ests: Vec<f64> = leaves.iter().map(|l| estimate(l, catalog)).collect();

    // Which two leaves does each pair connect?
    let leaf_of = |name: &str| leaves.iter().position(|l| l.schema().contains(name));
    let mut pair_leaves: Vec<(usize, usize)> = Vec::with_capacity(pairs.len());
    for (a, b) in &pairs {
        match (leaf_of(a), leaf_of(b)) {
            (Some(x), Some(y)) if x != y => pair_leaves.push((x, y)),
            _ => return descend_original(fallback, catalog),
        }
    }

    // Greedy sequence: cheapest leaf first, then always the cheapest leaf
    // *connected* to the accumulated set (a cross product only when no
    // connected leaf remains). Deterministic: ties break on leaf index.
    let n = leaves.len();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    let better = |a: usize, b: Option<usize>| match b {
        None => true,
        Some(b) => {
            let (ea, eb) = (ests.get(a), ests.get(b));
            ea < eb || (ea == eb && a < b)
        }
    };
    let mut first: Option<usize> = None;
    for i in 0..n {
        if better(i, first) {
            first = Some(i);
        }
    }
    let Some(first) = first else {
        return descend_original(fallback, catalog);
    };
    let mut order = vec![first];
    used.insert(first);
    while order.len() < n {
        let connected = |i: usize| {
            pair_leaves
                .iter()
                .any(|&(x, y)| (x == i && used.contains(&y)) || (y == i && used.contains(&x)))
        };
        let mut pick: Option<usize> = None;
        let mut pick_connected = false;
        for i in 0..n {
            if used.contains(&i) {
                continue;
            }
            let c = connected(i);
            if (c && !pick_connected) || (c == pick_connected && better(i, pick)) {
                pick = Some(i);
                pick_connected = c;
            }
        }
        let Some(pick) = pick else {
            return descend_original(fallback, catalog);
        };
        used.insert(pick);
        order.push(pick);
    }

    if order.iter().enumerate().all(|(i, o)| i == *o) {
        // Already in the cheapest order: rebuild nothing, keep the
        // lowered association (bit-identical by construction).
        return descend_original(fallback, catalog);
    }

    // Rebuild left-deep in greedy order, attaching each pair at the join
    // that brings its second leaf in. Pair orientation follows the tree:
    // accumulated side first.
    let mut leaf_slots: Vec<Option<Plan>> = leaves.into_iter().map(Some).collect();
    let mut in_acc: BTreeSet<usize> = BTreeSet::new();
    let mut order_iter = order.iter().copied();
    let first_leaf = order_iter
        .next()
        .and_then(|i| leaf_slots.get_mut(i).and_then(Option::take).map(|l| (i, l)));
    let Some((first_idx, mut acc)) = first_leaf else {
        return descend_original(fallback, catalog);
    };
    in_acc.insert(first_idx);
    for idx in order_iter {
        let Some(leaf) = leaf_slots.get_mut(idx).and_then(Option::take) else {
            return descend_original(fallback, catalog);
        };
        let mut on: Vec<(String, String)> = Vec::new();
        for ((a, b), &(x, y)) in pairs.iter().zip(&pair_leaves) {
            if x == idx && in_acc.contains(&y) {
                on.push((b.clone(), a.clone()));
            } else if y == idx && in_acc.contains(&x) {
                on.push((a.clone(), b.clone()));
            }
        }
        let schema = match acc.schema().concat(leaf.schema()) {
            Ok(s) => s,
            Err(_) => return descend_original(fallback, catalog),
        };
        acc = if on.is_empty() {
            Plan::Product {
                left: Box::new(acc),
                right: Box::new(leaf),
                schema,
            }
        } else {
            Plan::Join {
                left: Box::new(acc),
                right: Box::new(leaf),
                on,
                schema,
            }
        };
        in_acc.insert(idx);
    }

    // Compensating projection: restore the original column order (over
    // statically ground inputs this is an exact positional gather — no
    // token cross terms can arise).
    let columns: Vec<usize> = match original_schema
        .attrs()
        .iter()
        .map(|a| acc.schema().index_of(a.name()))
        .collect::<aggprov_krel::error::Result<Vec<usize>>>()
    {
        Ok(c) => c,
        Err(_) => return descend_original(fallback, catalog),
    };
    Plan::Project {
        input: Box::new(acc),
        columns,
        schema: original_schema,
    }
}

/// Keeps a chain's lowered shape but still recurses into its non-join
/// sub-plans (derived subqueries may contain rewritable chains).
fn descend_original(plan: Plan, catalog: &Catalog) -> Plan {
    // Descent preserves every child's output schema (a reordered
    // sub-chain restores its column order with a compensating
    // projection), so each node keeps its own schema untouched.
    match plan {
        Plan::Join {
            left,
            right,
            on,
            schema,
        } => Plan::Join {
            left: Box::new(descend_original(*left, catalog)),
            right: Box::new(descend_original(*right, catalog)),
            on,
            schema,
        },
        Plan::Product {
            left,
            right,
            schema,
        } => Plan::Product {
            left: Box::new(descend_original(*left, catalog)),
            right: Box::new(descend_original(*right, catalog)),
            schema,
        },
        other => reorder_joins(other, catalog),
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

fn cmp_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn operand_str(op: &PlanOperand, input: &Plan) -> String {
    match op {
        PlanOperand::Col(i) => input
            .schema()
            .attrs()
            .get(*i)
            .map(|a| a.name().to_string())
            .unwrap_or_else(|| format!("#{i}")),
        PlanOperand::Lit(c) => c.to_string(),
        PlanOperand::Param(slot) => format!("${}", slot + 1),
    }
}

fn node_line(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, schema } => format!("Scan {table} [{schema}]"),
        Plan::Derived { schema, .. } => format!("Derived [{schema}]"),
        Plan::Filter { input, pred } => format!(
            "Filter {} {} {}",
            operand_str(&pred.left, input),
            cmp_str(pred.op),
            operand_str(&pred.right, input),
        ),
        Plan::Product { .. } => "Product".to_string(),
        Plan::Join { on, .. } => {
            let conds: Vec<String> = on.iter().map(|(a, b)| format!("{a} = {b}")).collect();
            format!("Join on {}", conds.join(" AND "))
        }
        Plan::AddUnitColumn { .. } => "AddUnitColumn".to_string(),
        Plan::Aggregate { group_by, aggs, .. } => {
            let outs: Vec<String> = aggs
                .iter()
                .map(|a| format!("{:?}({}) AS {}", a.kind, a.attr, a.out))
                .collect();
            format!(
                "Aggregate group_by=[{}] aggs=[{}]",
                group_by.join(", "),
                outs.join(", ")
            )
        }
        Plan::Project { schema, .. } => format!("Project [{schema}]"),
        Plan::SetOp { op, .. } => match op {
            SetOp::Union => "Union".to_string(),
            SetOp::Except => "Except".to_string(),
        },
    }
}

fn render_into(plan: &Plan, indent: usize, out: &mut String) {
    out.push_str(&"  ".repeat(indent));
    out.push_str(&node_line(plan));
    out.push('\n');
    match plan {
        Plan::Scan { .. } => {}
        Plan::Derived { input, .. }
        | Plan::Filter { input, .. }
        | Plan::AddUnitColumn { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Project { input, .. } => render_into(input, indent + 1, out),
        Plan::Product { left, right, .. }
        | Plan::Join { left, right, .. }
        | Plan::SetOp { left, right, .. } => {
            render_into(left, indent + 1, out);
            render_into(right, indent + 1, out);
        }
    }
}

/// Renders a plan as an indented operator tree — the building block of
/// [`crate::database::Prepared::plan_display`].
pub fn render_plan(plan: &Plan) -> String {
    let mut out = String::new();
    render_into(plan, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::plan::lower_query;
    use crate::ProvDb;
    use aggprov_algebra::monoid::MonoidKind;
    use aggprov_algebra::tensor::Tensor;
    use aggprov_core::{Km, Value};
    use aggprov_krel::relation::Relation;
    use aggprov_krel::schema::Schema;

    /// Tables sized so cardinalities differ by an order of magnitude:
    /// big(a, b) 60 rows, mid(c, d) 12 rows, small(e, f) 3 rows.
    fn db() -> ProvDb {
        let mut db = ProvDb::new();
        db.exec("CREATE TABLE big (a NUM, b NUM); CREATE TABLE mid (c NUM, d NUM); CREATE TABLE small (e NUM, f NUM)")
            .unwrap();
        for i in 0..60 {
            db.exec(&format!("INSERT INTO big VALUES ({}, {})", i, i % 7))
                .unwrap();
        }
        for i in 0..12 {
            db.exec(&format!("INSERT INTO mid VALUES ({}, {})", i % 7, i))
                .unwrap();
        }
        for i in 0..3 {
            db.exec(&format!("INSERT INTO small VALUES ({}, {})", i, i))
                .unwrap();
        }
        db
    }

    fn optimized(db: &ProvDb, sql: &str) -> Plan {
        let lowered = lower_query(db, &parse_query(sql).unwrap()).unwrap();
        optimize(&lowered.plan, &Catalog::of(db))
    }

    /// Collects the node kinds on the spine from the root down (left
    /// children only).
    fn spine(plan: &Plan) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut cur = plan;
        loop {
            out.push(match cur {
                Plan::Scan { .. } => "Scan",
                Plan::Derived { .. } => "Derived",
                Plan::Product { .. } => "Product",
                Plan::Join { .. } => "Join",
                Plan::Filter { .. } => "Filter",
                Plan::AddUnitColumn { .. } => "AddUnitColumn",
                Plan::Aggregate { .. } => "Aggregate",
                Plan::Project { .. } => "Project",
                Plan::SetOp { .. } => "SetOp",
            });
            cur = match cur {
                Plan::Scan { .. } => return out,
                Plan::Derived { input, .. }
                | Plan::Filter { input, .. }
                | Plan::AddUnitColumn { input, .. }
                | Plan::Aggregate { input, .. }
                | Plan::Project { input, .. } => input,
                Plan::Product { left, .. } | Plan::Join { left, .. } | Plan::SetOp { left, .. } => {
                    left
                }
            };
        }
    }

    /// Finds the `Filter` directly above the scan of `table`, anywhere in
    /// the plan — pushdown tests don't care which join side reordering
    /// later placed the scan on.
    fn filter_on_scan<'a>(plan: &'a Plan, table: &str) -> Option<&'a Predicate> {
        match plan {
            Plan::Filter { input, pred } => match input.as_ref() {
                Plan::Scan { table: t, .. } if t == table => Some(pred),
                other => filter_on_scan(other, table),
            },
            Plan::Scan { .. } => None,
            Plan::Derived { input, .. }
            | Plan::AddUnitColumn { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Project { input, .. } => filter_on_scan(input, table),
            Plan::Product { left, right, .. }
            | Plan::Join { left, right, .. }
            | Plan::SetOp { left, right, .. } => {
                filter_on_scan(left, table).or_else(|| filter_on_scan(right, table))
            }
        }
    }

    #[test]
    fn where_above_join_pushes_to_the_scan_side() {
        let db = db();
        let plan = optimized(
            &db,
            "SELECT big.a FROM big JOIN mid ON big.b = mid.c WHERE big.a < 5",
        );
        // The filter moved below the join, directly onto the big scan.
        let pred = filter_on_scan(&plan, "big").expect("filter on the scan");
        // `big.a` is position 0 of both the join output and the scan.
        assert_eq!(pred.left, PlanOperand::Col(0));
    }

    #[test]
    fn right_side_predicates_remap_positions() {
        let db = db();
        let plan = optimized(
            &db,
            "SELECT big.a FROM big JOIN mid ON big.b = mid.c WHERE mid.d < 5",
        );
        // `mid.d` was position 3 of the join output, 1 of the scan.
        let pred = filter_on_scan(&plan, "mid").expect("filter on the scan");
        assert_eq!(pred.left, PlanOperand::Col(1));
    }

    #[test]
    fn straddling_predicates_stay_above_the_join() {
        let db = db();
        let plan = optimized(
            &db,
            "SELECT big.a FROM big JOIN mid ON big.b = mid.c WHERE big.a < mid.d",
        );
        let Plan::Project { input, .. } = &plan else {
            panic!("projection root");
        };
        assert!(
            matches!(input.as_ref(), Plan::Filter { .. }),
            "cross-side predicate must not move: {input:?}"
        );
    }

    #[test]
    fn pushdown_crosses_derived_and_project_with_renaming() {
        let db = db();
        // The filter on the subquery output column `x` (a rename of
        // `big.b` through the inner projection) must cross the Derived
        // rename *and* the inner Project, landing on the scan.
        let plan = optimized(
            &db,
            "SELECT q.x FROM (SELECT b AS x, a FROM big) q WHERE q.x = 3",
        );
        assert_eq!(
            spine(&plan),
            vec!["Project", "Derived", "Project", "Filter", "Scan"]
        );
        // And the remapped operand points at `b` (scan position 1).
        let Plan::Project { input, .. } = &plan else {
            panic!()
        };
        let Plan::Derived { input, .. } = input.as_ref() else {
            panic!()
        };
        let Plan::Project { input, .. } = input.as_ref() else {
            panic!()
        };
        let Plan::Filter { pred, .. } = input.as_ref() else {
            panic!()
        };
        assert_eq!(pred.left, PlanOperand::Col(1));
    }

    #[test]
    fn pushdown_refuses_to_cross_aggregate_and_setop() {
        let db = db();
        // HAVING on the (ground) group key still must not cross the
        // aggregate: grouping sums annotations across rows, and an
        // ungrouped aggregate even changes support on empty input.
        let plan = optimized(&db, "SELECT b FROM big GROUP BY b HAVING b = 3");
        assert_eq!(
            spine(&plan),
            vec!["Project", "Filter", "Aggregate", "Scan"],
            "HAVING stays above the aggregate"
        );

        // A filter above a set operation stops at the SetOp boundary —
        // it crosses the Derived rename but not the union.
        let plan = optimized(
            &db,
            "SELECT q.a FROM (SELECT a FROM big UNION SELECT c AS a FROM mid) q WHERE q.a = 1",
        );
        assert_eq!(
            spine(&plan),
            vec!["Project", "Derived", "Filter", "SetOp", "Project", "Scan"],
            "the filter must sit directly above the SetOp, not inside a branch"
        );
    }

    #[test]
    fn pushdown_refuses_add_unit_column() {
        // No SQL shape puts a Filter directly above AddUnitColumn, so
        // drive the gate with a hand-built plan.
        let db = db();
        let lowered =
            lower_query(&db, &parse_query("SELECT COUNT(*) AS n FROM big").unwrap()).unwrap();
        let Plan::Project { input, .. } = &lowered.plan else {
            panic!()
        };
        let Plan::Aggregate { input: unit, .. } = input.as_ref() else {
            panic!()
        };
        assert!(matches!(unit.as_ref(), Plan::AddUnitColumn { .. }));
        let filtered = Plan::Filter {
            input: unit.clone(),
            pred: Predicate {
                left: PlanOperand::Col(0),
                op: CmpOp::Eq,
                right: PlanOperand::Lit(aggprov_algebra::domain::Const::int(1)),
            },
        };
        let out = push_filters(filtered, &Catalog::of(&db));
        assert_eq!(spine(&out), vec!["Filter", "AddUnitColumn", "Scan"]);
    }

    #[test]
    fn predicates_over_symbolic_columns_never_move() {
        // A registered table with a symbolic aggregate value in column
        // `v`: filters on `v` must stay exactly where lowering put them,
        // even above a join they could otherwise enter.
        let mut db = ProvDb::new();
        let tok = |n: &str| Km::embed(aggprov_algebra::poly::NatPoly::token(n));
        let sym = Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(
                &MonoidKind::Sum,
                [(tok("x"), aggprov_algebra::domain::Const::int(3))],
            ),
        );
        let rel = Relation::from_rows(
            Schema::new(["k", "v"]).unwrap(),
            [
                (vec![Value::int(1), sym], tok("r0")),
                (vec![Value::int(2), Value::int(5)], tok("r1")),
            ],
        )
        .unwrap();
        db.register("t", rel);
        db.exec("CREATE TABLE u (k2 NUM, w NUM); INSERT INTO u VALUES (1, 9)")
            .unwrap();
        let plan = optimized(&db, "SELECT t.k FROM t JOIN u ON t.k = u.k2 WHERE t.v = 3");
        let Plan::Project { input, .. } = &plan else {
            panic!()
        };
        assert!(
            matches!(input.as_ref(), Plan::Filter { .. }),
            "symbolic-column predicate must not cross the join: {input:?}"
        );
        // …while a predicate on the ground column `k` still moves.
        let plan = optimized(&db, "SELECT t.k FROM t JOIN u ON t.k = u.k2 WHERE t.k = 1");
        let Plan::Project { input, .. } = &plan else {
            panic!()
        };
        assert!(matches!(input.as_ref(), Plan::Join { .. }), "{input:?}");
    }

    #[test]
    fn ground_join_chains_reorder_smallest_first() {
        let db = db();
        // Written largest-first: big ⋈ mid ⋈ small. Greedy starts from
        // `small` (3 rows), and the compensating projection restores the
        // original column order, so the output schema is unchanged.
        let sql = "SELECT big.a, mid.d, small.f FROM big \
                   JOIN mid ON big.b = mid.c JOIN small ON mid.d = small.e";
        let lowered = lower_query(&db, &parse_query(sql).unwrap()).unwrap();
        let plan = optimize(&lowered.plan, &Catalog::of(&db));
        assert_eq!(plan.schema(), lowered.plan.schema());
        // Root Project (display) → compensating Project → reordered chain.
        let Plan::Project { input, .. } = &plan else {
            panic!()
        };
        let Plan::Project { input: chain, .. } = input.as_ref() else {
            panic!("expected the compensating projection, got {input:?}");
        };
        let Plan::Join { left, .. } = chain.as_ref() else {
            panic!()
        };
        let Plan::Join { left: first, .. } = left.as_ref() else {
            panic!()
        };
        assert!(
            matches!(first.as_ref(), Plan::Scan { table, .. } if table == "small"),
            "cheapest input first: {first:?}"
        );
    }

    #[test]
    fn chains_with_symbolic_inputs_keep_their_shape() {
        let mut db = ProvDb::new();
        let tok = |n: &str| Km::embed(aggprov_algebra::poly::NatPoly::token(n));
        let sym = Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(
                &MonoidKind::Sum,
                [(tok("x"), aggprov_algebra::domain::Const::int(3))],
            ),
        );
        let rel = Relation::from_rows(
            Schema::new(["k", "v"]).unwrap(),
            [(vec![Value::int(1), sym], tok("r0"))],
        )
        .unwrap();
        db.register("t", rel);
        db.exec(
            "CREATE TABLE u (k2 NUM, w NUM); INSERT INTO u VALUES (1, 9);
             CREATE TABLE w (k3 NUM, z NUM); INSERT INTO w VALUES (1, 9);
             INSERT INTO w VALUES (2, 9); INSERT INTO w VALUES (3, 9)",
        )
        .unwrap();
        let sql = "SELECT w.z FROM w JOIN u ON w.k3 = u.k2 JOIN t ON u.k2 = t.k";
        let lowered = lower_query(&db, &parse_query(sql).unwrap()).unwrap();
        let plan = optimize(&lowered.plan, &Catalog::of(&db));
        // `t` has a symbolic column: the chain keeps its lowered shape.
        assert_eq!(plan, lowered.plan);
    }

    #[test]
    fn optimize_passes_malformed_plans_through_without_panicking() {
        // A hand-built plan with out-of-range column positions must flow
        // through the optimizer unrewritten (out-of-range counts as
        // symbolic, vetoing every rule) and surface as an error at
        // physical lowering or execution — never as a panic here.
        let db = db();
        let scan = lower_query(&db, &parse_query("SELECT a, b FROM big").unwrap())
            .unwrap()
            .plan;
        let lit = PlanOperand::Lit(aggprov_algebra::domain::Const::int(1));
        let bad_filter = Plan::Filter {
            input: Box::new(scan.clone()),
            pred: Predicate {
                left: PlanOperand::Col(99),
                op: CmpOp::Eq,
                right: lit.clone(),
            },
        };
        let out = optimize(&bad_filter, &Catalog::of(&db));
        assert_eq!(out, bad_filter, "malformed filter stays put");

        let bad_project = Plan::Filter {
            input: Box::new(Plan::Project {
                input: Box::new(scan),
                columns: vec![99],
                schema: Schema::new(["x"]).unwrap(),
            }),
            pred: Predicate {
                left: PlanOperand::Col(0),
                op: CmpOp::Eq,
                right: lit,
            },
        };
        let out = optimize(&bad_project, &Catalog::of(&db));
        assert_eq!(
            out, bad_project,
            "filter over a malformed projection stays put"
        );
    }

    #[test]
    fn catalog_snapshots_rows_and_groundness() {
        let db = db();
        let cat = Catalog::of(&db);
        assert_eq!(cat.table("big").unwrap().rows, 60);
        assert_eq!(cat.table("big").unwrap().ground_cols, vec![true, true]);
        assert!(cat.table("nope").is_none());
    }

    #[test]
    fn plan_restricted_catalog_skips_unreferenced_tables() {
        // Preparing a query must never pay a groundness scan over tables
        // the plan does not touch.
        let db = db();
        let lowered = lower_query(
            &db,
            &parse_query("SELECT e FROM small JOIN mid ON small.e = mid.c").unwrap(),
        )
        .unwrap();
        let cat = Catalog::of_plan(&db, &lowered.plan);
        assert!(cat.table("small").is_some());
        assert!(cat.table("mid").is_some());
        assert!(cat.table("big").is_none(), "big is not scanned");
    }

    #[test]
    fn render_shows_both_trees_via_plan_display() {
        let db = db();
        let stmt = db
            .prepare("SELECT big.a FROM big JOIN mid ON big.b = mid.c WHERE big.a < 5")
            .unwrap();
        let text = stmt.plan_display();
        assert!(text.contains("logical plan (as lowered):"), "{text}");
        assert!(text.contains("optimized plan:"), "{text}");
        assert!(text.contains("Join on big.b = mid.c"), "{text}");
        assert!(text.contains("Filter big.a < 5"), "{text}");
        // Pre-optimization the filter is above the join; optimized it is
        // below (deeper indentation).
        let logical = text.split("optimized plan:").next().unwrap();
        let optimized_part = text.split("optimized plan:").nth(1).unwrap();
        let depth = |part: &str| {
            part.lines()
                .find(|l| l.contains("Filter"))
                .map(|l| l.len() - l.trim_start().len())
                .unwrap()
        };
        assert!(depth(optimized_part) > depth(logical), "{text}");
    }
}
