//! A recursive-descent parser for the SQL-ish language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! script     := stmt (';' stmt)* ';'?
//! stmt       := create | drop | insert | query
//! create     := CREATE TABLE ident '(' col (',' col)* ')'
//! col        := ident (TEXT | NUM | BOOL)
//! drop       := DROP TABLE ident
//! insert     := INSERT INTO ident VALUES '(' lit (',' lit)* ')'
//!               [PROVENANCE annot]
//! query      := select ((UNION | EXCEPT) select)*
//! select     := SELECT item (',' item)* FROM tref (',' tref)*
//!               (JOIN tref ON eqlist)* [WHERE conds]
//!               [GROUP BY colref (',' colref)*] [HAVING conds]
//! tref       := ident [[AS] ident] | '(' query ')' [AS] ident
//! item       := '*' | agg '(' ('*' | colref) ')' [AS ident]
//!             | colref [AS ident]
//! agg        := SUM | MIN | MAX | PROD | COUNT | AVG | BOOL_OR
//! conds      := cond (AND cond)*
//! cond       := operand cmp operand
//! operand    := colref | lit
//! ```

use crate::ast::*;
use crate::lexer::{lex_spanned, Token};
use aggprov_krel::error::RelError;

type Result<T> = std::result::Result<T, RelError>;

/// Parses a script of one or more statements.
pub fn parse_script(input: &str) -> Result<Vec<Stmt>> {
    let spanned = lex_spanned(input)?;
    let (tokens, spans): (Vec<Token>, Vec<usize>) = spanned.into_iter().unzip();
    let mut p = Parser {
        tokens,
        spans,
        end_pos: input.len(),
        pos: 0,
    };
    let mut stmts = Vec::new();
    loop {
        while p.eat(&Token::Semi) {}
        if p.at_end() {
            break;
        }
        stmts.push(p.statement()?);
        if !p.at_end() && !p.eat(&Token::Semi) {
            return Err(p.err(format!("expected `;`, found `{}`", p.peek_text())));
        }
    }
    Ok(stmts)
}

/// Parses a single query. The "exactly one query" errors anchor at the
/// offending spot: the start of a surplus second statement, or the start
/// of a non-query statement.
pub fn parse_query(input: &str) -> Result<Query> {
    let spanned = lex_spanned(input)?;
    let (tokens, spans): (Vec<Token>, Vec<usize>) = spanned.into_iter().unzip();
    let mut p = Parser {
        tokens,
        spans,
        end_pos: input.len(),
        pos: 0,
    };
    while p.eat(&Token::Semi) {}
    let start = p.spans.get(p.pos).copied().unwrap_or(0);
    let stmt = p.statement()?;
    while p.eat(&Token::Semi) {}
    if !p.at_end() {
        return Err(p.err("expected exactly one query"));
    }
    match stmt {
        Stmt::Query(q) => Ok(q),
        _ => Err(RelError::Parse {
            pos: start,
            msg: "expected exactly one query".into(),
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    /// Byte offset of each token's start in the input text.
    spans: Vec<usize>,
    /// The input length — the position errors at end of input point at.
    end_pos: usize,
    pos: usize,
}

impl Parser {
    /// A parse error anchored at the current token (or end of input).
    fn err(&self, msg: impl Into<String>) -> RelError {
        RelError::Parse {
            pos: self.spans.get(self.pos).copied().unwrap_or(self.end_pos),
            msg: msg.into(),
        }
    }

    /// A parse error anchored at the token just consumed — for call
    /// sites that `next()` first and reject what they got.
    fn err_prev(&self, msg: impl Into<String>) -> RelError {
        RelError::Parse {
            pos: self
                .spans
                .get(self.pos.saturating_sub(1))
                .copied()
                .unwrap_or(self.end_pos),
            msg: msg.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_text(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "end of input".into())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek_text())))
        }
    }

    /// Peeks whether the next token is the given keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{}`", self.peek_text())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(other) => Err(self.err_prev(format!("expected identifier, found `{other}`"))),
            None => Err(self.err("expected identifier, found `end of input`")),
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.at_kw("CREATE") {
            self.create_table()
        } else if self.at_kw("DROP") {
            self.pos += 1;
            self.expect_kw("TABLE")?;
            Ok(Stmt::DropTable {
                name: self.ident()?,
            })
        } else if self.at_kw("INSERT") {
            self.insert()
        } else if self.at_kw("SELECT") {
            Ok(Stmt::Query(self.query()?))
        } else {
            Err(self.err(format!("unexpected `{}`", self.peek_text())))
        }
    }

    fn create_table(&mut self) -> Result<Stmt> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.ident()?;
            let ty = match ty.to_ascii_uppercase().as_str() {
                "TEXT" => ColType::Text,
                "NUM" | "INT" | "NUMERIC" => ColType::Num,
                "BOOL" | "BOOLEAN" => ColType::Bool,
                other => return Err(self.err_prev(format!("unknown column type `{other}`"))),
            };
            columns.push((col, ty));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Stmt::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        self.expect(&Token::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let provenance = if self.eat_kw("PROVENANCE") {
            Some(match self.next() {
                Some(Token::Ident(s)) => s,
                Some(Token::Number(n)) => n.to_string(),
                Some(other) => {
                    return Err(self.err_prev(format!(
                        "expected annotation after PROVENANCE, found `{other}`"
                    )))
                }
                None => {
                    return Err(
                        self.err("expected annotation after PROVENANCE, found `end of input`")
                    )
                }
            })
        } else {
            None
        };
        Ok(Stmt::Insert {
            table,
            values,
            provenance,
        })
    }

    fn literal(&mut self) -> Result<Lit> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Lit::Num(n)),
            Some(Token::Str(s)) => Ok(Lit::Str(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("TRUE") => Ok(Lit::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FALSE") => Ok(Lit::Bool(false)),
            Some(other) => Err(self.err_prev(format!("expected literal, found `{other}`"))),
            None => Err(self.err("expected literal, found `end of input`")),
        }
    }

    fn query(&mut self) -> Result<Query> {
        let mut q = Query::Select(Box::new(self.select()?));
        loop {
            let op = if self.eat_kw("UNION") {
                SetOp::Union
            } else if self.eat_kw("EXCEPT") {
                SetOp::Except
            } else {
                break;
            };
            let rhs = Query::Select(Box::new(self.select()?));
            q = Query::SetOp {
                op,
                left: Box::new(q),
                right: Box::new(rhs),
            };
        }
        Ok(q)
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut stmt = SelectStmt::default();
        loop {
            stmt.items.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        loop {
            stmt.from.push(self.table_ref()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        while self.eat_kw("JOIN") {
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let mut on = Vec::new();
            loop {
                let l = self.col_ref()?;
                self.expect(&Token::Eq)?;
                let r = self.col_ref()?;
                on.push((l, r));
                if !self.eat_kw("AND") {
                    break;
                }
            }
            stmt.joins.push(Join { table, on });
        }
        if self.eat_kw("WHERE") {
            stmt.where_ = self.conditions()?;
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                stmt.group_by.push(self.col_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            stmt.having = self.conditions()?;
        }
        Ok(stmt)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Star);
        }
        // Aggregate?
        if let Some(Token::Ident(name)) = self.peek() {
            let func = match name.to_ascii_uppercase().as_str() {
                "SUM" => Some(AggFunc::Sum),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "PROD" => Some(AggFunc::Prod),
                "COUNT" => Some(AggFunc::Count),
                "AVG" => Some(AggFunc::Avg),
                "BOOL_OR" => Some(AggFunc::BoolOr),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    let arg = if self.eat(&Token::Star) {
                        AggArg::Star
                    } else {
                        AggArg::Col(self.col_ref()?)
                    };
                    self.expect(&Token::RParen)?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Agg(func, arg, alias));
                }
            }
        }
        let col = self.col_ref()?;
        let alias = self.alias()?;
        Ok(SelectItem::Col(col, alias))
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            let q = self.query()?;
            self.expect(&Token::RParen)?;
            let alias = if self.eat_kw("AS") {
                self.ident()?
            } else if let Some(Token::Ident(_)) = self.peek() {
                self.ident()?
            } else {
                return Err(self.err("a subquery in FROM needs an alias"));
            };
            return Ok(TableRef {
                source: TableSource::Subquery(Box::new(q)),
                alias: Some(alias),
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            // Bare alias, unless it's a keyword continuing the query.
            const KEYWORDS: [&str; 12] = [
                "JOIN", "ON", "WHERE", "GROUP", "HAVING", "UNION", "EXCEPT", "AND", "AS", "FROM",
                "SELECT", "BY",
            ];
            if KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef {
            source: TableSource::Named(name),
            alias,
        })
    }

    fn col_ref(&mut self) -> Result<ColRef> {
        let first = self.ident()?;
        if self.eat(&Token::Dot) {
            let column = self.ident()?;
            Ok(ColRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    fn conditions(&mut self) -> Result<Vec<Condition>> {
        let mut out = Vec::new();
        loop {
            out.push(self.condition()?);
            if !self.eat_kw("AND") {
                break;
            }
        }
        Ok(out)
    }

    fn condition(&mut self) -> Result<Condition> {
        let left = self.operand()?;
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(other) => {
                return Err(self.err_prev(format!("expected comparison operator, found `{other}`")))
            }
            None => return Err(self.err("expected comparison operator, found `end of input`")),
        };
        let right = self.operand()?;
        Ok(Condition { left, op, right })
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.peek() {
            Some(Token::Param(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(Operand::Param(n))
            }
            Some(Token::Number(_)) | Some(Token::Str(_)) => Ok(Operand::Lit(self.literal()?)),
            Some(Token::Ident(s))
                if s.eq_ignore_ascii_case("TRUE") || s.eq_ignore_ascii_case("FALSE") =>
            {
                Ok(Operand::Lit(self.literal()?))
            }
            _ => Ok(Operand::Col(self.col_ref()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::num::Num;

    #[test]
    fn create_insert_roundtrip() {
        let stmts = parse_script(
            "CREATE TABLE r (emp TEXT, sal NUM);
             INSERT INTO r VALUES ('e1', 20) PROVENANCE p1;
             INSERT INTO r VALUES ('e2', 10);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        match &stmts[1] {
            Stmt::Insert {
                table,
                values,
                provenance,
            } => {
                assert_eq!(table, "r");
                assert_eq!(values.len(), 2);
                assert_eq!(provenance.as_deref(), Some("p1"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_with_group_by_and_having() {
        let q =
            parse_query("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept HAVING total = 20")
                .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.group_by, vec![ColRef::bare("dept")]);
        assert_eq!(s.having.len(), 1);
        assert_eq!(s.having[0].right, Operand::Lit(Lit::Num(Num::int(20))));
    }

    #[test]
    fn joins_and_qualifiers() {
        let q = parse_query(
            "SELECT e.dept FROM emp e JOIN dept d ON e.dept = d.name AND e.x = d.y \
             WHERE e.sal > 10",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.from[0].effective_alias(), "e");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].on.len(), 2);
        assert_eq!(s.where_.len(), 1);
        assert_eq!(s.where_[0].op, CmpOp::Gt);
    }

    #[test]
    fn set_operations_left_associate() {
        let q =
            parse_query("SELECT a FROM r UNION SELECT a FROM s EXCEPT SELECT a FROM t").unwrap();
        let Query::SetOp { op, left, .. } = q else {
            panic!()
        };
        assert_eq!(op, SetOp::Except);
        assert!(matches!(
            *left,
            Query::SetOp {
                op: SetOp::Union,
                ..
            }
        ));
    }

    #[test]
    fn count_star_and_avg() {
        let q = parse_query("SELECT COUNT(*) AS n, AVG(sal) FROM r").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(
            s.items[0],
            SelectItem::Agg(AggFunc::Count, AggArg::Star, Some("n".into()))
        );
        assert!(matches!(s.items[1], SelectItem::Agg(AggFunc::Avg, _, None)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_script("SELECT FROM").is_err());
        assert!(parse_script("CREATE TABLE t (a WAT)").is_err());
        assert!(parse_script("INSERT INTO t VALUES (").is_err());
        assert!(parse_query("SELECT a FROM r; SELECT b FROM s").is_err());
    }

    #[test]
    fn parse_errors_carry_the_offending_token_position() {
        // `FRM` starts at byte 9: the missing-FROM error points there.
        let err = parse_script("SELECT a FRM r").unwrap_err();
        let RelError::Parse { pos, msg } = &err else {
            panic!("expected RelError::Parse, got {err:?}");
        };
        assert_eq!(*pos, 9, "{msg}");
        assert!(msg.contains("expected `FROM`"), "{msg}");
        // The Display rendering keeps the `parse error:` prefix and names
        // the byte offset.
        assert!(err.to_string().starts_with("parse error:"), "{err}");
        assert!(err.to_string().contains("at byte 9"), "{err}");

        // Errors at end of input point one past the last byte.
        let err = parse_script("SELECT a FROM").unwrap_err();
        assert!(matches!(err, RelError::Parse { pos: 13, .. }), "{err:?}");

        // A rejected consumed token (unknown column type) is still the
        // anchor, not the token after it.
        let err = parse_script("CREATE TABLE t (a WAT)").unwrap_err();
        assert!(matches!(err, RelError::Parse { pos: 18, .. }), "{err:?}");

        // parse_query's "exactly one" errors anchor at the surplus
        // second statement (byte 17), not at the valid first query.
        let err = parse_query("SELECT a FROM r; SELECT b FROM s").unwrap_err();
        assert!(matches!(err, RelError::Parse { pos: 17, .. }), "{err:?}");
        // …and at the start of a non-query statement.
        let err = parse_query("DROP TABLE t").unwrap_err();
        assert!(matches!(err, RelError::Parse { pos: 0, .. }), "{err:?}");
    }
}
