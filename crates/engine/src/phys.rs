//! The physical-plan layer: [`PhysNode`] trees lowered from the logical
//! [`Plan`] IR at prepare time, driven by the pipeline executor in
//! [`crate::exec`].
//!
//! Where the logical plan says *what* (relational semantics, resolved
//! names), a physical node says *how*: every per-execution decision that
//! does not depend on the data — join keys as column positions, the
//! distinct/expand split of a duplicated projection, the sum/count column
//! pairs of an `AVG` — is resolved here, once per prepare.
//!
//! The executor streams **chunks** (columnar ground batches plus a
//! row-wise symbolic fringe, [`aggprov_core::ops::batch::Chunk`]) through
//! Scan → Filter → Project → HashJoin segments; [`PhysNode::Aggregate`]
//! and [`PhysNode::SetOp`] are the explicit **pipeline breakers** that
//! materialize a relation (they need the whole input, and their symbolic
//! semantics sums across rows). Any node whose batch kernel cannot
//! represent the symbolic fringe falls back to the row-at-a-time
//! `ops::*_opts` operators, so results are bit-identical to the
//! `specops` reference either way.

use crate::ast::SetOp;
use crate::plan::{AvgSpec, Plan, PlanAgg, Predicate};
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::schema::Schema;
use aggprov_krel::typed::ColHint;

/// A physical operator. See the module docs for the pipeline/breaker
/// split; every node carries its output [`Schema`].
#[derive(Clone, PartialEq, Debug)]
pub(crate) enum PhysNode {
    /// A base-table scan (an `Arc` share plus a schema-level rename).
    Scan {
        /// The catalog table name.
        table: String,
        /// The alias-prefixed output schema.
        schema: Schema,
        /// Per-column typed-storage hints from the catalog's declared
        /// column types (`NUM` → unboxed `i64` run, `TEXT` → dictionary
        /// codes), pinned at lower time so the executor's chunk
        /// conversion skips per-column variant probing. `None` for
        /// tables registered without declared types — those columns
        /// probe their variant from the data.
        hints: Option<Vec<Option<ColHint>>>,
    },
    /// A pure schema replacement (derived-table re-aliasing).
    Rename {
        /// Input node.
        input: Box<PhysNode>,
        /// The new schema.
        schema: Schema,
    },
    /// A tokened selection: vectorized over ground columns (selection
    /// vector), token path over the fringe. Never a breaker.
    ///
    /// Stacked logical `Filter` nodes (one per `WHERE`/`HAVING` conjunct)
    /// are **fused** into a single physical node at lower time: the
    /// predicates narrow one selection vector in sequence, with no
    /// per-conjunct node dispatch.
    Filter {
        /// Input node.
        input: Box<PhysNode>,
        /// The resolved predicates, in application order (innermost
        /// conjunct first).
        preds: Vec<Predicate>,
    },
    /// Appends the constant-1 column for COUNT/AVG (per-row; never a
    /// breaker).
    AddUnitColumn {
        /// Input node.
        input: Box<PhysNode>,
        /// The extended schema.
        schema: Schema,
    },
    /// A projection. The batch kernel gathers `columns` directly
    /// (duplicates and all); the row-at-a-time fallback projects the
    /// `distinct` positions through the §4.3 token machinery and expands
    /// duplicates positionally via `expand`.
    Project {
        /// Input node.
        input: Box<PhysNode>,
        /// Output column positions, in order, duplicates allowed.
        columns: Vec<usize>,
        /// The distinct input positions, in first-appearance order.
        distinct: Vec<usize>,
        /// Per output column, its index into `distinct`.
        expand: Vec<usize>,
        /// True iff `columns` is exactly `0..arity` — over a symbol-free
        /// input the projection is a pure schema rename (`Arc` share).
        identity: bool,
        /// The display schema.
        schema: Schema,
    },
    /// Cartesian product.
    Product {
        /// Left input.
        left: Box<PhysNode>,
        /// Right input.
        right: Box<PhysNode>,
        /// The concatenated schema.
        schema: Schema,
    },
    /// Hash equi-join: build right, probe left. Batched when both sides
    /// are fully ground, token-weighted `ops::join_on_opts` otherwise.
    HashJoin {
        /// Left (probe) input.
        left: Box<PhysNode>,
        /// Right (build) input.
        right: Box<PhysNode>,
        /// Join-key column positions `(left, right)`.
        on_idx: Vec<(usize, usize)>,
        /// The same keys by resolved name, for the row-at-a-time fallback.
        on_names: Vec<(String, String)>,
        /// The concatenated schema.
        schema: Schema,
    },
    /// Grouping/aggregation — a pipeline breaker (materializes its
    /// input). `AVG` outputs divide batched when the grouped result is
    /// fully ground.
    Aggregate {
        /// Input node.
        input: Box<PhysNode>,
        /// Resolved grouping column names (empty = whole-relation).
        group_by: Vec<String>,
        /// Aggregate computations, in output order.
        aggs: Vec<PlanAgg>,
        /// AVG columns derived from SUM/COUNT pairs.
        avg: Vec<AvgSpec>,
        /// Per AVG spec, the (sum, count) positions in the grouped output.
        avg_idx: Vec<(usize, usize)>,
        /// The output schema (grouped columns ++ avg outputs).
        schema: Schema,
    },
    /// `UNION` / `EXCEPT` — a pipeline breaker on both inputs.
    SetOp {
        /// The operation.
        op: SetOp,
        /// Left input.
        left: Box<PhysNode>,
        /// Right input.
        right: Box<PhysNode>,
        /// The output schema (the left input's).
        schema: Schema,
    },
}

/// An internal-invariant failure: the plan handed to [`lower`] references
/// something its input schemas do not have. Never raised for plans built
/// by [`crate::plan::lower_query`].
fn internal(msg: impl Into<String>) -> RelError {
    RelError::Internal(msg.into())
}

/// Lowers a logical plan to its physical form, resolving every
/// data-independent decision (join-key positions, projection
/// distinct/expand, AVG column pairs) exactly once. Scans carry no
/// typed-column hints on this entry — see [`lower_with`] for the
/// catalog-aware variant the database planner uses.
///
/// A malformed plan (a join key or AVG part missing from its input
/// schema) returns [`RelError::Internal`] instead of panicking — plans
/// from `lower_query` are well-formed by construction, but a hand-built
/// or future-optimizer plan must fail loudly *as an error*.
pub(crate) fn lower(plan: &Plan) -> Result<PhysNode> {
    lower_with(plan, &|_| None)
}

/// [`lower`] with a catalog lookup for per-table typed-column hints:
/// `table_hints` maps a scanned table name to its declared column-type
/// hints (or `None` when the table has no declared types), pinning the
/// column representation at prepare time instead of probing it from the
/// data on every execution.
pub(crate) fn lower_with(
    plan: &Plan,
    table_hints: &dyn Fn(&str) -> Option<Vec<Option<ColHint>>>,
) -> Result<PhysNode> {
    let lower = |p: &Plan| lower_with(p, table_hints);
    Ok(match plan {
        Plan::Scan { table, schema } => PhysNode::Scan {
            table: table.clone(),
            schema: schema.clone(),
            hints: table_hints(table),
        },
        Plan::Derived { input, schema } => PhysNode::Rename {
            input: Box::new(lower(input)?),
            schema: schema.clone(),
        },
        Plan::Filter { input, pred } => {
            // Filter fusion: walk the stacked logical filters once and
            // emit one physical node applying them innermost-first.
            let mut preds = vec![pred.clone()];
            let mut below = input.as_ref();
            while let Plan::Filter { input, pred } = below {
                preds.push(pred.clone());
                below = input.as_ref();
            }
            preds.reverse();
            PhysNode::Filter {
                input: Box::new(lower(below)?),
                preds,
            }
        }
        Plan::AddUnitColumn { input, schema } => PhysNode::AddUnitColumn {
            input: Box::new(lower(input)?),
            schema: schema.clone(),
        },
        Plan::Project {
            input,
            columns,
            schema,
        } => {
            // The §4.3 symbolic projection is defined over a *set* of
            // attributes: split duplicated select items into the distinct
            // input positions plus a positional expansion, as the
            // row-at-a-time executor always did — now once, at lower time.
            let mut distinct: Vec<usize> = Vec::new();
            let expand: Vec<usize> = columns
                .iter()
                .map(|i| {
                    distinct.iter().position(|d| d == i).unwrap_or_else(|| {
                        distinct.push(*i);
                        distinct.len() - 1
                    })
                })
                .collect();
            let identity = distinct.len() == input.schema().arity()
                && distinct.iter().enumerate().all(|(i, d)| i == *d)
                && distinct.len() == columns.len();
            PhysNode::Project {
                input: Box::new(lower(input)?),
                columns: columns.clone(),
                distinct,
                expand,
                identity,
                schema: schema.clone(),
            }
        }
        Plan::Product {
            left,
            right,
            schema,
        } => PhysNode::Product {
            left: Box::new(lower(left)?),
            right: Box::new(lower(right)?),
            schema: schema.clone(),
        },
        Plan::Join {
            left,
            right,
            on,
            schema,
        } => {
            let on_idx = on
                .iter()
                .map(|(l, r)| {
                    let li = left.schema().index_of(l).map_err(|_| {
                        internal(format!("join key `{l}` missing from the left input schema"))
                    })?;
                    let ri = right.schema().index_of(r).map_err(|_| {
                        internal(format!(
                            "join key `{r}` missing from the right input schema"
                        ))
                    })?;
                    Ok((li, ri))
                })
                .collect::<Result<_>>()?;
            PhysNode::HashJoin {
                left: Box::new(lower(left)?),
                right: Box::new(lower(right)?),
                on_idx,
                on_names: on.clone(),
                schema: schema.clone(),
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            avg,
            schema,
        } => {
            // The grouped output (before AVG columns) is `group_by` then
            // the aggregate outputs; AVG pairs resolve against it.
            let grouped: Vec<&str> = group_by
                .iter()
                .map(|g| g.as_str())
                .chain(aggs.iter().map(|a| a.out.as_str()))
                .collect();
            let avg_idx = avg
                .iter()
                .map(|spec| {
                    let pos = |name: &str| {
                        grouped.iter().position(|n| *n == name).ok_or_else(|| {
                            internal(format!("AVG part `{name}` missing from the grouped output"))
                        })
                    };
                    Ok((pos(&spec.sum)?, pos(&spec.count)?))
                })
                .collect::<Result<_>>()?;
            PhysNode::Aggregate {
                input: Box::new(lower(input)?),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                avg: avg.clone(),
                avg_idx,
                schema: schema.clone(),
            }
        }
        Plan::SetOp {
            op,
            left,
            right,
            schema,
        } => PhysNode::SetOp {
            op: *op,
            left: Box::new(lower(left)?),
            right: Box::new(lower(right)?),
            schema: schema.clone(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::plan::lower_query;
    use crate::ProvDb;

    fn db() -> ProvDb {
        let mut db = ProvDb::new();
        db.exec(
            "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
             CREATE TABLE heads (dept TEXT, head TEXT);",
        )
        .unwrap();
        db
    }

    fn phys(db: &ProvDb, sql: &str) -> PhysNode {
        lower(&lower_query(db, &parse_query(sql).unwrap()).unwrap().plan).unwrap()
    }

    #[test]
    fn join_keys_lower_to_positions() {
        let db = db();
        let root = phys(&db, "SELECT r.emp FROM r JOIN heads ON r.dept = heads.dept");
        let PhysNode::Project { input, .. } = root else {
            panic!("expected projection root");
        };
        let PhysNode::HashJoin {
            on_idx, on_names, ..
        } = *input
        else {
            panic!("expected a hash join under the projection");
        };
        assert_eq!(on_idx, vec![(1, 0)]);
        assert_eq!(
            on_names,
            vec![("r.dept".to_string(), "heads.dept".to_string())]
        );
    }

    #[test]
    fn duplicated_projection_lowers_distinct_and_expand() {
        let db = db();
        let root = phys(&db, "SELECT dept AS a, dept AS b, sal FROM r");
        let PhysNode::Project {
            columns,
            distinct,
            expand,
            identity,
            ..
        } = root
        else {
            panic!("expected projection root");
        };
        assert_eq!(columns, vec![1, 1, 2]);
        assert_eq!(distinct, vec![1, 2]);
        assert_eq!(expand, vec![0, 0, 1]);
        assert!(!identity);
    }

    #[test]
    fn identity_projection_is_marked() {
        let db = db();
        let PhysNode::Project { identity, .. } = phys(&db, "SELECT emp, dept, sal FROM r") else {
            panic!("expected projection root");
        };
        assert!(identity);
        // A permutation is not the identity.
        let PhysNode::Project { identity, .. } = phys(&db, "SELECT sal, dept, emp FROM r") else {
            panic!("expected projection root");
        };
        assert!(!identity);
    }

    #[test]
    fn stacked_filters_fuse_into_one_physical_node() {
        let db = db();
        let root = phys(&db, "SELECT emp FROM r WHERE sal > 10 AND dept = 'd1'");
        let PhysNode::Project { input, .. } = root else {
            panic!("expected projection root");
        };
        let PhysNode::Filter { preds, input } = *input else {
            panic!("expected a fused filter under the projection");
        };
        assert_eq!(preds.len(), 2, "both WHERE conjuncts in one node");
        // Innermost conjunct first: `sal > 10` was lowered first.
        assert_eq!(preds[0].left, crate::plan::PlanOperand::Col(2));
        assert!(matches!(*input, PhysNode::Scan { .. }));
    }

    #[test]
    fn malformed_plans_lower_to_internal_errors_not_panics() {
        use aggprov_krel::error::RelError;
        let db = db();
        let lowered = lower_query(
            &db,
            &parse_query("SELECT r.emp FROM r JOIN heads ON r.dept = heads.dept").unwrap(),
        )
        .unwrap();
        // Corrupt the join key under the projection: a future hand-built
        // (or buggy-optimizer) plan must surface as RelError::Internal on
        // the lowering path, not abort the process.
        let Plan::Project {
            input,
            columns,
            schema,
        } = lowered.plan
        else {
            panic!("expected projection root");
        };
        let Plan::Join {
            left,
            right,
            schema: jschema,
            ..
        } = *input
        else {
            panic!("expected join");
        };
        let bad = Plan::Project {
            input: Box::new(Plan::Join {
                left,
                right,
                on: vec![("nope.nope".into(), "heads.dept".into())],
                schema: jschema,
            }),
            columns,
            schema,
        };
        let err = lower(&bad).unwrap_err();
        assert!(matches!(err, RelError::Internal(_)), "{err:?}");
        assert!(err.to_string().contains("join key"), "{err}");
    }

    #[test]
    fn avg_pairs_lower_to_grouped_positions() {
        let db = db();
        let root = phys(&db, "SELECT dept, AVG(sal) AS mean FROM r GROUP BY dept");
        let PhysNode::Project { input, .. } = root else {
            panic!("expected projection root");
        };
        let PhysNode::Aggregate {
            avg_idx, schema, ..
        } = *input
        else {
            panic!("expected an aggregate under the projection");
        };
        // Grouped output: dept, __avg_sum_1, __avg_cnt_1 (then `mean`).
        assert_eq!(avg_idx, vec![(1, 2)]);
        assert_eq!(schema.arity(), 4);
    }
}
